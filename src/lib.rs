//! QuTracer — facade crate re-exporting the whole workspace.
//!
//! Reproduction of "QuTracer: Mitigating Quantum Gate and Measurement Errors
//! by Tracing Subsets of Qubits" (ISCA 2024). See the README for the
//! architecture overview and `DESIGN.md` for the experiment index.

pub use qt_algos as algos;
pub use qt_baselines as baselines;
pub use qt_circuit as circuit;
pub use qt_core as core;
pub use qt_cut as cut;
pub use qt_device as device;
pub use qt_dist as dist;
pub use qt_math as math;
pub use qt_pcs as pcs;
pub use qt_serve as serve;
pub use qt_sim as sim;
