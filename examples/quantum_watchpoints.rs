//! Quantum watchpoints: repurposing circuit cutting to *watch* a qubit's
//! state during execution — the paper's debugging analogy (Sec. II-B/V-A).
//!
//! Traces one counting qubit of a QPE circuit: segments the circuit at its
//! cut points, prints the classically tracked state at each watchpoint and
//! the final mitigated distribution.
//!
//! ```bash
//! cargo run --release --example quantum_watchpoints
//! ```

use qutracer::circuit::passes::split_into_segments;
use qutracer::core::{trace_single, QuTracer, QuTracerConfig, TraceConfig};
use qutracer::math::states::bloch_vector;
use qutracer::sim::{Backend, Executor, NoiseModel};

fn main() {
    // A 5-qubit QPE instance estimating the phase 1/3.
    let n_count = 4;
    let circuit = qutracer::algos::qpe(n_count, 1.0 / 3.0);
    let traced = 2; // watch the third counting qubit, as in the paper's Fig. 5

    // Show the watchpoint structure: local blocks vs check segments.
    let segments = split_into_segments(&circuit, &[traced]).expect("traceable");
    println!("watchpoint structure for qubit {traced}:");
    for (i, seg) in segments.iter().enumerate() {
        println!(
            "  segment {i}: {} local gate(s) [classically simulated], {} gate(s) in the check window{}",
            seg.local.len(),
            seg.check.len(),
            if seg.check_touches(&[traced]) {
                " — protected by a Z check"
            } else {
                ""
            }
        );
    }

    let noise = NoiseModel::depolarizing(0.001, 0.02).with_readout(0.05);
    let executor = Executor::with_backend(noise, Backend::DensityMatrix);
    let outcome =
        trace_single(&executor, &circuit, traced, &TraceConfig::default()).expect("traceable");

    let [x, y, z] = bloch_vector(&outcome.rho);
    println!("\ntraced final state of qubit {traced}: ⟨X⟩={x:+.3} ⟨Y⟩={y:+.3} ⟨Z⟩={z:+.3}");
    println!(
        "mitigated local distribution: p(0) = {:.3}, p(1) = {:.3}",
        outcome.local.prob(0),
        outcome.local.prob(1)
    );
    println!(
        "{} checks applied, {} mitigation circuits, {} two-qubit gates total",
        outcome.checks_applied, outcome.stats.n_circuits, outcome.stats.total_two_qubit_gates
    );

    // Watching every counting qubit at once: the staged pipeline plans all
    // watchpoint circuits up front and would execute them as one batch.
    let measured: Vec<usize> = (0..n_count).collect();
    let plan = QuTracer::plan(&circuit, &measured, &QuTracerConfig::single())
        .expect("counting qubits are traceable");
    println!(
        "\nfull-framework plan over {} qubits: {} distinct circuits ({} requests before dedup)",
        n_count,
        plan.n_programs(),
        plan.n_requests(),
    );
}
