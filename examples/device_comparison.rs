//! Device-model comparison: Bernstein–Vazirani on the synthesized 27-qubit
//! heavy-hex backend, comparing Original / Jigsaw / SQEM / QuTracer — a
//! miniature of the paper's Table II.
//!
//! ```bash
//! cargo run --release --example device_comparison
//! ```

use qutracer::algos::bernstein_vazirani;
use qutracer::baselines::{run_jigsaw, run_sqem};
use qutracer::core::{QuTracer, QuTracerConfig};
use qutracer::device::{Device, DeviceExecutor};
use qutracer::dist::{hellinger_fidelity, Distribution};
use qutracer::sim::{ideal_distribution, Program};

fn main() {
    let n_data = 6;
    let secret = 0b101101;
    let circuit = bernstein_vazirani(n_data, secret);
    let measured: Vec<usize> = (0..n_data).collect();

    let executor = DeviceExecutor::new(Device::fake_hanoi());
    let ideal = ideal_distribution(&Program::from_circuit(&circuit), &measured);
    let fid = |d: &Distribution| hellinger_fidelity(d, &ideal);

    // Staged pipeline: the plan batches every subset's mitigation circuits
    // into one submission the transpiling device executor fans out.
    let plan =
        QuTracer::plan(&circuit, &measured, &QuTracerConfig::single()).expect("BV is traceable");
    println!(
        "plan: {} circuits to transpile and run (skipped subsets: {})",
        plan.n_programs(),
        plan.skipped().len(),
    );
    let qt = plan
        .execute(&executor)
        .expect("device execution")
        .recombine()
        .expect("recombination");
    let jig = run_jigsaw(&executor, &circuit, &measured, 2);
    let sqem = run_sqem(&executor, &circuit, &measured).expect("single check layer");

    println!("Bernstein–Vazirani, secret {secret:#b}, on fake_hanoi:");
    println!("  original fidelity: {:.3}", fid(&qt.global));
    println!("  jigsaw   fidelity: {:.3}", fid(&jig.distribution));
    println!("  sqem     fidelity: {:.3}", fid(&sqem.distribution));
    println!("  qutracer fidelity: {:.3}", fid(&qt.distribution));
    println!(
        "  transpiled global: {} two-qubit gates; QuTracer circuits avg {:.1}",
        qt.stats.global_two_qubit_gates, qt.stats.avg_two_qubit_gates
    );
    let peak = qt
        .distribution
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!(
        "  most likely outcome after mitigation: {:#b} (p = {:.3})",
        peak.0, peak.1
    );
}
