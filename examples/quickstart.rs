//! Quickstart: mitigate a noisy VQE circuit with QuTracer's staged
//! pipeline — plan, inspect, execute, recombine.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use qutracer::algos::vqe_ansatz;
use qutracer::core::{QuTracer, QuTracerConfig};
use qutracer::dist::hellinger_fidelity;
use qutracer::sim::{ideal_distribution, Backend, Executor, NoiseModel, Program, ReadoutModel};

fn main() {
    // 1. A workload: 6-qubit hardware-efficient VQE ansatz, one layer.
    let n = 6;
    let circuit = vqe_ansatz(n, 1, 42);
    let measured: Vec<usize> = (0..n).collect();

    // 2. Stage 1 — plan: all classical analysis (subset enumeration,
    //    segmentation, traceback, ensemble generation) happens here. The
    //    plan is inspectable before anything executes, so the paper's
    //    overhead tables are reproducible without a single simulation.
    let plan = QuTracer::plan(&circuit, &measured, &QuTracerConfig::single())
        .expect("VQE ansatz is traceable");
    println!(
        "plan: {} distinct programs to execute ({} logical requests before dedup)",
        plan.n_programs(),
        plan.n_requests(),
    );
    for s in plan.subset_summaries() {
        println!(
            "  subset {:?}: {} mitigation circuits{}",
            s.qubits,
            s.n_requests,
            if s.shared { " (shared ensemble)" } else { "" },
        );
    }
    let preview = plan.stats();
    println!(
        "plan-level overhead: {} circuits, avg {:.1} two-qubit gates each",
        preview.n_circuits, preview.avg_two_qubit_gates,
    );
    let batch = plan.batch_stats();
    println!(
        "execution trie: {} nodes, {:.0}% of requested gate work shared\n",
        batch.n_nodes,
        100.0 * batch.shared_gate_fraction(),
    );

    // 3. Stage 2 — execute: every program across every subset runs as ONE
    //    batched submission on a noisy executor (depolarizing gate noise
    //    plus readout error with measurement crosstalk); the executor's
    //    prefix-sharing trie evolves each shared stretch once.
    let noise = NoiseModel::depolarizing(0.001, 0.01)
        .with_readout_model(ReadoutModel::with_crosstalk(0.03, 0.02));
    let executor = Executor::with_backend(noise, Backend::DensityMatrix);
    let artifacts = plan.execute(&executor).expect("batched execution");

    // 4. Stage 3 — recombine: Bayesian update, purely classical.
    let report = artifacts.recombine().expect("recombination");

    // 5. Compare against the noise-free reference.
    let ideal = ideal_distribution(&Program::from_circuit(&circuit), &measured);
    let before = hellinger_fidelity(&report.global, &ideal);
    let after = hellinger_fidelity(&report.distribution, &ideal);

    println!("unmitigated Hellinger fidelity: {before:.4}");
    println!("QuTracer    Hellinger fidelity: {after:.4}");
    println!(
        "mitigation circuits: {} (avg {:.1} two-qubit gates each, global has {})",
        report.stats.n_circuits - 1,
        report.stats.avg_two_qubit_gates,
        report.stats.global_two_qubit_gates,
    );
    for (local, pos) in &report.locals {
        println!(
            "  traced qubit {}: p(0) = {:.3}, p(1) = {:.3}",
            measured[pos[0]],
            local.prob(0),
            local.prob(1)
        );
    }
}
