//! Quickstart: mitigate a noisy VQE circuit with QuTracer.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use qutracer::algos::vqe_ansatz;
use qutracer::core::{run_qutracer, QuTracerConfig};
use qutracer::dist::{hellinger_fidelity, Distribution};
use qutracer::sim::{ideal_distribution, Backend, Executor, NoiseModel, Program, ReadoutModel};

fn main() {
    // 1. A workload: 6-qubit hardware-efficient VQE ansatz, one layer.
    let n = 6;
    let circuit = vqe_ansatz(n, 1, 42);
    let measured: Vec<usize> = (0..n).collect();

    // 2. A noisy executor: depolarizing gate noise plus readout error with
    //    measurement crosstalk (the error Jigsaw-style subsetting feeds on).
    let noise = NoiseModel::depolarizing(0.001, 0.01)
        .with_readout_model(ReadoutModel::with_crosstalk(0.03, 0.02));
    let executor = Executor::with_backend(noise, Backend::DensityMatrix);

    // 3. Run the QuTracer framework: global run, qubit subsetting with
    //    Pauli checks, Bayesian recombination.
    let report = run_qutracer(&executor, &circuit, &measured, &QuTracerConfig::single());

    // 4. Compare against the noise-free reference.
    let ideal = Distribution::from_probs(
        n,
        ideal_distribution(&Program::from_circuit(&circuit), &measured),
    );
    let before = hellinger_fidelity(&report.global, &ideal);
    let after = hellinger_fidelity(&report.distribution, &ideal);

    println!("unmitigated Hellinger fidelity: {before:.4}");
    println!("QuTracer    Hellinger fidelity: {after:.4}");
    println!(
        "mitigation circuits: {} (avg {:.1} two-qubit gates each, global has {})",
        report.stats.n_circuits - 1,
        report.stats.avg_two_qubit_gates,
        report.stats.global_two_qubit_gates,
    );
    for (local, pos) in &report.locals {
        println!(
            "  traced qubit {}: p(0) = {:.3}, p(1) = {:.3}",
            measured[pos[0]],
            local.prob(0),
            local.prob(1)
        );
    }
}
