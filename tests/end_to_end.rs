//! Cross-crate integration tests: the full QuTracer pipeline against its
//! baselines on the paper's workload families, with fixed seeds.

use qutracer::algos::{
    bernstein_vazirani, qaoa::QaoaParams, qaoa_maxcut, qft_adder, qpe, ring_graph, vqe_ansatz,
};
use qutracer::baselines::{run_jigsaw, run_sqem};
use qutracer::core::{run_qutracer, QuTracerConfig};
use qutracer::dist::{hellinger_fidelity, Distribution};
use qutracer::sim::{ideal_distribution, Backend, Executor, NoiseModel, Program, ReadoutModel};

fn fid(d: &Distribution, circ: &qutracer::circuit::Circuit, measured: &[usize]) -> f64 {
    let ideal = ideal_distribution(&Program::from_circuit(circ), measured);
    hellinger_fidelity(d, &ideal)
}

fn paper_noise() -> NoiseModel {
    // Meaningful gate error (which only SQEM/QuTracer mitigate) plus
    // readout crosstalk (which all subsetting methods exploit).
    NoiseModel::depolarizing(0.002, 0.035)
        .with_readout_model(ReadoutModel::with_crosstalk(0.03, 0.02))
}

#[test]
fn ordering_holds_on_single_layer_vqe() {
    // The paper's headline ordering: QuTracer ≥ SQEM ≥ Jigsaw ≥ Original.
    let circ = vqe_ansatz(6, 1, 77);
    let measured: Vec<usize> = (0..6).collect();
    let exec = Executor::with_backend(paper_noise(), Backend::DensityMatrix);

    let qt = run_qutracer(&exec, &circ, &measured, &QuTracerConfig::single());
    // Jigsaw uses subset size 2, so the like-for-like QuTracer comparison
    // does too (same local information, plus gate/measurement mitigation).
    let qt2 = run_qutracer(&exec, &circ, &measured, &QuTracerConfig::pairs());
    let jig = run_jigsaw(&exec, &circ, &measured, 2);
    let sqem = run_sqem(&exec, &circ, &measured).expect("single layer");

    let f_orig = fid(&qt.global, &circ, &measured);
    let f_jig = fid(&jig.distribution, &circ, &measured);
    let f_sqem = fid(&sqem.distribution, &circ, &measured);
    let f_qt = fid(&qt.distribution, &circ, &measured);
    let f_qt2 = fid(&qt2.distribution, &circ, &measured);

    assert!(f_jig > f_orig, "jigsaw {f_jig} vs original {f_orig}");
    assert!(f_sqem > f_orig, "sqem {f_sqem} vs original {f_orig}");
    assert!(
        f_qt >= f_sqem - 0.02,
        "qutracer {f_qt} should be at least SQEM-level {f_sqem}"
    );
    assert!(
        f_qt2 > f_jig,
        "qutracer pairs {f_qt2} vs jigsaw pairs {f_jig}"
    );
}

#[test]
fn bv_is_rescued_from_deep_noise() {
    let circ = bernstein_vazirani(6, 0b110101);
    let measured: Vec<usize> = (0..6).collect();
    let noise = NoiseModel::depolarizing(0.002, 0.03)
        .with_readout_model(ReadoutModel::with_crosstalk(0.05, 0.03));
    let exec = Executor::with_backend(noise, Backend::DensityMatrix);
    let qt = run_qutracer(&exec, &circ, &measured, &QuTracerConfig::single());
    let before = fid(&qt.global, &circ, &measured);
    let after = fid(&qt.distribution, &circ, &measured);
    assert!(before < 0.6, "noise should be severe, got {before}");
    assert!(after > 0.75, "mitigated fidelity {after}");
}

#[test]
fn qpe_single_qubit_checks_suffice() {
    // Sec. V-B: each QPE counting qubit needs a single-qubit check chain,
    // independent of algorithm size.
    let circ = qpe(4, 1.0 / 3.0);
    let measured: Vec<usize> = (0..4).collect();
    let exec = Executor::with_backend(
        NoiseModel::depolarizing(0.002, 0.02).with_readout(0.05),
        Backend::DensityMatrix,
    );
    let qt = run_qutracer(&exec, &circ, &measured, &QuTracerConfig::single());
    assert!(qt.skipped.is_empty(), "all counting qubits traceable");
    let before = fid(&qt.global, &circ, &measured);
    let after = fid(&qt.distribution, &circ, &measured);
    assert!(after > before, "{before} -> {after}");
}

#[test]
fn qft_adder_improves() {
    let circ = qft_adder(2, 3, 2);
    let measured: Vec<usize> = vec![2, 3];
    let exec = Executor::with_backend(
        NoiseModel::depolarizing(0.002, 0.02)
            .with_readout_model(ReadoutModel::with_crosstalk(0.04, 0.02)),
        Backend::DensityMatrix,
    );
    let qt = run_qutracer(&exec, &circ, &measured, &QuTracerConfig::single());
    let before = fid(&qt.global, &circ, &measured);
    let after = fid(&qt.distribution, &circ, &measured);
    assert!(after > before, "{before} -> {after}");
}

#[test]
fn qaoa_pairs_beat_singles_for_symmetric_outputs() {
    // Sec. V-D: Z2-symmetric outputs make single-qubit locals uniform and
    // useless; pairs carry the correlations.
    let n = 6;
    let circ = qaoa_maxcut(n, &ring_graph(n), &QaoaParams::seeded(1, 5));
    let measured: Vec<usize> = (0..n).collect();
    let exec = Executor::with_backend(
        NoiseModel::depolarizing(0.002, 0.02).with_readout(0.04),
        Backend::DensityMatrix,
    );
    let singles = run_qutracer(&exec, &circ, &measured, &QuTracerConfig::single());
    let pairs = run_qutracer(
        &exec,
        &circ,
        &measured,
        &QuTracerConfig::pairs().with_symmetric_subsets(),
    );
    let f_orig = fid(&singles.global, &circ, &measured);
    let f_single = fid(&singles.distribution, &circ, &measured);
    let f_pairs = fid(&pairs.distribution, &circ, &measured);
    // Single-qubit locals are ~uniform, so the update is ~neutral.
    assert!((f_single - f_orig).abs() < 0.05, "{f_orig} vs {f_single}");
    assert!(f_pairs > f_orig, "pairs must help: {f_orig} -> {f_pairs}");
}

#[test]
fn multilayer_vqe_with_crosstalk_improves() {
    let circ = vqe_ansatz(5, 2, 2);
    let measured: Vec<usize> = (0..5).collect();
    let noise = NoiseModel::depolarizing(0.002, 0.015)
        .with_readout_model(ReadoutModel::with_crosstalk(0.05, 0.05));
    let exec = Executor::with_backend(noise, Backend::DensityMatrix);
    let qt = run_qutracer(&exec, &circ, &measured, &QuTracerConfig::single());
    let before = fid(&qt.global, &circ, &measured);
    let after = fid(&qt.distribution, &circ, &measured);
    assert!(after > before + 0.05, "{before} -> {after}");
}

#[test]
fn overhead_scales_linearly_with_layers() {
    // Sec. V-E: total mitigation circuits grow linearly in the layer count.
    let exec = Executor::with_backend(
        NoiseModel::depolarizing(0.001, 0.01),
        Backend::DensityMatrix,
    );
    let mut counts = Vec::new();
    for layers in 1..=3 {
        let circ = vqe_ansatz(5, layers, 3);
        let measured: Vec<usize> = (0..5).collect();
        let qt = run_qutracer(&exec, &circ, &measured, &QuTracerConfig::single());
        counts.push(qt.stats.n_circuits as f64);
    }
    let step1 = counts[1] - counts[0];
    let step2 = counts[2] - counts[1];
    assert!(step1 > 0.0 && step2 > 0.0);
    assert!(
        (step2 - step1).abs() <= 0.35 * step1.max(step2),
        "growth should be ~linear: {counts:?}"
    );
}
