//! Property-based tests over random circuits and distributions, spanning
//! the simulator, cutting, checks and recombination crates.

use proptest::prelude::*;
use qutracer::circuit::{passes, Circuit, Gate};
use qutracer::dist::{hellinger_fidelity, recombine, Distribution};
use qutracer::sim::{ideal_distribution, Program, StateVector};

/// A random gate on up to `n` qubits.
fn arb_instruction(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(|a| (Gate::H, vec![a])),
        (q.clone(), -3.0..3.0f64).prop_map(|(a, t)| (Gate::Ry(t), vec![a])),
        (q.clone(), -3.0..3.0f64).prop_map(|(a, t)| (Gate::Rz(t), vec![a])),
        q2.clone().prop_map(|(a, b)| (Gate::Cx, vec![a, b])),
        q2.clone().prop_map(|(a, b)| (Gate::Cz, vec![a, b])),
        (q2, -3.0..3.0f64).prop_map(|((a, b), t)| (Gate::Cp(t), vec![a, b])),
    ]
}

fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_instruction(n), 1..max_len).prop_map(move |instrs| {
        let mut c = Circuit::new(n);
        for (g, qs) in instrs {
            c.push(g, qs);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn statevector_stays_normalized(circ in arb_circuit(4, 24)) {
        let sv = StateVector::from_circuit(&circ);
        prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_preserves_single_qubit_marginals(
        circ in arb_circuit(4, 20),
        target in 0usize..4,
    ) {
        let red = passes::reduce_for_z_measurement(&circ, &[target]);
        let full = StateVector::from_circuit(&circ).marginal_probabilities(&[target]);
        let reduced = StateVector::from_circuit(&red.circuit).marginal_probabilities(&[target]);
        prop_assert!((full[0] - reduced[0]).abs() < 1e-9,
            "marginal changed: {} vs {}", full[0], reduced[0]);
        prop_assert!(red.circuit.len() <= circ.len());
    }

    #[test]
    fn reduction_preserves_pair_marginals(
        circ in arb_circuit(5, 18),
        a in 0usize..5,
        b in 0usize..5,
    ) {
        prop_assume!(a != b);
        let red = passes::reduce_for_z_measurement(&circ, &[a, b]);
        let full = StateVector::from_circuit(&circ).marginal_probabilities(&[a, b]);
        let reduced = StateVector::from_circuit(&red.circuit).marginal_probabilities(&[a, b]);
        for (x, y) in full.iter().zip(&reduced) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn segmentation_reproduces_unitary_when_supported(
        circ in arb_circuit(4, 14),
        target in 0usize..4,
    ) {
        if let Ok(segs) = passes::split_into_segments(&circ, &[target]) {
            let mut rebuilt = Circuit::new(4);
            for s in &segs {
                for i in s.local.iter().chain(&s.check) {
                    rebuilt.push(i.gate.clone(), i.qubits.clone());
                }
            }
            prop_assert!(rebuilt.unitary().approx_eq(&circ.unitary(), 1e-8));
        }
    }

    #[test]
    fn hellinger_fidelity_bounds_and_identity(
        probs in prop::collection::vec(0.0..1.0f64, 8),
        other in prop::collection::vec(0.0..1.0f64, 8),
    ) {
        prop_assume!(probs.iter().sum::<f64>() > 1e-6);
        prop_assume!(other.iter().sum::<f64>() > 1e-6);
        let p = Distribution::from_probs(3, probs).normalized();
        let q = Distribution::from_probs(3, other).normalized();
        let f = hellinger_fidelity(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
        prop_assert!((hellinger_fidelity(&p, &p) - 1.0).abs() < 1e-9);
        prop_assert!((f - hellinger_fidelity(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn bayesian_update_sets_marginal_and_preserves_normalization(
        probs in prop::collection::vec(0.01..1.0f64, 16),
        local in prop::collection::vec(0.01..1.0f64, 2),
        pos in 0usize..4,
    ) {
        let g = Distribution::from_probs(4, probs).normalized();
        let l = Distribution::from_probs(1, local).normalized();
        let updated = recombine::bayesian_update(&g, &l, &[pos]);
        prop_assert!((updated.total() - 1.0).abs() < 1e-9);
        let m = updated.marginal(&[pos]);
        prop_assert!((m.prob(0) - l.prob(0)).abs() < 1e-9);
    }

    #[test]
    fn wire_cut_reconstructs_random_circuits(
        circ in arb_circuit(3, 10),
        position in 1usize..8,
    ) {
        let position = position.min(circ.len());
        let cut = qutracer::cut::CutPoint { qubit: 0, position };
        let programs = qutracer::cut::build_cut_programs(&circ, cut, &qutracer::cut::reduced_cut_terms());
        let mut results = Vec::new();
        for cp in &programs {
            let dist = ideal_distribution(&cp.program, &[cp.old_wire, cp.new_wire, 1, 2]);
            results.push((cp.term.clone(), dist));
        }
        let quasi = qutracer::cut::recombine(&results);
        let direct = ideal_distribution(&Program::from_circuit(&circ), &[0, 1, 2]);
        for (i, a) in quasi.iter().enumerate() {
            let b = direct.prob(i as u64);
            prop_assert!((a - b).abs() < 1e-7, "cut mismatch {a} vs {b}");
        }
    }

    #[test]
    fn twirled_channels_remain_trace_preserving(
        t1 in 1.0e4..2.0e5f64,
        ratio in 0.2..1.9f64,
        time in 1.0..800.0f64,
    ) {
        let t2 = (t1 * ratio).min(2.0 * t1);
        let ch = qutracer::sim::KrausChannel::thermal_relaxation(t1, t2, time);
        let tw = ch.pauli_twirled().expect("1q channel twirls");
        let probs = tw.mixture_probs().expect("twirled is a mixture");
        let total: f64 = probs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
    }
}
