//! Integration tests for the device path: transpilation semantics,
//! remapping benefits and the full framework on a synthesized backend.

use qutracer::algos::vqe_ansatz;
use qutracer::core::{run_qutracer, QuTracerConfig};
use qutracer::device::{Device, DeviceExecutor};
use qutracer::dist::hellinger_fidelity;
use qutracer::sim::{ideal_distribution, Program, Runner};

#[test]
fn framework_runs_end_to_end_on_device_model() {
    let n = 8;
    let circ = vqe_ansatz(n, 1, 21);
    let measured: Vec<usize> = (0..n).collect();
    let exec = DeviceExecutor::new(Device::fake_hanoi());
    let report = run_qutracer(&exec, &circ, &measured, &QuTracerConfig::single());
    let ideal = ideal_distribution(&Program::from_circuit(&circ), &measured);
    let before = hellinger_fidelity(&report.global, &ideal);
    let after = hellinger_fidelity(&report.distribution, &ideal);
    assert!(
        after > before,
        "device-model mitigation failed: {before} -> {after}"
    );
    // QuTracer's circuits must be much smaller than the global one.
    assert!(
        report.stats.avg_two_qubit_gates < report.stats.global_two_qubit_gates as f64 / 2.0,
        "avg {} vs global {}",
        report.stats.avg_two_qubit_gates,
        report.stats.global_two_qubit_gates
    );
}

#[test]
fn subset_runs_use_better_qubits_than_forced_bad_ones() {
    // Qubit remapping: a small circuit must land on low-error qubits, so
    // its readout must beat the device's *worst* qubit.
    let device = Device::fake_hanoi();
    let worst = (0..device.n_qubits())
        .map(|q| device.readout_error(q))
        .fold(0.0f64, f64::max);
    let best = (0..device.n_qubits())
        .map(|q| device.readout_error(q))
        .fold(1.0f64, f64::min);
    assert!(worst > best * 1.5, "calibration spread expected");

    let exec = DeviceExecutor::new(device);
    let mut c = qutracer::circuit::Circuit::new(1);
    c.x(0);
    let out = exec.run(&Program::from_circuit(&c), &[0]);
    // p(correct) = 1 − p10 of the chosen physical qubit ≥ 1 − 2·best-ish.
    assert!(
        out.dist.prob(1) > 1.0 - 3.0 * best - 0.01,
        "remapping should pick a good qubit: p1 = {}",
        out.dist.prob(1)
    );
}

#[test]
fn transpile_counts_are_stable_across_calls() {
    let exec = DeviceExecutor::new(Device::fake_hanoi());
    let circ = vqe_ansatz(10, 1, 5);
    let measured: Vec<usize> = (0..10).collect();
    let p = Program::from_circuit(&circ);
    let (a, _, _) = exec.transpile(&p, &measured);
    let (b, _, _) = exec.transpile(&p, &measured);
    assert_eq!(a.two_qubit_gate_count(), b.two_qubit_gate_count());
}

#[test]
fn eagle_device_hosts_ring_workloads() {
    let exec = DeviceExecutor::new(Device::fake_kyoto());
    let circ = qutracer::algos::qaoa_maxcut(
        8,
        &qutracer::algos::ring_graph(8),
        &qutracer::algos::QaoaParams::seeded(1, 2),
    );
    let measured: Vec<usize> = (0..8).collect();
    let out = exec.run(&Program::from_circuit(&circ), &measured);
    assert!((out.dist.total() - 1.0).abs() < 1e-6);
    // 8 edges × 2 CX plus limited swap overhead.
    assert!(
        out.two_qubit_gates >= 16 && out.two_qubit_gates <= 34,
        "2q count {}",
        out.two_qubit_gates
    );
}

#[test]
fn device_batched_execution_matches_serial_runs_exactly() {
    // The grouped, trie-scheduled batch path of the transpiling executor
    // must be bit-identical to per-job serial runs — including ensemble
    // jobs with resets, distinct measured sets, and programs that
    // transpile onto different physical registers.
    use qutracer::sim::BatchJob;
    let exec = DeviceExecutor::new(Device::fake_mumbai());
    let mut jobs = Vec::new();
    for k in 0..4 {
        // A shared-prefix family (QSPC-shaped: prefix, reset, suffix).
        let mut c = qutracer::circuit::Circuit::new(4);
        c.ry(0, 0.3).ry(1, 0.7).cz(0, 1).cz(1, 2);
        let mut p = Program::from_circuit(&c);
        p.push_reset_state(&[1], qutracer::math::states::PrepState::REDUCED[k % 4]);
        let mut tail = qutracer::circuit::Circuit::new(4);
        tail.cz(1, 2).ry(2, 0.2 * k as f64);
        for i in tail.instructions() {
            p.push_gate(i.clone());
        }
        jobs.push(BatchJob::new(p, vec![1, 2]));
    }
    // Unrelated programs on other qubit sets and measured orders.
    let mut d = qutracer::circuit::Circuit::new(3);
    d.h(0).cx(0, 2).ry(2, 1.1);
    jobs.push(BatchJob::new(Program::from_circuit(&d), vec![2, 0]));
    let mut e = qutracer::circuit::Circuit::new(2);
    e.h(1).cx(1, 0);
    jobs.push(BatchJob::new(Program::from_circuit(&e), vec![0, 1]));

    let batched = exec.run_batch(&jobs);
    for (job, out) in jobs.iter().zip(&batched) {
        let serial = exec.run(&job.program, &job.measured);
        assert_eq!(out.gates, serial.gates);
        assert_eq!(out.two_qubit_gates, serial.two_qubit_gates);
        assert_eq!(out.dist, serial.dist, "batched device run diverged");
    }
}
