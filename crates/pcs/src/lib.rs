//! Pauli Check Sandwiching (PCS) and Qubit Subsetting Pauli Checks (QSPC).
//!
//! * [`checks`] — validation that a segment admits Z checks
//!   (`C_R U C_L = U`);
//! * [`pcs`] — the literal ancilla-based protocol (ideal and noisy
//!   variants, used as baselines);
//! * [`qspc`] — the paper's virtualized checks: ensemble state preparation
//!   and measurement with classical recombination, mitigating both gate and
//!   measurement errors on the traced subset.
//!
//! # Example
//!
//! ```
//! use qt_circuit::Circuit;
//! use qt_pcs::checks;
//!
//! let mut segment = Circuit::new(2);
//! segment.cp(0, 1, 0.7);
//! assert!(checks::z_checkable(&segment, &[0]));
//! ```

pub mod checks;
pub mod pcs;
pub mod qspc;

pub use pcs::{
    postselected_distribution, postselected_distribution_sampled, z_check_sandwich, PcsProgram,
};
pub use qspc::{
    bloch_state_from_expectations, combine_pair_mitigated, combine_pair_unmitigated,
    combine_single_mitigated, combine_single_unmitigated, project_to_physical, tabulate_pair,
    tabulate_pair_sampled, tabulate_single, tabulate_single_sampled, PairEnsemble, PairEnsembleKey,
    QspcConfig, QspcPair, QspcPairSpec, QspcSingle, QspcSingleSpec, QspcStats, SingleEnsemble,
};
