//! Pauli-check validation.
//!
//! A segment `U` can be protected by the pair `C_L = C_R = Z_j` exactly when
//! `Z_j U Z_j = U`, i.e. when `U` commutes with `Z` on the traced qubit —
//! equivalently, when every instruction is block-diagonal in the
//! computational basis of its subset operands.

use qt_circuit::commute::block_diagonal_on_subset;
use qt_circuit::Circuit;
use qt_math::{Pauli, PauliString};

/// Whether every instruction of `segment` commutes with `Z` on every qubit
/// of `subset`, so that single-qubit Z checks protect the whole segment.
pub fn z_checkable(segment: &Circuit, subset: &[usize]) -> bool {
    segment
        .instructions()
        .iter()
        .all(|i| block_diagonal_on_subset(i, subset))
}

/// The check operator `Z_j` (identity elsewhere) as a Pauli string.
pub fn z_check_operator(n: usize, qubit: usize) -> PauliString {
    PauliString::single(n, qubit, Pauli::Z)
}

/// Verifies the defining constraint `C_R · U · C_L = U` numerically for the
/// Z check on `qubit` (small segments only).
///
/// # Panics
///
/// Panics if the segment has more than 10 qubits.
pub fn verify_check_constraint(segment: &Circuit, qubit: usize) -> bool {
    let n = segment.n_qubits();
    assert!(n <= 10, "verify_check_constraint is for small segments");
    let u = segment.unitary();
    let z = z_check_operator(n, qubit).matrix();
    z.mul(&u).mul(&z).approx_eq(&u, 1e-9)
}

/// Enumerates the qubits of `circ` that can be traced with single-qubit Z
/// checks: those for which the subset segmentation succeeds.
pub fn z_checkable_qubits(circ: &Circuit) -> Vec<usize> {
    (0..circ.n_qubits())
        .filter(|&q| qt_circuit::passes::split_into_segments(circ, &[q]).is_ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cz_segment_is_checkable_and_satisfies_constraint() {
        let mut seg = Circuit::new(3);
        seg.cz(0, 1).cz(1, 2).ry(1, 0.4).ry(2, -0.2);
        assert!(z_checkable(&seg, &[0]));
        assert!(verify_check_constraint(&seg, 0));
        // Qubit 1 has an Ry inside: not checkable.
        assert!(!z_checkable(&seg, &[1]));
        assert!(!verify_check_constraint(&seg, 1));
    }

    #[test]
    fn controlled_u_segment_checkable_on_control() {
        let mut seg = Circuit::new(2);
        seg.cp(0, 1, 0.7).crz(0, 1, 0.3).cx(0, 1);
        assert!(z_checkable(&seg, &[0]));
        assert!(verify_check_constraint(&seg, 0));
        // CX target side fails.
        assert!(!z_checkable(&seg, &[1]));
    }

    #[test]
    fn checkable_matches_numeric_constraint_on_random_segments() {
        let segments: Vec<Circuit> = {
            let mut v = Vec::new();
            let mut a = Circuit::new(2);
            a.cz(0, 1).rz(0, 0.5);
            v.push(a);
            let mut b = Circuit::new(2);
            b.swap(0, 1);
            v.push(b);
            let mut c = Circuit::new(2);
            c.cx(1, 0);
            v.push(c);
            v
        };
        for seg in &segments {
            for q in 0..2 {
                assert_eq!(
                    z_checkable(seg, &[q]),
                    verify_check_constraint(seg, q),
                    "mismatch on qubit {q} of {seg}"
                );
            }
        }
    }

    #[test]
    fn bv_data_qubits_are_checkable() {
        // Bernstein–Vazirani: H's, CXs from data to ancilla, H's.
        let mut c = Circuit::new(3);
        c.x(2).h(2).h(0).h(1).cx(0, 2).cx(1, 2).h(0).h(1);
        let qs = z_checkable_qubits(&c);
        assert!(qs.contains(&0) && qs.contains(&1));
        // The ancilla is a CX target: not checkable.
        assert!(!qs.contains(&2));
    }
}
