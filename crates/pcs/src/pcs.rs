//! Ancilla-based Pauli Check Sandwiching (PCS).
//!
//! The literal protocol of Fig. 1/3(b): each check qubit gets an ancilla
//! prepared in `|+⟩`, a controlled-`C_L` before the payload, a
//! controlled-`C_R` after it, a final Hadamard, and post-selection on the
//! ancilla reading 0. With `C = Z_j` the controlled check is simply a CZ.
//!
//! Two variants are exposed:
//! * **ideal PCS** — check gates and ancilla readout are noiseless (the
//!   baseline of Figs. 7 and 9);
//! * **noisy PCS** — the extra gates and the ancilla readout see the full
//!   noise model (Fig. 2(d), where PCS *hurts*).

use qt_circuit::{Circuit, Gate, Instruction};
use qt_dist::{Counts, Distribution};
use qt_sim::{apply_readout, sample_counts_deterministic, Executor, Program};

/// An assembled PCS program.
#[derive(Debug, Clone)]
pub struct PcsProgram {
    /// The executable program on `n + k` qubits (`k` = number of checks).
    pub program: Program,
    /// Ancilla qubit indices (one per check).
    pub ancillas: Vec<usize>,
    /// Number of payload qubits.
    pub n_payload: usize,
    /// Whether check gates were marked noiseless.
    pub ideal_checks: bool,
}

/// Sandwiches `payload` between Z checks on `check_qubits`.
///
/// `pre` prepares the input state ρ and runs (noisily) *before* the left
/// check — the paper's Fig. 1 omits these gates. The payload must satisfy
/// `Z_q · payload · Z_q = payload` for each check qubit.
///
/// # Panics
///
/// Panics if a check qubit is out of range or the register sizes disagree.
pub fn z_check_sandwich(
    pre: &Circuit,
    payload: &Circuit,
    check_qubits: &[usize],
    ideal_checks: bool,
) -> PcsProgram {
    let n = payload.n_qubits().max(pre.n_qubits());
    for &q in check_qubits {
        assert!(q < n, "check qubit {q} out of range");
    }
    let k = check_qubits.len();
    let mut program = Program::new(n + k);
    let ancillas: Vec<usize> = (n..n + k).collect();

    let push = |program: &mut Program, instr: Instruction| {
        if ideal_checks {
            program.push_ideal_gate(instr);
        } else {
            program.push_gate(instr);
        }
    };

    // State preparation (noisy).
    for instr in pre.instructions() {
        program.push_gate(instr.clone());
    }
    // Left checks.
    for (&q, &a) in check_qubits.iter().zip(&ancillas) {
        push(&mut program, Instruction::new(Gate::H, vec![a]));
        push(&mut program, Instruction::new(Gate::Cz, vec![a, q]));
    }
    // Payload (noisy).
    for instr in payload.instructions() {
        program.push_gate(instr.clone());
    }
    // Right checks.
    for (&q, &a) in check_qubits.iter().zip(&ancillas) {
        push(&mut program, Instruction::new(Gate::Cz, vec![a, q]));
        push(&mut program, Instruction::new(Gate::H, vec![a]));
    }
    PcsProgram {
        program,
        ancillas,
        n_payload: n,
        ideal_checks,
    }
}

/// Runs a PCS program and post-selects every ancilla on 0.
///
/// Returns the normalized outcome distribution over `measured` (payload
/// qubits) and the acceptance probability.
///
/// For ideal checks the ancillas are read out noiselessly and readout error
/// applies only to the payload qubits (with crosstalk counting only them);
/// for noisy checks the ancillas suffer readout error too (and inflate the
/// crosstalk of every measurement).
pub fn postselected_distribution(
    exec: &Executor,
    pcs: &PcsProgram,
    measured: &[usize],
) -> (Distribution, f64) {
    let mut all: Vec<usize> = measured.to_vec();
    all.extend_from_slice(&pcs.ancillas);
    let raw = exec.raw_distribution(&pcs.program, &all);

    let k = pcs.ancillas.len();
    let m = measured.len();
    // Ancillas occupy the high index bits, so `idx >> m == 0` both selects
    // the all-zero ancilla readout and leaves `idx` already reduced to the
    // payload register; the nonzero stream stays sorted as-is.
    let condition = |dist: &Distribution| -> (Distribution, f64) {
        let mut kept: Vec<(u64, f64)> = Vec::new();
        let mut acc = 0.0;
        for (idx, p) in dist.iter() {
            if idx >> m == 0 {
                acc += p;
                kept.push((idx, p));
            }
        }
        let cond = Distribution::try_from_entries(m, kept)
            .expect("post-selected outcomes fit the payload register");
        if acc > 0.0 {
            (cond.normalized(), acc)
        } else {
            (cond, acc)
        }
    };

    if pcs.ideal_checks {
        // Post-select on the noiseless ancilla readout, then apply payload
        // readout error.
        let (cond, acc) = condition(&raw);
        let noisy = apply_readout(&cond, measured, &exec.noise().readout);
        (noisy, acc)
    } else {
        // Readout error hits everything (ancillas included) before
        // post-selection.
        let noisy_all = apply_readout(&raw, &all, &exec.noise().readout);
        let _ = k;
        condition(&noisy_all)
    }
}

/// Finite-shot [`postselected_distribution`]: the program is *sampled* at
/// `shots` measurement shots and post-selection operates on the counts —
/// acceptance becomes a ratio of counts and discarded shots are genuinely
/// lost, exactly as on hardware. Deterministic in `(program, shots, seed)`.
///
/// Returns the normalized post-selected frequencies over `measured` (the
/// uniform distribution when every shot is rejected) and the acceptance
/// fraction.
pub fn postselected_distribution_sampled(
    exec: &Executor,
    pcs: &PcsProgram,
    measured: &[usize],
    shots: usize,
    seed: u64,
) -> (Distribution, f64) {
    let m = measured.len();
    if pcs.ideal_checks {
        // Noiseless ancilla readout: the post-selection itself is exact
        // and only the final payload measurement is shot-limited.
        let (exact, acc) = postselected_distribution(exec, pcs, measured);
        let counts = sample_counts_deterministic(&exact, shots, seed, 1);
        // `to_distribution` yields the uniform distribution when every
        // shot was rejected, matching the hardware-honest degradation.
        return (counts.to_distribution(), acc);
    }
    // Noisy checks: sample the joint payload+ancilla readout, then keep
    // only the shots whose ancillas all read 0.
    let mut all: Vec<usize> = measured.to_vec();
    all.extend_from_slice(&pcs.ancillas);
    let raw = exec.raw_distribution(&pcs.program, &all);
    let noisy_all = apply_readout(&raw, &all, &exec.noise().readout);
    let counts = sample_counts_deterministic(&noisy_all, shots, seed, 1);
    let mut kept: Vec<(u64, u64)> = Vec::new();
    let mut accepted = 0u64;
    for (idx, c) in counts.iter() {
        if idx >> m == 0 {
            accepted += c;
            kept.push((idx, c));
        }
    }
    let total = counts.shots();
    let kept =
        Counts::try_from_entries(m, kept).expect("post-selected outcomes fit the payload register");
    let acc = if total == 0 {
        0.0
    } else {
        accepted as f64 / total as f64
    };
    (kept.to_distribution(), acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_dist::hellinger_fidelity;
    use qt_sim::{ideal_distribution, NoiseModel};

    /// State preparation + a payload commuting with Z on qubit 0.
    fn pieces() -> (Circuit, Circuit) {
        let mut pre = Circuit::new(2);
        pre.ry(0, 0.6).ry(1, 1.1);
        let mut payload = Circuit::new(2);
        payload.cz(0, 1).ry(1, -0.4).cp(0, 1, 0.5);
        (pre, payload)
    }

    fn whole(pre: &Circuit, payload: &Circuit) -> Circuit {
        let mut c = pre.clone();
        c.append(payload);
        c
    }

    #[test]
    fn no_noise_means_acceptance_one_and_exact_distribution() {
        let (pre, payload) = pieces();
        let pcs = z_check_sandwich(&pre, &payload, &[0], true);
        let exec = Executor::new(NoiseModel::ideal());
        let (dist, acc) = postselected_distribution(&exec, &pcs, &[0, 1]);
        assert!((acc - 1.0).abs() < 1e-9, "acceptance {acc}");
        let direct = ideal_distribution(&Program::from_circuit(&whole(&pre, &payload)), &[0, 1]);
        for i in 0..4 {
            assert!((dist.prob(i) - direct.prob(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn ideal_pcs_improves_fidelity_under_gate_noise() {
        let (pre, payload) = pieces();
        let full = whole(&pre, &payload);
        let ideal = ideal_distribution(&Program::from_circuit(&full), &[0, 1]);
        let noise = NoiseModel::depolarizing(0.01, 0.08);
        let exec = Executor::new(noise);
        let unmitigated = exec.noisy_distribution(&Program::from_circuit(&full), &[0, 1]);
        let pcs = z_check_sandwich(&pre, &payload, &[0], true);
        let (mitigated, acc) = postselected_distribution(&exec, &pcs, &[0, 1]);
        assert!(acc < 1.0);
        assert!(
            hellinger_fidelity(&mitigated, &ideal) > hellinger_fidelity(&unmitigated, &ideal),
            "PCS should help under gate noise"
        );
    }

    #[test]
    fn noisy_pcs_can_hurt() {
        // With strong readout error on the ancilla and noisy check gates,
        // PCS post-selection becomes unreliable (the Fig. 2(d) effect):
        // its fidelity should not beat ideal PCS.
        let (pre, payload) = pieces();
        let full = whole(&pre, &payload);
        let ideal = ideal_distribution(&Program::from_circuit(&full), &[0, 1]);
        let noise = NoiseModel::depolarizing(0.01, 0.1).with_readout(0.2);
        let exec = Executor::new(noise);
        let noisy_pcs = z_check_sandwich(&pre, &payload, &[0], false);
        let ideal_pcs = z_check_sandwich(&pre, &payload, &[0], true);
        let (dn, _) = postselected_distribution(&exec, &noisy_pcs, &[0, 1]);
        let (di, _) = postselected_distribution(&exec, &ideal_pcs, &[0, 1]);
        let fn_ = hellinger_fidelity(&dn, &ideal);
        let fi = hellinger_fidelity(&di, &ideal);
        assert!(fi >= fn_ - 1e-9, "ideal {fi} vs noisy {fn_}");
    }

    #[test]
    fn sampled_postselection_converges_to_exact() {
        // Both branches (ideal and noisy checks) of the finite-shot
        // post-selection must approach the exact distribution and
        // acceptance as shots grow, and be seed-stable.
        let (pre, payload) = pieces();
        let noise = NoiseModel::depolarizing(0.01, 0.05).with_readout(0.08);
        let exec = Executor::new(noise);
        for ideal_checks in [true, false] {
            let pcs = z_check_sandwich(&pre, &payload, &[0], ideal_checks);
            let (exact, acc) = postselected_distribution(&exec, &pcs, &[0, 1]);
            let (sampled, s_acc) =
                postselected_distribution_sampled(&exec, &pcs, &[0, 1], 1 << 18, 3);
            for i in 0..4 {
                let (s, e) = (sampled.prob(i), exact.prob(i));
                assert!((s - e).abs() < 0.01, "ideal={ideal_checks}: {s} vs {e}");
            }
            assert!(
                (s_acc - acc).abs() < 0.01,
                "ideal={ideal_checks}: acceptance {s_acc} vs {acc}"
            );
            let again = postselected_distribution_sampled(&exec, &pcs, &[0, 1], 1 << 18, 3);
            assert_eq!((sampled, s_acc), again, "seed-stable");
        }
    }

    #[test]
    fn sampled_postselection_rejecting_everything_degrades_safely() {
        // A payload-wide X anti-commutes with the ideal Z check: every
        // shot is rejected, and the sampled path reports zero acceptance
        // with a uniform (information-free) distribution instead of
        // dividing by zero.
        let mut payload = Circuit::new(1);
        payload.x(0);
        let pcs = z_check_sandwich(&Circuit::new(1), &payload, &[0], false);
        let exec = Executor::new(NoiseModel::ideal());
        let (dist, acc) = postselected_distribution_sampled(&exec, &pcs, &[0], 5000, 1);
        assert!(acc < 1e-9, "X error must be fully rejected, acc={acc}");
        assert!((dist.prob(0) - 0.5).abs() < 1e-12 && (dist.prob(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn postselection_catches_injected_bitflip() {
        // Inject a deterministic X on the checked qubit inside the payload —
        // anti-commutes with Z, so ideal PCS post-selection must suppress it.
        let mut payload = Circuit::new(1);
        payload.x(0);
        // The "error" is the whole payload; protect with the check pair and
        // verify acceptance is 0 (X fully anti-commutes).
        let pcs = z_check_sandwich(&Circuit::new(1), &payload, &[0], true);
        let exec = Executor::new(NoiseModel::ideal());
        let (_, acc) = postselected_distribution(&exec, &pcs, &[0]);
        assert!(acc < 1e-9, "X error must be fully rejected, acc={acc}");
    }
}
