//! Property-based tests for the check machinery: QSPC must agree exactly
//! with the severed density-matrix reference in the noiseless limit for
//! *arbitrary* inputs, and checks must never break normalization.

use proptest::prelude::*;
use qt_circuit::Circuit;
use qt_math::{Matrix, Pauli};
use qt_pcs::{QspcConfig, QspcSingle};
use qt_sim::{Backend, Executor, NoiseModel, Program};

/// A random Z-checkable segment on 3 qubits for the traced qubit 0:
/// diagonal couplings from qubit 0, anything on qubits 1–2.
fn arb_segment() -> impl Strategy<Value = Circuit> {
    prop::collection::vec(
        prop_oneof![
            (-2.0..2.0f64).prop_map(|t| (0usize, t)), // cp(0,1,t)
            (-2.0..2.0f64).prop_map(|t| (1usize, t)), // cp(0,2,t)
            (-2.0..2.0f64).prop_map(|t| (2usize, t)), // ry(1,t)
            (-2.0..2.0f64).prop_map(|t| (3usize, t)), // ry(2,t)
            (-2.0..2.0f64).prop_map(|t| (4usize, t)), // cz(1,2) ignore t
            (-2.0..2.0f64).prop_map(|t| (5usize, t)), // rz(0,t)
        ],
        1..8,
    )
    .prop_map(|ops| {
        let mut c = Circuit::new(3);
        for (kind, t) in ops {
            match kind {
                0 => c.cp(0, 1, t),
                1 => c.cp(0, 2, t),
                2 => c.ry(1, t),
                3 => c.ry(2, t),
                4 => c.cz(1, 2),
                _ => c.rz(0, t),
            };
        }
        c
    })
}

fn arb_prefix() -> impl Strategy<Value = Circuit> {
    ((-2.0..2.0f64), (-2.0..2.0f64)).prop_map(|(a, b)| {
        let mut c = Circuit::new(3);
        c.ry(1, a).ry(2, b);
        c
    })
}

fn arb_bloch() -> impl Strategy<Value = Matrix> {
    (-0.57f64..0.57, -0.57f64..0.57, -0.57f64..0.57)
        .prop_map(|(x, y, z)| qt_math::states::density_from_bloch([x, y, z]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Noiseless QSPC equals the severed DM reference for any mixed input
    /// and any Z-checkable segment, with den = 1.
    #[test]
    fn noiseless_qspc_matches_reference(
        prefix in arb_prefix(),
        segment in arb_segment(),
        rho_in in arb_bloch(),
    ) {
        let exec = Executor::with_backend(NoiseModel::ideal(), Backend::DensityMatrix);
        let engine = QspcSingle {
            exec: &exec,
            qubit: 0,
            prefix: &prefix,
            segment: &segment,
            config: QspcConfig::default(),
        };
        let (exps, den, _) =
            engine.mitigated_expectations(&rho_in, &[Pauli::X, Pauli::Y, Pauli::Z]);
        prop_assert!((den - 1.0).abs() < 1e-7, "den {den}");

        // Reference: prefix; reset(0 → rho_in); segment — exact DM.
        let mut rho = exec.run_dm(&Program::from_circuit(&prefix));
        rho.reset_qubits(&[0], &rho_in);
        for i in segment.instructions() {
            rho.apply_instruction(i);
        }
        for (p, m) in [
            (Pauli::X, qt_math::pauli::x2()),
            (Pauli::Y, qt_math::pauli::y2()),
            (Pauli::Z, qt_math::pauli::z2()),
        ] {
            let want = rho.expectation_local(&m, &[0]).re;
            prop_assert!((exps[&p] - want).abs() < 1e-7,
                "⟨{p}⟩: {} vs {}", exps[&p], want);
        }
    }

    /// Under noise, mitigated expectations stay in [−1, 1] and the
    /// denominator stays meaningful (bounded by 1 + tolerance).
    #[test]
    fn noisy_qspc_stays_physical(
        prefix in arb_prefix(),
        segment in arb_segment(),
        rho_in in arb_bloch(),
        p2 in 0.0..0.12f64,
        ro in 0.0..0.2f64,
    ) {
        let exec = Executor::with_backend(
            NoiseModel::depolarizing(0.002, p2).with_readout(ro),
            Backend::DensityMatrix,
        );
        let engine = QspcSingle {
            exec: &exec,
            qubit: 0,
            prefix: &prefix,
            segment: &segment,
            config: QspcConfig::default(),
        };
        let (exps, den, stats) =
            engine.mitigated_expectations(&rho_in, &[Pauli::X, Pauli::Z]);
        prop_assert!(den <= 1.0 + 1e-6, "den {den}");
        prop_assert!(den > 0.0, "den {den}");
        for (&p, &v) in &exps {
            prop_assert!((-1.0..=1.0).contains(&v), "⟨{p}⟩ = {v}");
        }
        prop_assert!(stats.n_circuits >= 4);
    }

    /// The SQEM configuration (6 preps, no optimization) agrees with the
    /// default configuration in the noiseless limit.
    #[test]
    fn sqem_config_agrees_noiselessly(
        prefix in arb_prefix(),
        segment in arb_segment(),
        rho_in in arb_bloch(),
    ) {
        let exec = Executor::with_backend(NoiseModel::ideal(), Backend::DensityMatrix);
        let run = |config: QspcConfig| {
            let engine = QspcSingle {
                exec: &exec,
                qubit: 0,
                prefix: &prefix,
                segment: &segment,
                config,
            };
            engine.mitigated_expectations(&rho_in, &[Pauli::Z])
        };
        let (a, _, sa) = run(QspcConfig::default());
        let (b, _, sb) = run(QspcConfig::sqem());
        prop_assert!((a[&Pauli::Z] - b[&Pauli::Z]).abs() < 1e-7);
        // SQEM runs more circuits (6 preps vs 4).
        prop_assert!(sb.n_circuits > sa.n_circuits);
    }
}
