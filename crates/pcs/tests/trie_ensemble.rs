//! Structural test: folding a QSPC `preps × bases` preparation ensemble
//! into an execution trie shares exactly the work the protocol repeats —
//! the noisy prefix once for the whole ensemble, and the protected
//! segment once per preparation instead of once per `(prep, basis)` pair.

use qt_math::Pauli;
use qt_pcs::{QspcConfig, QspcSingleSpec};
use qt_sim::{ExecutionTrie, Program};

#[test]
fn qspc_ensemble_trie_shares_prefix_and_per_prep_segment() {
    // Unoptimized circuits keep the generated structure literal:
    // [prefix] ; Reset(j → s) ; [segment] ; [basis rotation].
    let mut prefix = qt_circuit::Circuit::new(3);
    prefix.ry(0, 0.3).ry(1, 0.7).ry(2, -0.4).cz(0, 1).cz(1, 2);
    let mut segment = qt_circuit::Circuit::new(3);
    segment.cz(0, 1).cz(1, 2).ry(1, 0.5).ry(2, 0.9);
    let spec = QspcSingleSpec {
        qubit: 0,
        prefix: &prefix,
        segment: &segment,
        config: QspcConfig {
            optimize_circuits: false,
            ..QspcConfig::default()
        },
    };
    let bases = [Pauli::X, Pauli::Y, Pauli::Z];
    let ens = spec.ensemble(&bases);
    let preps = 4; // PrepState::REDUCED
    assert_eq!(ens.jobs.len(), preps * bases.len());

    let programs: Vec<&Program> = ens.jobs.iter().map(|j| &j.program).collect();
    let trie = ExecutionTrie::build(&programs);
    let stats = trie.stats();

    let prefix_gates = prefix.instructions().len();
    let segment_gates = segment.instructions().len();
    // Rotations: X costs 1 gate, Y costs 2, Z costs 0 — per prep.
    let rotation_gates = preps * (1 + 2);

    // Interior (shared) gate work: the prefix once, the segment once per
    // *prep* — not once per (prep, basis) job.
    assert_eq!(
        stats.interior_gates,
        prefix_gates + preps * segment_gates,
        "interior gate count must be one prefix + one segment per prep"
    );
    // The trie executes each shared stretch once; only rotations are
    // per-leaf.
    assert_eq!(
        stats.unique_gates,
        prefix_gates + preps * segment_gates + rotation_gates
    );
    // A per-job executor replays prefix and segment for every job.
    assert_eq!(
        stats.request_gates,
        ens.jobs.len() * (prefix_gates + segment_gates) + rotation_gates
    );
    assert!(
        stats.shared_gate_fraction() > 0.5,
        "most ensemble gate work is shared: {stats:?}"
    );
}
