//! The SQEM baseline (Liu, Gonzales & Saleem): classical simulators as
//! quantum error mitigators via circuit cutting.
//!
//! SQEM virtualizes the PCS checking circuit with *standard* circuit
//! cutting: the full 3-basis × 6-state reconstruction on the original,
//! unoptimized circuit. It therefore mitigates gate and measurement errors
//! like QSPC, but runs more and larger circuits (no false-dependency
//! removal, no state-preparation reduction) — and its cost grows
//! exponentially with the number of check layers, so multi-layer circuits
//! are unsupported (the paper's `N/A` table entries).

use crate::OverheadStats;
use qt_circuit::{passes, Circuit, Instruction};
use qt_dist::{recombine, Distribution};
use qt_math::Matrix;
use qt_pcs::{QspcConfig, QspcSingle};
use qt_sim::{Program, Runner};

/// Result of an SQEM run.
#[derive(Debug, Clone)]
pub struct SqemReport {
    /// The refined global distribution.
    pub distribution: Distribution,
    /// The unrefined (noisy) global distribution.
    pub global: Distribution,
    /// Overheads.
    pub stats: OverheadStats,
}

/// Returned when a workload needs more than one check layer per traced
/// qubit: SQEM's reconstruction cost is exponential in the layer count
/// (`3^m · 4^n` circuit copies), so the paper marks those entries `N/A`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqemUnsupported {
    /// The qubit that needed multiple check layers.
    pub qubit: usize,
    /// How many check layers it needed.
    pub layers: usize,
}

impl std::fmt::Display for SqemUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SQEM needs {} check layers on qubit {} (exponential cost)",
            self.layers, self.qubit
        )
    }
}

impl std::error::Error for SqemUnsupported {}

/// Runs SQEM with subset size 1 over every measured qubit.
///
/// # Errors
///
/// Returns [`SqemUnsupported`] if any traced qubit needs more than one
/// check layer, or if a qubit cannot be traced at all (non-diagonal
/// coupling).
pub fn run_sqem<R: Runner>(
    runner: &R,
    circuit: &Circuit,
    measured: &[usize],
) -> Result<SqemReport, SqemUnsupported> {
    let program = Program::from_circuit(circuit);
    let global_out = runner.run(&program, measured);
    let global = Distribution::from_probs(measured.len(), global_out.dist);

    let mut locals = Vec::new();
    let mut n_circuits = 1usize;
    let mut mitig_2q_total = 0usize;
    let mut mitig_circuits = 0usize;

    for (pos, &qubit) in measured.iter().enumerate() {
        let segments = passes::split_into_segments(circuit, &[qubit])
            .map_err(|_| SqemUnsupported { qubit, layers: 0 })?;
        let checking: Vec<usize> = segments
            .iter()
            .enumerate()
            .filter(|(_, s)| s.check_touches(&[qubit]))
            .map(|(i, _)| i)
            .collect();
        if checking.len() > 1 {
            return Err(SqemUnsupported {
                qubit,
                layers: checking.len(),
            });
        }

        // Classically track the local state through the segment structure.
        let mut rho = qt_math::states::PrepState::Zero.projector();
        let mut prefix = Circuit::new(circuit.n_qubits());
        let mut local_dist: Option<Distribution> = None;
        for (i, seg) in segments.iter().enumerate() {
            rho = apply_local(&rho, &seg.local, qubit);
            for instr in &seg.local {
                prefix.push(instr.gate.clone(), instr.qubits.clone());
            }
            if checking.contains(&i) {
                let mut segment = Circuit::new(circuit.n_qubits());
                for instr in &seg.check {
                    segment.push(instr.gate.clone(), instr.qubits.clone());
                }
                let q = QspcSingle {
                    exec: runner,
                    qubit,
                    prefix: &prefix,
                    segment: &segment,
                    config: QspcConfig::sqem(),
                };
                let (state, _den, stats) = q.mitigated_state(&rho);
                rho = state;
                n_circuits += stats.n_circuits;
                mitig_circuits += stats.n_circuits;
                mitig_2q_total += stats.total_two_qubit_gates;
            }
            for instr in &seg.check {
                prefix.push(instr.gate.clone(), instr.qubits.clone());
            }
        }
        let _ = &mut local_dist;
        let p0 = rho[(0, 0)].re.clamp(0.0, 1.0);
        locals.push((
            Distribution::from_probs(1, vec![p0, 1.0 - p0]).normalized(),
            vec![pos],
        ));
    }

    let refined = recombine::bayesian_update_all(&global, &locals);
    Ok(SqemReport {
        distribution: refined,
        global,
        stats: OverheadStats {
            n_circuits,
            normalized_shots: n_circuits as f64,
            avg_two_qubit_gates: if mitig_circuits > 0 {
                mitig_2q_total as f64 / mitig_circuits as f64
            } else {
                0.0
            },
            global_two_qubit_gates: global_out.two_qubit_gates,
        },
    })
}

/// Applies subset-local single-qubit instructions to a 2×2 state.
fn apply_local(rho: &Matrix, instrs: &[Instruction], qubit: usize) -> Matrix {
    let mut u = Matrix::identity(2);
    for instr in instrs {
        debug_assert_eq!(instr.qubits, vec![qubit]);
        u = instr.gate.matrix().mul(&u);
    }
    u.mul(rho).mul(&u.dagger())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_algos::{bernstein_vazirani, vqe_ansatz};
    use qt_dist::hellinger_fidelity;
    use qt_sim::{ideal_distribution, Backend, Executor, NoiseModel};

    #[test]
    fn sqem_mitigates_vqe_single_layer() {
        let circ = vqe_ansatz(5, 1, 8);
        let measured: Vec<usize> = (0..5).collect();
        let ideal = Distribution::from_probs(
            5,
            ideal_distribution(&Program::from_circuit(&circ), &measured),
        );
        let noise = NoiseModel::depolarizing(0.002, 0.02).with_readout(0.05);
        let exec = Executor::with_backend(noise, Backend::DensityMatrix);
        let report = run_sqem(&exec, &circ, &measured).unwrap();
        let before = hellinger_fidelity(&report.global, &ideal);
        let after = hellinger_fidelity(&report.distribution, &ideal);
        assert!(after > before, "SQEM should help: {before} -> {after}");
    }

    #[test]
    fn sqem_handles_bernstein_vazirani() {
        let circ = bernstein_vazirani(4, 0b1101);
        let measured: Vec<usize> = (0..4).collect();
        let ideal = Distribution::from_probs(
            4,
            ideal_distribution(&Program::from_circuit(&circ), &measured),
        );
        let noise = NoiseModel::depolarizing(0.003, 0.03).with_readout(0.08);
        let exec = Executor::with_backend(noise, Backend::DensityMatrix);
        let report = run_sqem(&exec, &circ, &measured).unwrap();
        let before = hellinger_fidelity(&report.global, &ideal);
        let after = hellinger_fidelity(&report.distribution, &ideal);
        assert!(after > before + 0.05, "{before} -> {after}");
    }

    #[test]
    fn sqem_rejects_multi_layer_circuits() {
        let circ = vqe_ansatz(4, 3, 8);
        let measured: Vec<usize> = (0..4).collect();
        let exec = Executor::with_backend(NoiseModel::ideal(), Backend::DensityMatrix);
        let err = run_sqem(&exec, &circ, &measured).unwrap_err();
        assert!(err.layers > 1);
    }

    #[test]
    fn sqem_uses_more_circuits_than_reduced_qspc_would() {
        // 6 preps × 3 bases per traced qubit (+1 global).
        let circ = vqe_ansatz(4, 1, 8);
        let measured: Vec<usize> = (0..4).collect();
        let exec = Executor::with_backend(
            NoiseModel::depolarizing(0.001, 0.01),
            Backend::DensityMatrix,
        );
        let report = run_sqem(&exec, &circ, &measured).unwrap();
        assert_eq!(report.stats.n_circuits, 1 + 4 * 18);
    }
}
