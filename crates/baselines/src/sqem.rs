//! The SQEM baseline (Liu, Gonzales & Saleem): classical simulators as
//! quantum error mitigators via circuit cutting.
//!
//! SQEM virtualizes the PCS checking circuit with *standard* circuit
//! cutting: the full 3-basis × 6-state reconstruction on the original,
//! unoptimized circuit. It therefore mitigates gate and measurement errors
//! like QSPC, but runs more and larger circuits (no false-dependency
//! removal, no state-preparation reduction) — and its cost grows
//! exponentially with the number of check layers, so multi-layer circuits
//! are unsupported (the paper's `N/A` table entries).
//!
//! Like the QuTracer framework itself, SQEM is staged: [`plan_sqem`]
//! performs the classical analysis and generates every reconstruction
//! circuit up front, [`SqemPlan::execute`] runs them all as one
//! deduplicated batch, and [`SqemArtifacts::recombine`] reconstructs the
//! local states classically. [`run_sqem`] wraps the three stages.

use crate::strategy::{ExecutionRecord, MitigationStrategy, StrategyError};
use crate::OverheadStats;
use qt_circuit::{passes, Circuit, Instruction};
use qt_dist::{recombine, Distribution};
use qt_math::{Matrix, Pauli};
use qt_pcs::{
    bloch_state_from_expectations, combine_single_mitigated, tabulate_single, QspcConfig,
    QspcSingleSpec,
};
use qt_sim::{BatchJob, JobInterner, Program, RunOutput, Runner};

/// Result of an SQEM run.
#[derive(Debug, Clone)]
pub struct SqemReport {
    /// The refined global distribution.
    pub distribution: Distribution,
    /// The unrefined (noisy) global distribution.
    pub global: Distribution,
    /// Overheads.
    pub stats: OverheadStats,
}

/// Returned when a workload needs more than one check layer per traced
/// qubit: SQEM's reconstruction cost is exponential in the layer count
/// (`3^m · 4^n` circuit copies), so the paper marks those entries `N/A`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqemUnsupported {
    /// The qubit that needed multiple check layers.
    pub qubit: usize,
    /// How many check layers it needed.
    pub layers: usize,
}

impl std::fmt::Display for SqemUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SQEM needs {} check layers on qubit {} (exponential cost)",
            self.layers, self.qubit
        )
    }
}

impl std::error::Error for SqemUnsupported {}

/// The planned reconstruction of one traced qubit.
#[derive(Debug, Clone)]
struct SqemQubitPlan {
    /// Bit position in the measured list.
    pos: usize,
    /// Classically tracked state at the check cut (or the final state when
    /// no check segment touches the qubit).
    rho_pre: Matrix,
    /// The single reconstruction ensemble, if a check exists.
    check: Option<SqemCheckPlan>,
}

#[derive(Debug, Clone)]
struct SqemCheckPlan {
    /// `(prep, basis)` keys aligned with `slots`.
    keys: Vec<(qt_math::states::PrepState, Pauli)>,
    /// Indices into the plan's deduplicated program table.
    slots: Vec<usize>,
    /// Subset-local instructions applied classically after the check.
    post_local: Vec<Instruction>,
}

/// Stage-1 output of SQEM: every reconstruction circuit, deduplicated.
#[derive(Debug, Clone)]
pub struct SqemPlan {
    programs: Vec<BatchJob>,
    global_slot: usize,
    qubits: Vec<SqemQubitPlan>,
}

/// Plans an SQEM run: segments every measured qubit's wire and generates
/// the full 6-state × 3-basis reconstruction ensemble for its (single)
/// check layer.
///
/// # Errors
///
/// Returns [`SqemUnsupported`] if any traced qubit needs more than one
/// check layer, or if a qubit cannot be traced at all (non-diagonal
/// coupling).
pub fn plan_sqem(circuit: &Circuit, measured: &[usize]) -> Result<SqemPlan, SqemUnsupported> {
    let mut dedup = JobInterner::new();
    let mut programs: Vec<BatchJob> = Vec::new();
    let global_slot = dedup.intern(
        &mut programs,
        BatchJob::new(Program::from_circuit(circuit), measured.to_vec()),
    );

    let mut qubits = Vec::with_capacity(measured.len());
    for (pos, &qubit) in measured.iter().enumerate() {
        let segments = passes::split_into_segments(circuit, &[qubit])
            .map_err(|_| SqemUnsupported { qubit, layers: 0 })?;
        let checking: Vec<usize> = segments
            .iter()
            .enumerate()
            .filter(|(_, s)| s.check_touches(&[qubit]))
            .map(|(i, _)| i)
            .collect();
        if checking.len() > 1 {
            return Err(SqemUnsupported {
                qubit,
                layers: checking.len(),
            });
        }

        // Classically track the local state up to the check; record the
        // local blocks after it for classical post-application.
        let mut rho = qt_math::states::PrepState::Zero.projector();
        let mut prefix = Circuit::new(circuit.n_qubits());
        let mut check: Option<SqemCheckPlan> = None;
        for (i, seg) in segments.iter().enumerate() {
            match &mut check {
                None => rho = apply_local(&rho, &seg.local, Some(qubit)),
                Some(cp) => cp.post_local.extend(seg.local.iter().cloned()),
            }
            for instr in &seg.local {
                prefix.push(instr.gate.clone(), instr.qubits.clone());
            }
            if checking.contains(&i) {
                let mut segment = Circuit::new(circuit.n_qubits());
                for instr in &seg.check {
                    segment.push(instr.gate.clone(), instr.qubits.clone());
                }
                let spec = QspcSingleSpec {
                    qubit,
                    prefix: &prefix,
                    segment: &segment,
                    config: QspcConfig::sqem(),
                };
                let ens = spec.ensemble(&spec.mitigated_bases(&[Pauli::X, Pauli::Y, Pauli::Z]));
                let slots = ens
                    .jobs
                    .into_iter()
                    .map(|job| dedup.intern(&mut programs, job))
                    .collect();
                check = Some(SqemCheckPlan {
                    keys: ens.keys,
                    slots,
                    post_local: Vec::new(),
                });
            }
            for instr in &seg.check {
                prefix.push(instr.gate.clone(), instr.qubits.clone());
            }
        }
        qubits.push(SqemQubitPlan {
            pos,
            rho_pre: rho,
            check,
        });
    }

    Ok(SqemPlan {
        programs,
        global_slot,
        qubits,
    })
}

impl SqemPlan {
    /// Number of distinct programs the batched execution runs.
    pub fn n_programs(&self) -> usize {
        self.programs.len()
    }

    /// Stage 2: executes every reconstruction circuit as one batch.
    pub fn execute<'p, R: Runner>(&'p self, runner: &R) -> SqemArtifacts<'p> {
        let outputs = runner.run_batch(&self.programs);
        assert_eq!(
            outputs.len(),
            self.programs.len(),
            "runner violated the run_batch contract"
        );
        SqemArtifacts {
            plan: self,
            outputs,
        }
    }
}

/// Stage-2 output of SQEM.
#[derive(Debug, Clone)]
pub struct SqemArtifacts<'p> {
    plan: &'p SqemPlan,
    outputs: Vec<RunOutput>,
}

impl SqemArtifacts<'_> {
    /// Stage 3: reconstructs every traced qubit's mitigated state and
    /// refines the global distribution.
    pub fn recombine(&self) -> SqemReport {
        self.plan
            .recombine_outputs(self.outputs.clone(), &ExecutionRecord::exact(None))
            .expect("artifacts were produced by this plan")
    }
}

impl MitigationStrategy for SqemPlan {
    type Report = SqemReport;

    fn name(&self) -> &'static str {
        "sqem"
    }

    fn batch_jobs(&self) -> Vec<BatchJob> {
        self.programs.clone()
    }

    fn n_jobs(&self) -> usize {
        self.programs.len()
    }

    fn recombine_outputs(
        &self,
        outputs: Vec<RunOutput>,
        record: &ExecutionRecord,
    ) -> Result<SqemReport, StrategyError> {
        if outputs.len() != self.programs.len() {
            return Err(StrategyError::ResultCountMismatch {
                expected: self.programs.len(),
                got: outputs.len(),
            });
        }
        // Every reconstruction circuit contributes to some qubit's
        // tomographic combination, so SQEM cannot degrade around any lost
        // job: the first terminal failure is the error.
        if let Some(f) = &record.failures {
            if let Some(job) = f.per_job.iter().position(|e| e.is_some()) {
                return Err(StrategyError::JobFailed {
                    job,
                    detail: f.per_job[job]
                        .as_ref()
                        .expect("position found an error")
                        .to_string(),
                });
            }
        }
        let global_out = &outputs[self.global_slot];
        let global = global_out.dist.clone();

        let mut locals = Vec::new();
        let mut n_circuits = 1usize;
        let mut mitig_2q_total = 0usize;
        let mut mitig_circuits = 0usize;
        for qp in &self.qubits {
            let mut rho = qp.rho_pre.clone();
            if let Some(cp) = &qp.check {
                let outs: Vec<RunOutput> = cp.slots.iter().map(|&s| outputs[s].clone()).collect();
                let (e, stats) = tabulate_single(&cp.keys, &outs);
                let (exps, _den) = combine_single_mitigated(
                    &QspcConfig::sqem(),
                    &rho,
                    &[Pauli::X, Pauli::Y, Pauli::Z],
                    &e,
                );
                rho = bloch_state_from_expectations(&exps);
                rho = apply_local(&rho, &cp.post_local, None);
                n_circuits += stats.n_circuits;
                mitig_circuits += stats.n_circuits;
                mitig_2q_total += stats.total_two_qubit_gates;
            }
            let p0 = rho[(0, 0)].re.clamp(0.0, 1.0);
            locals.push((
                Distribution::try_from_probs(1, vec![p0, 1.0 - p0])
                    .expect("one-qubit reconstructed state")
                    .normalized(),
                vec![qp.pos],
            ));
        }

        let refined = recombine::try_bayesian_update_all(
            &global,
            locals.iter().map(|(d, p)| (d, p.as_slice())),
        )
        .map_err(|e| StrategyError::Recombine {
            detail: e.to_string(),
        })?;
        Ok(SqemReport {
            distribution: refined,
            global,
            stats: OverheadStats {
                n_circuits,
                normalized_shots: n_circuits as f64,
                avg_two_qubit_gates: if mitig_circuits > 0 {
                    mitig_2q_total as f64 / mitig_circuits as f64
                } else {
                    0.0
                },
                global_two_qubit_gates: global_out.two_qubit_gates,
                batch: None,
                total_shots: record.sampled_shots.as_ref().map(|s| s.iter().sum()),
                round_shots: record.round_shots.clone(),
                engine_mix: record.engine_mix.clone(),
                failures: record.failures.as_ref().map(|f| f.stats),
            },
        })
    }
}

/// Runs SQEM with subset size 1 over every measured qubit: a wrapper over
/// `plan → execute → recombine`.
///
/// # Errors
///
/// Returns [`SqemUnsupported`] if any traced qubit needs more than one
/// check layer, or if a qubit cannot be traced at all (non-diagonal
/// coupling).
pub fn run_sqem<R: Runner>(
    runner: &R,
    circuit: &Circuit,
    measured: &[usize],
) -> Result<SqemReport, SqemUnsupported> {
    Ok(plan_sqem(circuit, measured)?.execute(runner).recombine())
}

/// Applies subset-local single-qubit instructions to a 2×2 state. The
/// expected operand is a debug aid only (`None` for post-check blocks
/// whose operand was validated at plan time).
fn apply_local(rho: &Matrix, instrs: &[Instruction], qubit: Option<usize>) -> Matrix {
    let mut u = Matrix::identity(2);
    for instr in instrs {
        debug_assert!(qubit.is_none_or(|q| instr.qubits == vec![q]));
        u = instr.gate.matrix().mul(&u);
    }
    u.mul(rho).mul(&u.dagger())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_algos::{bernstein_vazirani, vqe_ansatz};
    use qt_dist::hellinger_fidelity;
    use qt_sim::{ideal_distribution, Backend, Executor, NoiseModel};

    #[test]
    fn sqem_mitigates_vqe_single_layer() {
        let circ = vqe_ansatz(5, 1, 8);
        let measured: Vec<usize> = (0..5).collect();
        let ideal = ideal_distribution(&Program::from_circuit(&circ), &measured);
        let noise = NoiseModel::depolarizing(0.002, 0.02).with_readout(0.05);
        let exec = Executor::with_backend(noise, Backend::DensityMatrix);
        let report = run_sqem(&exec, &circ, &measured).unwrap();
        let before = hellinger_fidelity(&report.global, &ideal);
        let after = hellinger_fidelity(&report.distribution, &ideal);
        assert!(after > before, "SQEM should help: {before} -> {after}");
    }

    #[test]
    fn sqem_handles_bernstein_vazirani() {
        let circ = bernstein_vazirani(4, 0b1101);
        let measured: Vec<usize> = (0..4).collect();
        let ideal = ideal_distribution(&Program::from_circuit(&circ), &measured);
        let noise = NoiseModel::depolarizing(0.003, 0.03).with_readout(0.08);
        let exec = Executor::with_backend(noise, Backend::DensityMatrix);
        let report = run_sqem(&exec, &circ, &measured).unwrap();
        let before = hellinger_fidelity(&report.global, &ideal);
        let after = hellinger_fidelity(&report.distribution, &ideal);
        assert!(after > before + 0.05, "{before} -> {after}");
    }

    #[test]
    fn sqem_rejects_multi_layer_circuits() {
        let circ = vqe_ansatz(4, 3, 8);
        let measured: Vec<usize> = (0..4).collect();
        let exec = Executor::with_backend(NoiseModel::ideal(), Backend::DensityMatrix);
        let err = run_sqem(&exec, &circ, &measured).unwrap_err();
        assert!(err.layers > 1);
    }

    #[test]
    fn sqem_uses_more_circuits_than_reduced_qspc_would() {
        // 6 preps × 3 bases per traced qubit (+1 global).
        let circ = vqe_ansatz(4, 1, 8);
        let measured: Vec<usize> = (0..4).collect();
        let exec = Executor::with_backend(
            NoiseModel::depolarizing(0.001, 0.01),
            Backend::DensityMatrix,
        );
        let report = run_sqem(&exec, &circ, &measured).unwrap();
        assert_eq!(report.stats.n_circuits, 1 + 4 * 18);
    }

    #[test]
    fn sqem_plan_is_inspectable_and_batches_once() {
        let circ = vqe_ansatz(4, 1, 8);
        let measured: Vec<usize> = (0..4).collect();
        let plan = plan_sqem(&circ, &measured).unwrap();
        // 1 global + 4 qubits × 18 ensemble members, all distinct programs.
        assert_eq!(plan.n_programs(), 1 + 4 * 18);
        let exec = Executor::with_backend(
            NoiseModel::depolarizing(0.001, 0.01),
            Backend::DensityMatrix,
        );
        let report = plan.execute(&exec).recombine();
        let direct = run_sqem(&exec, &circ, &measured).unwrap();
        let xs: Vec<(u64, f64)> = report.distribution.iter().collect();
        let ys: Vec<(u64, f64)> = direct.distribution.iter().collect();
        assert_eq!(xs.len(), ys.len());
        for ((i, a), (j, b)) in xs.iter().zip(&ys) {
            assert_eq!(i, j);
            assert!((a - b).abs() < 1e-15);
        }
    }
}
