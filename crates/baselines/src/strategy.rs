//! The strategy-unified mitigation surface: every mitigation method —
//! QuTracer's staged pipeline, the Jigsaw and SQEM baselines, the
//! truncated-Neumann readout baseline — reduces to the same three-step
//! contract: *plan* (done before the trait exists), *emit batch jobs*,
//! *recombine from raw outputs*. [`MitigationStrategy`] captures exactly
//! that contract so method-agnostic consumers (multi-round sessions, the
//! serving batcher, cached runners, benches) can drive any method without
//! knowing its plan or report types.
//!
//! The split matters for serving: the service executes jobs through its
//! own batcher/cache and only hands *outputs* back, so recombination must
//! work from `(outputs, execution record)` alone — no strategy may smuggle
//! state through execution.

use qt_sim::{BatchJob, FailureStats, RunError, RunOutput, Runner};

/// How one batched execution went, as far as a strategy needs to know for
/// bookkeeping: the shots actually sampled, per-round totals for
/// multi-round sessions, the engine mix, and the failure record of a
/// fallible path. All fields default to `None` — an exact, infallible,
/// single-round execution is the empty record.
#[derive(Debug, Clone, Default)]
pub struct ExecutionRecord {
    /// Shots actually sampled per job, in [`MitigationStrategy::batch_jobs`]
    /// order. `None` for exact-distribution executions.
    pub sampled_shots: Option<Vec<u64>>,
    /// Total shots spent per session round (pilot first). `None` outside
    /// multi-round sessions.
    pub round_shots: Option<Vec<u64>>,
    /// Per-engine job counts the runner reported for the batch.
    pub engine_mix: Option<Vec<(String, usize)>>,
    /// Failure record of a fallible execution: `None` for infallible
    /// paths, `Some` (possibly failure-free) whenever the fallible
    /// surface produced the outputs.
    pub failures: Option<JobFailures>,
}

impl ExecutionRecord {
    /// The record of an exact single-round execution: only the engine mix
    /// is known.
    pub fn exact(engine_mix: Option<Vec<(String, usize)>>) -> Self {
        ExecutionRecord {
            engine_mix,
            ..ExecutionRecord::default()
        }
    }
}

/// Per-job failure record of one fallible batched execution, in
/// [`MitigationStrategy::batch_jobs`] order. A failed job's slot in the
/// output vector holds a placeholder the strategy must not read.
#[derive(Debug, Clone)]
pub struct JobFailures {
    /// Terminal error per job (`None` = the job succeeded).
    pub per_job: Vec<Option<RunError>>,
    /// What the retry/quarantine engine did to get here.
    pub stats: FailureStats,
}

impl JobFailures {
    /// A failure-free record for `n` jobs.
    pub fn none(n: usize) -> Self {
        JobFailures {
            per_job: vec![None; n],
            stats: FailureStats::default(),
        }
    }

    /// Whether any job terminally failed.
    pub fn any_failed(&self) -> bool {
        self.per_job.iter().any(|e| e.is_some())
    }
}

/// Typed failure of the strategy surface — what recombination can report
/// without knowing the concrete method.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyError {
    /// The executor returned a different number of outputs than the
    /// strategy's batch jobs — a contract violation, not a data error.
    ResultCountMismatch { expected: usize, got: usize },
    /// A job the strategy cannot recombine without failed terminally
    /// (index in batch-jobs order).
    JobFailed { job: usize, detail: String },
    /// Recombination itself rejected the outputs.
    Recombine { detail: String },
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::ResultCountMismatch { expected, got } => write!(
                f,
                "executor returned {got} outputs for {expected} batch jobs"
            ),
            StrategyError::JobFailed { job, detail } => {
                write!(f, "required job {job} failed terminally: {detail}")
            }
            StrategyError::Recombine { detail } => {
                write!(f, "recombination rejected the outputs: {detail}")
            }
        }
    }
}

impl std::error::Error for StrategyError {}

/// One mitigation method, reduced to the contract every consumer needs:
/// the jobs it wants executed and the recombination that turns raw
/// outputs back into its report. Shot-budget hooks have uniform defaults
/// so exact-only strategies implement nothing extra.
///
/// Outputs handed to [`MitigationStrategy::recombine_outputs`] are in
/// [`MitigationStrategy::batch_jobs`] order — strategies whose planning
/// reorders jobs internally (e.g. trie-clustered plans) own the mapping
/// back to their internal slots.
pub trait MitigationStrategy {
    /// The method's mitigation report.
    type Report;

    /// Stable method name (report labels, service accounting).
    fn name(&self) -> &'static str;

    /// The deduplicated programs to execute, in submission order.
    fn batch_jobs(&self) -> Vec<BatchJob>;

    /// Number of batch jobs (override when `batch_jobs` clones are
    /// expensive).
    fn n_jobs(&self) -> usize {
        self.batch_jobs().len()
    }

    /// Static per-job shot weights (batch-jobs order) — the prior a
    /// session's pilot round uses before any variance is measured.
    /// Defaults to uniform.
    fn shot_fanout(&self) -> Vec<f64> {
        vec![1.0; self.n_jobs()]
    }

    /// Splits `total_shots` across the batch jobs proportionally to
    /// `weights` (batch-jobs order, summing to exactly `total_shots`).
    /// The default is plain largest-remainder apportionment; strategies
    /// with an internal slot order may override to keep tie-breaking
    /// consistent with their legacy allocators.
    fn allocate_budget(&self, total_shots: usize, weights: &[f64]) -> Vec<usize> {
        apportion_shots(total_shots, weights)
    }

    /// Turns raw outputs (batch-jobs order) plus the execution record
    /// back into the method's report.
    fn recombine_outputs(
        &self,
        outputs: Vec<RunOutput>,
        record: &ExecutionRecord,
    ) -> Result<Self::Report, StrategyError>;
}

impl<T: MitigationStrategy + ?Sized> MitigationStrategy for &T {
    type Report = T::Report;

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn batch_jobs(&self) -> Vec<BatchJob> {
        (**self).batch_jobs()
    }

    fn n_jobs(&self) -> usize {
        (**self).n_jobs()
    }

    fn shot_fanout(&self) -> Vec<f64> {
        (**self).shot_fanout()
    }

    fn allocate_budget(&self, total_shots: usize, weights: &[f64]) -> Vec<usize> {
        (**self).allocate_budget(total_shots, weights)
    }

    fn recombine_outputs(
        &self,
        outputs: Vec<RunOutput>,
        record: &ExecutionRecord,
    ) -> Result<Self::Report, StrategyError> {
        (**self).recombine_outputs(outputs, record)
    }
}

/// Largest-remainder apportionment of `total_shots` over `weights`: the
/// allocation sums to exactly `total_shots`, rounding shortfall goes to
/// the largest fractional remainders (ties resolved by index), and when
/// the budget affords at least one shot per entry a 1-shot floor is
/// funded from the largest allocations (a zero-shot program would report
/// a uniform — information-free — distribution). Non-positive total
/// weight yields the all-zero allocation.
pub fn apportion_shots(total_shots: usize, weights: &[f64]) -> Vec<usize> {
    let n = weights.len();
    let total_weight: f64 = weights.iter().sum();
    if n == 0 || total_weight <= 0.0 {
        return vec![0; n];
    }
    let quotas: Vec<f64> = weights
        .iter()
        .map(|w| total_shots as f64 * w / total_weight)
        .collect();
    let mut shots: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    // The quotas sum to `total_shots` exactly, so the rounding shortfall
    // is strictly less than `n`: one extra shot to each of the largest
    // fractional remainders settles it (ties resolved by index so the
    // allocation is deterministic).
    let leftover = total_shots.saturating_sub(shots.iter().sum::<usize>());
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let (fa, fb) = (quotas[a].fract(), quotas[b].fract());
        fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
    });
    for &i in order.iter().take(leftover) {
        shots[i] += 1;
    }
    // Floor of one shot per entry when the budget affords it, funded
    // from the largest allocations.
    if total_shots >= n {
        while let Some(zero) = shots.iter().position(|&s| s == 0) {
            let donor = (0..n).max_by_key(|&i| shots[i]).expect("n > 0");
            if shots[donor] <= 1 {
                break;
            }
            shots[donor] -= 1;
            shots[zero] += 1;
        }
    }
    shots
}

/// Runs a strategy end-to-end on `runner` with exact distributions: emit
/// jobs, execute one batch, recombine. The method-agnostic counterpart of
/// each method's bespoke `execute` helper.
///
/// # Errors
///
/// [`StrategyError::ResultCountMismatch`] for a contract-violating
/// runner, plus whatever the strategy's recombination rejects.
pub fn execute_strategy<S: MitigationStrategy, R: Runner + ?Sized>(
    strategy: &S,
    runner: &R,
) -> Result<S::Report, StrategyError> {
    let jobs = strategy.batch_jobs();
    let engine_mix = runner.engine_mix(&jobs);
    let outputs = runner.run_batch(&jobs);
    if outputs.len() != jobs.len() {
        return Err(StrategyError::ResultCountMismatch {
            expected: jobs.len(),
            got: outputs.len(),
        });
    }
    strategy.recombine_outputs(outputs, &ExecutionRecord::exact(engine_mix))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportionment_sums_exactly_and_respects_floor() {
        let shots = apportion_shots(10, &[1.0, 1.0, 1.0]);
        assert_eq!(shots.iter().sum::<usize>(), 10);
        assert!(shots.iter().all(|&s| s >= 3));

        // Heavily skewed weights with a budget that still affords a floor.
        let shots = apportion_shots(5, &[1000.0, 1.0, 1.0, 1.0, 1.0]);
        assert_eq!(shots.iter().sum::<usize>(), 5);
        assert!(shots.iter().all(|&s| s >= 1), "floor funds every entry");
    }

    #[test]
    fn apportionment_below_floor_never_overspends() {
        // Budget smaller than the entry count: the floor must not kick
        // in (it would overspend); the sum still equals the budget.
        let shots = apportion_shots(2, &[1.0; 5]);
        assert_eq!(shots.iter().sum::<usize>(), 2);
        assert!(shots.contains(&0));
    }

    #[test]
    fn apportionment_ties_resolve_by_index() {
        // 7 shots over 4 equal weights: everyone gets 1, remainder 3
        // goes to the lowest indices.
        let shots = apportion_shots(7, &[1.0; 4]);
        assert_eq!(shots, vec![2, 2, 2, 1]);
    }

    #[test]
    fn degenerate_weights_yield_zero_allocation() {
        assert_eq!(apportion_shots(100, &[]), Vec::<usize>::new());
        assert_eq!(apportion_shots(100, &[0.0, 0.0]), vec![0, 0]);
    }
}
