//! Comparison baselines — Jigsaw (measurement subsetting), SQEM
//! (classically simulated Pauli checks via full circuit cutting), and
//! truncated-Neumann readout mitigation — plus the
//! [`MitigationStrategy`] trait that unifies them (and QuTracer's staged
//! pipeline in `qt-core`) behind one plan → jobs → recombine surface.

pub mod jigsaw;
pub mod neumann;
pub mod sqem;
pub mod strategy;

pub use jigsaw::{plan_jigsaw, run_jigsaw, JigsawArtifacts, JigsawPlan, JigsawReport};
pub use neumann::{neumann_mitigate, plan_neumann, run_neumann, NeumannPlan, NeumannReport};
pub use sqem::{plan_sqem, run_sqem, SqemArtifacts, SqemPlan, SqemReport, SqemUnsupported};
pub use strategy::{
    apportion_shots, execute_strategy, ExecutionRecord, JobFailures, MitigationStrategy,
    StrategyError,
};

/// Execution-cost bookkeeping shared by the result tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverheadStats {
    /// Number of distinct circuits executed (including the global run).
    pub n_circuits: usize,
    /// Shot budget relative to the unmitigated run (the paper's
    /// "normalized number of shots": circuit copies at the original shot
    /// count).
    pub normalized_shots: f64,
    /// Average 2-qubit basis gate count per *mitigation* circuit (the
    /// paper's gate-count column; the global circuit reported separately).
    pub avg_two_qubit_gates: f64,
    /// 2-qubit basis gate count of the global (original) circuit.
    pub global_two_qubit_gates: usize,
    /// Prefix-sharing statistics of the batch's execution trie (nodes,
    /// shared-gate fraction — see `qt_sim::TrieStats`). `None` for flows
    /// that do not batch through a plan (the serial legacy path, the
    /// baselines' own reports).
    pub batch: Option<qt_sim::TrieStats>,
    /// Measurement shots actually sampled across every executed circuit
    /// (the paper's real cost denomination). `None` for exact-distribution
    /// flows, which pay in density matrices rather than shots.
    pub total_shots: Option<u64>,
    /// Shots spent per session round (pilot first), for multi-round
    /// adaptive executions. `None` for single-round and exact flows.
    pub round_shots: Option<Vec<u64>>,
    /// Per-engine job counts of the executed batch (`(engine name, jobs)`
    /// sorted by name — e.g. `[("density-matrix", 3), ("stabilizer", 40)]`),
    /// recording what `Backend::Auto`'s per-program selection actually
    /// chose. `None` for runners without engine introspection and for
    /// plan-time (pre-execution) statistics.
    pub engine_mix: Option<Vec<(String, usize)>>,
    /// What the failure domain did during execution: retries spent on
    /// transient errors, quarantined panics, jobs failed past the budget,
    /// and mitigation subsets voided by those failures (see
    /// `qt_sim::FailureStats`). `None` for infallible execution paths,
    /// `Some` (possibly all-zero) whenever a fallible path produced the
    /// report — so a degraded report always says *how* it degraded.
    pub failures: Option<qt_sim::FailureStats>,
}
