//! The Jigsaw protocol (Das, Tannu & Qureshi, MICRO '21): measurement
//! subsetting.
//!
//! Half of the shot budget runs the circuit measuring all qubits (the noisy
//! *global* distribution); the other half is split over circuit copies that
//! measure only small subsets, whose local distributions suffer less
//! measurement crosstalk. The local distributions then refine the global
//! one by Bayesian recombination. Jigsaw does not touch gate errors.

use crate::strategy::{ExecutionRecord, MitigationStrategy, StrategyError};
use crate::OverheadStats;
use qt_circuit::Circuit;
use qt_dist::{recombine, Distribution};
use qt_sim::{BatchJob, Program, RunOutput, Runner};

/// Result of a Jigsaw run.
#[derive(Debug, Clone)]
pub struct JigsawReport {
    /// The refined global distribution over the measured qubits.
    pub distribution: Distribution,
    /// The unrefined (noisy) global distribution.
    pub global: Distribution,
    /// Per-subset local distributions, with their bit positions in the
    /// measured list.
    pub locals: Vec<(Distribution, Vec<usize>)>,
    /// Overheads.
    pub stats: OverheadStats,
}

/// Stage-1 output of Jigsaw: the global mode plus one subset mode per
/// group, as independent circuit copies ready to batch.
#[derive(Debug, Clone)]
pub struct JigsawPlan {
    subsets: Vec<Vec<usize>>,
    jobs: Vec<BatchJob>,
}

/// Plans a Jigsaw run with the given subset size (the paper's
/// recommendation is 2).
///
/// Subsets are consecutive non-overlapping groups over the measured qubits
/// (the last group wraps backwards if the count does not divide evenly).
///
/// # Panics
///
/// Panics if `subset_size` is 0 or exceeds the measured count.
pub fn plan_jigsaw(circuit: &Circuit, measured: &[usize], subset_size: usize) -> JigsawPlan {
    assert!(subset_size >= 1, "subset size must be positive");
    assert!(
        subset_size <= measured.len(),
        "subset larger than the measured register"
    );
    let program = Program::from_circuit(circuit);

    // Partition the measured qubits into subsets.
    let mut subsets: Vec<Vec<usize>> = Vec::new();
    let mut start = 0;
    while start < measured.len() {
        let end = (start + subset_size).min(measured.len());
        let lo = end.saturating_sub(subset_size);
        subsets.push((lo..end).collect()); // positions in `measured`
        start = end;
    }

    // Global mode plus every subset mode (independent circuit copies).
    let mut jobs = vec![BatchJob::new(program.clone(), measured.to_vec())];
    for positions in &subsets {
        let qubits: Vec<usize> = positions.iter().map(|&p| measured[p]).collect();
        jobs.push(BatchJob::new(program.clone(), qubits));
    }
    JigsawPlan { subsets, jobs }
}

impl JigsawPlan {
    /// Number of circuit copies the batched execution runs.
    pub fn n_programs(&self) -> usize {
        self.jobs.len()
    }

    /// Stage 2: executes every mode as one parallel batch.
    pub fn execute<'p, R: Runner>(&'p self, runner: &R) -> JigsawArtifacts<'p> {
        let outputs = runner.run_batch(&self.jobs);
        assert_eq!(
            outputs.len(),
            self.jobs.len(),
            "runner violated the run_batch contract"
        );
        JigsawArtifacts {
            plan: self,
            outputs,
        }
    }
}

/// Stage-2 output of Jigsaw.
#[derive(Debug, Clone)]
pub struct JigsawArtifacts<'p> {
    plan: &'p JigsawPlan,
    outputs: Vec<qt_sim::RunOutput>,
}

impl JigsawArtifacts<'_> {
    /// Stage 3: Bayesian recombination of the subset modes into the global
    /// distribution.
    pub fn recombine(&self) -> JigsawReport {
        self.plan
            .recombine_outputs(self.outputs.clone(), &ExecutionRecord::exact(None))
            .expect("artifacts were produced by this plan")
    }
}

impl MitigationStrategy for JigsawPlan {
    type Report = JigsawReport;

    fn name(&self) -> &'static str {
        "jigsaw"
    }

    fn batch_jobs(&self) -> Vec<BatchJob> {
        self.jobs.clone()
    }

    fn n_jobs(&self) -> usize {
        self.jobs.len()
    }

    fn recombine_outputs(
        &self,
        outputs: Vec<RunOutput>,
        record: &ExecutionRecord,
    ) -> Result<JigsawReport, StrategyError> {
        if outputs.len() != self.jobs.len() {
            return Err(StrategyError::ResultCountMismatch {
                expected: self.jobs.len(),
                got: outputs.len(),
            });
        }
        // Every mode feeds the Bayesian update, so Jigsaw cannot degrade
        // around any lost job: the first terminal failure is the error.
        if let Some(f) = &record.failures {
            if let Some(job) = f.per_job.iter().position(|e| e.is_some()) {
                return Err(StrategyError::JobFailed {
                    job,
                    detail: f.per_job[job]
                        .as_ref()
                        .expect("position found an error")
                        .to_string(),
                });
            }
        }
        let mut outs = outputs.into_iter();
        let global_out = outs.next().expect("global job present");
        let global = global_out.dist.clone();

        let mut locals = Vec::new();
        let mut n_circuits = 1;
        for (positions, out) in self.subsets.iter().zip(outs) {
            n_circuits += 1;
            locals.push((out.dist, positions.clone()));
        }

        let refined = recombine::try_bayesian_update_all(
            &global,
            locals.iter().map(|(d, p)| (d, p.as_slice())),
        )
        .map_err(|e| StrategyError::Recombine {
            detail: e.to_string(),
        })?;
        Ok(JigsawReport {
            distribution: refined,
            global,
            locals,
            stats: OverheadStats {
                n_circuits,
                // Jigsaw splits the original budget: global mode + subset
                // mode together cost one original-shot budget.
                normalized_shots: 1.0,
                avg_two_qubit_gates: global_out.two_qubit_gates as f64,
                global_two_qubit_gates: global_out.two_qubit_gates,
                batch: None,
                total_shots: record.sampled_shots.as_ref().map(|s| s.iter().sum()),
                round_shots: record.round_shots.clone(),
                engine_mix: record.engine_mix.clone(),
                failures: record.failures.as_ref().map(|f| f.stats),
            },
        })
    }
}

/// Runs Jigsaw end to end: a wrapper over `plan → execute → recombine`.
///
/// # Panics
///
/// Panics if `subset_size` is 0 or exceeds the measured count.
pub fn run_jigsaw<R: Runner>(
    runner: &R,
    circuit: &Circuit,
    measured: &[usize],
    subset_size: usize,
) -> JigsawReport {
    plan_jigsaw(circuit, measured, subset_size)
        .execute(runner)
        .recombine()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_algos::vqe_ansatz;
    use qt_dist::hellinger_fidelity;
    use qt_sim::{ideal_distribution, Backend, Executor, NoiseModel, ReadoutModel};

    #[test]
    fn jigsaw_improves_under_measurement_crosstalk() {
        let circ = vqe_ansatz(6, 1, 5);
        let measured: Vec<usize> = (0..6).collect();
        let ideal = ideal_distribution(&Program::from_circuit(&circ), &measured);
        let noise =
            NoiseModel::ideal().with_readout_model(ReadoutModel::with_crosstalk(0.01, 0.02));
        let exec = Executor::with_backend(noise, Backend::DensityMatrix);
        let report = run_jigsaw(&exec, &circ, &measured, 2);
        let f_before = hellinger_fidelity(&report.global, &ideal);
        let f_after = hellinger_fidelity(&report.distribution, &ideal);
        assert!(
            f_after > f_before + 0.01,
            "jigsaw should help with crosstalk: {f_before} -> {f_after}"
        );
    }

    #[test]
    fn jigsaw_is_neutral_without_crosstalk() {
        // The paper's Fig. 7/8 observation: without measurement crosstalk
        // Jigsaw's local distributions see the same noise as the global.
        let circ = vqe_ansatz(5, 1, 2);
        let measured: Vec<usize> = (0..5).collect();
        let ideal = ideal_distribution(&Program::from_circuit(&circ), &measured);
        let noise = NoiseModel::depolarizing(0.001, 0.01).with_readout(0.05);
        let exec = Executor::with_backend(noise, Backend::DensityMatrix);
        let report = run_jigsaw(&exec, &circ, &measured, 2);
        let f_before = hellinger_fidelity(&report.global, &ideal);
        let f_after = hellinger_fidelity(&report.distribution, &ideal);
        assert!(
            (f_after - f_before).abs() < 0.02,
            "jigsaw should be ~neutral: {f_before} vs {f_after}"
        );
    }

    #[test]
    fn subsets_cover_all_measured_bits() {
        let circ = vqe_ansatz(5, 1, 2);
        let measured: Vec<usize> = (0..5).collect();
        let exec = Executor::with_backend(NoiseModel::ideal(), Backend::DensityMatrix);
        let report = run_jigsaw(&exec, &circ, &measured, 2);
        let mut covered: Vec<usize> = report
            .locals
            .iter()
            .flat_map(|(_, pos)| pos.clone())
            .collect();
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(covered, vec![0, 1, 2, 3, 4]);
        assert_eq!(report.stats.n_circuits, 1 + 3);
    }

    #[test]
    fn noiseless_jigsaw_reproduces_ideal() {
        let circ = vqe_ansatz(4, 1, 9);
        let measured: Vec<usize> = (0..4).collect();
        let exec = Executor::with_backend(NoiseModel::ideal(), Backend::DensityMatrix);
        let report = run_jigsaw(&exec, &circ, &measured, 2);
        let ideal = ideal_distribution(&Program::from_circuit(&circ), &measured);
        assert!(hellinger_fidelity(&report.distribution, &ideal) > 1.0 - 1e-9);
    }
}
