//! Truncated Neumann-series measurement-error mitigation (Wang, Yu &
//! Wang, "Mitigating Quantum Errors via Truncated Neumann Series").
//!
//! The measured distribution is `p̃ = A·p` where `A` is the readout
//! confusion map. Calibration-matrix methods invert `A` explicitly —
//! exponential in the register width and numerically brittle. The Neumann
//! approach instead expands the inverse as a truncated geometric series,
//!
//! ```text
//! A⁻¹ ≈ Σ_{k=0}^{K} (I − A)^k  =  Σ_{j=0}^{K} (−1)^j · C(K+1, j+1) · A^j
//! ```
//!
//! (the right-hand form by the hockey-stick identity), which converges
//! whenever readout error rates stay below one half (‖I − A‖ < 1). The
//! mitigated estimate therefore needs only *forward* applications of `A`
//! to the measured distribution — here applied classically from the known
//! calibration model via [`qt_sim::apply_readout`], so the whole method
//! costs one circuit execution and no inversion. The truncation order `K`
//! trades residual bias `(I − A)^{K+1}` against noise amplification.

use crate::strategy::{ExecutionRecord, MitigationStrategy, StrategyError};
use crate::OverheadStats;
use qt_circuit::Circuit;
use qt_dist::Distribution;
use qt_sim::{apply_readout, BatchJob, Program, ReadoutModel, Runner};

/// Result of a truncated-Neumann mitigation run.
#[derive(Debug, Clone)]
pub struct NeumannReport {
    /// The mitigated distribution over the measured qubits (clamped to
    /// the simplex and renormalized).
    pub distribution: Distribution,
    /// The unmitigated (noisy) global distribution.
    pub global: Distribution,
    /// Truncation order `K` actually applied.
    pub order: usize,
    /// Overheads.
    pub stats: OverheadStats,
}

/// Stage-1 output of the Neumann baseline: a single global job plus the
/// calibration model and truncation order recombination needs.
#[derive(Debug, Clone)]
pub struct NeumannPlan {
    job: BatchJob,
    measured: Vec<usize>,
    readout: ReadoutModel,
    order: usize,
}

/// Plans a truncated-Neumann run: one global execution of `circuit` over
/// `measured`, mitigated classically with the readout calibration model
/// at truncation order `order` (`order = 0` is the identity — the raw
/// measurement).
pub fn plan_neumann(
    circuit: &Circuit,
    measured: &[usize],
    readout: &ReadoutModel,
    order: usize,
) -> NeumannPlan {
    NeumannPlan {
        job: BatchJob::new(Program::from_circuit(circuit), measured.to_vec()),
        measured: measured.to_vec(),
        readout: readout.clone(),
        order,
    }
}

impl NeumannPlan {
    /// Number of circuit copies the batched execution runs (always 1: the
    /// series is applied classically, not by re-measurement).
    pub fn n_programs(&self) -> usize {
        1
    }

    /// The truncation order.
    pub fn order(&self) -> usize {
        self.order
    }
}

impl MitigationStrategy for NeumannPlan {
    type Report = NeumannReport;

    fn name(&self) -> &'static str {
        "neumann"
    }

    fn batch_jobs(&self) -> Vec<BatchJob> {
        vec![self.job.clone()]
    }

    fn n_jobs(&self) -> usize {
        1
    }

    fn recombine_outputs(
        &self,
        outputs: Vec<qt_sim::RunOutput>,
        record: &ExecutionRecord,
    ) -> Result<NeumannReport, StrategyError> {
        if outputs.len() != 1 {
            return Err(StrategyError::ResultCountMismatch {
                expected: 1,
                got: outputs.len(),
            });
        }
        if let Some(f) = &record.failures {
            if let Some(Some(err)) = f.per_job.first() {
                return Err(StrategyError::JobFailed {
                    job: 0,
                    detail: err.to_string(),
                });
            }
        }
        let global_out = &outputs[0];
        let global = global_out.dist.clone();
        let mitigated = neumann_mitigate(&global, &self.measured, &self.readout, self.order);
        Ok(NeumannReport {
            distribution: mitigated,
            global,
            order: self.order,
            stats: OverheadStats {
                n_circuits: 1,
                normalized_shots: 1.0,
                avg_two_qubit_gates: global_out.two_qubit_gates as f64,
                global_two_qubit_gates: global_out.two_qubit_gates,
                batch: None,
                total_shots: record.sampled_shots.as_ref().map(|s| s.iter().sum()),
                round_shots: record.round_shots.clone(),
                engine_mix: record.engine_mix.clone(),
                failures: record.failures.as_ref().map(|f| f.stats),
            },
        })
    }
}

/// Applies the truncated Neumann series of order `K = order` to a noisy
/// distribution: `p ≈ Σ_{j=0}^{K} (−1)^j · C(K+1, j+1) · Aʲ · p̃`, with
/// `A` the forward readout map of `readout` over `measured`. The signed
/// combination can leave the simplex; negative mass is clamped to zero
/// and the result renormalized (the standard projection).
///
/// `order = 0` returns the input unchanged (coefficient `C(1,1) = 1`).
///
/// # Panics
///
/// Panics if `noisy` has more bits than `measured` entries, or if a noisy
/// readout is requested over a distribution too wide to densify (the
/// forward map fills the outcome space).
pub fn neumann_mitigate(
    noisy: &Distribution,
    measured: &[usize],
    readout: &ReadoutModel,
    order: usize,
) -> Distribution {
    let n_bits = noisy.n_bits();
    assert_eq!(
        n_bits,
        measured.len(),
        "distribution width must match the measured register"
    );
    let mut acc: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    let mut cur = noisy.clone();
    // c_j = (−1)^j · C(K+1, j+1), built incrementally from c_0 = K+1.
    let k = order as f64;
    let mut binom = k + 1.0; // C(K+1, 1)
    for j in 0..=order {
        let coeff = if j % 2 == 0 { binom } else { -binom };
        for (outcome, p) in cur.iter() {
            *acc.entry(outcome).or_insert(0.0) += coeff * p;
        }
        if j < order {
            binom *= (k + 1.0 - (j + 1) as f64) / (j + 2) as f64;
            cur = apply_readout(&cur, measured, readout);
        }
    }
    let entries: Vec<(u64, f64)> = acc.into_iter().filter(|&(_, p)| p > 0.0).collect();
    Distribution::try_from_entries(n_bits, entries)
        .expect("accumulated outcomes come from valid distributions")
        .normalized()
}

/// Runs the Neumann baseline end to end: one global execution, then the
/// classical series. A thin wrapper over the [`MitigationStrategy`]
/// surface.
///
/// # Panics
///
/// Panics on a runner violating the batch contract (the strategy surface
/// reports it as a typed error; this convenience unwraps it, matching
/// `run_jigsaw`/`run_sqem`).
pub fn run_neumann<R: Runner>(
    runner: &R,
    circuit: &Circuit,
    measured: &[usize],
    readout: &ReadoutModel,
    order: usize,
) -> NeumannReport {
    crate::strategy::execute_strategy(&plan_neumann(circuit, measured, readout, order), runner)
        .expect("runner violated the batch contract")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_algos::vqe_ansatz;
    use qt_dist::hellinger_fidelity;
    use qt_sim::{ideal_distribution, Backend, Executor, NoiseModel};

    /// Dense forward confusion matrix of `readout` over `measured`:
    /// `A[out][in]` = probability of reading `out` given true `in`.
    fn confusion_matrix(measured: &[usize], readout: &ReadoutModel) -> Vec<Vec<f64>> {
        let n = measured.len();
        let dim = 1usize << n;
        let mut a = vec![vec![0.0; dim]; dim];
        for (row, row_a) in a.iter_mut().enumerate() {
            for (col, cell) in row_a.iter_mut().enumerate() {
                let mut p = 1.0;
                for (pos, &q) in measured.iter().enumerate() {
                    let (p01, p10) = readout.flip_probs(q, n);
                    let true_bit = (col >> pos) & 1;
                    let read_bit = (row >> pos) & 1;
                    p *= match (true_bit, read_bit) {
                        (0, 0) => 1.0 - p01,
                        (0, 1) => p01,
                        (1, 1) => 1.0 - p10,
                        (1, 0) => p10,
                        _ => unreachable!(),
                    };
                }
                *cell = p;
            }
        }
        a
    }

    fn mat_vec(a: &[Vec<f64>], v: &[f64]) -> Vec<f64> {
        a.iter()
            .map(|row| row.iter().zip(v).map(|(x, y)| x * y).sum())
            .collect()
    }

    /// The analytic expansion `Σ_{k=0}^{K} (I − A)^k p̃` computed by dense
    /// linear algebra — the ground truth `neumann_mitigate` must match.
    fn analytic_expansion(a: &[Vec<f64>], noisy: &[f64], order: usize) -> Vec<f64> {
        let mut acc = vec![0.0; noisy.len()];
        let mut term = noisy.to_vec(); // (I − A)^k p̃, starting at k = 0
        for k in 0..=order {
            for (s, t) in acc.iter_mut().zip(&term) {
                *s += t;
            }
            if k < order {
                let a_term = mat_vec(a, &term);
                for (t, at) in term.iter_mut().zip(&a_term) {
                    *t -= at;
                }
            }
        }
        acc
    }

    #[test]
    fn matches_analytic_expansion_on_small_registers() {
        let readout = ReadoutModel::with_crosstalk(0.03, 0.01);
        for n in 1..=3usize {
            let measured: Vec<usize> = (0..n).collect();
            // An arbitrary strictly-positive distribution.
            let dim = 1usize << n;
            let raw: Vec<f64> = (0..dim).map(|i| 1.0 + (i as f64) * 0.37).collect();
            let total: f64 = raw.iter().sum();
            let probs: Vec<f64> = raw.iter().map(|p| p / total).collect();
            let noisy_dense = mat_vec(&confusion_matrix(&measured, &readout), &probs);
            let noisy = Distribution::try_from_probs(n, noisy_dense.clone()).expect("valid probs");
            for order in 0..=4usize {
                let expect =
                    analytic_expansion(&confusion_matrix(&measured, &readout), &noisy_dense, order);
                let got = neumann_mitigate(&noisy, &measured, &readout, order);
                // Small noise keeps the expansion inside the simplex, so
                // clamping and renormalization are no-ops and the match
                // is exact up to float error.
                for (i, &e) in expect.iter().enumerate() {
                    assert!(
                        (got.prob(i as u64) - e).abs() < 1e-9,
                        "n={n} order={order} outcome={i}: {} vs {e}",
                        got.prob(i as u64)
                    );
                }
            }
        }
    }

    #[test]
    fn higher_order_converges_to_inverse() {
        // The residual bias is (I − A)^{K+1}: fidelity to the true
        // distribution must improve monotonically-ish and reach ~exact
        // recovery at moderate order.
        let readout = ReadoutModel::uniform(0.06);
        let measured = vec![0, 1, 2];
        let circ = vqe_ansatz(3, 1, 5);
        let ideal = ideal_distribution(&Program::from_circuit(&circ), &measured);
        let noisy = apply_readout(&ideal, &measured, &readout);
        let f_raw = hellinger_fidelity(&noisy, &ideal);
        let f2 = hellinger_fidelity(&neumann_mitigate(&noisy, &measured, &readout, 2), &ideal);
        let f6 = hellinger_fidelity(&neumann_mitigate(&noisy, &measured, &readout, 6), &ideal);
        assert!(f2 > f_raw, "order 2 must beat raw readout: {f_raw} -> {f2}");
        assert!(f6 >= f2 - 1e-12, "order 6 must not regress: {f2} -> {f6}");
        assert!(f6 > 0.9999, "order 6 should nearly invert: {f6}");
    }

    #[test]
    fn order_zero_is_identity() {
        let readout = ReadoutModel::uniform(0.1);
        let noisy = Distribution::try_from_probs(2, vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        let got = neumann_mitigate(&noisy, &[0, 1], &readout, 0);
        for o in 0..4u64 {
            assert!((got.prob(o) - noisy.prob(o)).abs() < 1e-12);
        }
    }

    #[test]
    fn run_neumann_improves_readout_noise_end_to_end() {
        let circ = vqe_ansatz(4, 1, 7);
        let measured: Vec<usize> = (0..4).collect();
        let ideal = ideal_distribution(&Program::from_circuit(&circ), &measured);
        let readout = ReadoutModel::uniform(0.04);
        let noise = NoiseModel::ideal().with_readout_model(readout.clone());
        let exec = Executor::with_backend(noise, Backend::DensityMatrix);
        let report = run_neumann(&exec, &circ, &measured, &readout, 3);
        let f_before = hellinger_fidelity(&report.global, &ideal);
        let f_after = hellinger_fidelity(&report.distribution, &ideal);
        assert!(
            f_after > f_before + 0.005,
            "neumann should mitigate readout noise: {f_before} -> {f_after}"
        );
        assert_eq!(report.stats.n_circuits, 1);
        assert_eq!(report.order, 3);
    }
}
