//! Wire cutting, repurposed for state tracing.
//!
//! Conventional wire cutting (Peng et al.) replaces a qubit wire by a
//! measure-and-prepare ensemble using the identity
//!
//! ```text
//! ρ = ½ Σ_{M ∈ {I,X,Y,Z}}  M ⊗ tr_j(M_j ρ)          (paper Eq. 1)
//! ```
//!
//! QuTracer repurposes the same identity to *watch* the state at a cut point
//! rather than to split the circuit. This crate provides:
//!
//! * the canonical cut expansions ([`full_cut_terms`] with 6 preparation
//!   states, [`reduced_cut_terms`] with 4 after the paper's *state
//!   preparation reduction*);
//! * [`build_cut_programs`] — the executable ensemble for a single wire cut,
//!   using one extra qubit so that the upstream wire is measured at the end
//!   (no mid-circuit measurement, as in the paper's non-LOCC setting);
//! * [`recombine`] — quasi-probability recombination of ensemble results.

use qt_circuit::{basis, Circuit};
use qt_dist::Distribution;
use qt_math::states::PrepState;
use qt_math::Pauli;
use qt_sim::Program;

/// One term of a wire-cut expansion: run the upstream circuit, measure the
/// cut wire in `basis`, prepare `prep` on the downstream wire, and weight
/// the outcome `m ∈ {0, 1}` by `coeff · outcome_weights[m]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CutTerm {
    /// Scalar coefficient of the term.
    pub coeff: f64,
    /// Measurement basis on the upstream wire.
    pub basis: Pauli,
    /// Classical weight of each measurement outcome (indexed by bit).
    pub outcome_weights: [f64; 2],
    /// State prepared on the downstream wire.
    pub prep: PrepState,
}

/// The canonical 8-term expansion (6 preparation states).
///
/// Terms: `½(P₀+P₁)⊗tr(ρ)` from `I`, and `±½` eigenstate preparations for
/// `X`, `Y`, `Z` weighted by the measured eigenvalue.
pub fn full_cut_terms() -> Vec<CutTerm> {
    let e = [1.0, -1.0]; // eigenvalue of outcome 0 / 1 after basis rotation
    let u = [1.0, 1.0];
    vec![
        // I-component: measure anything (Z), weight +1, prepare |0⟩ and |1⟩.
        CutTerm {
            coeff: 0.5,
            basis: Pauli::Z,
            outcome_weights: u,
            prep: PrepState::Zero,
        },
        CutTerm {
            coeff: 0.5,
            basis: Pauli::Z,
            outcome_weights: u,
            prep: PrepState::One,
        },
        // X-component.
        CutTerm {
            coeff: 0.5,
            basis: Pauli::X,
            outcome_weights: e,
            prep: PrepState::Plus,
        },
        CutTerm {
            coeff: -0.5,
            basis: Pauli::X,
            outcome_weights: e,
            prep: PrepState::Minus,
        },
        // Y-component.
        CutTerm {
            coeff: 0.5,
            basis: Pauli::Y,
            outcome_weights: e,
            prep: PrepState::PlusI,
        },
        CutTerm {
            coeff: -0.5,
            basis: Pauli::Y,
            outcome_weights: e,
            prep: PrepState::MinusI,
        },
        // Z-component.
        CutTerm {
            coeff: 0.5,
            basis: Pauli::Z,
            outcome_weights: e,
            prep: PrepState::Zero,
        },
        CutTerm {
            coeff: -0.5,
            basis: Pauli::Z,
            outcome_weights: e,
            prep: PrepState::One,
        },
    ]
}

/// The reduced expansion using only the four preparations
/// `{|0⟩, |1⟩, |+⟩, |i⟩}` — the paper's *state preparation reduction*
/// (`|−⟩⟨−| = |0⟩⟨0| + |1⟩⟨1| − |+⟩⟨+|`, and likewise for `|−i⟩`).
pub fn reduced_cut_terms() -> Vec<CutTerm> {
    let e = [1.0, -1.0];
    let u = [1.0, 1.0];
    vec![
        CutTerm {
            coeff: 0.5,
            basis: Pauli::Z,
            outcome_weights: u,
            prep: PrepState::Zero,
        },
        CutTerm {
            coeff: 0.5,
            basis: Pauli::Z,
            outcome_weights: u,
            prep: PrepState::One,
        },
        // X: +1·|+⟩ − ½·|0⟩ − ½·|1⟩, all weighted by the X outcome.
        CutTerm {
            coeff: 1.0,
            basis: Pauli::X,
            outcome_weights: e,
            prep: PrepState::Plus,
        },
        CutTerm {
            coeff: -0.5,
            basis: Pauli::X,
            outcome_weights: e,
            prep: PrepState::Zero,
        },
        CutTerm {
            coeff: -0.5,
            basis: Pauli::X,
            outcome_weights: e,
            prep: PrepState::One,
        },
        // Y: +1·|i⟩ − ½·|0⟩ − ½·|1⟩.
        CutTerm {
            coeff: 1.0,
            basis: Pauli::Y,
            outcome_weights: e,
            prep: PrepState::PlusI,
        },
        CutTerm {
            coeff: -0.5,
            basis: Pauli::Y,
            outcome_weights: e,
            prep: PrepState::Zero,
        },
        CutTerm {
            coeff: -0.5,
            basis: Pauli::Y,
            outcome_weights: e,
            prep: PrepState::One,
        },
        // Z.
        CutTerm {
            coeff: 0.5,
            basis: Pauli::Z,
            outcome_weights: e,
            prep: PrepState::Zero,
        },
        CutTerm {
            coeff: -0.5,
            basis: Pauli::Z,
            outcome_weights: e,
            prep: PrepState::One,
        },
    ]
}

/// The location of a single wire cut: on `qubit`, after instruction
/// `position` of the circuit (0 = before the first instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutPoint {
    /// The wire being cut.
    pub qubit: usize,
    /// Number of leading instructions that stay upstream.
    pub position: usize,
}

/// One executable circuit of a cut ensemble.
#[derive(Debug, Clone)]
pub struct CutProgram {
    /// The term this circuit realizes.
    pub term: CutTerm,
    /// The executable program on `n + 1` qubits.
    pub program: Program,
    /// The qubit carrying the upstream wire (measured in Z at the end;
    /// the basis rotation is already in the program).
    pub old_wire: usize,
    /// The qubit carrying the downstream wire.
    pub new_wire: usize,
}

/// Builds the executable ensemble for a single wire cut.
///
/// The upstream wire keeps its original index and is rotated into the
/// measurement basis at the cut; downstream gates on the cut qubit are
/// re-targeted to a fresh qubit (`n`), which is prepared in the term's
/// state at the start.
///
/// # Panics
///
/// Panics if `cut.position > circ.len()` or `cut.qubit` is out of range.
pub fn build_cut_programs(circ: &Circuit, cut: CutPoint, terms: &[CutTerm]) -> Vec<CutProgram> {
    let n = circ.n_qubits();
    assert!(cut.qubit < n, "cut qubit out of range");
    assert!(cut.position <= circ.len(), "cut position out of range");
    let new_wire = n;

    terms
        .iter()
        .map(|term| {
            let mut c = Circuit::new(n + 1);
            // Prepare the downstream wire.
            for i in basis::prepare(term.prep, new_wire) {
                c.push_instruction(i);
            }
            // Upstream instructions unchanged.
            for instr in &circ.instructions()[..cut.position] {
                c.push(instr.gate.clone(), instr.qubits.clone());
            }
            // Rotate the upstream wire into the measurement basis.
            for i in basis::measure_rotation(term.basis, cut.qubit) {
                c.push_instruction(i);
            }
            // Downstream instructions, re-targeted.
            for instr in &circ.instructions()[cut.position..] {
                let qs = instr
                    .qubits
                    .iter()
                    .map(|&q| if q == cut.qubit { new_wire } else { q })
                    .collect();
                c.push(instr.gate.clone(), qs);
            }
            CutProgram {
                term: term.clone(),
                program: Program::from_circuit(&c),
                old_wire: cut.qubit,
                new_wire,
            }
        })
        .collect()
}

/// Recombines ensemble results into the downstream quasi-distribution.
///
/// Each entry pairs a [`CutTerm`] with the joint outcome distribution where
/// **bit 0 is the upstream (old-wire) measurement** and the remaining bits
/// are the downstream outcomes of interest. Returns the (possibly signed)
/// recombined vector over the downstream outcomes; callers typically clamp
/// and normalize via [`to_probabilities`].
pub fn recombine(results: &[(CutTerm, Distribution)]) -> Vec<f64> {
    assert!(!results.is_empty());
    let n_bits = results[0].1.n_bits();
    assert!(n_bits >= 1, "joint distribution needs the upstream bit");
    let out_len = 1usize << (n_bits - 1);
    let mut out = vec![0.0; out_len];
    for (term, joint) in results {
        assert_eq!(joint.n_bits(), n_bits, "inconsistent result sizes");
        for (idx, p) in joint.iter() {
            let m = (idx & 1) as usize;
            let rest = (idx >> 1) as usize;
            out[rest] += term.coeff * term.outcome_weights[m] * p;
        }
    }
    out
}

/// Clamps negatives to zero and normalizes (standard quasi-probability
/// post-processing).
pub fn to_probabilities(quasi: &[f64]) -> Vec<f64> {
    let clamped: Vec<f64> = quasi.iter().map(|&p| p.max(0.0)).collect();
    let total: f64 = clamped.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / clamped.len() as f64; clamped.len()];
    }
    clamped.iter().map(|&p| p / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_math::states::{decompose_qubit_operator, recompose_qubit_operator};
    use qt_math::{Complex, Matrix};
    use qt_sim::{ideal_distribution, Executor, NoiseModel};

    /// Verifies Eq. (1): the cut terms reconstruct an arbitrary single-qubit
    /// state algebraically.
    fn check_terms_reconstruct(terms: &[CutTerm]) {
        // ρ arbitrary (from Bloch vector inside the ball).
        let rho = qt_math::states::density_from_bloch([0.3, -0.5, 0.4]);
        let mut recon = Matrix::zeros(2, 2);
        for t in terms {
            // Classical weight: Σ_m w[m] ⟨v_m|ρ|v_m⟩ over basis eigenvectors.
            let eig = t.basis.eigenbasis();
            let mut weight = 0.0;
            for (m, (_, v)) in eig.iter().enumerate() {
                let mut amp = Complex::ZERO;
                for r in 0..2 {
                    for c in 0..2 {
                        amp += v[r].conj() * rho[(r, c)] * v[c];
                    }
                }
                weight += t.outcome_weights[m] * amp.re;
            }
            recon = recon.add(&t.prep.projector().scale(Complex::real(t.coeff * weight)));
        }
        assert!(
            recon.approx_eq(&rho, 1e-10),
            "terms do not reconstruct the state"
        );
    }

    #[test]
    fn full_terms_reconstruct_arbitrary_state() {
        check_terms_reconstruct(&full_cut_terms());
    }

    #[test]
    fn reduced_terms_reconstruct_arbitrary_state() {
        check_terms_reconstruct(&reduced_cut_terms());
    }

    #[test]
    fn reduced_terms_use_only_four_preps() {
        for t in reduced_cut_terms() {
            assert!(PrepState::REDUCED.contains(&t.prep));
        }
    }

    #[test]
    fn cut_reconstructs_entangled_circuit() {
        // H(0); CX(0,1); cut qubit 0 after the CX; then Ry(0); CX(0,1).
        // Compare the reconstructed joint distribution with direct sim.
        let mut circ = Circuit::new(2);
        circ.h(0).cx(0, 1).ry(0, 0.9).cx(0, 1);
        let cut = CutPoint {
            qubit: 0,
            position: 2,
        };
        for terms in [full_cut_terms(), reduced_cut_terms()] {
            let programs = build_cut_programs(&circ, cut, &terms);
            let mut results = Vec::new();
            for cp in &programs {
                // Joint dist: bit0 = old wire, then downstream (new wire, q1).
                let dist = ideal_distribution(&cp.program, &[cp.old_wire, cp.new_wire, 1]);
                results.push((cp.term.clone(), dist));
            }
            let quasi = recombine(&results);
            let direct = ideal_distribution(&qt_sim::Program::from_circuit(&circ), &[0, 1]);
            for (i, a) in quasi.iter().enumerate() {
                let b = direct.prob(i as u64);
                assert!((a - b).abs() < 1e-9, "cut reconstruction {a} vs {b}");
            }
        }
    }

    #[test]
    fn cut_reconstructs_under_downstream_noise() {
        // The identity holds channel-wise: cut + noisy downstream equals the
        // uncut circuit with the same noisy downstream. Make the upstream
        // noiseless-equivalent by cutting right after a gate and using Z
        // basis terms identical... here we simply compare against the same
        // ensemble executed with the noiseless engine for the upstream part
        // by using a pure upstream (only the downstream is noisy in both).
        let mut circ = Circuit::new(2);
        circ.h(0).cx(0, 1).ry(0, 0.5).cz(0, 1);
        let cut = CutPoint {
            qubit: 0,
            position: 2,
        };
        let noise = NoiseModel::depolarizing(0.05, 0.1);
        let exec = Executor::new(noise);
        let programs = build_cut_programs(&circ, cut, &reduced_cut_terms());
        let mut results = Vec::new();
        for cp in &programs {
            let dist = exec.raw_distribution(&cp.program, &[cp.old_wire, cp.new_wire, 1]);
            results.push((cp.term.clone(), dist));
        }
        let quasi = recombine(&results);
        let direct = exec.raw_distribution(&qt_sim::Program::from_circuit(&circ), &[0, 1]);
        // The ensemble circuits carry extra noisy 1q gates (preparation and
        // basis rotation), so equality is approximate.
        for (i, a) in quasi.iter().enumerate() {
            let b = direct.prob(i as u64);
            assert!((a - b).abs() < 0.05, "noisy cut {a} vs {b}");
        }
    }

    #[test]
    fn prep_decomposition_matches_cut_reduction() {
        // decompose/recompose in qt-math is the same reduction rule.
        let rho = PrepState::MinusI.projector();
        let coeffs = decompose_qubit_operator(&rho);
        assert!(recompose_qubit_operator(&coeffs).approx_eq(&rho, 1e-12));
    }

    #[test]
    fn to_probabilities_handles_negatives() {
        let q = vec![0.6, -0.1, 0.5];
        let p = to_probabilities(&q);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p[1], 0.0);
    }
}
