//! Vendored property-testing shim with the slice of the `proptest` API this
//! workspace uses: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`/`prop_filter`, [`prop_oneof!`], tuple/range strategies,
//! `prop::collection::vec`, `prop::sample::select`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion macros.
//!
//! The container this repository builds in has no crates.io access, so the
//! shim reimplements the surface in-tree. Differences from upstream worth
//! knowing:
//!
//! * **No shrinking.** A failing case reports its inputs (via the assertion
//!   message) but is not minimized.
//! * **Deterministic.** Each test derives its RNG seed from its own name,
//!   so failures reproduce exactly and CI runs are stable.
//! * Rejections (`prop_assume!`, `prop_filter`) are retried with a bounded
//!   budget; an over-restrictive filter panics instead of looping forever.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Discards generated values failing the predicate (bounded retry).
        fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                reason: reason.into(),
                f,
            }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy for heterogeneous collections ([`crate::prop_oneof!`]).
    pub fn boxed<T, S>(s: S) -> Box<dyn Strategy<Value = T>>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(s)
    }

    /// Always yields a clone of the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        source: S,
        reason: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 consecutive samples",
                self.reason
            );
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union of the given arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = (rng.random::<u64>() % self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.random::<u64>() % span) as $t
                }
            }
        )*};
    }
    impl_int_range!(usize, u64, u32, u16, u8);

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.random::<u64>() % span) as i64) as $t
                }
            }
        )*};
    }
    impl_signed_range!(i64, i32, i16, i8);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            self.start + rng.random::<f64>() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            self.start + rng.random::<f64>() as f32 * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Element-count bound for [`vec`]: an exact count or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.random::<u64>() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Uniform boolean strategy (`prop::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.random::<u64>() & 1 == 1
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Uniformly selects one of the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = (rng.random::<u64>() % self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was vetoed (`prop_assume!`); it is retried, not failed.
        Reject(String),
        /// A property assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runs `body` until `config.cases` cases are accepted, panicking on the
    /// first failure. `name` seeds the (deterministic) generator.
    pub fn run<F>(config: ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut StdRng) -> TestCaseResult,
    {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name.
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let reject_budget = config.cases.saturating_mul(64).max(1024);
        while accepted < config.cases {
            match body(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    if rejected > reject_budget {
                        panic!("proptest '{name}': too many rejections ({rejected}), last: {why}");
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case {accepted}: {msg}")
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} vs {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Vetoes the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run(config, stringify!($name), |rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)*
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}
