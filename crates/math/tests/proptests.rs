//! Property-based tests for the linear-algebra foundation.

use proptest::prelude::*;
use qt_math::states::{
    decompose_qubit_operator, decompose_qubit_operator_full, decompose_two_qubit_operator,
    recompose_qubit_operator, recompose_qubit_operator_full, recompose_two_qubit_operator,
};
use qt_math::{Complex, Matrix, Pauli, PauliString};

fn arb_complex() -> impl Strategy<Value = Complex> {
    (-2.0..2.0f64, -2.0..2.0f64).prop_map(|(re, im)| Complex::new(re, im))
}

fn arb_matrix2() -> impl Strategy<Value = Matrix> {
    prop::collection::vec(arb_complex(), 4).prop_map(|v| Matrix::from_rows(2, 2, v))
}

fn arb_hermitian(dim: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(arb_complex(), dim * dim).prop_map(move |v| {
        let m = Matrix::from_rows(dim, dim, v);
        m.add(&m.dagger()).scale(Complex::real(0.5))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qubit_operator_decomposition_round_trips(m in arb_matrix2()) {
        let reduced = decompose_qubit_operator(&m);
        prop_assert!(recompose_qubit_operator(&reduced).approx_eq(&m, 1e-9));
        let full = decompose_qubit_operator_full(&m);
        prop_assert!(recompose_qubit_operator_full(&full).approx_eq(&m, 1e-9));
    }

    #[test]
    fn two_qubit_decomposition_round_trips(
        entries in prop::collection::vec(arb_complex(), 16),
    ) {
        let m = Matrix::from_rows(4, 4, entries);
        let coeffs = decompose_two_qubit_operator(&m);
        prop_assert!(recompose_two_qubit_operator(&coeffs).approx_eq(&m, 1e-8));
    }

    #[test]
    fn hermitian_eigen_reconstructs(h in arb_hermitian(4)) {
        let (vals, v) = h.hermitian_eigen();
        prop_assert!(v.is_unitary(1e-8));
        let mut d = Matrix::zeros(4, 4);
        for (i, &l) in vals.iter().enumerate() {
            d[(i, i)] = Complex::real(l);
        }
        prop_assert!(v.mul(&d).mul(&v.dagger()).approx_eq(&h, 1e-7));
    }

    #[test]
    fn kron_is_associative(a in arb_matrix2(), b in arb_matrix2(), c in arb_matrix2()) {
        let left = a.kron(&b).kron(&c);
        let right = a.kron(&b.kron(&c));
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn pauli_string_multiplication_matches_matrices(
        ps in prop::collection::vec(prop::sample::select(vec![Pauli::I, Pauli::X, Pauli::Y, Pauli::Z]), 3),
        qs in prop::collection::vec(prop::sample::select(vec![Pauli::I, Pauli::X, Pauli::Y, Pauli::Z]), 3),
    ) {
        let a = PauliString::from_paulis(ps);
        let b = PauliString::from_paulis(qs);
        let symbolic = a.mul(&b).matrix();
        let direct = a.matrix().mul(&b.matrix());
        prop_assert!(symbolic.approx_eq(&direct, 1e-9));
        prop_assert_eq!(a.commutes_with(&b), {
            let ab = a.matrix().mul(&b.matrix());
            let ba = b.matrix().mul(&a.matrix());
            ab.approx_eq(&ba, 1e-9)
        });
    }

    #[test]
    fn complex_field_axioms(a in arb_complex(), b in arb_complex(), c in arb_complex()) {
        prop_assert!(((a + b) + c).approx_eq(a + (b + c), 1e-9));
        prop_assert!(((a * b) * c).approx_eq(a * (b * c), 1e-7));
        prop_assert!((a * (b + c)).approx_eq(a * b + a * c, 1e-8));
        prop_assume!(b.norm() > 1e-6);
        prop_assert!(((a / b) * b).approx_eq(a, 1e-7));
    }

    #[test]
    fn bloch_round_trip_for_mixed_states(
        x in -0.57f64..0.57,
        y in -0.57f64..0.57,
        z in -0.57f64..0.57,
    ) {
        let rho = qt_math::states::density_from_bloch([x, y, z]);
        prop_assert!(rho.is_hermitian(1e-12));
        prop_assert!(rho.trace().approx_eq(Complex::ONE, 1e-12));
        let v = qt_math::states::bloch_vector(&rho);
        prop_assert!((v[0] - x).abs() < 1e-10);
        prop_assert!((v[1] - y).abs() < 1e-10);
        prop_assert!((v[2] - z).abs() < 1e-10);
        // Physical (|r| ≤ 1 here by construction): eigenvalues ≥ 0.
        let (vals, _) = rho.hermitian_eigen();
        prop_assert!(vals.iter().all(|&l| l > -1e-10));
    }
}
