//! Pauli operators, Pauli strings and their algebra.
//!
//! Pauli checks (`C_L`, `C_R`) and cut-decomposition bases are all Pauli
//! operators, so the QSPC machinery is expressed in terms of the types here.

use crate::complex::Complex;
use crate::matrix::Matrix;
use std::fmt;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X (bit flip).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z (phase flip).
    Z,
}

impl Pauli {
    /// All four Paulis in canonical order `I, X, Y, Z`.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// The 2×2 matrix of this Pauli.
    pub fn matrix(self) -> Matrix {
        match self {
            Pauli::I => Matrix::identity(2),
            Pauli::X => x2(),
            Pauli::Y => y2(),
            Pauli::Z => z2(),
        }
    }

    /// Product `self · other = phase · pauli`.
    ///
    /// Returns the resulting Pauli together with the phase in `{±1, ±i}`.
    #[allow(clippy::should_implement_trait)] // returns (phase, Pauli), not Self
    pub fn mul(self, other: Pauli) -> (Complex, Pauli) {
        use Pauli::*;
        match (self, other) {
            (I, p) | (p, I) => (Complex::ONE, p),
            (X, X) | (Y, Y) | (Z, Z) => (Complex::ONE, I),
            (X, Y) => (Complex::I, Z),
            (Y, X) => (-Complex::I, Z),
            (Y, Z) => (Complex::I, X),
            (Z, Y) => (-Complex::I, X),
            (Z, X) => (Complex::I, Y),
            (X, Z) => (-Complex::I, Y),
        }
    }

    /// Whether this Pauli commutes with `other`.
    pub fn commutes_with(self, other: Pauli) -> bool {
        self == Pauli::I || other == Pauli::I || self == other
    }

    /// Eigenvalues and eigenvectors: returns `[(+1, v+), (-1, v-)]`.
    ///
    /// For `I` both "eigenvalues" are `+1` (the computational basis is used).
    pub fn eigenbasis(self) -> [(f64, [Complex; 2]); 2] {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        match self {
            Pauli::I => [
                (1.0, [Complex::ONE, Complex::ZERO]),
                (1.0, [Complex::ZERO, Complex::ONE]),
            ],
            Pauli::Z => [
                (1.0, [Complex::ONE, Complex::ZERO]),
                (-1.0, [Complex::ZERO, Complex::ONE]),
            ],
            Pauli::X => [
                (1.0, [Complex::real(s), Complex::real(s)]),
                (-1.0, [Complex::real(s), Complex::real(-s)]),
            ],
            Pauli::Y => [
                (1.0, [Complex::real(s), Complex::imag(s)]),
                (-1.0, [Complex::real(s), Complex::imag(-s)]),
            ],
        }
    }

    /// One-letter label (`I`, `X`, `Y`, `Z`).
    pub fn label(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The 2×2 Pauli-X matrix.
pub fn x2() -> Matrix {
    Matrix::mat2(Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO)
}

/// The 2×2 Pauli-Y matrix.
pub fn y2() -> Matrix {
    Matrix::mat2(Complex::ZERO, -Complex::I, Complex::I, Complex::ZERO)
}

/// The 2×2 Pauli-Z matrix.
pub fn z2() -> Matrix {
    Matrix::mat2(Complex::ONE, Complex::ZERO, Complex::ZERO, -Complex::ONE)
}

/// A Pauli string: a Pauli operator on each of `n` qubits with a phase.
///
/// Qubit 0 is the least-significant position. The string `Z_j` (Z on qubit
/// `j`, identity elsewhere) is the check operator used throughout QuTracer.
///
/// # Example
///
/// ```
/// use qt_math::{Pauli, PauliString};
/// let zj = PauliString::single(3, 1, Pauli::Z);
/// assert_eq!(zj.to_string(), "+IZI");
/// assert_eq!(zj.weight(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PauliString {
    phase: Complex,
    paulis: Vec<Pauli>,
}

impl PauliString {
    /// The identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            phase: Complex::ONE,
            paulis: vec![Pauli::I; n],
        }
    }

    /// A string with `p` on qubit `q` and identity elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    pub fn single(n: usize, q: usize, p: Pauli) -> Self {
        assert!(q < n, "qubit index {q} out of range for {n} qubits");
        let mut s = PauliString::identity(n);
        s.paulis[q] = p;
        s
    }

    /// Builds a string from per-qubit Paulis (qubit 0 first).
    pub fn from_paulis(paulis: Vec<Pauli>) -> Self {
        PauliString {
            phase: Complex::ONE,
            paulis,
        }
    }

    /// Number of qubits.
    pub fn len(&self) -> usize {
        self.paulis.len()
    }

    /// Whether the string is on zero qubits.
    pub fn is_empty(&self) -> bool {
        self.paulis.is_empty()
    }

    /// The scalar phase in front of the tensor product.
    pub fn phase(&self) -> Complex {
        self.phase
    }

    /// The Pauli on qubit `q`.
    pub fn pauli(&self, q: usize) -> Pauli {
        self.paulis[q]
    }

    /// Per-qubit Paulis, qubit 0 first.
    pub fn paulis(&self) -> &[Pauli] {
        &self.paulis
    }

    /// Returns a copy scaled by `c`.
    pub fn with_phase(&self, c: Complex) -> Self {
        PauliString {
            phase: self.phase * c,
            paulis: self.paulis.clone(),
        }
    }

    /// Number of non-identity positions.
    pub fn weight(&self) -> usize {
        self.paulis.iter().filter(|&&p| p != Pauli::I).count()
    }

    /// Indices of non-identity positions.
    pub fn support(&self) -> Vec<usize> {
        self.paulis
            .iter()
            .enumerate()
            .filter(|(_, &p)| p != Pauli::I)
            .map(|(i, _)| i)
            .collect()
    }

    /// Product of two strings (with phase tracking).
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree.
    pub fn mul(&self, rhs: &PauliString) -> PauliString {
        assert_eq!(self.len(), rhs.len(), "pauli string length mismatch");
        let mut phase = self.phase * rhs.phase;
        let paulis = self
            .paulis
            .iter()
            .zip(&rhs.paulis)
            .map(|(&a, &b)| {
                let (ph, p) = a.mul(b);
                phase *= ph;
                p
            })
            .collect();
        PauliString { phase, paulis }
    }

    /// Whether the two strings commute as operators.
    pub fn commutes_with(&self, rhs: &PauliString) -> bool {
        assert_eq!(self.len(), rhs.len(), "pauli string length mismatch");
        let anti = self
            .paulis
            .iter()
            .zip(&rhs.paulis)
            .filter(|(&a, &b)| !a.commutes_with(b))
            .count();
        anti % 2 == 0
    }

    /// Hermitian conjugate.
    pub fn dagger(&self) -> PauliString {
        PauliString {
            phase: self.phase.conj(),
            paulis: self.paulis.clone(),
        }
    }

    /// The full `2^n × 2^n` matrix (including phase). Only for small `n`.
    ///
    /// Qubit 0 is the least-significant bit of the basis-state index.
    pub fn matrix(&self) -> Matrix {
        let mut m = Matrix::identity(1);
        // Most-significant qubit first in the Kronecker product so that
        // qubit 0 is the least-significant index bit.
        for &p in self.paulis.iter().rev() {
            m = m.kron(&p.matrix());
        }
        m.scale(self.phase)
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.phase.approx_eq(Complex::ONE, 1e-12) {
            "+".to_string()
        } else if self.phase.approx_eq(-Complex::ONE, 1e-12) {
            "-".to_string()
        } else if self.phase.approx_eq(Complex::I, 1e-12) {
            "+i".to_string()
        } else if self.phase.approx_eq(-Complex::I, 1e-12) {
            "-i".to_string()
        } else {
            format!("({})", self.phase)
        };
        // Most-significant qubit printed first, Qiskit-style.
        let body: String = self.paulis.iter().rev().map(|p| p.label()).collect();
        write!(f, "{sign}{body}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_products_have_correct_phases() {
        // XY = iZ
        let (ph, p) = Pauli::X.mul(Pauli::Y);
        assert_eq!(p, Pauli::Z);
        assert!(ph.approx_eq(Complex::I, 1e-15));
        // ZX = iY
        let (ph, p) = Pauli::Z.mul(Pauli::X);
        assert_eq!(p, Pauli::Y);
        assert!(ph.approx_eq(Complex::I, 1e-15));
        // XZ = -iY
        let (ph, p) = Pauli::X.mul(Pauli::Z);
        assert_eq!(p, Pauli::Y);
        assert!(ph.approx_eq(-Complex::I, 1e-15));
    }

    #[test]
    fn pauli_matrices_match_symbolic_products() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let (ph, p) = a.mul(b);
                let direct = a.matrix().mul(&b.matrix());
                let symbolic = p.matrix().scale(ph);
                assert!(direct.approx_eq(&symbolic, 1e-12), "mismatch for {a}·{b}");
            }
        }
    }

    #[test]
    fn commutation_matches_matrices() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let ab = a.matrix().mul(&b.matrix());
                let ba = b.matrix().mul(&a.matrix());
                let commute = ab.approx_eq(&ba, 1e-12);
                assert_eq!(commute, a.commutes_with(b), "commutation of {a},{b}");
            }
        }
    }

    #[test]
    fn eigenbasis_satisfies_eigen_equation() {
        for p in [Pauli::X, Pauli::Y, Pauli::Z] {
            let m = p.matrix();
            for (val, vec) in p.eigenbasis() {
                let mv = m.mul_vec(&vec);
                for (a, b) in mv.iter().zip(vec.iter()) {
                    assert!(
                        a.approx_eq(b.scale(val), 1e-12),
                        "eigen equation failed for {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn string_product_and_commutation() {
        let zi = PauliString::single(2, 1, Pauli::Z);
        let iz = PauliString::single(2, 0, Pauli::Z);
        let xz = PauliString::from_paulis(vec![Pauli::Z, Pauli::X]);
        assert!(zi.commutes_with(&iz));
        assert!(!zi.mul(&xz).commutes_with(&xz) || !zi.commutes_with(&xz));
        // Z on qubit 1 anti-commutes with X on qubit 1.
        let x1 = PauliString::single(2, 1, Pauli::X);
        assert!(!zi.commutes_with(&x1));
    }

    #[test]
    fn string_matrix_matches_kron() {
        // IZ (Z on qubit 0 of 2) should be diag(1,-1,1,-1).
        let s = PauliString::single(2, 0, Pauli::Z);
        let m = s.matrix();
        assert!(m[(0, 0)].approx_eq(Complex::ONE, 1e-15));
        assert!(m[(1, 1)].approx_eq(-Complex::ONE, 1e-15));
        assert!(m[(2, 2)].approx_eq(Complex::ONE, 1e-15));
        assert!(m[(3, 3)].approx_eq(-Complex::ONE, 1e-15));
    }

    #[test]
    fn display_is_msb_first() {
        let s = PauliString::single(3, 0, Pauli::X);
        assert_eq!(s.to_string(), "+IIX");
        let t = PauliString::single(3, 2, Pauli::Y).with_phase(-Complex::ONE);
        assert_eq!(t.to_string(), "-YII");
    }

    #[test]
    fn string_mul_tracks_phase() {
        let z = PauliString::single(1, 0, Pauli::Z);
        let x = PauliString::single(1, 0, Pauli::X);
        let zx = z.mul(&x);
        assert_eq!(zx.pauli(0), Pauli::Y);
        assert!(zx.phase().approx_eq(Complex::I, 1e-15));
    }
}
