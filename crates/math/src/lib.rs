//! Complex arithmetic, small dense linear algebra and Pauli algebra.
//!
//! This crate is the numerical foundation of the QuTracer reproduction. It is
//! deliberately dependency-free: quantum gates, observables and density
//! matrices are small complex matrices, and everything the rest of the
//! workspace needs — complex numbers, dense matrices, Kronecker products,
//! single-qubit eigenbases and Pauli strings — lives here.
//!
//! # Example
//!
//! ```
//! use qt_math::{Complex, pauli};
//!
//! let zx = pauli::z2().mul(&pauli::x2());
//! // Z·X = iY
//! assert!(zx.approx_eq(&pauli::y2().scale(Complex::I), 1e-12));
//! ```

pub mod complex;
pub mod matrix;
pub mod pauli;
pub mod states;

pub use complex::Complex;
pub use matrix::Matrix;
pub use pauli::{Pauli, PauliString};
