//! Dense, row-major complex matrices sized for few-qubit operators.
//!
//! Dimensions in this workspace are tiny (2×2 up to 16×16 for gates and
//! subset density matrices, and up to `2^n × 2^n` for exact density-matrix
//! simulation of small registers), so a simple contiguous `Vec<Complex>` with
//! naive `O(n³)` multiplication is the right tool.

use crate::complex::Complex;
use std::fmt;

/// A dense, row-major complex matrix.
///
/// # Example
///
/// ```
/// use qt_math::{Complex, Matrix};
/// let h = Matrix::hadamard();
/// let hh = h.mul(&h);
/// assert!(hh.approx_eq(&Matrix::identity(2), 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<Complex>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Convenience constructor for a 2×2 matrix from row-major entries.
    pub fn mat2(a: Complex, b: Complex, c: Complex, d: Complex) -> Self {
        Matrix::from_rows(2, 2, vec![a, b, c, d])
    }

    /// The 2×2 Hadamard matrix.
    pub fn hadamard() -> Self {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Matrix::mat2(
            Complex::real(s),
            Complex::real(s),
            Complex::real(s),
            Complex::real(-s),
        )
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matrix product dimension mismatch: {}x{} times {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.cols, "matrix-vector dimension mismatch");
        let mut out = vec![Complex::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = Complex::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a + b)
            .collect();
        Matrix::from_rows(self.rows, self.cols, data)
    }

    /// Difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a - b)
            .collect();
        Matrix::from_rows(self.rows, self.cols, data)
    }

    /// Scalar multiple `c · self`.
    pub fn scale(&self, c: Complex) -> Matrix {
        let data = self.data.iter().map(|&a| a * c).collect();
        Matrix::from_rows(self.rows, self.cols, data)
    }

    /// Conjugate transpose `self†`.
    pub fn dagger(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Element-wise complex conjugate (no transposition).
    ///
    /// This is the operator the column side of a vectorized density matrix
    /// evolves under: `ρ → U ρ U†` becomes `U` on the row bits and
    /// `conj(U)` on the column bits.
    pub fn conj(&self) -> Matrix {
        let data = self.data.iter().map(|a| a.conj()).collect();
        Matrix::from_rows(self.rows, self.cols, data)
    }

    /// The main diagonal (square matrices).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn diagonal(&self) -> Vec<Complex> {
        assert!(self.is_square(), "diagonal of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).collect()
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Trace `tr(self)`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == Complex::ZERO {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Whether every entry is within `tol` of `rhs`'s.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        if (self.rows, self.cols) != (rhs.rows, rhs.cols) {
            return false;
        }
        self.data
            .iter()
            .zip(&rhs.data)
            .all(|(&a, &b)| a.approx_eq(b, tol))
    }

    /// Whether the matrix equals `rhs` up to a global phase, within `tol`.
    ///
    /// Useful for comparing unitaries where a global phase is unobservable.
    pub fn approx_eq_up_to_phase(&self, rhs: &Matrix, tol: f64) -> bool {
        if (self.rows, self.cols) != (rhs.rows, rhs.cols) {
            return false;
        }
        // Find the largest entry of rhs to fix the phase against.
        let mut best = 0usize;
        let mut best_norm = 0.0;
        for (i, &b) in rhs.data.iter().enumerate() {
            if b.norm_sqr() > best_norm {
                best_norm = b.norm_sqr();
                best = i;
            }
        }
        if best_norm < tol * tol {
            return self.approx_eq(rhs, tol);
        }
        let phase = self.data[best] / rhs.data[best];
        if (phase.norm() - 1.0).abs() > tol {
            return false;
        }
        self.approx_eq(&rhs.scale(phase), tol)
    }

    /// Whether `self† · self = I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.dagger()
            .mul(self)
            .approx_eq(&Matrix::identity(self.rows), tol)
    }

    /// Whether `self = self†` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.dagger(), tol)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// `tr(self · rhs)` computed without forming the product.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible with a square product.
    pub fn trace_product(&self, rhs: &Matrix) -> Complex {
        assert_eq!(self.cols, rhs.rows);
        assert_eq!(self.rows, rhs.cols);
        let mut acc = Complex::ZERO;
        for i in 0..self.rows {
            for k in 0..self.cols {
                acc += self[(i, k)] * rhs[(k, i)];
            }
        }
        acc
    }

    /// Conjugation `U · self · U†`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn conjugate_by(&self, u: &Matrix) -> Matrix {
        u.mul(self).mul(&u.dagger())
    }

    /// Eigendecomposition of a Hermitian matrix by the complex Jacobi
    /// method: returns `(eigenvalues, V)` with eigenvector `i` in column `i`
    /// of `V`, so that `self = V · diag(λ) · V†`.
    ///
    /// Intended for the small (2×2 … 16×16) matrices of this workspace.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not (numerically) Hermitian.
    pub fn hermitian_eigen(&self) -> (Vec<f64>, Matrix) {
        assert!(self.is_hermitian(1e-8), "matrix is not Hermitian");
        let n = self.rows;
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        for _sweep in 0..100 {
            // Largest off-diagonal element.
            let mut best = (0usize, 0usize, 0.0f64);
            for p in 0..n {
                for q in p + 1..n {
                    let m = a[(p, q)].norm();
                    if m > best.2 {
                        best = (p, q, m);
                    }
                }
            }
            let (p, q, off) = best;
            if off < 1e-13 {
                break;
            }
            // Zero a[p][q] with a complex Givens rotation.
            let apq = a[(p, q)];
            let phi = apq.arg();
            let alpha = a[(p, p)].re;
            let beta = a[(q, q)].re;
            let r = apq.norm();
            let theta = 0.5 * (2.0 * r).atan2(alpha - beta);
            let c = theta.cos();
            let s = theta.sin();
            let e_pos = Complex::from_phase(phi);
            let e_neg = e_pos.conj();
            // J differs from identity in the (p, q) block:
            // J[p][p]=c, J[p][q]=−s·e^{iφ}, J[q][p]=s·e^{−iφ}, J[q][q]=c.
            // Apply A ← J† A J and V ← V J by updating rows/cols p, q.
            for k in 0..n {
                let akp = a[(k, p)];
                let akq = a[(k, q)];
                a[(k, p)] = akp.scale(c) + akq * e_neg.scale(s);
                a[(k, q)] = -akp * e_pos.scale(s) + akq.scale(c);
            }
            for k in 0..n {
                let apk = a[(p, k)];
                let aqk = a[(q, k)];
                a[(p, k)] = apk.scale(c) + aqk * e_pos.scale(s);
                a[(q, k)] = -apk * e_neg.scale(s) + aqk.scale(c);
            }
            for k in 0..n {
                let vkp = v[(k, p)];
                let vkq = v[(k, q)];
                v[(k, p)] = vkp.scale(c) + vkq * e_neg.scale(s);
                v[(k, q)] = -vkp * e_pos.scale(s) + vkq.scale(c);
            }
        }
        let eigenvalues = (0..n).map(|i| a[(i, i)].re).collect();
        (eigenvalues, v)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>24}", self[(i, j)].to_string())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pauli;

    #[test]
    fn identity_is_multiplicative_unit() {
        let x = pauli::x2();
        assert!(x.mul(&Matrix::identity(2)).approx_eq(&x, 1e-15));
        assert!(Matrix::identity(2).mul(&x).approx_eq(&x, 1e-15));
    }

    #[test]
    fn hadamard_is_involution() {
        let h = Matrix::hadamard();
        assert!(h.mul(&h).approx_eq(&Matrix::identity(2), 1e-12));
        assert!(h.is_unitary(1e-12));
        assert!(h.is_hermitian(1e-12));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = Matrix::identity(2);
        let b = pauli::x2();
        let ab = a.kron(&b);
        assert_eq!(ab.rows(), 4);
        // I ⊗ X swaps within each block.
        assert_eq!(ab[(0, 1)], Complex::ONE);
        assert_eq!(ab[(2, 3)], Complex::ONE);
        assert_eq!(ab[(0, 0)], Complex::ZERO);
    }

    #[test]
    fn conj_is_dagger_of_transpose() {
        let a = pauli::y2().mul(&Matrix::hadamard());
        assert!(a.conj().approx_eq(&a.transpose().dagger(), 1e-12));
        assert_eq!(a.conj().rows(), a.rows());
    }

    #[test]
    fn diagonal_extracts_main_diagonal() {
        let s = Matrix::mat2(Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::I);
        assert_eq!(s.diagonal(), vec![Complex::ONE, Complex::I]);
    }

    #[test]
    fn dagger_reverses_products() {
        let a = pauli::x2().mul(&Matrix::hadamard());
        let lhs = a.dagger();
        let rhs = Matrix::hadamard().dagger().mul(&pauli::x2().dagger());
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn trace_product_matches_explicit_product() {
        let a = Matrix::hadamard();
        let b = pauli::y2();
        let direct = a.mul(&b).trace();
        assert!(a.trace_product(&b).approx_eq(direct, 1e-12));
    }

    #[test]
    fn up_to_phase_comparison() {
        let x = pauli::x2();
        let ix = x.scale(Complex::I);
        assert!(x.approx_eq_up_to_phase(&ix, 1e-12));
        assert!(!x.approx_eq(&ix, 1e-12));
        assert!(!x.approx_eq_up_to_phase(&pauli::z2(), 1e-12));
    }

    #[test]
    fn mul_vec_matches_matrix_mul() {
        let h = Matrix::hadamard();
        let v = vec![Complex::ONE, Complex::ZERO];
        let got = h.mul_vec(&v);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(got[0].approx_eq(Complex::real(s), 1e-12));
        assert!(got[1].approx_eq(Complex::real(s), 1e-12));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_panics_on_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.mul(&b);
    }

    #[test]
    fn eigen_of_paulis() {
        for p in [pauli::x2(), pauli::y2(), pauli::z2()] {
            let (vals, v) = p.hermitian_eigen();
            let mut sorted = vals.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert!((sorted[0] + 1.0).abs() < 1e-10);
            assert!((sorted[1] - 1.0).abs() < 1e-10);
            assert!(v.is_unitary(1e-9));
        }
    }

    #[test]
    fn eigen_reconstructs_hermitian_matrix() {
        // A Hermitian 4×4 with complex off-diagonals.
        let mut h = Matrix::zeros(4, 4);
        let entries = [
            (0, 0, Complex::real(0.7)),
            (1, 1, Complex::real(-0.2)),
            (2, 2, Complex::real(0.1)),
            (3, 3, Complex::real(0.9)),
            (0, 1, Complex::new(0.3, 0.4)),
            (0, 3, Complex::new(-0.1, 0.2)),
            (1, 2, Complex::new(0.05, -0.3)),
            (2, 3, Complex::new(0.2, 0.1)),
        ];
        for (i, j, z) in entries {
            h[(i, j)] = z;
            if i != j {
                h[(j, i)] = z.conj();
            }
        }
        let (vals, v) = h.hermitian_eigen();
        let mut d = Matrix::zeros(4, 4);
        for (i, &l) in vals.iter().enumerate() {
            d[(i, i)] = Complex::real(l);
        }
        let recon = v.mul(&d).mul(&v.dagger());
        assert!(recon.approx_eq(&h, 1e-9), "eigendecomposition failed");
        assert!(v.is_unitary(1e-9));
    }

    #[test]
    fn eigen_of_pure_state_projector() {
        // |++⟩⟨++| has eigenvalues {1, 0, 0, 0}.
        let plus = Matrix::mat2(
            Complex::real(0.5),
            Complex::real(0.5),
            Complex::real(0.5),
            Complex::real(0.5),
        );
        let p2 = plus.kron(&plus);
        let (vals, _) = p2.hermitian_eigen();
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!((sorted[0] - 1.0).abs() < 1e-9);
        for &v in &sorted[1..] {
            assert!(v.abs() < 1e-9, "spurious eigenvalue {v}");
        }
    }
}
