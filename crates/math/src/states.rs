//! Single-qubit preparation states and the projector-basis decompositions
//! used by wire cutting and QSPC.
//!
//! The cut protocol prepares eigenstates of the Pauli operators:
//! `|0⟩, |1⟩, |+⟩, |−⟩, |i⟩, |−i⟩`. QuTracer's *state preparation reduction*
//! observes that any 2×2 operator can be expanded over just four rank-1
//! projectors `{|0⟩⟨0|, |1⟩⟨1|, |+⟩⟨+|, |i⟩⟨i|}`, eliminating the `|−⟩` and
//! `|−i⟩` preparations; [`decompose_qubit_operator`] implements exactly that
//! expansion (with complex coefficients, since QSPC feeds it non-Hermitian
//! operators such as `Z·ρ`).

use crate::complex::Complex;
use crate::matrix::Matrix;

/// One of the six single-qubit Pauli eigenstates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrepState {
    /// `|0⟩`, the +1 eigenstate of Z.
    Zero,
    /// `|1⟩`, the −1 eigenstate of Z.
    One,
    /// `|+⟩`, the +1 eigenstate of X.
    Plus,
    /// `|−⟩`, the −1 eigenstate of X.
    Minus,
    /// `|i⟩`, the +1 eigenstate of Y.
    PlusI,
    /// `|−i⟩`, the −1 eigenstate of Y.
    MinusI,
}

impl PrepState {
    /// The four states retained after state preparation reduction.
    pub const REDUCED: [PrepState; 4] = [
        PrepState::Zero,
        PrepState::One,
        PrepState::Plus,
        PrepState::PlusI,
    ];

    /// All six Pauli eigenstates.
    pub const ALL: [PrepState; 6] = [
        PrepState::Zero,
        PrepState::One,
        PrepState::Plus,
        PrepState::Minus,
        PrepState::PlusI,
        PrepState::MinusI,
    ];

    /// The state vector `(⟨0|ψ⟩, ⟨1|ψ⟩)`.
    pub fn ket(self) -> [Complex; 2] {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        match self {
            PrepState::Zero => [Complex::ONE, Complex::ZERO],
            PrepState::One => [Complex::ZERO, Complex::ONE],
            PrepState::Plus => [Complex::real(s), Complex::real(s)],
            PrepState::Minus => [Complex::real(s), Complex::real(-s)],
            PrepState::PlusI => [Complex::real(s), Complex::imag(s)],
            PrepState::MinusI => [Complex::real(s), Complex::imag(-s)],
        }
    }

    /// The rank-1 density matrix `|ψ⟩⟨ψ|`.
    pub fn projector(self) -> Matrix {
        let k = self.ket();
        Matrix::mat2(
            k[0] * k[0].conj(),
            k[0] * k[1].conj(),
            k[1] * k[0].conj(),
            k[1] * k[1].conj(),
        )
    }

    /// A short label, e.g. `"+i"` for `|i⟩`.
    pub fn label(self) -> &'static str {
        match self {
            PrepState::Zero => "0",
            PrepState::One => "1",
            PrepState::Plus => "+",
            PrepState::Minus => "-",
            PrepState::PlusI => "+i",
            PrepState::MinusI => "-i",
        }
    }
}

impl std::fmt::Display for PrepState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "|{}⟩", self.label())
    }
}

/// Decomposes an arbitrary 2×2 operator `σ` over the reduced projector basis:
///
/// `σ = c₀·|0⟩⟨0| + c₁·|1⟩⟨1| + c₊·|+⟩⟨+| + cᵢ·|i⟩⟨i|`
///
/// with complex coefficients `cₛ`. Writing `σ = aI + bX + cY + dZ`
/// (with complex `a..d`), the unique solution is
/// `c₀ = a − b − c + d`, `c₁ = a − b − c − d`, `c₊ = 2b`, `cᵢ = 2c`.
///
/// Returns coefficients in the order of [`PrepState::REDUCED`].
///
/// # Panics
///
/// Panics if `sigma` is not 2×2.
pub fn decompose_qubit_operator(sigma: &Matrix) -> [Complex; 4] {
    assert_eq!(sigma.rows(), 2, "expected a 2x2 operator");
    assert_eq!(sigma.cols(), 2, "expected a 2x2 operator");
    let half = Complex::real(0.5);
    // σ = aI + bX + cY + dZ, coefficients via tr(P σ)/2.
    let a = (sigma[(0, 0)] + sigma[(1, 1)]) * half;
    let b = (sigma[(0, 1)] + sigma[(1, 0)]) * half;
    let c = (sigma[(0, 1)] - sigma[(1, 0)]) * half * Complex::I;
    let d = (sigma[(0, 0)] - sigma[(1, 1)]) * half;
    [a - b - c + d, a - b - c - d, b * 2.0, c * 2.0]
}

/// Decomposes an arbitrary 2×2 operator over **all six** Pauli-eigenstate
/// projectors (no state preparation reduction):
///
/// `σ = (a+d)·P₀ + (a−d)·P₁ + b·P₊ − b·P₋ + c·Pᵢ − c·P₋ᵢ`
///
/// for `σ = aI + bX + cY + dZ`. This is the costlier expansion used by the
/// SQEM baseline's full reconstruction. Coefficients are ordered as
/// [`PrepState::ALL`].
pub fn decompose_qubit_operator_full(sigma: &Matrix) -> [Complex; 6] {
    assert_eq!(sigma.rows(), 2, "expected a 2x2 operator");
    assert_eq!(sigma.cols(), 2, "expected a 2x2 operator");
    let half = Complex::real(0.5);
    let a = (sigma[(0, 0)] + sigma[(1, 1)]) * half;
    let b = (sigma[(0, 1)] + sigma[(1, 0)]) * half;
    let c = (sigma[(0, 1)] - sigma[(1, 0)]) * half * Complex::I;
    let d = (sigma[(0, 0)] - sigma[(1, 1)]) * half;
    [a + d, a - d, b, -b, c, -c]
}

/// Reconstructs the 2×2 operator from full-basis coefficients
/// (inverse of [`decompose_qubit_operator_full`]).
pub fn recompose_qubit_operator_full(coeffs: &[Complex; 6]) -> Matrix {
    let mut m = Matrix::zeros(2, 2);
    for (c, s) in coeffs.iter().zip(PrepState::ALL) {
        m = m.add(&s.projector().scale(*c));
    }
    m
}

/// Reconstructs the 2×2 operator from reduced-basis coefficients
/// (inverse of [`decompose_qubit_operator`]).
pub fn recompose_qubit_operator(coeffs: &[Complex; 4]) -> Matrix {
    let mut m = Matrix::zeros(2, 2);
    for (c, s) in coeffs.iter().zip(PrepState::REDUCED) {
        m = m.add(&s.projector().scale(*c));
    }
    m
}

/// Decomposes an arbitrary `4×4` operator on two qubits over the 16 product
/// projectors `|s⟩⟨s| ⊗ |t⟩⟨t|` with `s, t` ranging over
/// [`PrepState::REDUCED`].
///
/// The returned coefficients are indexed `[s][t]` where `s` is the state of
/// the *most-significant* qubit (row-major over `REDUCED`), matching the
/// Kronecker convention `kron(high, low)` used by [`Matrix::kron`].
///
/// # Panics
///
/// Panics if `sigma` is not 4×4.
pub fn decompose_two_qubit_operator(sigma: &Matrix) -> [[Complex; 4]; 4] {
    assert_eq!(sigma.rows(), 4, "expected a 4x4 operator");
    assert_eq!(sigma.cols(), 4, "expected a 4x4 operator");
    // Work in the Pauli basis: σ = Σ_{PQ} g_{PQ} (P ⊗ Q), then convert each
    // single-qubit Pauli expansion to projector coefficients.
    // g_{PQ} = tr[(P ⊗ Q)† σ] / 4 and Paulis are Hermitian.
    use crate::pauli::Pauli;
    let mut g = [[Complex::ZERO; 4]; 4];
    for (i, p) in Pauli::ALL.iter().enumerate() {
        for (j, q) in Pauli::ALL.iter().enumerate() {
            let pq = p.matrix().kron(&q.matrix());
            g[i][j] = pq.trace_product(sigma) / 4.0;
        }
    }
    // Single-qubit conversion matrix T: pauli index -> projector coeffs.
    // I -> (1,1,0,0)·? No: from decompose_qubit_operator with σ = P:
    //   I: a=1 -> (1, 1, 0, 0)
    //   X: b=1 -> (-1, -1, 2, 0)
    //   Y: c=1 -> (-1, -1, 0, 2)
    //   Z: d=1 -> (1, -1, 0, 0)
    let t: [[f64; 4]; 4] = [
        [1.0, 1.0, 0.0, 0.0],
        [-1.0, -1.0, 2.0, 0.0],
        [-1.0, -1.0, 0.0, 2.0],
        [1.0, -1.0, 0.0, 0.0],
    ];
    let mut out = [[Complex::ZERO; 4]; 4];
    for (i, trow) in t.iter().enumerate() {
        for (j, tcol) in t.iter().enumerate() {
            for (s, &ts) in trow.iter().enumerate() {
                if ts == 0.0 {
                    continue;
                }
                for (u, &tu) in tcol.iter().enumerate() {
                    if tu == 0.0 {
                        continue;
                    }
                    out[s][u] += g[i][j] * ts * tu;
                }
            }
        }
    }
    out
}

/// Reconstructs a 4×4 operator from [`decompose_two_qubit_operator`] output.
pub fn recompose_two_qubit_operator(coeffs: &[[Complex; 4]; 4]) -> Matrix {
    let mut m = Matrix::zeros(4, 4);
    for (s, row) in coeffs.iter().enumerate() {
        for (t, &c) in row.iter().enumerate() {
            let proj = PrepState::REDUCED[s]
                .projector()
                .kron(&PrepState::REDUCED[t].projector());
            m = m.add(&proj.scale(c));
        }
    }
    m
}

/// The Bloch vector `(⟨X⟩, ⟨Y⟩, ⟨Z⟩)` of a single-qubit density matrix.
///
/// # Panics
///
/// Panics if `rho` is not 2×2.
pub fn bloch_vector(rho: &Matrix) -> [f64; 3] {
    assert_eq!(rho.rows(), 2);
    assert_eq!(rho.cols(), 2);
    let x = (rho[(0, 1)] + rho[(1, 0)]).re;
    let y = (Complex::I * (rho[(0, 1)] - rho[(1, 0)])).re;
    let z = (rho[(0, 0)] - rho[(1, 1)]).re;
    [x, y, z]
}

/// Builds a single-qubit density matrix from a Bloch vector.
pub fn density_from_bloch(v: [f64; 3]) -> Matrix {
    let half = Complex::real(0.5);
    Matrix::mat2(
        (Complex::ONE + Complex::real(v[2])) * half,
        (Complex::real(v[0]) - Complex::imag(v[1])) * half,
        (Complex::real(v[0]) + Complex::imag(v[1])) * half,
        (Complex::ONE - Complex::real(v[2])) * half,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pauli::{self, Pauli};

    #[test]
    fn prep_states_are_pauli_eigenstates() {
        let checks = [
            (PrepState::Zero, Pauli::Z, 1.0),
            (PrepState::One, Pauli::Z, -1.0),
            (PrepState::Plus, Pauli::X, 1.0),
            (PrepState::Minus, Pauli::X, -1.0),
            (PrepState::PlusI, Pauli::Y, 1.0),
            (PrepState::MinusI, Pauli::Y, -1.0),
        ];
        for (s, p, val) in checks {
            let expect = p.matrix().trace_product(&s.projector());
            assert!(
                expect.approx_eq(Complex::real(val), 1e-12),
                "⟨{p}⟩ on {s} should be {val}"
            );
        }
    }

    #[test]
    fn projectors_are_valid_states() {
        for s in PrepState::ALL {
            let rho = s.projector();
            assert!(rho.is_hermitian(1e-12));
            assert!(rho.trace().approx_eq(Complex::ONE, 1e-12));
            // Purity 1.
            assert!(rho.mul(&rho).approx_eq(&rho, 1e-12));
        }
    }

    #[test]
    fn decomposition_reconstructs_paulis() {
        for p in Pauli::ALL {
            let m = p.matrix();
            let coeffs = decompose_qubit_operator(&m);
            assert!(
                recompose_qubit_operator(&coeffs).approx_eq(&m, 1e-12),
                "failed to reconstruct {p}"
            );
        }
    }

    #[test]
    fn decomposition_reconstructs_non_hermitian() {
        // Z·ρ for ρ = |+⟩⟨+| is non-Hermitian — the QSPC use case.
        let zr = pauli::z2().mul(&PrepState::Plus.projector());
        let coeffs = decompose_qubit_operator(&zr);
        assert!(recompose_qubit_operator(&coeffs).approx_eq(&zr, 1e-12));
    }

    #[test]
    fn two_qubit_decomposition_round_trip() {
        // An entangled-ish non-Hermitian operator: (Z⊗I)·ρ_bell-like.
        let bell = {
            let mut m = Matrix::zeros(4, 4);
            let h = Complex::real(0.5);
            m[(0, 0)] = h;
            m[(0, 3)] = h;
            m[(3, 0)] = h;
            m[(3, 3)] = h;
            m
        };
        let zi = pauli::z2().kron(&Matrix::identity(2));
        let op = zi.mul(&bell);
        let coeffs = decompose_two_qubit_operator(&op);
        assert!(recompose_two_qubit_operator(&coeffs).approx_eq(&op, 1e-10));
    }

    #[test]
    fn bloch_round_trip() {
        for s in PrepState::ALL {
            let rho = s.projector();
            let v = bloch_vector(&rho);
            assert!(density_from_bloch(v).approx_eq(&rho, 1e-12));
        }
    }

    #[test]
    fn full_decomposition_round_trips() {
        for p in Pauli::ALL {
            let m = p.matrix();
            let coeffs = decompose_qubit_operator_full(&m);
            assert!(recompose_qubit_operator_full(&coeffs).approx_eq(&m, 1e-12));
        }
        let zr = pauli::z2().mul(&PrepState::PlusI.projector());
        let coeffs = decompose_qubit_operator_full(&zr);
        assert!(recompose_qubit_operator_full(&coeffs).approx_eq(&zr, 1e-12));
    }

    #[test]
    fn reduced_decomposition_of_minus_matches_identity_trick() {
        // |−⟩⟨−| = |0⟩⟨0| + |1⟩⟨1| − |+⟩⟨+| (the paper's reduction rule).
        let coeffs = decompose_qubit_operator(&PrepState::Minus.projector());
        assert!(coeffs[0].approx_eq(Complex::ONE, 1e-12));
        assert!(coeffs[1].approx_eq(Complex::ONE, 1e-12));
        assert!(coeffs[2].approx_eq(-Complex::ONE, 1e-12));
        assert!(coeffs[3].approx_eq(Complex::ZERO, 1e-12));
    }
}
