//! A minimal double-precision complex number type.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use qt_math::Complex;
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!(z * z.conj(), Complex::new(25.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Complex { re: 0.0, im }
    }

    /// `e^{iθ}`: the unit complex number with phase `theta` (radians).
    #[inline]
    pub fn from_phase(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value if `z` is zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Whether both components are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Whether both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w = z · w⁻¹
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.25, 3.0);
        assert!((a + b - b).approx_eq(a, 1e-12));
        assert!((a * b / b).approx_eq(a, 1e-12));
        assert!((a * Complex::ONE).approx_eq(a, 1e-15));
        assert!((a + Complex::ZERO).approx_eq(a, 1e-15));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex::I * Complex::I).approx_eq(Complex::real(-1.0), 1e-15));
    }

    #[test]
    fn conjugation_and_norm() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.norm(), 5.0);
        assert!((z * z.conj()).approx_eq(Complex::real(25.0), 1e-12));
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn phase_round_trip() {
        for &t in &[0.0, 0.5, -1.2, std::f64::consts::PI / 3.0] {
            let z = Complex::from_phase(t);
            assert!((z.norm() - 1.0).abs() < 1e-12);
            assert!((z.arg() - t).abs() < 1e-12);
        }
    }

    #[test]
    fn recip_inverse() {
        let z = Complex::new(0.3, 0.7);
        assert!((z * z.recip()).approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn sum_over_iterator() {
        let zs = vec![Complex::ONE, Complex::I, Complex::new(2.0, -3.0)];
        let s: Complex = zs.into_iter().sum();
        assert!(s.approx_eq(Complex::new(3.0, -2.0), 1e-12));
    }
}
