//! Device topologies, calibration models, noise-aware layout, SWAP routing
//! and the transpiling device executor.
//!
//! This crate substitutes for the paper's real IBM backends: synthesized
//! heavy-hex devices whose calibration medians match the values reported in
//! Sec. VII-C, executed through the same transpile-then-run pipeline
//! (noise-aware layout → routing → CX-basis lowering → noisy simulation).
//!
//! # Example
//!
//! ```
//! use qt_device::{Device, DeviceExecutor};
//! use qt_sim::{Program, Runner};
//! use qt_circuit::Circuit;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1);
//! let exec = DeviceExecutor::new(Device::fake_hanoi());
//! let out = exec.run(&Program::from_circuit(&c), &[0, 1]);
//! assert!((out.dist.total() - 1.0).abs() < 1e-9);
//! ```

pub mod basis;
pub mod calibration;
pub mod executor;
pub mod layout;
pub mod route;
pub mod topology;

pub use basis::{cx_count, decompose_to_cx_basis};
pub use calibration::{CalibrationMedians, Device};
pub use executor::DeviceExecutor;
pub use layout::choose_layout;
pub use route::{compact_program, lower_program, route_program, RoutedProgram};
pub use topology::CouplingMap;
