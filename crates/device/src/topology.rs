//! Device coupling maps.

use std::collections::VecDeque;

/// An undirected qubit connectivity graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingMap {
    n: usize,
    edges: Vec<(usize, usize)>,
    adjacency: Vec<Vec<usize>>,
}

impl CouplingMap {
    /// Builds a coupling map from an edge list (pairs are stored sorted).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or self-loop edges.
    pub fn new(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut adjacency = vec![Vec::new(); n];
        let mut stored = Vec::new();
        for (a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            assert_ne!(a, b, "self-loop on {a}");
            let e = (a.min(b), a.max(b));
            if !stored.contains(&e) {
                stored.push(e);
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        CouplingMap {
            n,
            edges: stored,
            adjacency,
        }
    }

    /// A linear chain `0 — 1 — … — n−1`.
    pub fn line(n: usize) -> Self {
        CouplingMap::new(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
    }

    /// A ring.
    pub fn ring(n: usize) -> Self {
        CouplingMap::new(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    /// The 27-qubit IBM Falcon heavy-hex map (ibm_hanoi, ibmq_mumbai).
    pub fn falcon_27() -> Self {
        let edges = [
            (0, 1),
            (1, 4),
            (1, 2),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
            (14, 16),
            (15, 18),
            (16, 19),
            (17, 18),
            (18, 21),
            (19, 20),
            (19, 22),
            (21, 23),
            (22, 25),
            (23, 24),
            (24, 25),
            (25, 26),
        ];
        CouplingMap::new(27, edges)
    }

    /// A 127-qubit Eagle-style heavy-hex map (ibm_kyoto, ibm_cusco).
    ///
    /// Generated programmatically: rows of 15/14-qubit chains linked by
    /// bridge qubits every four columns with the heavy-hex offset pattern.
    /// The qubit count and degree distribution match IBM's Eagle devices;
    /// exact qubit numbering differs (documented substitution).
    pub fn eagle_127() -> Self {
        // Row lengths of the Eagle lattice (7 rows of 15/14 + bridges).
        let mut edges = Vec::new();
        let mut index = 0usize;
        let mut rows: Vec<Vec<usize>> = Vec::new();
        for r in 0..7 {
            let len = if r == 0 { 14 } else { 15 };
            let row: Vec<usize> = (0..len).map(|i| index + i).collect();
            index += len;
            for w in row.windows(2) {
                edges.push((w[0], w[1]));
            }
            rows.push(row);
        }
        // Bridge qubits between consecutive rows, alternating offset 0/2.
        for r in 0..6 {
            let offset = if r % 2 == 0 { 2 } else { 0 };
            let top = &rows[r];
            let bot = &rows[r + 1];
            let mut col = offset;
            while col < top.len().min(bot.len()) {
                let bridge = index;
                index += 1;
                edges.push((top[col.min(top.len() - 1)], bridge));
                edges.push((bridge, bot[col.min(bot.len() - 1)]));
                col += 4;
            }
        }
        CouplingMap::new(index, edges)
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The (sorted, deduplicated) edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbors of `q`.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// Whether `a` and `b` are directly coupled.
    pub fn are_coupled(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].contains(&b)
    }

    /// BFS distances from `source` (usize::MAX for unreachable).
    pub fn distances_from(&self, source: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        dist[source] = 0;
        let mut queue = VecDeque::from([source]);
        while let Some(q) = queue.pop_front() {
            for &nb in &self.adjacency[q] {
                if dist[nb] == usize::MAX {
                    dist[nb] = dist[q] + 1;
                    queue.push_back(nb);
                }
            }
        }
        dist
    }

    /// A shortest path from `a` to `b` (inclusive of both endpoints).
    ///
    /// # Panics
    ///
    /// Panics if `b` is unreachable from `a`.
    pub fn shortest_path(&self, a: usize, b: usize) -> Vec<usize> {
        let mut prev = vec![usize::MAX; self.n];
        let mut seen = vec![false; self.n];
        seen[a] = true;
        let mut queue = VecDeque::from([a]);
        while let Some(q) = queue.pop_front() {
            if q == b {
                break;
            }
            for &nb in &self.adjacency[q] {
                if !seen[nb] {
                    seen[nb] = true;
                    prev[nb] = q;
                    queue.push_back(nb);
                }
            }
        }
        assert!(seen[b], "qubit {b} unreachable from {a}");
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_distances() {
        let cm = CouplingMap::line(5);
        let d = cm.distances_from(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert!(cm.are_coupled(2, 3));
        assert!(!cm.are_coupled(0, 2));
    }

    #[test]
    fn falcon_has_27_qubits_and_28_edges() {
        let cm = CouplingMap::falcon_27();
        assert_eq!(cm.n_qubits(), 27);
        assert_eq!(cm.edges().len(), 28);
        // Heavy-hex degree bound.
        for q in 0..27 {
            assert!(cm.neighbors(q).len() <= 3, "degree of {q} too high");
        }
        // Connected.
        assert!(cm.distances_from(0).iter().all(|&d| d != usize::MAX));
    }

    #[test]
    fn eagle_has_127_qubits_and_heavy_hex_degrees() {
        let cm = CouplingMap::eagle_127();
        assert_eq!(cm.n_qubits(), 127);
        for q in 0..cm.n_qubits() {
            assert!(cm.neighbors(q).len() <= 3, "degree of {q} too high");
        }
        assert!(cm.distances_from(0).iter().all(|&d| d != usize::MAX));
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let cm = CouplingMap::falcon_27();
        let path = cm.shortest_path(0, 26);
        assert_eq!(*path.first().unwrap(), 0);
        assert_eq!(*path.last().unwrap(), 26);
        for w in path.windows(2) {
            assert!(cm.are_coupled(w[0], w[1]));
        }
    }

    #[test]
    fn ring_wraps_around() {
        let cm = CouplingMap::ring(6);
        assert!(cm.are_coupled(0, 5));
        assert_eq!(cm.distances_from(0)[3], 3);
    }
}
