//! Device models: coupling map plus calibration data.
//!
//! Substitution for the paper's real IBM backends (`ibm_hanoi`,
//! `ibm_kyoto`, `ibm_cusco`) and its `ibmq_mumbai` noise model: the median
//! calibration values are taken from the paper (Sec. VII-C) and per-qubit /
//! per-edge values are spread around the medians deterministically. The
//! readout model includes measurement crosstalk, which real devices exhibit
//! and which Jigsaw exploits (our simulated models must too, or Table II's
//! Jigsaw column would collapse onto the unmitigated one).

use crate::topology::CouplingMap;
use qt_sim::{KrausChannel, NoiseModel, NoiseRule};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// A simulated quantum device: topology and calibration.
#[derive(Debug, Clone)]
pub struct Device {
    /// Backend name.
    pub name: String,
    /// Connectivity.
    pub coupling: CouplingMap,
    /// Per-qubit single-qubit gate error (depolarizing probability).
    pub q1_error: Vec<f64>,
    /// Per-edge two-qubit gate error (depolarizing probability).
    pub q2_error: BTreeMap<(usize, usize), f64>,
    /// Per-qubit readout error `(p01, p10)`.
    pub readout: Vec<(f64, f64)>,
    /// Additional readout flip probability per other simultaneously
    /// measured qubit.
    pub readout_crosstalk: f64,
    /// Per-qubit T1 (ns).
    pub t1: Vec<f64>,
    /// Per-qubit T2 (ns).
    pub t2: Vec<f64>,
    /// Single-qubit gate duration (ns).
    pub gate_time_1q: f64,
    /// Two-qubit gate duration (ns).
    pub gate_time_2q: f64,
}

/// Median calibration values used to synthesize a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationMedians {
    /// Median 1q gate error.
    pub q1_error: f64,
    /// Median 2q (CNOT) gate error.
    pub q2_error: f64,
    /// Median readout error.
    pub readout: f64,
    /// Readout crosstalk per simultaneously measured qubit.
    pub readout_crosstalk: f64,
    /// Median T1 (ns).
    pub t1: f64,
    /// Median T2 (ns).
    pub t2: f64,
    /// 1q gate time (ns).
    pub gate_time_1q: f64,
    /// 2q gate time (ns).
    pub gate_time_2q: f64,
}

impl CalibrationMedians {
    /// The `ibmq_mumbai` medians reported in the paper (Sec. VII-C):
    /// CNOT error 7.611e-3, gate time 426.667 ns, readout error 1.810e-2,
    /// T1 125.94 µs, T2 188.75 µs.
    pub fn mumbai() -> Self {
        CalibrationMedians {
            q1_error: 2.5e-4,
            q2_error: 7.611e-3,
            readout: 1.810e-2,
            readout_crosstalk: 2.0e-3,
            t1: 125.94e3,
            t2: 188.75e3,
            gate_time_1q: 35.5,
            gate_time_2q: 426.667,
        }
    }

    /// Falcon-class medians for the `ibm_hanoi` substitute.
    pub fn hanoi() -> Self {
        CalibrationMedians {
            q1_error: 2.0e-4,
            q2_error: 6.0e-3,
            readout: 1.2e-2,
            readout_crosstalk: 2.5e-3,
            t1: 150.0e3,
            t2: 130.0e3,
            gate_time_1q: 32.0,
            gate_time_2q: 400.0,
        }
    }

    /// Eagle-class medians for the `ibm_kyoto`/`ibm_cusco` substitutes
    /// (somewhat noisier, as the paper's Table II/III fidelities suggest).
    pub fn eagle() -> Self {
        CalibrationMedians {
            q1_error: 3.0e-4,
            q2_error: 9.0e-3,
            readout: 2.2e-2,
            readout_crosstalk: 3.0e-3,
            t1: 120.0e3,
            t2: 90.0e3,
            gate_time_1q: 50.0,
            gate_time_2q: 480.0,
        }
    }
}

impl Device {
    /// Synthesizes a device with per-qubit/per-edge calibration spread
    /// deterministically around the medians (log-uniform within
    /// `[median/2.2, median·2.2]`, a typical calibration spread).
    pub fn synthesize(
        name: impl Into<String>,
        coupling: CouplingMap,
        medians: CalibrationMedians,
        seed: u64,
    ) -> Self {
        let n = coupling.n_qubits();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut spread = |median: f64| -> f64 {
            let f: f64 = rng.random::<f64>() * 2.0 - 1.0; // [-1, 1]
            median * (2.2f64).powf(f)
        };
        let q1_error = (0..n).map(|_| spread(medians.q1_error)).collect();
        let q2_error = coupling
            .edges()
            .iter()
            .map(|&e| (e, spread(medians.q2_error)))
            .collect();
        let readout = (0..n)
            .map(|_| {
                let p = spread(medians.readout);
                (p * 0.8, p * 1.2) // p10 a little worse, as on hardware
            })
            .collect();
        let t1: Vec<f64> = (0..n).map(|_| spread(medians.t1)).collect();
        let t2 = t1
            .iter()
            .map(|&t1q| spread(medians.t2).min(2.0 * t1q))
            .collect();
        Device {
            name: name.into(),
            coupling,
            q1_error,
            q2_error,
            readout,
            readout_crosstalk: medians.readout_crosstalk,
            t1,
            t2,
            gate_time_1q: medians.gate_time_1q,
            gate_time_2q: medians.gate_time_2q,
        }
    }

    /// The 27-qubit `ibm_hanoi` substitute.
    pub fn fake_hanoi() -> Self {
        Device::synthesize(
            "fake_hanoi",
            CouplingMap::falcon_27(),
            CalibrationMedians::hanoi(),
            0x68616e,
        )
    }

    /// The 27-qubit `ibmq_mumbai` noise-model substitute (Fig. 9, Table I).
    pub fn fake_mumbai() -> Self {
        Device::synthesize(
            "fake_mumbai",
            CouplingMap::falcon_27(),
            CalibrationMedians::mumbai(),
            0x6d756d,
        )
    }

    /// The 127-qubit `ibm_kyoto` substitute.
    pub fn fake_kyoto() -> Self {
        Device::synthesize(
            "fake_kyoto",
            CouplingMap::eagle_127(),
            CalibrationMedians::eagle(),
            0x6b796f,
        )
    }

    /// The 127-qubit `ibm_cusco` substitute.
    pub fn fake_cusco() -> Self {
        Device::synthesize(
            "fake_cusco",
            CouplingMap::eagle_127(),
            CalibrationMedians::eagle(),
            0x637573,
        )
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        self.coupling.n_qubits()
    }

    /// The two-qubit error of an edge (keys are sorted pairs).
    pub fn edge_error(&self, a: usize, b: usize) -> f64 {
        self.q2_error[&(a.min(b), a.max(b))]
    }

    /// Average readout error of qubit `q`.
    pub fn readout_error(&self, q: usize) -> f64 {
        let (p01, p10) = self.readout[q];
        0.5 * (p01 + p10)
    }

    /// Builds the noise model for a *compacted* register: `physical[i]` is
    /// the physical qubit behind compact index `i`. Gate noise combines
    /// depolarizing error with per-operand thermal relaxation over the gate
    /// duration; readout is per-qubit with crosstalk.
    pub fn noise_model_for(&self, physical: &[usize]) -> NoiseModel {
        let mut model = NoiseModel::ideal();
        for (compact, &p) in physical.iter().enumerate() {
            model.per_qubit.insert(
                compact,
                NoiseRule {
                    full: vec![KrausChannel::depolarizing(1, self.q1_error[p].min(0.99))],
                    per_operand: vec![KrausChannel::thermal_relaxation(
                        self.t1[p],
                        self.t2[p],
                        self.gate_time_1q,
                    )],
                },
            );
            model.readout.per_qubit.insert(compact, self.readout[p]);
        }
        for (i, &pi) in physical.iter().enumerate() {
            for (j, &pj) in physical.iter().enumerate().skip(i + 1) {
                let key = (pi.min(pj), pi.max(pj));
                if let Some(&err) = self.q2_error.get(&key) {
                    let lift = |q_compact: usize, t1: f64, t2: f64| {
                        let k = KrausChannel::thermal_relaxation(t1, t2, self.gate_time_2q);
                        let id = qt_math::Matrix::identity(2);
                        let ops = k
                            .ops()
                            .iter()
                            .map(|op| {
                                if q_compact == 0 {
                                    id.kron(op)
                                } else {
                                    op.kron(&id)
                                }
                            })
                            .collect();
                        KrausChannel::new(ops)
                    };
                    model.per_edge.insert(
                        (i, j),
                        NoiseRule {
                            full: vec![
                                KrausChannel::depolarizing(2, err.min(0.99)),
                                lift(0, self.t1[pi], self.t2[pi]),
                                lift(1, self.t1[pj], self.t2[pj]),
                            ],
                            per_operand: vec![],
                        },
                    );
                }
            }
        }
        model.readout.default_p01 = 0.0;
        model.readout.default_p10 = 0.0;
        model.readout.crosstalk = self.readout_crosstalk;
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_calibration_is_deterministic_and_in_range() {
        let a = Device::fake_mumbai();
        let b = Device::fake_mumbai();
        assert_eq!(a.q1_error, b.q1_error);
        let m = CalibrationMedians::mumbai();
        for &e in &a.q1_error {
            assert!(e > m.q1_error / 2.3 && e < m.q1_error * 2.3);
        }
        for &e in a.q2_error.values() {
            assert!(e > m.q2_error / 2.3 && e < m.q2_error * 2.3);
        }
        for (q, &t2) in a.t2.iter().enumerate() {
            assert!(t2 <= 2.0 * a.t1[q], "T2 constraint violated");
        }
    }

    #[test]
    fn devices_have_expected_sizes() {
        assert_eq!(Device::fake_hanoi().n_qubits(), 27);
        assert_eq!(Device::fake_kyoto().n_qubits(), 127);
        assert_eq!(Device::fake_cusco().n_qubits(), 127);
    }

    #[test]
    fn noise_model_for_compact_register_resolves_edges() {
        let dev = Device::fake_mumbai();
        // Pick a real edge from the coupling map.
        let &(a, b) = &dev.coupling.edges()[0];
        let model = dev.noise_model_for(&[a, b]);
        let instr = qt_circuit::Instruction::new(qt_circuit::Gate::Cz, vec![0, 1]);
        let chans = model.channels_for(&instr);
        assert_eq!(chans.len(), 3, "depolarizing + 2 thermal lifts");
        let instr1 = qt_circuit::Instruction::new(qt_circuit::Gate::H, vec![1]);
        assert_eq!(model.channels_for(&instr1).len(), 2);
        // Readout carries the per-qubit values of the physical qubits.
        assert_eq!(model.readout.per_qubit[&0], dev.readout[a]);
    }

    #[test]
    fn different_devices_have_different_calibration() {
        let kyoto = Device::fake_kyoto();
        let cusco = Device::fake_cusco();
        assert_ne!(kyoto.q1_error, cusco.q1_error);
    }
}
