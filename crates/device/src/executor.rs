//! The transpiling device executor.
//!
//! Implements [`qt_sim::Runner`] with the full pipeline the paper applies
//! to every circuit before running it on hardware: lower to the CX basis,
//! choose a noise-aware layout (multiple seeded trials, keep the
//! min-CX-count result — the paper transpiles 50 times and keeps the best),
//! route with SWAPs, compact onto the used physical qubits and simulate
//! with the device's calibration-derived noise model.

use crate::calibration::Device;
use crate::layout::choose_layout;
use crate::route::{compact_program, lower_program, route_program};
use qt_circuit::Circuit;
use qt_sim::{
    backend, Backend, BatchJob, Executor, Op, Program, ResolvedEngine, RunOutput, Runner,
};

/// A device-backed program runner.
#[derive(Debug, Clone)]
pub struct DeviceExecutor {
    /// The device model.
    pub device: Device,
    /// Simulation backend for the compacted noisy program.
    pub backend: Backend,
    /// Number of layout trials (min 2q-count wins).
    pub layout_trials: usize,
    /// Base seed for layout randomization.
    pub seed: u64,
    /// Replace state-dependent channels (thermal relaxation) by their
    /// Pauli-twirling approximation when the compacted register exceeds the
    /// exact density-matrix limit, so the trajectory engine can use its
    /// stratified fast path. Exact channels are kept for small registers.
    pub twirl_large_registers: bool,
}

impl DeviceExecutor {
    /// Creates an executor with the paper's defaults (analogous to 50
    /// transpile seeds; we use 16 as the greedy layout is less random).
    pub fn new(device: Device) -> Self {
        DeviceExecutor {
            device,
            backend: Backend::default(),
            layout_trials: 16,
            seed: 0x51a7e,
            twirl_large_registers: true,
        }
    }

    /// Transpiles a program: lower → layout → route → compact.
    ///
    /// Returns the compact program, the physical qubits backing each compact
    /// index, and the compact indices of `measured`.
    pub fn transpile(
        &self,
        program: &Program,
        measured: &[usize],
    ) -> (Program, Vec<usize>, Vec<usize>) {
        let lowered = lower_program(program);
        // Layout works on the gate skeleton.
        let mut skeleton = Circuit::new(program.n_qubits());
        for op in lowered.ops() {
            if let Op::Gate(i) | Op::IdealGate(i) = op {
                skeleton.push(i.gate.clone(), i.qubits.clone());
            }
        }
        let mut best: Option<(usize, Program, Vec<usize>, Vec<usize>)> = None;
        for t in 0..self.layout_trials.max(1) {
            let layout = choose_layout(
                &skeleton,
                &self.device,
                measured,
                self.seed.wrapping_add(t as u64 * 0x9e37),
                4,
            );
            let routed = route_program(&lowered, &layout, &self.device.coupling);
            let (compact, physical) = compact_program(&routed.program);
            let cx = compact.two_qubit_gate_count();
            if best.as_ref().is_none_or(|(c, ..)| cx < *c) {
                let compact_measured = measured
                    .iter()
                    .map(|&l| {
                        let p = routed.final_layout[l];
                        physical
                            .iter()
                            .position(|&x| x == p)
                            .expect("measured qubit must be used")
                    })
                    .collect();
                best = Some((cx, compact, physical, compact_measured));
            }
        }
        let (_, compact, physical, compact_measured) = best.expect("at least one trial");
        (compact, physical, compact_measured)
    }
}

impl Runner for DeviceExecutor {
    fn run(&self, program: &Program, measured: &[usize]) -> RunOutput {
        let (compact, physical, compact_measured) = self.transpile(program, measured);
        let mut noise = self.device.noise_model_for(&physical);
        if self.twirl_large_registers {
            // Twirl exactly when the backend resolves this register to the
            // sampling engine (its stratified fast path needs mixtures).
            // Twirling is an optimization: a model carrying an untwirlable
            // (>2-qubit) channel keeps its original channels instead.
            if let ResolvedEngine::Trajectory(_) = self.backend.resolve(compact.n_qubits()) {
                if let Ok(twirled) = noise.pauli_twirled() {
                    noise = twirled;
                }
            }
        }
        let exec = Executor::with_backend(noise, self.backend);
        let raw = exec.noisy_distribution(&compact, &compact_measured);
        RunOutput {
            dist: raw,
            gates: compact.gate_count(),
            two_qubit_gates: compact.two_qubit_gate_count(),
        }
    }

    /// Transpiles every job (in parallel, under the shared
    /// [`backend::batch_split`] policy; layout trials are seeded, so
    /// results match serial execution exactly), then groups the compacted
    /// physical programs by their backing qubit set and executes each
    /// group as one batch on an inner [`Executor`] — whose default
    /// prefix-sharing trie path (`qt_sim::trie`) evolves physically-equal
    /// program prefixes once per group. First-use compaction
    /// ([`crate::route::compact_program`]) canonicalizes the routed
    /// programs so equal prefixes stay equal after register renaming.
    fn run_batch(&self, jobs: &[BatchJob]) -> Vec<RunOutput> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let (workers, _) = backend::batch_split(jobs.len());
        let transpiled: Vec<(Program, Vec<usize>, Vec<usize>)> =
            backend::parallel_indexed(jobs.len(), workers.max(1), |i| {
                self.transpile(&jobs[i].program, &jobs[i].measured)
            });
        // Group by backing physical register: the calibration-derived
        // noise model (and therefore the simulated batch) is a function
        // of that list alone.
        let mut by_register: std::collections::BTreeMap<Vec<usize>, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, (_, physical, _)) in transpiled.iter().enumerate() {
            by_register.entry(physical.clone()).or_default().push(i);
        }
        let groups: Vec<(Vec<usize>, Vec<usize>)> = by_register.into_iter().collect();
        let run_group = |physical: &[usize], idxs: &[usize], backend: Backend| {
            let mut noise = self.device.noise_model_for(physical);
            if self.twirl_large_registers {
                // As in `run`: skip the twirl (an optimization) when the
                // model carries an untwirlable channel.
                if let ResolvedEngine::Trajectory(_) = backend.resolve(physical.len()) {
                    if let Ok(twirled) = noise.pauli_twirled() {
                        noise = twirled;
                    }
                }
            }
            let exec = Executor::with_backend(noise, backend);
            let group_jobs: Vec<BatchJob> = idxs
                .iter()
                .map(|&i| BatchJob::new(transpiled[i].0.clone(), transpiled[i].2.clone()))
                .collect();
            exec.run_batch(&group_jobs)
        };
        // A lone group keeps the inner executor's own fan-out (trie
        // subtrees, trajectory workers); multiple groups split the
        // machine between groups instead — inside those workers every
        // nested batch_split degrades to a serial walk, so the device
        // path never oversubscribes but also never regresses to one
        // group after another on an idle machine.
        let mut out: Vec<Option<RunOutput>> = vec![None; jobs.len()];
        let (group_workers, inner) = backend::batch_split(groups.len());
        if groups.len() == 1 || group_workers <= 1 {
            for (physical, idxs) in &groups {
                for (&i, o) in idxs.iter().zip(run_group(physical, idxs, self.backend)) {
                    out[i] = Some(o);
                }
            }
        } else {
            let budgeted = self.backend.with_thread_budget(inner);
            let results = backend::parallel_indexed(groups.len(), group_workers, |g| {
                run_group(&groups[g].0, &groups[g].1, budgeted)
            });
            for ((_, idxs), outs) in groups.iter().zip(results) {
                for (&i, o) in idxs.iter().zip(outs) {
                    out[i] = Some(o);
                }
            }
        }
        out.into_iter()
            .map(|o| o.expect("every job belongs to exactly one group"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_algos::vqe_ansatz;
    use qt_dist::hellinger_fidelity;
    use qt_sim::{ideal_distribution, NoiseModel};

    #[test]
    fn transpiled_semantics_match_ideal_when_noiseless() {
        // Zero out the calibration: transpiled run must equal ideal run.
        let mut dev = Device::fake_hanoi();
        for e in &mut dev.q1_error {
            *e = 0.0;
        }
        for (_, e) in dev.q2_error.iter_mut() {
            *e = 0.0;
        }
        for r in &mut dev.readout {
            *r = (0.0, 0.0);
        }
        dev.readout_crosstalk = 0.0;
        for t in &mut dev.t1 {
            *t = 1e15;
        }
        for t in &mut dev.t2 {
            *t = 1e15;
        }
        let exec = DeviceExecutor::new(dev);
        let circ = vqe_ansatz(5, 1, 11);
        let measured: Vec<usize> = (0..5).collect();
        let out = exec.run(&Program::from_circuit(&circ), &measured);
        let want = ideal_distribution(&Program::from_circuit(&circ), &measured);
        for i in 0..1u64 << measured.len() {
            let (a, b) = (out.dist.prob(i), want.prob(i));
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn device_noise_degrades_fidelity() {
        let exec = DeviceExecutor::new(Device::fake_hanoi());
        let circ = vqe_ansatz(6, 2, 4);
        let measured: Vec<usize> = (0..6).collect();
        let prog = Program::from_circuit(&circ);
        let out = exec.run(&prog, &measured);
        let ideal = ideal_distribution(&prog, &measured);
        let f = hellinger_fidelity(&out.dist, &ideal);
        assert!(f < 0.999, "expected noise, fidelity {f}");
        assert!(f > 0.3, "noise unreasonably strong, fidelity {f}");
    }

    #[test]
    fn cx_counts_match_expectations_for_chain_ansatz() {
        // 12q 1-layer VQE: 11 CZ → 11 CX, and a good layout needs no swaps
        // on the heavy-hex device (Table II's original count is 11).
        let exec = DeviceExecutor::new(Device::fake_hanoi());
        let circ = vqe_ansatz(12, 1, 3);
        let measured: Vec<usize> = (0..12).collect();
        let (compact, _, _) = exec.transpile(&Program::from_circuit(&circ), &measured);
        assert_eq!(compact.two_qubit_gate_count(), 11);
    }

    #[test]
    fn run_reports_transpiled_gate_counts() {
        let exec = DeviceExecutor::new(Device::fake_mumbai());
        let mut c = Circuit::new(2);
        c.h(0).cp(0, 1, 0.4);
        let out = exec.run(&Program::from_circuit(&c), &[0, 1]);
        assert_eq!(out.two_qubit_gates, 2, "CP lowers to 2 CX");
    }

    #[test]
    fn plain_executor_and_device_agree_when_device_is_clean_line() {
        // Sanity: a clean line device with depolarizing-only noise matches a
        // plain executor with the same model (layout = identity works).
        let mut dev = Device::synthesize(
            "clean-line",
            crate::topology::CouplingMap::line(4),
            crate::calibration::CalibrationMedians {
                q1_error: 0.0,
                q2_error: 0.0,
                readout: 0.0,
                readout_crosstalk: 0.0,
                t1: 1e15,
                t2: 1e15,
                gate_time_1q: 0.0,
                gate_time_2q: 0.0,
            },
            1,
        );
        dev.q1_error = vec![0.0; 4];
        let exec = DeviceExecutor::new(dev);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let out = exec.run(&Program::from_circuit(&c), &[0, 1, 2]);
        let plain = Executor::new(NoiseModel::ideal())
            .noisy_distribution(&Program::from_circuit(&c), &[0, 1, 2]);
        for i in 0..8u64 {
            assert!((out.dist.prob(i) - plain.prob(i)).abs() < 1e-9);
        }
    }
}
