//! The transpiling device executor.
//!
//! Implements [`qt_sim::Runner`] with the full pipeline the paper applies
//! to every circuit before running it on hardware: lower to the CX basis,
//! choose a noise-aware layout (multiple seeded trials, keep the
//! min-CX-count result — the paper transpiles 50 times and keeps the best),
//! route with SWAPs, compact onto the used physical qubits and simulate
//! with the device's calibration-derived noise model.

use crate::calibration::Device;
use crate::layout::choose_layout;
use crate::route::{compact_program, lower_program, route_program};
use qt_circuit::Circuit;
use qt_sim::{
    backend, Backend, BatchJob, Executor, Op, Program, ResolvedEngine, RunError, RunErrorKind,
    RunOutput, Runner,
};

/// A transpiled job: the compact physical program, the physical qubits
/// backing each compact index, and the compact indices of the measured
/// qubits.
type Transpiled = (Program, Vec<usize>, Vec<usize>);

/// A device-backed program runner.
#[derive(Debug, Clone)]
pub struct DeviceExecutor {
    /// The device model.
    pub device: Device,
    /// Simulation backend for the compacted noisy program.
    pub backend: Backend,
    /// Number of layout trials (min 2q-count wins).
    pub layout_trials: usize,
    /// Base seed for layout randomization.
    pub seed: u64,
    /// Replace state-dependent channels (thermal relaxation) by their
    /// Pauli-twirling approximation when the compacted register exceeds the
    /// exact density-matrix limit, so the trajectory engine can use its
    /// stratified fast path. Exact channels are kept for small registers.
    pub twirl_large_registers: bool,
}

impl DeviceExecutor {
    /// Creates an executor with the paper's defaults (analogous to 50
    /// transpile seeds; we use 16 as the greedy layout is less random).
    pub fn new(device: Device) -> Self {
        DeviceExecutor {
            device,
            backend: Backend::default(),
            layout_trials: 16,
            seed: 0x51a7e,
            twirl_large_registers: true,
        }
    }

    /// Transpiles a program: lower → layout → route → compact.
    ///
    /// Returns the compact program, the physical qubits backing each compact
    /// index, and the compact indices of `measured`.
    ///
    /// # Panics
    ///
    /// Panics on jobs [`DeviceExecutor::try_transpile`] rejects (program
    /// wider than the device, measured qubit out of range). The fallible
    /// batch surface ([`Runner::try_run_batch`]) reports those as typed
    /// [`RunError`]s instead.
    pub fn transpile(&self, program: &Program, measured: &[usize]) -> Transpiled {
        match self.try_transpile(program, measured) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`DeviceExecutor::transpile`] with typed failure: a job the device
    /// cannot host (more program qubits than physical qubits, a measured
    /// qubit outside the register, a measured qubit the routed program
    /// never uses) returns a permanent [`RunErrorKind::Transpile`] error
    /// instead of panicking — calibration and layout failures become
    /// per-job typed failures the retry/degradation machinery upstream
    /// can route around.
    ///
    /// # Errors
    ///
    /// Permanent [`RunErrorKind::Transpile`] errors as above; transpile
    /// failures are never transient (the same program fails the same way
    /// on every attempt).
    pub fn try_transpile(
        &self,
        program: &Program,
        measured: &[usize],
    ) -> Result<Transpiled, RunError> {
        let transpile_err = |detail: String| RunError::permanent(RunErrorKind::Transpile, detail);
        if program.n_qubits() > self.device.n_qubits() {
            return Err(transpile_err(format!(
                "program needs {} qubits but device {} has {}",
                program.n_qubits(),
                self.device.name,
                self.device.n_qubits()
            )));
        }
        if let Some(&q) = measured.iter().find(|&&q| q >= program.n_qubits()) {
            return Err(transpile_err(format!(
                "measured qubit {q} outside the {}-qubit program register",
                program.n_qubits()
            )));
        }
        let lowered = lower_program(program);
        // Layout works on the gate skeleton.
        let mut skeleton = Circuit::new(program.n_qubits());
        for op in lowered.ops() {
            if let Op::Gate(i) | Op::IdealGate(i) = op {
                skeleton.push(i.gate.clone(), i.qubits.clone());
            }
        }
        let mut best: Option<(usize, Program, Vec<usize>, Vec<usize>)> = None;
        for t in 0..self.layout_trials.max(1) {
            let layout = choose_layout(
                &skeleton,
                &self.device,
                measured,
                self.seed.wrapping_add(t as u64 * 0x9e37),
                4,
            );
            let routed = route_program(&lowered, &layout, &self.device.coupling);
            let (compact, physical) = compact_program(&routed.program);
            let cx = compact.two_qubit_gate_count();
            if best.as_ref().is_none_or(|(c, ..)| cx < *c) {
                let compact_measured: Vec<usize> = measured
                    .iter()
                    .map(|&l| {
                        let p = routed.final_layout[l];
                        physical.iter().position(|&x| x == p).ok_or_else(|| {
                            transpile_err(format!(
                                "measured qubit {l} maps to physical {p}, which the routed \
                                 program never uses"
                            ))
                        })
                    })
                    .collect::<Result<_, RunError>>()?;
                best = Some((cx, compact, physical, compact_measured));
            }
        }
        let (_, compact, physical, compact_measured) = best.expect("at least one trial");
        Ok((compact, physical, compact_measured))
    }
}

impl Runner for DeviceExecutor {
    fn run(&self, program: &Program, measured: &[usize]) -> RunOutput {
        let (compact, physical, compact_measured) = self.transpile(program, measured);
        let mut noise = self.device.noise_model_for(&physical);
        if self.twirl_large_registers {
            // Twirl exactly when the backend resolves this register to the
            // sampling engine (its stratified fast path needs mixtures).
            // Twirling is an optimization: a model carrying an untwirlable
            // (>2-qubit) channel keeps its original channels instead.
            if let ResolvedEngine::Trajectory(_) = self.backend.resolve(compact.n_qubits()) {
                if let Ok(twirled) = noise.pauli_twirled() {
                    noise = twirled;
                }
            }
        }
        let exec = Executor::with_backend(noise, self.backend);
        let raw = exec.noisy_distribution(&compact, &compact_measured);
        RunOutput {
            dist: raw,
            gates: compact.gate_count(),
            two_qubit_gates: compact.two_qubit_gate_count(),
        }
    }

    /// Transpiles every job (in parallel, under the shared
    /// [`backend::batch_split`] policy; layout trials are seeded, so
    /// results match serial execution exactly), then groups the compacted
    /// physical programs by their backing qubit set and executes each
    /// group as one batch on an inner [`Executor`] — whose default
    /// prefix-sharing trie path (`qt_sim::trie`) evolves physically-equal
    /// program prefixes once per group. First-use compaction
    /// ([`crate::route::compact_program`]) canonicalizes the routed
    /// programs so equal prefixes stay equal after register renaming.
    fn run_batch(&self, jobs: &[BatchJob]) -> Vec<RunOutput> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let (workers, _) = backend::batch_split(jobs.len());
        let transpiled: Vec<Transpiled> =
            backend::parallel_indexed(jobs.len(), workers.max(1), |i| {
                self.transpile(&jobs[i].program, &jobs[i].measured)
            });
        self.execute_transpiled(transpiled)
    }

    /// The fallible surface: transpilation failures become per-job typed
    /// [`RunErrorKind::Transpile`] errors instead of panics, and the
    /// remaining jobs execute exactly as [`Runner::run_batch`] would —
    /// grouped execution is bit-identical for any subset of the batch, so
    /// an untranspilable cohabitant never perturbs healthy results.
    fn try_run_batch(&self, jobs: &[BatchJob]) -> Vec<Result<RunOutput, RunError>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let (workers, _) = backend::batch_split(jobs.len());
        let transpiled: Vec<Result<Transpiled, RunError>> =
            backend::parallel_indexed(jobs.len(), workers.max(1), |i| {
                self.try_transpile(&jobs[i].program, &jobs[i].measured)
            });
        let ok_idx: Vec<usize> = transpiled
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ok())
            .map(|(i, _)| i)
            .collect();
        let mut ok_jobs = Vec::with_capacity(ok_idx.len());
        let mut results: Vec<Result<RunOutput, RunError>> = transpiled
            .into_iter()
            .map(|t| match t {
                Ok(tr) => {
                    ok_jobs.push(tr);
                    // Placeholder, overwritten by the scatter below.
                    Err(RunError::permanent(RunErrorKind::Backend, String::new()))
                }
                Err(e) => Err(e),
            })
            .collect();
        for (&i, out) in ok_idx.iter().zip(self.execute_transpiled(ok_jobs)) {
            results[i] = Ok(out);
        }
        results
    }
}

impl DeviceExecutor {
    /// Everything [`Runner::run_batch`] does after transpilation: group
    /// the compacted programs by backing physical register and execute
    /// each group as one batch on an inner [`Executor`].
    fn execute_transpiled(&self, transpiled: Vec<Transpiled>) -> Vec<RunOutput> {
        if transpiled.is_empty() {
            return Vec::new();
        }
        // Group by backing physical register: the calibration-derived
        // noise model (and therefore the simulated batch) is a function
        // of that list alone.
        let mut by_register: std::collections::BTreeMap<Vec<usize>, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, (_, physical, _)) in transpiled.iter().enumerate() {
            by_register.entry(physical.clone()).or_default().push(i);
        }
        let groups: Vec<(Vec<usize>, Vec<usize>)> = by_register.into_iter().collect();
        let run_group = |physical: &[usize], idxs: &[usize], backend: Backend| {
            let mut noise = self.device.noise_model_for(physical);
            if self.twirl_large_registers {
                // As in `run`: skip the twirl (an optimization) when the
                // model carries an untwirlable channel.
                if let ResolvedEngine::Trajectory(_) = backend.resolve(physical.len()) {
                    if let Ok(twirled) = noise.pauli_twirled() {
                        noise = twirled;
                    }
                }
            }
            let exec = Executor::with_backend(noise, backend);
            let group_jobs: Vec<BatchJob> = idxs
                .iter()
                .map(|&i| BatchJob::new(transpiled[i].0.clone(), transpiled[i].2.clone()))
                .collect();
            exec.run_batch(&group_jobs)
        };
        // A lone group keeps the inner executor's own fan-out (trie
        // subtrees, trajectory workers); multiple groups split the
        // machine between groups instead — inside those workers every
        // nested batch_split degrades to a serial walk, so the device
        // path never oversubscribes but also never regresses to one
        // group after another on an idle machine.
        let mut out: Vec<Option<RunOutput>> = vec![None; transpiled.len()];
        let (group_workers, inner) = backend::batch_split(groups.len());
        if groups.len() == 1 || group_workers <= 1 {
            for (physical, idxs) in &groups {
                for (&i, o) in idxs.iter().zip(run_group(physical, idxs, self.backend)) {
                    out[i] = Some(o);
                }
            }
        } else {
            let budgeted = self.backend.with_thread_budget(inner);
            let results = backend::parallel_indexed(groups.len(), group_workers, |g| {
                run_group(&groups[g].0, &groups[g].1, budgeted)
            });
            for ((_, idxs), outs) in groups.iter().zip(results) {
                for (&i, o) in idxs.iter().zip(outs) {
                    out[i] = Some(o);
                }
            }
        }
        out.into_iter()
            .map(|o| o.expect("every job belongs to exactly one group"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_algos::vqe_ansatz;
    use qt_dist::hellinger_fidelity;
    use qt_sim::{ideal_distribution, NoiseModel};

    #[test]
    fn transpiled_semantics_match_ideal_when_noiseless() {
        // Zero out the calibration: transpiled run must equal ideal run.
        let mut dev = Device::fake_hanoi();
        for e in &mut dev.q1_error {
            *e = 0.0;
        }
        for (_, e) in dev.q2_error.iter_mut() {
            *e = 0.0;
        }
        for r in &mut dev.readout {
            *r = (0.0, 0.0);
        }
        dev.readout_crosstalk = 0.0;
        for t in &mut dev.t1 {
            *t = 1e15;
        }
        for t in &mut dev.t2 {
            *t = 1e15;
        }
        let exec = DeviceExecutor::new(dev);
        let circ = vqe_ansatz(5, 1, 11);
        let measured: Vec<usize> = (0..5).collect();
        let out = exec.run(&Program::from_circuit(&circ), &measured);
        let want = ideal_distribution(&Program::from_circuit(&circ), &measured);
        for i in 0..1u64 << measured.len() {
            let (a, b) = (out.dist.prob(i), want.prob(i));
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn device_noise_degrades_fidelity() {
        let exec = DeviceExecutor::new(Device::fake_hanoi());
        let circ = vqe_ansatz(6, 2, 4);
        let measured: Vec<usize> = (0..6).collect();
        let prog = Program::from_circuit(&circ);
        let out = exec.run(&prog, &measured);
        let ideal = ideal_distribution(&prog, &measured);
        let f = hellinger_fidelity(&out.dist, &ideal);
        assert!(f < 0.999, "expected noise, fidelity {f}");
        assert!(f > 0.3, "noise unreasonably strong, fidelity {f}");
    }

    #[test]
    fn cx_counts_match_expectations_for_chain_ansatz() {
        // 12q 1-layer VQE: 11 CZ → 11 CX, and a good layout needs no swaps
        // on the heavy-hex device (Table II's original count is 11).
        let exec = DeviceExecutor::new(Device::fake_hanoi());
        let circ = vqe_ansatz(12, 1, 3);
        let measured: Vec<usize> = (0..12).collect();
        let (compact, _, _) = exec.transpile(&Program::from_circuit(&circ), &measured);
        assert_eq!(compact.two_qubit_gate_count(), 11);
    }

    #[test]
    fn run_reports_transpiled_gate_counts() {
        let exec = DeviceExecutor::new(Device::fake_mumbai());
        let mut c = Circuit::new(2);
        c.h(0).cp(0, 1, 0.4);
        let out = exec.run(&Program::from_circuit(&c), &[0, 1]);
        assert_eq!(out.two_qubit_gates, 2, "CP lowers to 2 CX");
    }

    #[test]
    fn untranspilable_jobs_fail_typed_without_poisoning_the_batch() {
        let exec = DeviceExecutor::new(Device::fake_hanoi());
        let mut good = Circuit::new(2);
        good.h(0).cx(0, 1);
        let good_prog = Program::from_circuit(&good);
        let mut wide = Circuit::new(28); // fake_hanoi has 27 physical qubits
        wide.h(0);
        let jobs = vec![
            BatchJob::new(good_prog.clone(), vec![0, 1]),
            BatchJob::new(Program::from_circuit(&wide), vec![0]),
            BatchJob::new(good_prog.clone(), vec![5]), // out of register
        ];
        let results = exec.try_run_batch(&jobs);
        let clean = exec.run(&good_prog, &[0, 1]);
        let healthy = results[0].as_ref().expect("healthy job must survive");
        let xs: Vec<(u64, u64)> = healthy.dist.iter().map(|(i, p)| (i, p.to_bits())).collect();
        let ys: Vec<(u64, u64)> = clean.dist.iter().map(|(i, p)| (i, p.to_bits())).collect();
        assert_eq!(xs, ys, "cohabiting failures perturbed a healthy result");
        for (i, r) in results.iter().enumerate().skip(1) {
            match r {
                Err(e) => {
                    assert_eq!(e.kind, RunErrorKind::Transpile, "job {i}");
                    assert!(!e.transient, "transpile failures are permanent");
                }
                Ok(_) => panic!("job {i} should be untranspilable"),
            }
        }
    }

    #[test]
    fn plain_executor_and_device_agree_when_device_is_clean_line() {
        // Sanity: a clean line device with depolarizing-only noise matches a
        // plain executor with the same model (layout = identity works).
        let mut dev = Device::synthesize(
            "clean-line",
            crate::topology::CouplingMap::line(4),
            crate::calibration::CalibrationMedians {
                q1_error: 0.0,
                q2_error: 0.0,
                readout: 0.0,
                readout_crosstalk: 0.0,
                t1: 1e15,
                t2: 1e15,
                gate_time_1q: 0.0,
                gate_time_2q: 0.0,
            },
            1,
        );
        dev.q1_error = vec![0.0; 4];
        let exec = DeviceExecutor::new(dev);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let out = exec.run(&Program::from_circuit(&c), &[0, 1, 2]);
        let plain = Executor::new(NoiseModel::ideal())
            .noisy_distribution(&Program::from_circuit(&c), &[0, 1, 2]);
        for i in 0..8u64 {
            assert!((out.dist.prob(i) - plain.prob(i)).abs() < 1e-9);
        }
    }
}
