//! SWAP routing of programs onto a coupling map, plus register compaction.

use crate::calibration::Device;
use crate::topology::CouplingMap;
use qt_circuit::{Gate, Instruction};
use qt_sim::{Op, Program};

/// A routed program and its qubit bookkeeping.
#[derive(Debug, Clone)]
pub struct RoutedProgram {
    /// The program on *physical* qubit indices (SWAPs already lowered
    /// to 3 CX each).
    pub program: Program,
    /// Final logical→physical map (where each logical qubit ended up).
    pub final_layout: Vec<usize>,
    /// Number of SWAPs inserted.
    pub swaps: usize,
}

/// Routes a logical program onto `coupling` starting from `layout`
/// (logical→physical). Two-qubit gates between non-adjacent qubits trigger
/// SWAP chains along a shortest path; SWAPs are immediately lowered to
/// 3 CX so the noise model sees the real cost.
///
/// # Panics
///
/// Panics if a gate has more than two operands (lower to the CX basis
/// first) or the layout is inconsistent.
pub fn route_program(program: &Program, layout: &[usize], coupling: &CouplingMap) -> RoutedProgram {
    let np = coupling.n_qubits();
    let mut l2p = layout.to_vec();
    let mut p2l = vec![usize::MAX; np];
    for (l, &p) in l2p.iter().enumerate() {
        assert!(p < np, "layout out of range");
        assert_eq!(p2l[p], usize::MAX, "layout not injective");
        p2l[p] = l;
    }

    let mut out = Program::new(np);
    let mut swaps = 0usize;

    let do_swap =
        |out: &mut Program, p2l: &mut Vec<usize>, l2p: &mut Vec<usize>, a: usize, b: usize| {
            // SWAP(a,b) = 3 CX on the physical pair.
            out.push_gate(Instruction::new(Gate::Cx, vec![a, b]));
            out.push_gate(Instruction::new(Gate::Cx, vec![b, a]));
            out.push_gate(Instruction::new(Gate::Cx, vec![a, b]));
            let (la, lb) = (p2l[a], p2l[b]);
            if la != usize::MAX {
                l2p[la] = b;
            }
            if lb != usize::MAX {
                l2p[lb] = a;
            }
            p2l.swap(a, b);
        };

    for op in program.ops() {
        match op {
            Op::Gate(instr) | Op::IdealGate(instr) => {
                assert!(
                    instr.qubits.len() <= 2,
                    "route_program expects gates of arity ≤ 2 (lower first)"
                );
                if instr.qubits.len() == 2 {
                    let (a, b) = (instr.qubits[0], instr.qubits[1]);
                    while !coupling.are_coupled(l2p[a], l2p[b]) {
                        let path = coupling.shortest_path(l2p[a], l2p[b]);
                        // Move logical `a` one step towards `b`.
                        do_swap(&mut out, &mut p2l, &mut l2p, path[0], path[1]);
                        swaps += 1;
                    }
                }
                let qs: Vec<usize> = instr.qubits.iter().map(|&q| l2p[q]).collect();
                match op {
                    Op::Gate(_) => out.push_gate(Instruction::new(instr.gate.clone(), qs)),
                    _ => out.push_ideal_gate(Instruction::new(instr.gate.clone(), qs)),
                };
            }
            Op::Reset { qubits, ket } => {
                let qs: Vec<usize> = qubits.iter().map(|&q| l2p[q]).collect();
                out.push_reset(&qs, ket.clone());
            }
        }
    }
    RoutedProgram {
        program: out,
        final_layout: l2p,
        swaps,
    }
}

/// Compacts a (physical-index) program onto its used qubits.
///
/// Returns the compact program and the list of physical qubits backing each
/// compact index (`physical[i]` = original index of compact qubit `i`).
///
/// Compact indices are assigned in **first-use order**, canonicalizing
/// routed programs: two programs whose physical op streams agree on a
/// prefix compact that prefix identically even when their divergent
/// suffixes touch different qubits, so physically-equal prefixes still
/// merge in the prefix-sharing batch executor (`qt_sim::trie`).
pub fn compact_program(program: &Program) -> (Program, Vec<usize>) {
    let mut seen = vec![false; program.n_qubits()];
    let mut physical: Vec<usize> = Vec::new();
    let note = |q: usize, seen: &mut Vec<bool>, physical: &mut Vec<usize>| {
        if !seen[q] {
            seen[q] = true;
            physical.push(q);
        }
    };
    for op in program.ops() {
        match op {
            Op::Gate(i) | Op::IdealGate(i) => {
                for &q in &i.qubits {
                    note(q, &mut seen, &mut physical);
                }
            }
            Op::Reset { qubits, .. } => {
                for &q in qubits {
                    note(q, &mut seen, &mut physical);
                }
            }
        }
    }
    let mut to_compact = vec![usize::MAX; program.n_qubits()];
    for (c, &p) in physical.iter().enumerate() {
        to_compact[p] = c;
    }
    let mut out = Program::new(physical.len());
    for op in program.ops() {
        match op {
            Op::Gate(i) => {
                let qs = i.qubits.iter().map(|&q| to_compact[q]).collect();
                out.push_gate(Instruction::new(i.gate.clone(), qs));
            }
            Op::IdealGate(i) => {
                let qs = i.qubits.iter().map(|&q| to_compact[q]).collect();
                out.push_ideal_gate(Instruction::new(i.gate.clone(), qs));
            }
            Op::Reset { qubits, ket } => {
                let qs: Vec<usize> = qubits.iter().map(|&q| to_compact[q]).collect();
                out.push_reset(&qs, ket.clone());
            }
        }
    }
    (out, physical)
}

/// Lowers every multi-qubit gate of a program to the CX basis
/// (resets and single-qubit gates pass through).
pub fn lower_program(program: &Program) -> Program {
    let mut out = Program::new(program.n_qubits());
    for op in program.ops() {
        match op {
            Op::Gate(i) => {
                let mut c = qt_circuit::Circuit::new(program.n_qubits());
                c.push(i.gate.clone(), i.qubits.clone());
                out.push_circuit(&crate::basis::decompose_to_cx_basis(&c));
            }
            Op::IdealGate(i) => {
                let mut c = qt_circuit::Circuit::new(program.n_qubits());
                c.push(i.gate.clone(), i.qubits.clone());
                for li in crate::basis::decompose_to_cx_basis(&c).instructions() {
                    out.push_ideal_gate(li.clone());
                }
            }
            Op::Reset { qubits, ket } => {
                out.push_reset(qubits, ket.clone());
            }
        }
    }
    out
}

/// Verifies a device for routing experiments: returns `Err` if disconnected.
pub fn validate_device(device: &Device) -> Result<(), String> {
    let d = device.coupling.distances_from(0);
    if d.contains(&usize::MAX) {
        return Err(format!("{}: coupling map is disconnected", device.name));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_circuit::Circuit;
    use qt_sim::ideal_distribution;

    /// Routing must preserve semantics: the measured distribution on the
    /// final physical positions of the logical qubits equals the logical
    /// distribution.
    fn check_routing_preserves(circ: &Circuit, coupling: &CouplingMap, layout: &[usize]) {
        let logical = Program::from_circuit(circ);
        let lowered = lower_program(&logical);
        let routed = route_program(&lowered, layout, coupling);
        let logical_measured: Vec<usize> = (0..circ.n_qubits()).collect();
        let physical_measured: Vec<usize> = logical_measured
            .iter()
            .map(|&l| routed.final_layout[l])
            .collect();
        let (compact, physical) = compact_program(&routed.program);
        let compact_measured: Vec<usize> = physical_measured
            .iter()
            .map(|&p| physical.iter().position(|&x| x == p).unwrap())
            .collect();
        let want = ideal_distribution(&logical, &logical_measured);
        let got = ideal_distribution(&compact, &compact_measured);
        for i in 0..want.dim() as u64 {
            let (a, b) = (want.prob(i), got.prob(i));
            assert!((a - b).abs() < 1e-9, "routing changed semantics");
        }
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let coupling = CouplingMap::line(4);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let routed = route_program(&Program::from_circuit(&c), &[0, 1, 2], &coupling);
        assert_eq!(routed.swaps, 0);
        check_routing_preserves(&c, &coupling, &[0, 1, 2]);
    }

    #[test]
    fn distant_gates_get_swapped() {
        let coupling = CouplingMap::line(4);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        // Logical 0 → physical 0, logical 1 → physical 3: needs 2 swaps.
        let routed = route_program(&Program::from_circuit(&c), &[0, 3], &coupling);
        assert_eq!(routed.swaps, 2);
        check_routing_preserves(&c, &coupling, &[0, 3]);
    }

    #[test]
    fn routing_on_heavy_hex_preserves_semantics() {
        let coupling = CouplingMap::falcon_27();
        let mut c = Circuit::new(5);
        c.h(0)
            .cx(0, 1)
            .cx(1, 2)
            .cx(0, 3)
            .cz(3, 4)
            .cx(2, 4)
            .ry(2, 0.4);
        let lowered_layout = [0usize, 1, 2, 4, 7];
        check_routing_preserves(&c, &coupling, &lowered_layout);
    }

    #[test]
    fn compaction_drops_idle_qubits() {
        let mut p = Program::new(27);
        p.push_gate(Instruction::new(Gate::H, vec![3]));
        p.push_gate(Instruction::new(Gate::Cx, vec![3, 5]));
        let (compact, physical) = compact_program(&p);
        assert_eq!(compact.n_qubits(), 2);
        assert_eq!(physical, vec![3, 5]);
    }

    #[test]
    fn lowering_program_preserves_resets() {
        let mut p = Program::new(2);
        p.push_gate(Instruction::new(Gate::Cz, vec![0, 1]));
        p.push_reset_state(&[0], qt_math::states::PrepState::Plus);
        let lowered = lower_program(&p);
        assert!(lowered.has_resets());
        assert!(lowered
            .ops()
            .iter()
            .all(|o| !matches!(o, Op::Gate(i) if i.gate.name() == "cz")));
    }
}
