//! Noise-aware initial layout (the paper's *qubit remapping*, after the
//! noise-aware mapping of Nation & Treinish).
//!
//! Greedy placement: logical qubits are placed in decreasing order of
//! interaction weight, each onto the free physical qubit that minimizes an
//! error estimate (distance-weighted two-qubit error to already-placed
//! partners plus single-qubit and readout error). Multiple seeded trials
//! with different anchor qubits are scored and the best kept.

use crate::calibration::Device;
use qt_circuit::Circuit;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// Logical-pair interaction weights (2q gate counts) of a circuit.
pub fn interaction_weights(circ: &Circuit) -> BTreeMap<(usize, usize), usize> {
    let mut w = BTreeMap::new();
    for instr in circ.instructions() {
        if instr.qubits.len() >= 2 {
            for i in 0..instr.qubits.len() {
                for j in i + 1..instr.qubits.len() {
                    let a = instr.qubits[i].min(instr.qubits[j]);
                    let b = instr.qubits[i].max(instr.qubits[j]);
                    *w.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
    }
    w
}

/// Estimated error of a candidate layout (lower is better): for every
/// interacting logical pair, the coupling distance (extra swaps) times the
/// device's median 2q error plus the endpoint errors; plus readout error on
/// measured qubits.
pub fn layout_cost(
    device: &Device,
    weights: &BTreeMap<(usize, usize), usize>,
    measured: &[usize],
    layout: &[usize],
) -> f64 {
    let median_q2: f64 = {
        let mut v: Vec<f64> = device.q2_error.values().copied().collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let mut cost = 0.0;
    for (&(a, b), &w) in weights {
        let pa = layout[a];
        let pb = layout[b];
        let d = device.coupling.distances_from(pa)[pb];
        let edge_err = if d == 1 {
            device.edge_error(pa, pb)
        } else {
            // d−1 swaps (3 CX each) plus the gate itself, at median error.
            median_q2 * (3.0 * (d.saturating_sub(1)) as f64 + 1.0)
        };
        cost += w as f64 * edge_err;
        cost += w as f64 * (device.q1_error[pa] + device.q1_error[pb]);
    }
    for &m in measured {
        cost += device.readout_error(layout[m]);
    }
    cost
}

/// Chooses a logical→physical layout for `circ` with `trials` seeded
/// greedy attempts, returning the lowest-cost one.
///
/// # Panics
///
/// Panics if the circuit needs more qubits than the device has.
pub fn choose_layout(
    circ: &Circuit,
    device: &Device,
    measured: &[usize],
    seed: u64,
    trials: usize,
) -> Vec<usize> {
    let n = circ.n_qubits();
    let np = device.n_qubits();
    assert!(n <= np, "circuit needs {n} qubits, device has {np}");
    let weights = interaction_weights(circ);

    // Total interaction weight per logical qubit → placement order.
    let mut totals = vec![0usize; n];
    for (&(a, b), &w) in &weights {
        totals[a] += w;
        totals[b] += w;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&q| std::cmp::Reverse(totals[q]));

    let mut best: Option<(f64, Vec<usize>)> = None;
    let consider = |layout: Vec<usize>, best: &mut Option<(f64, Vec<usize>)>| {
        let cost = layout_cost(device, &weights, measured, &layout);
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            *best = Some((cost, layout));
        }
    };
    // Chain/ring interaction graphs (VQE linear entanglement, QAOA rings)
    // get a dedicated path-embedding attempt: swap-free when the device
    // admits a simple path of the right length; rings additionally ask for
    // a nearby closure so routing stays cheap.
    if let Some((chain, is_cycle)) = logical_chain(&weights, n) {
        let closures: &[usize] = if is_cycle {
            &[1, 2, 3, usize::MAX]
        } else {
            &[usize::MAX]
        };
        for &max_close in closures {
            if let Some(layout) = embed_path(device, &chain, n, max_close) {
                consider(layout, &mut best);
                break;
            }
        }
    }
    for t in 0..trials.max(1) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64));
        let layout = greedy_layout(device, &weights, &order, n, &mut rng);
        consider(layout, &mut best);
    }
    best.expect("at least one trial").1
}

/// If the interaction graph is a simple path or cycle, returns the logical
/// qubits in walk order plus whether it was a cycle (broken at an arbitrary
/// edge).
fn logical_chain(
    weights: &BTreeMap<(usize, usize), usize>,
    n: usize,
) -> Option<(Vec<usize>, bool)> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in weights.keys() {
        adj[a].push(b);
        adj[b].push(a);
    }
    if adj.iter().any(|v| v.len() > 2) || weights.is_empty() {
        return None;
    }
    // Start from an endpoint if any (path), else from 0 (cycle).
    let endpoint = (0..n).find(|&q| adj[q].len() == 1);
    let is_cycle = endpoint.is_none();
    let start = endpoint.unwrap_or(0);
    let mut order = vec![start];
    let mut prev = usize::MAX;
    let mut cur = start;
    while order.len() < n {
        let next = adj[cur].iter().copied().find(|&x| x != prev)?;
        if next == start {
            break; // closed the cycle early: disconnected chain
        }
        order.push(next);
        prev = cur;
        cur = next;
    }
    if order.len() == n {
        Some((order, is_cycle))
    } else {
        None // disconnected interaction graph: fall back to greedy
    }
}

/// Finds a simple path of `len` physical qubits minimizing accumulated edge
/// error, by bounded DFS from the best starting qubits. For ring workloads
/// `max_close` bounds the device distance between the path's endpoints.
/// Returns the layout (logical `chain[i]` → i-th path vertex) or `None`.
fn embed_path(
    device: &Device,
    chain: &[usize],
    len: usize,
    max_close: usize,
) -> Option<Vec<usize>> {
    let np = device.n_qubits();
    let mut starts: Vec<usize> = (0..np).collect();
    starts.sort_by(|&a, &b| {
        device
            .readout_error(a)
            .partial_cmp(&device.readout_error(b))
            .unwrap()
    });
    let mut budget = 200_000usize;
    for &start in starts.iter().take(np) {
        let dist_from_start = device.coupling.distances_from(start);
        let mut path = vec![start];
        let mut used = vec![false; np];
        used[start] = true;
        if dfs_path(
            device,
            &mut path,
            &mut used,
            len,
            max_close,
            &dist_from_start,
            &mut budget,
        ) {
            let mut layout = vec![usize::MAX; chain.len()];
            for (i, &logical) in chain.iter().enumerate() {
                layout[logical] = path[i];
            }
            return Some(layout);
        }
        if budget == 0 {
            break;
        }
    }
    None
}

fn dfs_path(
    device: &Device,
    path: &mut Vec<usize>,
    used: &mut [bool],
    len: usize,
    max_close: usize,
    dist_from_start: &[usize],
    budget: &mut usize,
) -> bool {
    let cur = *path.last().expect("path non-empty");
    if path.len() == len {
        return max_close == usize::MAX || dist_from_start[cur] <= max_close;
    }
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    // Closure pruning: cannot wander further from the start than the
    // remaining steps plus the allowed closing distance.
    if max_close != usize::MAX {
        let remaining = len - path.len();
        if dist_from_start[cur] > remaining + max_close {
            return false;
        }
    }
    // Visit neighbors best-edge-first so the greedy completion is cheap.
    let mut nbs: Vec<usize> = device
        .coupling
        .neighbors(cur)
        .iter()
        .copied()
        .filter(|&q| !used[q])
        .collect();
    nbs.sort_by(|&a, &b| {
        device
            .edge_error(cur, a)
            .partial_cmp(&device.edge_error(cur, b))
            .unwrap()
    });
    for nb in nbs {
        path.push(nb);
        used[nb] = true;
        if dfs_path(device, path, used, len, max_close, dist_from_start, budget) {
            return true;
        }
        path.pop();
        used[nb] = false;
    }
    false
}

fn greedy_layout(
    device: &Device,
    weights: &BTreeMap<(usize, usize), usize>,
    order: &[usize],
    n: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let np = device.n_qubits();
    let mut layout = vec![usize::MAX; n];
    let mut used = vec![false; np];

    for (rank, &logical) in order.iter().enumerate() {
        // Physical candidates: all free qubits; for the anchor pick among
        // the best third by local quality, randomized by the trial seed.
        let placed_partners: Vec<(usize, usize)> = weights
            .iter()
            .filter_map(|(&(a, b), &w)| {
                if a == logical && layout[b] != usize::MAX {
                    Some((layout[b], w))
                } else if b == logical && layout[a] != usize::MAX {
                    Some((layout[a], w))
                } else {
                    None
                }
            })
            .collect();
        let mut best_p = usize::MAX;
        let mut best_cost = f64::INFINITY;
        for (p, _) in used.iter().enumerate().take(np).filter(|(_, &u)| !u) {
            let mut cost = device.q1_error[p] * 4.0 + device.readout_error(p);
            // Prefer qubits with good adjacent edges.
            let mut best_edge = f64::INFINITY;
            for &nb in device.coupling.neighbors(p) {
                best_edge = best_edge.min(device.edge_error(p, nb));
            }
            cost += best_edge;
            for &(pp, w) in &placed_partners {
                let d = device.coupling.distances_from(p)[pp];
                let e = if d == 1 {
                    device.edge_error(p, pp)
                } else {
                    0.02 * d as f64 // distance penalty dominates
                };
                cost += w as f64 * e;
            }
            if rank == 0 {
                // Randomize the anchor choice a little across trials.
                cost += rng.random::<f64>() * 0.003;
            }
            if cost < best_cost {
                best_cost = cost;
                best_p = p;
            }
        }
        layout[logical] = best_p;
        used[best_p] = true;
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_algos::vqe_ansatz;

    #[test]
    fn layout_is_injective_and_in_range() {
        let dev = Device::fake_hanoi();
        let circ = vqe_ansatz(12, 2, 3);
        let layout = choose_layout(&circ, &dev, &(0..12).collect::<Vec<_>>(), 1, 8);
        assert_eq!(layout.len(), 12);
        let mut seen = std::collections::BTreeSet::new();
        for &p in &layout {
            assert!(p < dev.n_qubits());
            assert!(seen.insert(p), "duplicate physical qubit {p}");
        }
    }

    #[test]
    fn chain_circuit_lands_on_mostly_adjacent_qubits() {
        // A 12-qubit linear-entanglement ansatz should map with few
        // non-adjacent interacting pairs on the 27q heavy-hex device.
        let dev = Device::fake_hanoi();
        let circ = vqe_ansatz(12, 1, 3);
        let layout = choose_layout(&circ, &dev, &(0..12).collect::<Vec<_>>(), 1, 16);
        let weights = interaction_weights(&circ);
        let nonadjacent = weights
            .keys()
            .filter(|&&(a, b)| !dev.coupling.are_coupled(layout[a], layout[b]))
            .count();
        assert!(
            nonadjacent <= 3,
            "{nonadjacent} of {} pairs non-adjacent",
            weights.len()
        );
    }

    #[test]
    fn more_trials_never_worse() {
        let dev = Device::fake_kyoto();
        let circ = vqe_ansatz(10, 2, 5);
        let measured: Vec<usize> = (0..10).collect();
        let w = interaction_weights(&circ);
        let l1 = choose_layout(&circ, &dev, &measured, 7, 1);
        let l16 = choose_layout(&circ, &dev, &measured, 7, 16);
        assert!(
            layout_cost(&dev, &w, &measured, &l16) <= layout_cost(&dev, &w, &measured, &l1) + 1e-12
        );
    }
}
