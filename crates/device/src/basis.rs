//! Decomposition into the `{CX, 1q}` basis.
//!
//! The paper reports "average 2-qubit basis gate count" — CNOT counts after
//! transpilation. This module lowers every multi-qubit gate of the IR to
//! CX plus single-qubit gates with the textbook identities, so counting the
//! CX instructions of a lowered circuit reproduces that metric.

use qt_circuit::{Circuit, Gate, Instruction};

/// Lowers a circuit to CX + single-qubit gates.
///
/// Identities used: `CZ = H·CX·H` (1 CX), `CP/CRZ/CRX/CRY` (2 CX),
/// `SWAP` (3 CX), `CCP` (3 CP + 2 CX = 8 CX). Single-qubit gates pass
/// through unchanged.
pub fn decompose_to_cx_basis(circ: &Circuit) -> Circuit {
    let mut out = Circuit::new(circ.n_qubits());
    for instr in circ.instructions() {
        lower_into(&mut out, instr);
    }
    out
}

fn lower_into(out: &mut Circuit, instr: &Instruction) {
    let q = &instr.qubits;
    match &instr.gate {
        Gate::Cz => {
            out.h(q[1]).cx(q[0], q[1]).h(q[1]);
        }
        Gate::Cp(theta) => {
            lower_cp(out, q[0], q[1], *theta);
        }
        Gate::Crz(theta) => {
            out.rz(q[1], theta / 2.0)
                .cx(q[0], q[1])
                .rz(q[1], -theta / 2.0)
                .cx(q[0], q[1]);
        }
        Gate::Cry(theta) => {
            out.ry(q[1], theta / 2.0)
                .cx(q[0], q[1])
                .ry(q[1], -theta / 2.0)
                .cx(q[0], q[1]);
        }
        Gate::Crx(theta) => {
            // CRX = H(t)·CRZ·H(t).
            out.h(q[1])
                .rz(q[1], theta / 2.0)
                .cx(q[0], q[1])
                .rz(q[1], -theta / 2.0)
                .cx(q[0], q[1])
                .h(q[1]);
        }
        Gate::Cy => {
            out.sdg(q[1]).cx(q[0], q[1]).s(q[1]);
        }
        Gate::Swap => {
            out.cx(q[0], q[1]).cx(q[1], q[0]).cx(q[0], q[1]);
        }
        Gate::Ccp(theta) => {
            // CCP(θ) = CP(θ/2)(b,c) · CX(a,b) · CP(−θ/2)(b,c) · CX(a,b)
            //          · CP(θ/2)(a,c).
            lower_cp(out, q[1], q[2], theta / 2.0);
            out.cx(q[0], q[1]);
            lower_cp(out, q[1], q[2], -theta / 2.0);
            out.cx(q[0], q[1]);
            lower_cp(out, q[0], q[2], theta / 2.0);
        }
        // CX and single-qubit gates pass through.
        _ => {
            out.push(instr.gate.clone(), q.clone());
        }
    }
}

fn lower_cp(out: &mut Circuit, a: usize, b: usize, theta: f64) {
    out.p(a, theta / 2.0)
        .cx(a, b)
        .p(b, -theta / 2.0)
        .cx(a, b)
        .p(b, theta / 2.0);
}

/// Number of CX gates after lowering (the paper's 2-qubit basis gate count)
/// without materializing the lowered circuit.
pub fn cx_count(circ: &Circuit) -> usize {
    circ.instructions()
        .iter()
        .map(|i| match &i.gate {
            Gate::Cx => 1,
            Gate::Cz | Gate::Cy => 1,
            Gate::Cp(_) | Gate::Crz(_) | Gate::Crx(_) | Gate::Cry(_) => 2,
            Gate::Swap => 3,
            Gate::Ccp(_) => 8,
            _ => 0,
        })
        .sum()
}

/// A sanity constant used in docs/tests.
pub const SWAP_CX_COST: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equiv(circ: &Circuit) {
        let lowered = decompose_to_cx_basis(circ);
        assert!(
            lowered
                .unitary()
                .approx_eq_up_to_phase(&circ.unitary(), 1e-9),
            "lowering changed the unitary of {circ}"
        );
        for i in lowered.instructions() {
            assert!(
                matches!(i.gate, Gate::Cx) || i.gate.n_qubits() == 1,
                "non-basis gate {} survived",
                i.gate.name()
            );
        }
        assert_eq!(
            lowered
                .instructions()
                .iter()
                .filter(|i| matches!(i.gate, Gate::Cx))
                .count(),
            cx_count(circ),
            "cx_count disagrees with lowering"
        );
    }

    #[test]
    fn all_two_qubit_gates_lower_correctly() {
        for gate in [
            Gate::Cz,
            Gate::Cp(0.9),
            Gate::Crz(1.3),
            Gate::Crx(-0.4),
            Gate::Cry(0.7),
            Gate::Cy,
            Gate::Swap,
            Gate::Cx,
        ] {
            let mut c = Circuit::new(2);
            c.push(gate, vec![0, 1]);
            check_equiv(&c);
        }
    }

    #[test]
    fn ccp_lowers_correctly() {
        let mut c = Circuit::new(3);
        c.ccp(0, 1, 2, 0.77);
        check_equiv(&c);
    }

    #[test]
    fn mixed_circuit_lowering() {
        let mut c = Circuit::new(3);
        c.h(0).cp(0, 1, 0.5).cz(1, 2).swap(0, 2).ry(1, 0.3);
        check_equiv(&c);
        assert_eq!(cx_count(&c), 2 + 1 + 3);
    }

    #[test]
    fn qaoa_edge_costs_two_cx() {
        // The paper's counting: one ZZ interaction = 2 CX.
        let mut c = Circuit::new(2);
        qt_algos::qaoa::zz_interaction(&mut c, 0, 1, 0.4);
        assert_eq!(cx_count(&c), 2);
    }
}
