//! Typed errors of the staged pipeline.
//!
//! The monolithic entry point used to `assert!` on bad configuration and
//! silently swallow [`UnsupportedCoupling`] failures into an opaque
//! `skipped` list. The pipeline instead reports:
//!
//! * [`PlanError`] — stage 1 (analysis & circuit preparation) failures.
//!   Configuration-level errors fail [`crate::QuTracer::plan`] outright;
//!   per-subset coupling failures are recorded as [`SkippedSubset`] entries
//!   carrying the typed reason, so the rest of the plan still runs and the
//!   report keeps the *why* alongside the *what*.
//! * [`ExecError`] — stage 2/3 failures: a runner returning the wrong
//!   result count, or artifacts that no longer match the plan they were
//!   executed from.

use qt_circuit::passes::UnsupportedCoupling;

/// A stage-1 (planning) failure.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Subset sizes other than 1 or 2 are outside the paper's framework.
    UnsupportedSubsetSize {
        /// The requested subset size.
        size: usize,
    },
    /// Pair tracing needs at least two measured qubits.
    MeasuredTooSmall {
        /// Qubits the configuration needs.
        needed: usize,
        /// Qubits actually measured.
        got: usize,
    },
    /// A gate couples the subset non-diagonally to the rest, so no Z check
    /// can protect it.
    UnsupportedCoupling {
        /// The traced physical qubits of the offending subset.
        subset: Vec<usize>,
        /// The underlying segmentation failure.
        source: UnsupportedCoupling,
    },
}

impl PlanError {
    /// Wraps a segmentation failure with the subset it occurred on.
    pub fn coupling(subset: Vec<usize>, source: UnsupportedCoupling) -> Self {
        PlanError::UnsupportedCoupling { subset, source }
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnsupportedSubsetSize { size } => {
                write!(f, "subset size must be 1 or 2, got {size}")
            }
            PlanError::MeasuredTooSmall { needed, got } => {
                write!(f, "need at least {needed} measured qubits, got {got}")
            }
            PlanError::UnsupportedCoupling { subset, source } => {
                write!(f, "subset {subset:?} cannot be traced: {source}")
            }
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::UnsupportedCoupling { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A stage-2/3 (execution or recombination) failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The runner returned a different number of results than submitted.
    ResultCountMismatch {
        /// Jobs submitted.
        expected: usize,
        /// Results returned.
        got: usize,
    },
    /// Recombination consumed more results than the plan recorded — the
    /// artifacts do not belong to this plan.
    ArtifactsExhausted,
    /// A finite-shot execution was given a [`qt_sim::ShotPlan`] covering a
    /// different number of jobs than the plan's deduplicated programs.
    ShotPlanMismatch {
        /// Deduplicated programs in the mitigation plan.
        expected: usize,
        /// Jobs the shot plan covers.
        got: usize,
    },
    /// A finite-shot execution allocated zero shots to a program: its
    /// "measured" distribution would be the information-free uniform,
    /// which recombination cannot distinguish from real data.
    EmptyShotAllocation {
        /// The zero-shot program slot.
        slot: usize,
    },
    /// A total shot budget below the plan's program count: the 1-shot
    /// floor cannot be funded without either overspending the budget or
    /// leaving zero-shot programs, so allocation refuses outright instead
    /// of producing a plan that fails later (or spends shots the caller
    /// never granted).
    InsufficientShotBudget {
        /// The granted budget.
        total_shots: usize,
        /// Deduplicated programs the plan must fund.
        n_programs: usize,
    },
    /// An adaptive shot policy carried a pilot fraction outside `[0, 1]`
    /// (or a non-finite one) — there is no meaningful pilot round to run.
    InvalidPilotFraction {
        /// The offending fraction.
        value: f64,
    },
    /// Recombination consumed fewer results than the plan recorded, or the
    /// plan's circuit analysis no longer reproduces — the plan and the
    /// artifacts diverged.
    PlanMismatch {
        /// Human-readable diagnosis.
        detail: String,
    },
    /// A fallible execution lost a job the report cannot degrade around:
    /// the global run itself (every mitigation subset refines it, so
    /// nothing survives its loss), after the bounded retry budget was
    /// spent. Subset-only failures degrade instead — see
    /// [`crate::MitigationPlan::execute_fallible`].
    JobFailed {
        /// The failed program slot (plan program order).
        slot: usize,
        /// The terminal typed failure of that job.
        error: qt_sim::RunError,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::ResultCountMismatch { expected, got } => {
                write!(f, "runner returned {got} results for {expected} jobs")
            }
            ExecError::ArtifactsExhausted => {
                write!(
                    f,
                    "execution artifacts exhausted before recombination finished"
                )
            }
            ExecError::ShotPlanMismatch { expected, got } => {
                write!(
                    f,
                    "shot plan covers {got} jobs but the plan has {expected} deduplicated programs"
                )
            }
            ExecError::EmptyShotAllocation { slot } => {
                write!(
                    f,
                    "program slot {slot} was allocated zero shots; every planned program \
                     needs at least one shot to measure anything"
                )
            }
            ExecError::InsufficientShotBudget {
                total_shots,
                n_programs,
            } => {
                write!(
                    f,
                    "shot budget {total_shots} cannot fund the 1-shot floor of \
                     {n_programs} programs"
                )
            }
            ExecError::InvalidPilotFraction { value } => {
                write!(f, "pilot fraction must lie in [0, 1], got {value}")
            }
            ExecError::PlanMismatch { detail } => write!(f, "plan/artifact mismatch: {detail}"),
            ExecError::JobFailed { slot, error } => {
                write!(f, "program slot {slot} failed: {error}")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::JobFailed { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// A subset the planner could not trace, with the typed reason. The final
/// [`crate::QuTracerReport`] keeps these so callers can tell *why* a subset
/// was dropped instead of inferring it from absence.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedSubset {
    /// The traced physical qubits.
    pub qubits: Vec<usize>,
    /// Bit positions of those qubits in the measured list.
    pub positions: Vec<usize>,
    /// Why planning failed for this subset.
    pub reason: PlanError,
}

impl SkippedSubset {
    /// Whether the subset was skipped for non-diagonal coupling.
    pub fn is_coupling(&self) -> bool {
        matches!(self.reason, PlanError::UnsupportedCoupling { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_error_display_names_the_subset() {
        let e = PlanError::coupling(
            vec![2, 3],
            UnsupportedCoupling {
                index: 5,
                instruction: "cx q2, q4".into(),
            },
        );
        let s = e.to_string();
        assert!(s.contains("[2, 3]"), "{s}");
        assert!(s.contains("cx q2, q4"), "{s}");
    }

    #[test]
    fn exec_error_display_reports_counts() {
        let e = ExecError::ResultCountMismatch {
            expected: 7,
            got: 3,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
    }
}
