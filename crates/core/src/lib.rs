//! The QuTracer framework (the paper's primary contribution).
//!
//! QuTracer continually tracks the state of small qubit subsets through a
//! circuit's execution ("quantum watchpoints", implemented by repurposed
//! wire cutting), mitigates gate *and* measurement errors on those subsets
//! with qubit-subsetting Pauli checks (QSPC), and folds the resulting
//! high-fidelity local distributions back into the noisy global
//! distribution via Bayesian recombination.
//!
//! # Example
//!
//! ```
//! use qt_core::{run_qutracer, QuTracerConfig};
//! use qt_sim::{Backend, Executor, NoiseModel};
//! use qt_algos::vqe_ansatz;
//!
//! let circ = vqe_ansatz(4, 1, 7);
//! let exec = Executor::with_backend(
//!     NoiseModel::depolarizing(0.001, 0.02).with_readout(0.05),
//!     Backend::DensityMatrix,
//! );
//! let report = run_qutracer(&exec, &circ, &[0, 1, 2, 3], &QuTracerConfig::single());
//! assert!((report.distribution.total() - 1.0).abs() < 1e-9);
//! ```

pub mod framework;
pub mod trace;

pub use framework::{run_qutracer, QuTracerConfig, QuTracerReport};
pub use trace::{trace_pair, trace_single, TraceConfig, TraceOutcome};
