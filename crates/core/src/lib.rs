//! The QuTracer framework (the paper's primary contribution).
//!
//! QuTracer continually tracks the state of small qubit subsets through a
//! circuit's execution ("quantum watchpoints", implemented by repurposed
//! wire cutting), mitigates gate *and* measurement errors on those subsets
//! with qubit-subsetting Pauli checks (QSPC), and folds the resulting
//! high-fidelity local distributions back into the noisy global
//! distribution via Bayesian recombination.
//!
//! # Example
//!
//! ```
//! use qt_core::{run_qutracer, QuTracerConfig};
//! use qt_sim::{Backend, Executor, NoiseModel};
//! use qt_algos::vqe_ansatz;
//!
//! let circ = vqe_ansatz(4, 1, 7);
//! let exec = Executor::with_backend(
//!     NoiseModel::depolarizing(0.001, 0.02).with_readout(0.05),
//!     Backend::DensityMatrix,
//! );
//! let report = run_qutracer(&exec, &circ, &[0, 1, 2, 3], &QuTracerConfig::single());
//! assert!((report.distribution.total() - 1.0).abs() < 1e-9);
//! ```

//!
//! # The staged pipeline
//!
//! [`run_qutracer`] is a compatibility wrapper; the first-class API is the
//! three-stage pipeline mirroring the paper's Fig. 4 — see [`pipeline`]:
//!
//! ```
//! # use qt_core::{QuTracer, QuTracerConfig};
//! # use qt_sim::{Backend, Executor, NoiseModel};
//! # let circ = qt_algos::vqe_ansatz(4, 1, 7);
//! # let exec = Executor::with_backend(NoiseModel::ideal(), Backend::DensityMatrix);
//! let plan = QuTracer::plan(&circ, &[0, 1, 2, 3], &QuTracerConfig::single())?;
//! let report = plan.execute(&exec)?.recombine()?;
//! # assert!(plan.n_programs() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod error;
pub mod framework;
pub mod pipeline;
pub mod session;
pub mod trace;

pub use error::{ExecError, PlanError, SkippedSubset};
pub use framework::{run_qutracer, QuTracerConfig, QuTracerReport};
pub use pipeline::{
    ExecutionArtifacts, MitigationPlan, PlanView, QuTracer, ShotPolicy, SubsetPlanSummary,
};
pub use session::{neyman_weights, MitigationSession, RoundSpec};
pub use trace::{trace_pair, trace_single, JobKind, JobTag, TraceConfig, TraceOutcome};
// Failure-domain vocabulary of the fallible execution paths, re-exported
// so pipeline callers need not depend on `qt_sim` directly.
pub use qt_sim::{FailureStats, RetryPolicy, RunError, RunErrorKind};
// The strategy-unified mitigation surface, re-exported so session callers
// need not depend on `qt_baselines` directly.
pub use qt_baselines::{ExecutionRecord, JobFailures, MitigationStrategy, StrategyError};
