//! The staged pipeline API: `plan → execute → recombine` (Fig. 4).
//!
//! The paper's framework is explicitly three-staged:
//!
//! 1. **Analysis & circuit preparation** — [`QuTracer::plan`] performs all
//!    classical work up front (subset enumeration, segmentation, traceback,
//!    ensemble-circuit generation) and yields an inspectable
//!    [`MitigationPlan`] holding every [`Program`](qt_sim::Program) the run
//!    will need, tagged by (subset, segment, preparation, check basis).
//! 2. **Execution** — [`MitigationPlan::execute`] flattens *all* programs
//!    across *all* subsets into one deduplicated
//!    [`run_batch`](Runner::run_batch) submission. Identical programs
//!    (e.g. the shared ensemble of symmetric subsets) execute once and fan
//!    back out; the runner's existing thread-budget policy spreads the
//!    batch over the machine.
//! 3. **Recombination** — [`ExecutionArtifacts::recombine`] replays the
//!    walk of every subset against the recorded results, purely
//!    classically, and performs the Bayesian update.
//!
//! Because the programs a trace requests are a static function of the
//! circuit analysis (results never influence *what* runs, only how it is
//! combined), the pipeline is bit-identical to the serial
//! [`run_qutracer`](crate::run_qutracer) path — property-tested in
//! `tests/pipeline_equivalence.rs`. A [`MitigationPlan`] is thereby a
//! self-contained, serializable unit of work: the enabling structure for
//! caching, sharded execution and service-style deployments.
//!
//! # Example
//!
//! ```
//! use qt_core::{QuTracer, QuTracerConfig};
//! use qt_sim::{Backend, Executor, NoiseModel};
//! use qt_algos::vqe_ansatz;
//!
//! let circ = vqe_ansatz(4, 1, 7);
//! let measured = [0, 1, 2, 3];
//! let plan = QuTracer::plan(&circ, &measured, &QuTracerConfig::single()).unwrap();
//! assert!(plan.n_programs() > 1); // inspectable before anything executes
//!
//! let exec = Executor::with_backend(
//!     NoiseModel::depolarizing(0.001, 0.02).with_readout(0.05),
//!     Backend::DensityMatrix,
//! );
//! let report = plan.execute(&exec).unwrap().recombine().unwrap();
//! assert!((report.distribution.total() - 1.0).abs() < 1e-9);
//! ```

use crate::error::{ExecError, PlanError, SkippedSubset};
use crate::framework::{enumerate_subset_positions, QuTracerConfig, QuTracerReport};
use crate::session::MitigationSession;
use crate::trace::{
    trace_pair_with_port, trace_single_with_port, CollectPort, JobKind, JobTag, ReplayPort,
    TraceError, TraceOutcome,
};
use qt_baselines::{
    apportion_shots, ExecutionRecord, MitigationStrategy, OverheadStats, StrategyError,
};
use qt_circuit::Circuit;
use qt_dist::{recombine, Distribution};
use qt_pcs::QspcStats;
use qt_sim::{
    try_run_batch_resilient, BatchJob, ExecutionTrie, FailureStats, JobInterner, Program,
    RetryPolicy, RunError, RunOutput, Runner, ShotPlan, TrieStats,
};
use std::collections::BTreeMap;

/// The framework entry point of the staged pipeline.
pub struct QuTracer;

/// How [`MitigationPlan::allocate_shots`] splits a total shot budget
/// across the plan's deduplicated programs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShotPolicy {
    /// Every deduplicated program gets an equal share — what a naive
    /// executor without fan-out awareness would pay.
    Uniform,
    /// Programs are weighted by their request fan-out: a program serving
    /// `k` logical requests (e.g. the shared ensemble of `k` symmetric
    /// subsets) gets `k` shares, so every *logical* request sees the same
    /// effective budget — the paper's per-circuit shot accounting carried
    /// through deduplication.
    WeightedByFanout,
    /// Two-round Neyman allocation (see
    /// [`MitigationSession`](crate::MitigationSession)): a *pilot* round
    /// spends `⌊pilot_fraction · total⌋` shots uniformly, per-program
    /// sampling dispersions are estimated from the pilot counts, and the
    /// remaining budget is split proportionally to those dispersions
    /// (`n_i ∝ σ_i` — the Neyman optimum for equal per-estimate error).
    /// Pilot counts are absorbed into the final tally, so no shot is
    /// wasted. A fraction that leaves either round below one shot per
    /// program degrades to the single-round uniform allocation — at
    /// `pilot_fraction` 0 or 1 the session is bit-identical to
    /// [`ShotPolicy::Uniform`]. Static use via
    /// [`MitigationPlan::allocate_shots`] allocates the uniform pilot
    /// prior.
    Adaptive {
        /// Fraction of the total budget spent on the pilot round; must
        /// lie in `[0, 1]`.
        pilot_fraction: f64,
    },
}

/// One deduplicated program of a plan, with every logical request mapped
/// onto it.
#[derive(Debug, Clone)]
struct PlannedProgram {
    job: BatchJob,
    tags: Vec<JobTag>,
}

/// The planned walk of one *distinct* traced subset (symmetric subsets
/// share a single walk).
#[derive(Debug, Clone)]
struct TracePlan {
    qubits: Vec<usize>,
    /// Indices into the program table, in request order.
    slots: Vec<usize>,
    /// Plan-time statistics (exact gate counts, pre-transpilation).
    static_stats: QspcStats,
}

/// Maps one enumerated subset onto the distinct walk serving it.
#[derive(Debug, Clone)]
struct Assignment {
    positions: Vec<usize>,
    qubits: Vec<usize>,
    trace: usize,
    shared: bool,
}

/// A flat, serializable summary of a [`MitigationPlan`] (see
/// [`MitigationPlan::view`]): plain counts and the shared-prefix fraction,
/// with no borrowed plan internals — what a service front-end puts on the
/// wire for a queued job's status.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanView {
    /// Register size of the submitted circuit.
    pub n_qubits: usize,
    /// The measured qubits, in bit order.
    pub measured: Vec<usize>,
    /// Distinct programs after cross-subset dedup.
    pub n_programs: usize,
    /// Logical program requests before dedup.
    pub n_requests: usize,
    /// Traced subsets served (excluding skipped ones).
    pub n_subsets: usize,
    /// Subsets that could not be planned.
    pub n_skipped: usize,
    /// Fraction of the batch's gate stream shared between programs.
    pub shared_gate_fraction: f64,
}

/// Per-subset view of a plan (see [`MitigationPlan::subset_summaries`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetPlanSummary {
    /// The traced physical qubits.
    pub qubits: Vec<usize>,
    /// Bit positions in the measured list.
    pub positions: Vec<usize>,
    /// Programs the subset's walk requests (before cross-subset dedup).
    pub n_requests: usize,
    /// Whether this subset reuses another symmetric subset's ensemble.
    pub shared: bool,
}

/// Stage-1 output: every program the run needs, deduplicated and tagged,
/// plus the bookkeeping to recombine results afterwards.
#[derive(Debug, Clone)]
pub struct MitigationPlan {
    circuit: Circuit,
    measured: Vec<usize>,
    config: QuTracerConfig,
    programs: Vec<PlannedProgram>,
    global_slot: usize,
    traces: Vec<TracePlan>,
    assignments: Vec<Assignment>,
    skipped: Vec<SkippedSubset>,
    /// Prefix-clustered submission order: program slots reordered so jobs
    /// sharing long op prefixes are adjacent (the DFS leaf order of the
    /// plan's execution tries).
    batch_order: Vec<usize>,
    /// Shared-work statistics of the plan's execution tries.
    batch_stats: TrieStats,
}

/// Folds the plan's programs (grouped by register size) into execution
/// tries: the concatenated DFS leaf orders give the prefix-clustered
/// submission order, and the merged stats preview how much gate work the
/// trie-scheduled runner shares.
fn cluster_programs(programs: &[PlannedProgram]) -> (Vec<usize>, TrieStats) {
    let mut by_n: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, p) in programs.iter().enumerate() {
        by_n.entry(p.job.program.n_qubits()).or_default().push(i);
    }
    let mut order = Vec::with_capacity(programs.len());
    let mut stats = TrieStats::default();
    for idxs in by_n.values() {
        let group: Vec<&Program> = idxs.iter().map(|&i| &programs[i].job.program).collect();
        let trie = ExecutionTrie::build(&group);
        stats.absorb(&trie.stats());
        order.extend(trie.clustered_jobs().into_iter().map(|local| idxs[local]));
    }
    (order, stats)
}

impl QuTracer {
    /// Stage 1: performs all classical analysis and builds the full set of
    /// programs the run will need.
    ///
    /// Configuration-level failures return a typed [`PlanError`]; subsets
    /// that cannot be traced (non-diagonal coupling) are recorded in
    /// [`MitigationPlan::skipped`] with their reason and do not fail the
    /// plan — matching the paper's behaviour of mitigating what it can.
    ///
    /// # Errors
    ///
    /// [`PlanError::UnsupportedSubsetSize`] for subset sizes outside
    /// `{1, 2}`; [`PlanError::MeasuredTooSmall`] when pair tracing has
    /// fewer than two measured qubits.
    pub fn plan(
        circuit: &Circuit,
        measured: &[usize],
        config: &QuTracerConfig,
    ) -> Result<MitigationPlan, PlanError> {
        if config.subset_size != 1 && config.subset_size != 2 {
            return Err(PlanError::UnsupportedSubsetSize {
                size: config.subset_size,
            });
        }
        if config.subset_size == 2 && measured.len() < 2 {
            return Err(PlanError::MeasuredTooSmall {
                needed: 2,
                got: measured.len(),
            });
        }

        let mut dedup = JobInterner::new();
        let mut programs: Vec<PlannedProgram> = Vec::new();
        let mut intern = |programs: &mut Vec<PlannedProgram>, job: BatchJob, tag: JobTag| {
            let (slot, _) = dedup.intern_with(programs, job, |job| PlannedProgram {
                job,
                tags: Vec::new(),
            });
            programs[slot].tags.push(tag);
            slot
        };

        let global_slot = intern(
            &mut programs,
            BatchJob::new(Program::from_circuit(circuit), measured.to_vec()),
            JobTag {
                subset: Vec::new(),
                segment: None,
                kind: JobKind::Global,
            },
        );

        let symmetric_pairs = config.symmetric_subsets && config.subset_size == 2;
        let mut traces: Vec<TracePlan> = Vec::new();
        let mut assignments: Vec<Assignment> = Vec::new();
        let mut skipped: Vec<SkippedSubset> = Vec::new();
        let mut shared_trace: Option<usize> = None;

        for positions in enumerate_subset_positions(measured.len(), config) {
            let qubits: Vec<usize> = positions.iter().map(|&p| measured[p]).collect();
            if symmetric_pairs {
                if let Some(trace) = shared_trace {
                    assignments.push(Assignment {
                        positions,
                        qubits,
                        trace,
                        shared: true,
                    });
                    continue;
                }
            }
            let mut sink: Vec<(BatchJob, JobTag)> = Vec::new();
            let walk = {
                let mut port = CollectPort { sink: &mut sink };
                if config.subset_size == 1 {
                    trace_single_with_port(&mut port, circuit, qubits[0], &config.trace)
                } else {
                    trace_pair_with_port(&mut port, circuit, [qubits[0], qubits[1]], &config.trace)
                }
            };
            match walk {
                Ok(outcome) => {
                    let slots: Vec<usize> = sink
                        .into_iter()
                        .map(|(job, tag)| intern(&mut programs, job, tag))
                        .collect();
                    let trace = traces.len();
                    traces.push(TracePlan {
                        qubits: qubits.clone(),
                        slots,
                        static_stats: outcome.stats,
                    });
                    assignments.push(Assignment {
                        positions,
                        qubits,
                        trace,
                        shared: false,
                    });
                    if symmetric_pairs {
                        shared_trace = Some(trace);
                    }
                }
                Err(TraceError::Coupling(e)) => skipped.push(SkippedSubset {
                    qubits: qubits.clone(),
                    positions,
                    reason: PlanError::coupling(qubits, e),
                }),
                Err(TraceError::Exec(_)) => unreachable!("collect port is infallible"),
            }
        }

        let (batch_order, batch_stats) = cluster_programs(&programs);
        Ok(MitigationPlan {
            circuit: circuit.clone(),
            measured: measured.to_vec(),
            config: *config,
            programs,
            global_slot,
            traces,
            assignments,
            skipped,
            batch_order,
            batch_stats,
        })
    }
}

impl MitigationPlan {
    /// The circuit the plan was built from.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The measured qubits.
    pub fn measured(&self) -> &[usize] {
        &self.measured
    }

    /// The configuration the plan was built with.
    pub fn config(&self) -> &QuTracerConfig {
        &self.config
    }

    /// Number of *distinct* programs the run executes (after cross-subset
    /// deduplication) — the batch size of [`MitigationPlan::execute`].
    pub fn n_programs(&self) -> usize {
        self.programs.len()
    }

    /// Number of *logical* program requests before deduplication: the
    /// global run plus every enumerated subset's full walk. A naive
    /// per-subset executor runs this many circuits; `n_requests() -
    /// n_programs()` is what batched dedup saves.
    pub fn n_requests(&self) -> usize {
        1 + self
            .assignments
            .iter()
            .map(|a| self.traces[a.trace].slots.len())
            .sum::<usize>()
    }

    /// Number of traced subsets the plan serves (excluding skipped ones).
    pub fn n_subsets(&self) -> usize {
        self.assignments.len()
    }

    /// The deduplicated programs with every logical request tagged onto
    /// them, in execution (batch) order.
    pub fn programs(&self) -> impl Iterator<Item = (&BatchJob, &[JobTag])> {
        self.programs.iter().map(|p| (&p.job, p.tags.as_slice()))
    }

    /// Subsets that could not be planned, with typed reasons.
    pub fn skipped(&self) -> &[SkippedSubset] {
        &self.skipped
    }

    /// Per-subset circuit counts — the paper's overhead tables, computable
    /// without executing anything.
    pub fn subset_summaries(&self) -> Vec<SubsetPlanSummary> {
        self.assignments
            .iter()
            .map(|a| SubsetPlanSummary {
                qubits: a.qubits.clone(),
                positions: a.positions.clone(),
                n_requests: self.traces[a.trace].slots.len(),
                shared: a.shared,
            })
            .collect()
    }

    /// Plan-time overhead statistics, derived from the plan structure:
    /// every distinct walk counts exactly once, so the numbers are
    /// independent of subset enumeration order. Gate counts are exact for
    /// plain simulators and pre-transpilation for device executors (the
    /// executed report's stats use post-transpilation counts).
    pub fn stats(&self) -> OverheadStats {
        let n_mitigation: usize = self.traces.iter().map(|t| t.static_stats.n_circuits).sum();
        let total_2q: usize = self
            .traces
            .iter()
            .map(|t| t.static_stats.total_two_qubit_gates)
            .sum();
        OverheadStats {
            n_circuits: 1 + n_mitigation,
            normalized_shots: n_mitigation as f64,
            avg_two_qubit_gates: if n_mitigation > 0 {
                total_2q as f64 / n_mitigation as f64
            } else {
                0.0
            },
            global_two_qubit_gates: self.programs[self.global_slot]
                .job
                .program
                .two_qubit_gate_count(),
            batch: Some(self.batch_stats),
            total_shots: None,
            round_shots: None,
            engine_mix: None,
            failures: None,
        }
    }

    /// [`MitigationPlan::stats`] augmented with the engine mix `runner`
    /// would execute this plan with (see [`Runner::engine_mix`]) — what the
    /// automatic per-program engine selection resolves each planned job to,
    /// without executing anything.
    pub fn stats_for<R: Runner>(&self, runner: &R) -> OverheadStats {
        let jobs: Vec<BatchJob> = self.programs.iter().map(|p| p.job.clone()).collect();
        OverheadStats {
            engine_mix: runner.engine_mix(&jobs),
            ..self.stats()
        }
    }

    /// Shared-work statistics of the plan's execution tries: how much of
    /// the batch's gate stream is a prefix shared between programs (what
    /// a trie-scheduled runner evolves once instead of per job).
    pub fn batch_stats(&self) -> TrieStats {
        self.batch_stats
    }

    /// Stage 2: executes every planned program as **one** batched
    /// submission on `runner`, fanning deduplicated results back out.
    ///
    /// Jobs are submitted in prefix-clustered order (programs sharing
    /// long op prefixes adjacent), so runners without their own trie —
    /// caches, adaptive splitters, remote shards — still see related work
    /// together; results are scattered back to plan slot order.
    ///
    /// # Errors
    ///
    /// [`ExecError::ResultCountMismatch`] if the runner violates the
    /// [`Runner::run_batch`] contract.
    pub fn execute<'p, R: Runner>(
        &'p self,
        runner: &R,
    ) -> Result<ExecutionArtifacts<'p>, ExecError> {
        let jobs = self.batch_jobs();
        let engine_mix = runner.engine_mix(&jobs);
        let clustered = runner.run_batch(&jobs);
        self.artifacts_from_outputs(clustered, engine_mix)
    }

    /// The plan's deduplicated jobs in prefix-clustered submission order —
    /// the exact batch [`MitigationPlan::execute`] hands to
    /// [`Runner::run_batch`]. Batch front-ends (e.g. `qt-serve`) use this
    /// to merge several plans' jobs into one combined submission, then
    /// feed the results back through
    /// [`MitigationPlan::artifacts_from_outputs`].
    pub fn batch_jobs(&self) -> Vec<BatchJob> {
        self.batch_order
            .iter()
            .map(|&slot| self.programs[slot].job.clone())
            .collect()
    }

    /// Stage 2, inverted: builds [`ExecutionArtifacts`] from batch results
    /// computed elsewhere. `clustered[i]` must be the result of
    /// [`MitigationPlan::batch_jobs`]`()[i]` — this is the injection point
    /// for external batchers (service front-ends, shared result caches)
    /// that execute many plans' jobs as one merged, deduplicated
    /// submission instead of calling [`MitigationPlan::execute`] per plan.
    ///
    /// # Errors
    ///
    /// [`ExecError::ResultCountMismatch`] when `clustered` does not align
    /// with the plan's batch.
    pub fn artifacts_from_outputs(
        &self,
        clustered: Vec<RunOutput>,
        engine_mix: Option<Vec<(String, usize)>>,
    ) -> Result<ExecutionArtifacts<'_>, ExecError> {
        if clustered.len() != self.batch_order.len() {
            return Err(ExecError::ResultCountMismatch {
                expected: self.batch_order.len(),
                got: clustered.len(),
            });
        }
        let mut outputs: Vec<Option<RunOutput>> = vec![None; self.programs.len()];
        for (&slot, out) in self.batch_order.iter().zip(clustered) {
            outputs[slot] = Some(out);
        }
        let outputs = outputs
            .into_iter()
            .map(|o| o.expect("batch order is a permutation of the program slots"))
            .collect();
        Ok(ExecutionArtifacts {
            plan: self,
            outputs,
            sampled_shots: None,
            engine_mix,
            failures: None,
            round_shots: None,
        })
    }

    /// Stage 2 with a failure domain: executes the plan's batch through
    /// the fallible surface ([`Runner::try_run_batch`]) under panic
    /// quarantine, with bounded retry-with-backoff for transient
    /// [`RunError`]s (`retry`), then *degrades partially*: a job that
    /// still fails after the budget voids only the traced subsets whose
    /// walks depend on it, while every surviving output is bit-identical
    /// to the fault-free run. The resulting report records what happened
    /// in [`OverheadStats::failures`]; only the loss of the global run —
    /// which every subset refines — turns into a typed
    /// [`ExecError::JobFailed`] at recombination.
    ///
    /// # Errors
    ///
    /// [`ExecError::ResultCountMismatch`] if the runner violates the
    /// batch contract.
    pub fn execute_fallible<'p, R: Runner>(
        &'p self,
        runner: &R,
        retry: &RetryPolicy,
    ) -> Result<ExecutionArtifacts<'p>, ExecError> {
        let jobs = self.batch_jobs();
        let engine_mix = runner.engine_mix(&jobs);
        let (clustered, stats) = try_run_batch_resilient(runner, &jobs, retry);
        self.artifacts_from_results(clustered, engine_mix, None, stats)
    }

    /// [`MitigationPlan::artifacts_from_outputs`] for fallible results:
    /// scatters per-job `Result`s back to program-slot order, parking a
    /// placeholder at failed slots and recording the typed errors for
    /// recombination to degrade around.
    fn artifacts_from_results(
        &self,
        clustered: Vec<Result<RunOutput, RunError>>,
        engine_mix: Option<Vec<(String, usize)>>,
        sampled_shots: Option<Vec<u64>>,
        stats: FailureStats,
    ) -> Result<ExecutionArtifacts<'_>, ExecError> {
        if clustered.len() != self.batch_order.len() {
            return Err(ExecError::ResultCountMismatch {
                expected: self.batch_order.len(),
                got: clustered.len(),
            });
        }
        let mut outputs: Vec<Option<RunOutput>> = vec![None; self.programs.len()];
        let mut per_slot: Vec<Option<RunError>> = vec![None; self.programs.len()];
        for (&slot, res) in self.batch_order.iter().zip(clustered) {
            match res {
                Ok(out) => outputs[slot] = Some(out),
                Err(err) => {
                    outputs[slot] =
                        Some(placeholder_output(self.programs[slot].job.measured.len()));
                    per_slot[slot] = Some(err);
                }
            }
        }
        let outputs = outputs
            .into_iter()
            .map(|o| o.expect("batch order is a permutation of the program slots"))
            .collect();
        Ok(ExecutionArtifacts {
            plan: self,
            outputs,
            sampled_shots,
            engine_mix,
            failures: Some(SlotFailures { per_slot, stats }),
            round_shots: None,
        })
    }

    /// A serializable summary of the plan — the wire-friendly view a
    /// service front-end reports for queued jobs without exposing plan
    /// internals.
    pub fn view(&self) -> PlanView {
        PlanView {
            n_qubits: self.circuit.n_qubits(),
            measured: self.measured.clone(),
            n_programs: self.n_programs(),
            n_requests: self.n_requests(),
            n_subsets: self.n_subsets(),
            n_skipped: self.skipped.len(),
            shared_gate_fraction: self.batch_stats.shared_gate_fraction(),
        }
    }

    /// Splits a total shot budget across the plan's deduplicated programs
    /// (slot order matches [`MitigationPlan::programs`]). Apportionment is
    /// largest-remainder ([`qt_baselines::apportion_shots`]), so the
    /// allocation sums to exactly `total_shots` and — because the budget
    /// is validated to cover at least one shot per program — no program is
    /// left at zero (a zero-shot program would report a uniform — i.e.
    /// information-free — distribution).
    ///
    /// [`ShotPolicy::Adaptive`] is a *session* policy; allocating it
    /// statically here yields its uniform pilot prior (after validating
    /// the pilot fraction).
    ///
    /// # Errors
    ///
    /// [`ExecError::InsufficientShotBudget`] when `total_shots` is below
    /// the program count — the 1-shot floor would otherwise have to
    /// overspend the budget or leave zero-shot programs;
    /// [`ExecError::InvalidPilotFraction`] for an adaptive policy with a
    /// fraction outside `[0, 1]`.
    pub fn allocate_shots(
        &self,
        total_shots: usize,
        policy: ShotPolicy,
    ) -> Result<ShotPlan, ExecError> {
        let n = self.programs.len();
        if total_shots < n {
            return Err(ExecError::InsufficientShotBudget {
                total_shots,
                n_programs: n,
            });
        }
        if let ShotPolicy::Adaptive { pilot_fraction } = policy {
            if !pilot_fraction.is_finite() || !(0.0..=1.0).contains(&pilot_fraction) {
                return Err(ExecError::InvalidPilotFraction {
                    value: pilot_fraction,
                });
            }
        }
        Ok(ShotPlan::from_shots(apportion_shots(
            total_shots,
            &self.slot_weights(policy),
        )))
    }

    /// Static per-slot shot weights of `policy`, in program-slot order.
    fn slot_weights(&self, policy: ShotPolicy) -> Vec<f64> {
        let n = self.programs.len();
        match policy {
            ShotPolicy::Uniform | ShotPolicy::Adaptive { .. } => vec![1.0; n],
            ShotPolicy::WeightedByFanout => {
                // Logical requests per program slot: the global run plus
                // one request per slot occurrence in every assignment's
                // walk (symmetric subsets replay a shared walk, so its
                // slots count once per subset served). Sums to
                // `n_requests()` by construction.
                let mut fanout = vec![0usize; n];
                fanout[self.global_slot] += 1;
                for a in &self.assignments {
                    for &slot in &self.traces[a.trace].slots {
                        fanout[slot] += 1;
                    }
                }
                fanout.iter().map(|&f| f.max(1) as f64).collect()
            }
        }
    }

    /// Stage 2 at a finite shot budget: executes every planned program as
    /// one batched *sampled* submission — the same prefix-clustered job
    /// stream as [`MitigationPlan::execute`], so trie prefix sharing and
    /// cross-subset dedup carry over, with each deduplicated program
    /// sampled once and its counts fanned out to every logical request.
    /// The resulting artifacts recombine through the identical classical
    /// walk, using plug-in empirical frequencies, and record the real
    /// sampled shots in the report's [`OverheadStats::total_shots`].
    ///
    /// `shots` is indexed by program slot ([`MitigationPlan::programs`]
    /// order — what [`MitigationPlan::allocate_shots`] produces); `seed`
    /// makes the run reproducible (counts are stable across machines,
    /// thread counts and batch policies).
    ///
    /// # Errors
    ///
    /// [`ExecError::ShotPlanMismatch`] if `shots` does not cover exactly
    /// the plan's programs; [`ExecError::EmptyShotAllocation`] if any
    /// program is allocated zero shots (its "measurement" would be the
    /// uniform distribution — fabricated data recombination cannot tell
    /// from a real result); [`ExecError::ResultCountMismatch`] if the
    /// runner violates the batch contract.
    pub fn execute_sampled<'p, R: Runner>(
        &'p self,
        runner: &R,
        shots: &ShotPlan,
        seed: u64,
    ) -> Result<ExecutionArtifacts<'p>, ExecError> {
        self.validate_shot_plan(shots)?;
        let ordered =
            ShotPlan::from_shots(self.batch_order.iter().map(|&s| shots.shots(s)).collect());
        let mut session = MitigationSession::with_shots(self, ordered, seed)?;
        session.set_engine_mix(runner.engine_mix(session.jobs()));
        let spec = session
            .next_round()
            .expect("a fresh session always has a first round");
        let clustered = runner.run_batch_sampled(session.jobs(), &spec.shots, spec.seed);
        session.absorb_sampled(&spec, clustered)?;
        let (_, outputs, record, _) = session.collect();
        self.artifacts_from_record(outputs, record)
    }

    /// Validates a slot-ordered shot plan against this plan's programs:
    /// the allocation must cover exactly the deduplicated programs and
    /// leave none at zero shots.
    fn validate_shot_plan(&self, shots: &ShotPlan) -> Result<(), ExecError> {
        if shots.n_jobs() != self.programs.len() {
            return Err(ExecError::ShotPlanMismatch {
                expected: self.programs.len(),
                got: shots.n_jobs(),
            });
        }
        if let Some(slot) = shots.per_job().iter().position(|&s| s == 0) {
            return Err(ExecError::EmptyShotAllocation { slot });
        }
        Ok(())
    }

    /// Builds [`ExecutionArtifacts`] from a session's batch-ordered
    /// outputs and execution record, scattering everything back to
    /// program-slot order.
    fn artifacts_from_record(
        &self,
        outputs: Vec<RunOutput>,
        record: ExecutionRecord,
    ) -> Result<ExecutionArtifacts<'_>, ExecError> {
        let n = self.programs.len();
        if outputs.len() != n {
            return Err(ExecError::ResultCountMismatch {
                expected: n,
                got: outputs.len(),
            });
        }
        let mut slot_outputs: Vec<Option<RunOutput>> = vec![None; n];
        for (&slot, out) in self.batch_order.iter().zip(outputs) {
            slot_outputs[slot] = Some(out);
        }
        let outputs: Vec<RunOutput> = slot_outputs
            .into_iter()
            .map(|o| o.expect("batch order is a permutation of the program slots"))
            .collect();
        let sampled_shots = record.sampled_shots.as_ref().map(|per_job| {
            let mut per_slot = vec![0u64; n];
            for (&slot, &shots) in self.batch_order.iter().zip(per_job) {
                per_slot[slot] = shots;
            }
            per_slot
        });
        let failures = record.failures.as_ref().map(|jf| {
            let mut per_slot: Vec<Option<RunError>> = vec![None; n];
            for (&slot, err) in self.batch_order.iter().zip(&jf.per_job) {
                per_slot[slot] = err.clone();
            }
            SlotFailures {
                per_slot,
                stats: jf.stats,
            }
        });
        Ok(ExecutionArtifacts {
            plan: self,
            outputs,
            sampled_shots,
            engine_mix: record.engine_mix,
            failures,
            round_shots: record.round_shots,
        })
    }

    /// Runs the plan as a policy-driven
    /// [`MitigationSession`](crate::MitigationSession) and recombines —
    /// the one-call form of `session.run(runner)` for callers that want a
    /// report, not artifacts. With [`ShotPolicy::Adaptive`] this is the
    /// full two-round pilot/Neyman schedule.
    ///
    /// # Errors
    ///
    /// The session-construction errors of
    /// [`MitigationSession::new`](crate::MitigationSession::new) plus
    /// whatever execution and recombination report.
    pub fn run_sampled<R: Runner>(
        &self,
        runner: &R,
        total_shots: usize,
        policy: ShotPolicy,
        seed: u64,
    ) -> Result<QuTracerReport, ExecError> {
        MitigationSession::new(self, policy, total_shots, seed)?.run(runner)
    }

    /// [`MitigationPlan::run_sampled`] with the failure domain of
    /// [`MitigationPlan::execute_sampled_fallible`]: every session round
    /// executes through the resilient surface and degrades typed.
    ///
    /// # Errors
    ///
    /// As [`MitigationPlan::run_sampled`].
    pub fn run_sampled_fallible<R: Runner>(
        &self,
        runner: &R,
        total_shots: usize,
        policy: ShotPolicy,
        seed: u64,
        retry: &RetryPolicy,
    ) -> Result<QuTracerReport, ExecError> {
        MitigationSession::new(self, policy, total_shots, seed)?.run_fallible(runner, retry)
    }

    /// [`MitigationPlan::execute_sampled`] with the failure domain of
    /// [`MitigationPlan::execute_fallible`]. Exact distributions come from
    /// the fallible batch surface (so transient failures retry against
    /// *exact* re-execution), and each surviving job is then sampled with
    /// the seed derived from its original submission index — a retried
    /// job's counts are therefore bit-identical to the fault-free sampled
    /// run, no matter how many attempts it took.
    ///
    /// # Errors
    ///
    /// The shot-plan validation errors of
    /// [`MitigationPlan::execute_sampled`], plus
    /// [`ExecError::ResultCountMismatch`] for a contract-violating runner.
    pub fn execute_sampled_fallible<'p, R: Runner>(
        &'p self,
        runner: &R,
        shots: &ShotPlan,
        seed: u64,
        retry: &RetryPolicy,
    ) -> Result<ExecutionArtifacts<'p>, ExecError> {
        self.validate_shot_plan(shots)?;
        let ordered =
            ShotPlan::from_shots(self.batch_order.iter().map(|&s| shots.shots(s)).collect());
        let mut session = MitigationSession::with_shots(self, ordered, seed)?;
        session.set_engine_mix(runner.engine_mix(session.jobs()));
        let spec = session
            .next_round()
            .expect("a fresh session always has a first round");
        let (clustered, stats) = try_run_batch_resilient(runner, session.jobs(), retry);
        session.absorb_fallible(&spec, clustered, stats)?;
        let (_, outputs, record, _) = session.collect();
        self.artifacts_from_record(outputs, record)
    }
}

/// The staged pipeline behind the strategy-unified surface: jobs are the
/// prefix-clustered batch ([`MitigationPlan::batch_jobs`]), recombination
/// scatters outputs back to program-slot order and runs the full Bayesian
/// recombination. Budget allocation apportions in *slot* order (the
/// tie-breaking order of [`MitigationPlan::allocate_shots`]) and permutes
/// to batch order, so a uniform session round reproduces the legacy
/// single-round allocation bit-for-bit.
impl MitigationStrategy for MitigationPlan {
    type Report = QuTracerReport;

    fn name(&self) -> &'static str {
        "qutracer"
    }

    fn batch_jobs(&self) -> Vec<BatchJob> {
        MitigationPlan::batch_jobs(self)
    }

    fn n_jobs(&self) -> usize {
        self.programs.len()
    }

    fn shot_fanout(&self) -> Vec<f64> {
        let slot_weights = self.slot_weights(ShotPolicy::WeightedByFanout);
        self.batch_order.iter().map(|&s| slot_weights[s]).collect()
    }

    fn allocate_budget(&self, total_shots: usize, weights: &[f64]) -> Vec<usize> {
        let mut slot_weights = vec![0.0; self.programs.len()];
        for (&slot, &w) in self.batch_order.iter().zip(weights) {
            slot_weights[slot] = w;
        }
        let slot_shots = apportion_shots(total_shots, &slot_weights);
        self.batch_order.iter().map(|&s| slot_shots[s]).collect()
    }

    fn recombine_outputs(
        &self,
        outputs: Vec<RunOutput>,
        record: &ExecutionRecord,
    ) -> Result<QuTracerReport, StrategyError> {
        let artifacts = self
            .artifacts_from_record(outputs, record.clone())
            .map_err(|e| match e {
                ExecError::ResultCountMismatch { expected, got } => {
                    StrategyError::ResultCountMismatch { expected, got }
                }
                other => StrategyError::Recombine {
                    detail: other.to_string(),
                },
            })?;
        artifacts.recombine().map_err(|e| match e {
            // Report failed jobs in batch-jobs order — the trait's index
            // space — rather than internal slot order.
            ExecError::JobFailed { slot, error } => StrategyError::JobFailed {
                job: self
                    .batch_order
                    .iter()
                    .position(|&s| s == slot)
                    .unwrap_or(slot),
                detail: error.to_string(),
            },
            other => StrategyError::Recombine {
                detail: other.to_string(),
            },
        })
    }
}

/// Stage-2 output: the raw results of every planned program, still keyed
/// by the plan that produced them. Finite-shot executions
/// ([`MitigationPlan::execute_sampled`]) carry empirical-frequency
/// distributions plus the per-program shots actually sampled; exact
/// executions carry simulator probabilities and no shot record.
#[derive(Debug, Clone)]
pub struct ExecutionArtifacts<'p> {
    plan: &'p MitigationPlan,
    outputs: Vec<RunOutput>,
    /// Shots sampled per program slot (`None` for exact executions).
    sampled_shots: Option<Vec<u64>>,
    /// Per-engine job counts the runner reported for the batch (`None`
    /// for runners without engine introspection).
    engine_mix: Option<Vec<(String, usize)>>,
    /// Failure record of a fallible execution (`None` for the infallible
    /// paths). Failed slots hold a zero-mass placeholder in `outputs`
    /// that recombination never reads: it voids every trace depending on
    /// a failed slot instead.
    failures: Option<SlotFailures>,
    /// Shots spent per session round (pilot first) when the artifacts
    /// came out of a multi-round [`MitigationSession`](crate::session);
    /// `None` for single-round and exact executions.
    round_shots: Option<Vec<u64>>,
}

/// Per-slot failure record of one fallible execution.
#[derive(Debug, Clone)]
struct SlotFailures {
    /// Terminal error per program slot (plan program order).
    per_slot: Vec<Option<RunError>>,
    /// What the retry/quarantine engine did to get here.
    stats: FailureStats,
}

/// The stand-in output stored at a failed slot: a zero-mass distribution
/// of the job's own measured width. Never consumed — recombination skips
/// every walk that would read it — but keeps `outputs` densely indexed by
/// program slot.
pub(crate) fn placeholder_output(measured_bits: usize) -> RunOutput {
    RunOutput {
        dist: Distribution::try_from_entries(measured_bits.max(1), Vec::new())
            .expect("an empty entry list over a nonzero register is always valid"),
        gates: 0,
        two_qubit_gates: 0,
    }
}

impl ExecutionArtifacts<'_> {
    /// The plan these artifacts were executed from.
    pub fn plan(&self) -> &MitigationPlan {
        self.plan
    }

    /// Raw results, aligned with [`MitigationPlan::programs`].
    pub fn outputs(&self) -> &[RunOutput] {
        &self.outputs
    }

    /// Shots sampled per program slot, aligned with
    /// [`MitigationPlan::programs`] (`None` for exact executions).
    pub fn sampled_shots(&self) -> Option<&[u64]> {
        self.sampled_shots.as_deref()
    }

    /// Total shots sampled across the batch (`None` for exact executions).
    pub fn total_sampled_shots(&self) -> Option<u64> {
        self.sampled_shots.as_ref().map(|v| v.iter().copied().sum())
    }

    /// Per-engine job counts the runner reported for the executed batch
    /// (`None` for runners without engine introspection).
    pub fn engine_mix(&self) -> Option<&[(String, usize)]> {
        self.engine_mix.as_deref()
    }

    /// Terminal typed failures per program slot, aligned with
    /// [`MitigationPlan::programs`] (`None` for infallible executions;
    /// `Some` of all-`None` entries for a fallible run that lost nothing).
    pub fn slot_failures(&self) -> Option<&[Option<RunError>]> {
        self.failures.as_ref().map(|f| f.per_slot.as_slice())
    }

    /// What the retry/quarantine engine did during a fallible execution
    /// (`None` for infallible paths). `voided_subsets` is filled in by
    /// [`ExecutionArtifacts::recombine`], which knows the dependency
    /// structure; here it is always 0.
    pub fn failure_stats(&self) -> Option<FailureStats> {
        self.failures.as_ref().map(|f| f.stats)
    }

    /// The typed failure of `slot`, if that program failed.
    fn slot_failure(&self, slot: usize) -> Option<&RunError> {
        self.failures
            .as_ref()
            .and_then(|f| f.per_slot[slot].as_ref())
    }

    /// Stage 3: replays every subset's walk against the recorded results
    /// (purely classical) and performs the Bayesian recombination.
    ///
    /// Fallible executions degrade partially here: a trace whose walk
    /// depends on a failed slot is *voided* — its subsets drop out of the
    /// recombination and the report's locals, counted in
    /// [`OverheadStats::failures`] — while every surviving subset's
    /// contribution stays bit-identical to the fault-free run.
    ///
    /// # Errors
    ///
    /// [`ExecError`] if the artifacts do not match the plan (wrong count,
    /// or a walk consuming a different request stream than planned);
    /// [`ExecError::JobFailed`] when a fallible execution lost the global
    /// run itself, which no subset can degrade around.
    pub fn recombine(&self) -> Result<QuTracerReport, ExecError> {
        let plan = self.plan;
        if let Some(err) = self.slot_failure(plan.global_slot) {
            return Err(ExecError::JobFailed {
                slot: plan.global_slot,
                error: err.clone(),
            });
        }
        let global_out = &self.outputs[plan.global_slot];
        let global = global_out.dist.clone();

        let mut outcomes: Vec<Option<TraceOutcome>> = Vec::with_capacity(plan.traces.len());
        for t in &plan.traces {
            if t.slots.iter().any(|&s| self.slot_failure(s).is_some()) {
                // A job this walk depends on failed for good: void the
                // trace instead of replaying it against placeholders.
                outcomes.push(None);
                continue;
            }
            let outs: Vec<RunOutput> = t.slots.iter().map(|&s| self.outputs[s].clone()).collect();
            let mut port = ReplayPort::new(&outs);
            let walk = if t.qubits.len() == 1 {
                trace_single_with_port(&mut port, &plan.circuit, t.qubits[0], &plan.config.trace)
            } else {
                trace_pair_with_port(
                    &mut port,
                    &plan.circuit,
                    [t.qubits[0], t.qubits[1]],
                    &plan.config.trace,
                )
            };
            let outcome = walk.map_err(|e| match e {
                TraceError::Exec(x) => x,
                TraceError::Coupling(c) => ExecError::PlanMismatch {
                    detail: format!("subset {:?} no longer traceable: {c}", t.qubits),
                },
            })?;
            if !port.fully_consumed() {
                return Err(ExecError::PlanMismatch {
                    detail: format!("subset {:?} consumed fewer results than planned", t.qubits),
                });
            }
            outcomes.push(Some(outcome));
        }

        let locals: Vec<(Distribution, Vec<usize>)> = plan
            .assignments
            .iter()
            .filter_map(|a| {
                outcomes[a.trace]
                    .as_ref()
                    .map(|o| (o.local.clone(), a.positions.clone()))
            })
            .collect();
        let voided_subsets = plan
            .assignments
            .iter()
            .filter(|a| outcomes[a.trace].is_none())
            .count() as u64;
        // Stats accounting is derived from the plan: each distinct walk
        // counts once, independent of enumeration order; values come from
        // the executed outputs (so transpiling runners report real gate
        // counts). Voided walks contribute nothing — the report prices
        // what was actually recombined.
        let subset_stats: Vec<QspcStats> = outcomes.iter().flatten().map(|o| o.stats).collect();
        let refined = recombine::try_bayesian_update_all(
            &global,
            locals.iter().map(|(d, p)| (d, p.as_slice())),
        )
        .map_err(|e| ExecError::PlanMismatch {
            detail: format!("recombination rejected the planned subsets: {e}"),
        })?;
        let n_mitigation_circuits: usize = subset_stats.iter().map(|s| s.n_circuits).sum();
        let total_2q: usize = subset_stats.iter().map(|s| s.total_two_qubit_gates).sum();
        Ok(QuTracerReport {
            distribution: refined,
            global,
            locals,
            skipped: plan.skipped.clone(),
            stats: OverheadStats {
                n_circuits: 1 + n_mitigation_circuits,
                normalized_shots: n_mitigation_circuits as f64,
                avg_two_qubit_gates: if n_mitigation_circuits > 0 {
                    total_2q as f64 / n_mitigation_circuits as f64
                } else {
                    0.0
                },
                global_two_qubit_gates: global_out.two_qubit_gates,
                batch: Some(plan.batch_stats),
                total_shots: self.total_sampled_shots(),
                round_shots: self.round_shots.clone(),
                engine_mix: self.engine_mix.clone(),
                failures: self.failures.as_ref().map(|f| FailureStats {
                    voided_subsets,
                    ..f.stats
                }),
            },
            subset_stats,
        })
    }
}
