//! Multi-round mitigation sessions with adaptive Neyman shot allocation.
//!
//! A [`MitigationSession`] owns a [`MitigationStrategy`] and drives it
//! through one or two *rounds* of finite-shot execution:
//!
//! * Under the static policies ([`ShotPolicy::Uniform`],
//!   [`ShotPolicy::WeightedByFanout`]) — or an explicit
//!   [`ShotPlan`] — the session is a single round, bit-identical to the
//!   legacy `allocate_shots → execute_sampled` path.
//! * Under [`ShotPolicy::Adaptive`] a *pilot* round spends
//!   `P = ⌊pilot_fraction · total⌋` shots uniformly, the per-program
//!   sampling dispersion `σ̂_i = √(1 − Σ_o p̂_i(o)²)` is estimated from the
//!   pilot counts ([`qt_dist::Counts::sampling_dispersion`] — the l2-pooled
//!   per-outcome standard error), and the remaining `total − P` shots are
//!   apportioned proportionally to `σ̂_i`. That is Neyman allocation: for a
//!   fixed total, the variance of the pooled frequency estimates is
//!   minimized by `n_i ∝ σ_i`. Pilot counts are *absorbed* — merged
//!   outcome-by-outcome into the final tally — so every shot contributes
//!   to the recombined report.
//!
//! **Pilot-absorption soundness.** Both rounds draw from the *same*
//! per-program distribution (engines are deterministic given the job, and
//! rounds use independent derived seeds), so merging the two multinomial
//! samples yields exactly the multinomial sample of the combined shot
//! count: the pooled estimator is unbiased and its per-program variance is
//! `σ_i²/(n_i^pilot + n_i^final)`. Adaptivity only chooses `n_i^final`
//! *after* observing the pilot, which rescales variances but cannot bias
//! the frequencies — what the shots *are* never depends on their outcomes,
//! only how many more are drawn.
//!
//! A fraction whose pilot (or remainder) cannot fund one shot per program
//! degrades to the single uniform round — so `pilot_fraction` 0 and 1 are
//! bit-identical to [`ShotPolicy::Uniform`], property-tested in
//! `tests/adaptive_session.rs`.

use crate::error::ExecError;
use crate::pipeline::{placeholder_output, ShotPolicy};
use qt_baselines::{ExecutionRecord, JobFailures, MitigationStrategy, StrategyError};
use qt_sim::{
    job_sample_seed, try_run_batch_resilient, BatchJob, FailureStats, RetryPolicy, RunError,
    RunOutput, Runner, SampledOutput, ShotPlan,
};

/// One executable round of a session: which round it is, the per-job shot
/// allocation (batch-jobs order) and the seed the round samples with.
///
/// A spec is a pure function of the session state — callers may recompute
/// it, ship it to a remote executor, or log it; absorption validates that
/// the spec matches the session's current round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSpec {
    /// Round index (0 = pilot or the only round, 1 = adaptive final).
    pub round: usize,
    /// Per-job shots, in [`MitigationStrategy::batch_jobs`] order.
    pub shots: ShotPlan,
    /// Seed for this round's sampling. Single-round sessions use the
    /// caller's seed untouched (bit-compatibility with the legacy path);
    /// genuine two-round sessions derive one seed per round.
    pub seed: u64,
}

/// Neyman weights from per-program pilot dispersions: jobs whose pilot
/// produced no usable estimate (failed, zero shots) get the mean of the
/// valid dispersions — neutral, neither starved nor favored. If *no* job
/// produced an estimate (or every dispersion is zero), the weights fall
/// back to uniform so the final round still allocates.
pub fn neyman_weights(dispersions: &[Option<f64>]) -> Vec<f64> {
    let valid: Vec<f64> = dispersions
        .iter()
        .filter_map(|d| d.filter(|s| s.is_finite() && *s >= 0.0))
        .collect();
    if valid.is_empty() {
        return vec![1.0; dispersions.len()];
    }
    let mean = valid.iter().sum::<f64>() / valid.len() as f64;
    let weights: Vec<f64> = dispersions
        .iter()
        .map(|d| match d {
            Some(s) if s.is_finite() && *s >= 0.0 => *s,
            _ => mean,
        })
        .collect();
    if weights.iter().sum::<f64>() <= 0.0 {
        vec![1.0; dispersions.len()]
    } else {
        weights
    }
}

/// A multi-round finite-shot execution of one [`MitigationStrategy`].
///
/// The session is a small state machine: [`MitigationSession::next_round`]
/// yields the next [`RoundSpec`] (or `None` when done), one of the
/// `absorb_*` methods feeds that round's results back, and
/// [`MitigationSession::finish`] recombines the accumulated counts into
/// the strategy's report. [`MitigationSession::run`] and
/// [`MitigationSession::run_fallible`] drive the loop against a
/// [`Runner`] directly; the stepwise surface exists for executors that own
/// the batching themselves (the `qt-serve` service runs each round through
/// its cross-request trie batcher and cache).
pub struct MitigationSession<S: MitigationStrategy> {
    strategy: S,
    jobs: Vec<BatchJob>,
    policy: ShotPolicy,
    total_shots: usize,
    seed: u64,
    /// `Some(P)` when the session is genuinely two-round: the pilot gets
    /// `P` shots and both rounds can fund every job's 1-shot floor.
    pilot: Option<usize>,
    /// Explicit single-round allocation (batch-jobs order), bypassing
    /// policy-driven allocation — what `execute_sampled` builds.
    explicit: Option<ShotPlan>,
    /// Accumulated counts per job; `None` until a round lands counts.
    acc: Vec<Option<SampledOutput>>,
    /// Terminal error per job with *no* usable counts from any round.
    errors: Vec<Option<RunError>>,
    fail_stats: FailureStats,
    /// Whether any round ran through the fallible surface (the report
    /// then carries a failure record even when nothing failed).
    fallible: bool,
    engine_mix: Option<Vec<(String, usize)>>,
    completed_rounds: usize,
    round_shots: Vec<u64>,
}

impl<S: MitigationStrategy> MitigationSession<S> {
    /// Opens a session over `strategy` with a policy-driven budget.
    ///
    /// # Errors
    ///
    /// [`ExecError::InsufficientShotBudget`] when `total_shots` cannot
    /// fund one shot per job; [`ExecError::InvalidPilotFraction`] for an
    /// adaptive policy with a fraction outside `[0, 1]`.
    pub fn new(
        strategy: S,
        policy: ShotPolicy,
        total_shots: usize,
        seed: u64,
    ) -> Result<Self, ExecError> {
        let jobs = strategy.batch_jobs();
        let n = jobs.len();
        if total_shots < n {
            return Err(ExecError::InsufficientShotBudget {
                total_shots,
                n_programs: n,
            });
        }
        let pilot = match policy {
            ShotPolicy::Adaptive { pilot_fraction } => {
                if !pilot_fraction.is_finite() || !(0.0..=1.0).contains(&pilot_fraction) {
                    return Err(ExecError::InvalidPilotFraction {
                        value: pilot_fraction,
                    });
                }
                let p = (total_shots as f64 * pilot_fraction).floor() as usize;
                // Genuine two-round adaptivity needs both rounds to fund
                // every job's 1-shot floor; otherwise degrade to the
                // single uniform round (pilot_fraction 0 and 1 land here
                // by construction).
                (n > 0 && p >= n && total_shots - p >= n).then_some(p)
            }
            _ => None,
        };
        Ok(Self::with_state(
            strategy,
            jobs,
            policy,
            total_shots,
            seed,
            pilot,
            None,
        ))
    }

    /// Opens a single-round session with an explicit per-job allocation
    /// (batch-jobs order) — the session form of the legacy
    /// `execute_sampled` call.
    ///
    /// # Errors
    ///
    /// [`ExecError::ShotPlanMismatch`] when `shots` does not cover
    /// exactly the strategy's batch jobs.
    pub fn with_shots(strategy: S, shots: ShotPlan, seed: u64) -> Result<Self, ExecError> {
        let jobs = strategy.batch_jobs();
        if shots.n_jobs() != jobs.len() {
            return Err(ExecError::ShotPlanMismatch {
                expected: jobs.len(),
                got: shots.n_jobs(),
            });
        }
        let total = shots.total_shots() as usize;
        Ok(Self::with_state(
            strategy,
            jobs,
            ShotPolicy::Uniform,
            total,
            seed,
            None,
            Some(shots),
        ))
    }

    fn with_state(
        strategy: S,
        jobs: Vec<BatchJob>,
        policy: ShotPolicy,
        total_shots: usize,
        seed: u64,
        pilot: Option<usize>,
        explicit: Option<ShotPlan>,
    ) -> Self {
        let n = jobs.len();
        MitigationSession {
            strategy,
            jobs,
            policy,
            total_shots,
            seed,
            pilot,
            explicit,
            acc: vec![None; n],
            errors: vec![None; n],
            fail_stats: FailureStats::default(),
            fallible: false,
            engine_mix: None,
            completed_rounds: 0,
            round_shots: Vec::new(),
        }
    }

    /// The strategy's batch jobs, in submission order — what every round
    /// executes.
    pub fn jobs(&self) -> &[BatchJob] {
        &self.jobs
    }

    /// The strategy driving this session.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Whether the session runs a genuine two-round adaptive schedule.
    pub fn is_adaptive(&self) -> bool {
        self.pilot.is_some()
    }

    /// Rounds already absorbed.
    pub fn rounds_completed(&self) -> usize {
        self.completed_rounds
    }

    /// Records the engine mix the executing runner reported for the
    /// session's batch (carried into the report's overhead stats).
    pub fn set_engine_mix(&mut self, mix: Option<Vec<(String, usize)>>) {
        self.engine_mix = mix;
    }

    /// Static prior weights for the first (or only) round.
    fn static_weights(&self) -> Vec<f64> {
        match self.policy {
            // The adaptive pilot uses the uniform prior: at degenerate
            // pilot fractions the session must reproduce the uniform
            // single round bit-for-bit.
            ShotPolicy::Uniform | ShotPolicy::Adaptive { .. } => vec![1.0; self.jobs.len()],
            ShotPolicy::WeightedByFanout => self.strategy.shot_fanout(),
        }
    }

    /// Per-job pilot dispersions (`None` where the pilot produced no
    /// usable counts).
    fn pilot_dispersions(&self) -> Vec<Option<f64>> {
        self.acc
            .iter()
            .map(|a| a.as_ref().and_then(|s| s.counts.sampling_dispersion()))
            .collect()
    }

    /// The next round to execute, or `None` when the session has absorbed
    /// every round and is ready to [`MitigationSession::finish`].
    pub fn next_round(&self) -> Option<RoundSpec> {
        match self.pilot {
            None => (self.completed_rounds == 0).then(|| RoundSpec {
                round: 0,
                shots: match &self.explicit {
                    Some(plan) => plan.clone(),
                    None => ShotPlan::from_shots(
                        self.strategy
                            .allocate_budget(self.total_shots, &self.static_weights()),
                    ),
                },
                seed: self.seed,
            }),
            Some(p) => match self.completed_rounds {
                0 => Some(RoundSpec {
                    round: 0,
                    shots: ShotPlan::from_shots(
                        self.strategy.allocate_budget(p, &self.static_weights()),
                    ),
                    seed: job_sample_seed(self.seed, 0),
                }),
                1 => Some(RoundSpec {
                    round: 1,
                    shots: ShotPlan::from_shots(self.strategy.allocate_budget(
                        self.total_shots - p,
                        &neyman_weights(&self.pilot_dispersions()),
                    )),
                    seed: job_sample_seed(self.seed, 1),
                }),
                _ => None,
            },
        }
    }

    fn check_spec(&self, spec: &RoundSpec, got_outputs: usize) -> Result<(), ExecError> {
        if spec.round != self.completed_rounds {
            return Err(ExecError::PlanMismatch {
                detail: format!(
                    "absorbed round {} but the session expects round {}",
                    spec.round, self.completed_rounds
                ),
            });
        }
        if spec.shots.n_jobs() != self.jobs.len() {
            return Err(ExecError::ShotPlanMismatch {
                expected: self.jobs.len(),
                got: spec.shots.n_jobs(),
            });
        }
        if got_outputs != self.jobs.len() {
            return Err(ExecError::ResultCountMismatch {
                expected: self.jobs.len(),
                got: got_outputs,
            });
        }
        Ok(())
    }

    /// Absorbs a round executed through a [`Runner`]'s sampled surface
    /// (outputs in batch-jobs order), merging counts outcome-by-outcome
    /// into the session tally.
    ///
    /// # Errors
    ///
    /// [`ExecError::PlanMismatch`] for an out-of-order round,
    /// [`ExecError::ShotPlanMismatch`] /
    /// [`ExecError::ResultCountMismatch`] for a spec or result vector
    /// that does not cover the session's jobs.
    pub fn absorb_sampled(
        &mut self,
        spec: &RoundSpec,
        outputs: Vec<SampledOutput>,
    ) -> Result<(), ExecError> {
        self.check_spec(spec, outputs.len())?;
        self.absorb_round_unchecked(outputs);
        Ok(())
    }

    /// Absorbs a round executed as *exact* distributions (batch-jobs
    /// order), sampling each job deterministically with the round's shot
    /// allocation and per-job derived seed — the same
    /// `dist → multinomial` formula as the [`Runner`] sampled surface, so
    /// a session fed exact outputs (e.g. by a caching service that
    /// executes jobs once and samples per request) is bit-identical to
    /// one run against the runner directly.
    ///
    /// # Errors
    ///
    /// As [`MitigationSession::absorb_sampled`].
    pub fn absorb_exact(
        &mut self,
        spec: &RoundSpec,
        outputs: &[RunOutput],
    ) -> Result<(), ExecError> {
        self.check_spec(spec, outputs.len())?;
        let sampled: Vec<SampledOutput> = outputs
            .iter()
            .enumerate()
            .map(|(i, out)| {
                SampledOutput::from_run(out, spec.shots.shots(i), job_sample_seed(spec.seed, i))
            })
            .collect();
        self.absorb_round_unchecked(sampled);
        Ok(())
    }

    /// Absorbs a round executed through the fallible surface: surviving
    /// jobs are sampled exactly as in [`MitigationSession::absorb_exact`]
    /// (so a retried job's counts are bit-identical to the fault-free
    /// run); failed jobs keep any counts from earlier rounds and only
    /// count as *failed* if no round ever produced counts for them.
    ///
    /// # Errors
    ///
    /// As [`MitigationSession::absorb_sampled`].
    pub fn absorb_fallible(
        &mut self,
        spec: &RoundSpec,
        results: Vec<Result<RunOutput, RunError>>,
        stats: FailureStats,
    ) -> Result<(), ExecError> {
        self.check_spec(spec, results.len())?;
        self.fallible = true;
        self.fail_stats.merge(&stats);
        let mut round_total = 0u64;
        for (i, res) in results.into_iter().enumerate() {
            match res {
                Ok(out) => {
                    let s = SampledOutput::from_run(
                        &out,
                        spec.shots.shots(i),
                        job_sample_seed(spec.seed, i),
                    );
                    round_total += s.counts.shots();
                    match &mut self.acc[i] {
                        Some(acc) => acc.absorb(&s),
                        None => self.acc[i] = Some(s),
                    }
                    self.errors[i] = None;
                }
                Err(err) => {
                    if self.acc[i].is_none() {
                        self.errors[i] = Some(err);
                    }
                }
            }
        }
        self.round_shots.push(round_total);
        self.completed_rounds += 1;
        Ok(())
    }

    fn absorb_round_unchecked(&mut self, outputs: Vec<SampledOutput>) {
        let mut round_total = 0u64;
        for (i, out) in outputs.into_iter().enumerate() {
            round_total += out.counts.shots();
            match &mut self.acc[i] {
                Some(acc) => acc.absorb(&out),
                None => self.acc[i] = Some(out),
            }
            self.errors[i] = None;
        }
        self.round_shots.push(round_total);
        self.completed_rounds += 1;
    }

    /// Tears the session down into `(strategy, outputs, record, errors)` —
    /// the raw material of recombination. Failed jobs hold a zero-mass
    /// placeholder output and their terminal error sits in both the
    /// record's failure entry and the returned `errors` vector.
    pub(crate) fn collect(self) -> (S, Vec<RunOutput>, ExecutionRecord, Vec<Option<RunError>>) {
        let n = self.jobs.len();
        let mut outputs = Vec::with_capacity(n);
        let mut per_job_shots = vec![0u64; n];
        for (i, acc) in self.acc.iter().enumerate() {
            match acc {
                Some(s) => {
                    per_job_shots[i] = s.counts.shots();
                    outputs.push(s.to_run_output());
                }
                None => outputs.push(placeholder_output(self.jobs[i].measured.len())),
            }
        }
        let failures = self.fallible.then(|| JobFailures {
            per_job: self.errors.clone(),
            stats: self.fail_stats,
        });
        let record = ExecutionRecord {
            sampled_shots: Some(per_job_shots),
            // Round accounting only for genuine multi-round sessions: a
            // single round must reproduce the legacy report bit-for-bit,
            // which carries no per-round field.
            round_shots: self.pilot.is_some().then(|| self.round_shots.clone()),
            engine_mix: self.engine_mix.clone(),
            failures,
        };
        (self.strategy, outputs, record, self.errors)
    }

    /// Recombines the absorbed rounds into the strategy's report.
    ///
    /// # Errors
    ///
    /// Whatever the strategy's recombination reports, lifted to
    /// [`ExecError`]: a terminally failed job the method cannot degrade
    /// around becomes [`ExecError::JobFailed`] (indexed in batch-jobs
    /// order), contract violations keep their typed forms.
    pub fn finish(self) -> Result<S::Report, ExecError> {
        let (strategy, outputs, record, errors) = self.collect();
        strategy
            .recombine_outputs(outputs, &record)
            .map_err(|e| match e {
                StrategyError::ResultCountMismatch { expected, got } => {
                    ExecError::ResultCountMismatch { expected, got }
                }
                StrategyError::JobFailed { job, detail } => {
                    match errors.get(job).and_then(|e| e.clone()) {
                        Some(error) => ExecError::JobFailed { slot: job, error },
                        None => ExecError::PlanMismatch { detail },
                    }
                }
                StrategyError::Recombine { detail } => ExecError::PlanMismatch { detail },
            })
    }

    /// Drives every round against `runner`'s sampled batch surface and
    /// recombines — the offline convenience over the stepwise API.
    ///
    /// # Errors
    ///
    /// As [`MitigationSession::absorb_sampled`] and
    /// [`MitigationSession::finish`].
    pub fn run<R: Runner>(mut self, runner: &R) -> Result<S::Report, ExecError> {
        self.engine_mix = runner.engine_mix(&self.jobs);
        while let Some(spec) = self.next_round() {
            let outputs = runner.run_batch_sampled(&self.jobs, &spec.shots, spec.seed);
            self.absorb_sampled(&spec, outputs)?;
        }
        self.finish()
    }

    /// [`MitigationSession::run`] with the failure domain of
    /// `execute_sampled_fallible`: every round executes through the
    /// resilient batch surface (panic quarantine, bounded retry), failed
    /// jobs degrade per round, and the final report carries the merged
    /// failure statistics of all rounds.
    ///
    /// # Errors
    ///
    /// As [`MitigationSession::absorb_fallible`] and
    /// [`MitigationSession::finish`].
    pub fn run_fallible<R: Runner>(
        mut self,
        runner: &R,
        retry: &RetryPolicy,
    ) -> Result<S::Report, ExecError> {
        self.engine_mix = runner.engine_mix(&self.jobs);
        while let Some(spec) = self.next_round() {
            let (results, stats) = try_run_batch_resilient(runner, &self.jobs, retry);
            self.absorb_fallible(&spec, results, stats)?;
        }
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neyman_weights_fill_missing_with_the_valid_mean() {
        let w = neyman_weights(&[Some(2.0), None, Some(4.0)]);
        assert_eq!(w, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn neyman_weights_degrade_to_uniform() {
        assert_eq!(neyman_weights(&[None, None]), vec![1.0, 1.0]);
        assert_eq!(neyman_weights(&[Some(0.0), Some(0.0)]), vec![1.0, 1.0]);
        assert_eq!(
            neyman_weights(&[Some(f64::NAN), Some(f64::INFINITY)]),
            vec![1.0, 1.0]
        );
    }
}
