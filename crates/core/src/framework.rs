//! The QuTracer framework: analysis & circuit preparation, execution &
//! error mitigation, and the global distribution update (Fig. 4).
//!
//! [`run_qutracer`] is a thin compatibility wrapper over the staged
//! pipeline ([`crate::QuTracer::plan`] → execute → recombine). The old
//! serial per-subset reference path now lives only in the equivalence
//! test suite (`tests/pipeline_equivalence.rs`), where it remains the
//! oracle the pipeline is checked against bit for bit.

use crate::error::SkippedSubset;
use crate::pipeline::QuTracer;
use crate::trace::TraceConfig;
use qt_baselines::OverheadStats;
use qt_circuit::Circuit;
use qt_dist::Distribution;
use qt_pcs::QspcStats;
use qt_sim::Runner;

/// Framework configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuTracerConfig {
    /// Subset size: 1 or 2 (the paper restricts to these).
    pub subset_size: usize,
    /// Per-subset tracing options.
    pub trace: TraceConfig,
    /// Exploit workload symmetry: trace one representative subset and reuse
    /// its local distribution for all symmetric positions (the paper's
    /// QAOA-on-regular-graphs optimization, Sec. VII-D).
    pub symmetric_subsets: bool,
}

impl Default for QuTracerConfig {
    fn default() -> Self {
        QuTracerConfig {
            subset_size: 1,
            trace: TraceConfig::default(),
            symmetric_subsets: false,
        }
    }
}

impl QuTracerConfig {
    /// Subset size 1 with all optimizations (the paper's default for VQE,
    /// QPE, BV and arithmetic benchmarks).
    pub fn single() -> Self {
        QuTracerConfig::default()
    }

    /// Subset size 2 (the paper's choice for QAOA's Z2-symmetric outputs).
    pub fn pairs() -> Self {
        QuTracerConfig {
            subset_size: 2,
            ..Default::default()
        }
    }

    /// Limits checking to the trailing `k` check segments (Fig. 9).
    pub fn with_checked_layers(mut self, k: usize) -> Self {
        self.trace.checked_layers = Some(k);
        self
    }

    /// Enables symmetric-subset reuse.
    pub fn with_symmetric_subsets(mut self) -> Self {
        self.symmetric_subsets = true;
        self
    }
}

/// Full framework output.
#[derive(Debug, Clone)]
pub struct QuTracerReport {
    /// The refined global distribution over the measured qubits.
    pub distribution: Distribution,
    /// The unrefined (noisy) global distribution.
    pub global: Distribution,
    /// Local distributions and their bit positions in the measured list.
    pub locals: Vec<(Distribution, Vec<usize>)>,
    /// Subsets that could not be traced, with the typed reason (usually
    /// non-diagonal coupling).
    pub skipped: Vec<SkippedSubset>,
    /// Aggregate overheads.
    pub stats: OverheadStats,
    /// Per-subset execution statistics (one entry per *distinct* trace:
    /// symmetric subsets share a single walk and count once).
    pub subset_stats: Vec<QspcStats>,
}

/// Enumerates traced subsets as position lists into the measured register:
/// singletons for subset size 1; all cyclically adjacent pairs under the
/// symmetric-subset optimization; consecutive non-overlapping pairs
/// otherwise (the last pair backing up when the count is odd).
pub(crate) fn enumerate_subset_positions(
    measured_len: usize,
    config: &QuTracerConfig,
) -> Vec<Vec<usize>> {
    if config.subset_size == 1 {
        (0..measured_len).map(|p| vec![p]).collect()
    } else if config.symmetric_subsets {
        // All cyclically adjacent pairs (ring workloads); traced once.
        (0..measured_len)
            .map(|p| vec![p, (p + 1) % measured_len])
            .collect()
    } else {
        let mut v = Vec::new();
        let mut start = 0;
        while start < measured_len {
            let end = (start + 2).min(measured_len);
            let lo = end.saturating_sub(2);
            v.push((lo..end).collect());
            start = end;
        }
        v
    }
}

/// Runs the QuTracer framework end to end:
///
/// 1. execute the original circuit → noisy global distribution;
/// 2. trace every subset of the measured qubits with QSPC → high-fidelity
///    local distributions;
/// 3. refine the global distribution by Bayesian recombination.
///
/// This is a thin compatibility wrapper over the staged pipeline: it plans
/// once, executes every mitigation circuit of every subset as one
/// deduplicated batch, and recombines — bit-identical to (and faster than)
/// the serial per-subset reference retained as the oracle in
/// `tests/pipeline_equivalence.rs`.
///
/// # Panics
///
/// Panics on configuration errors (subset size outside `{1, 2}`, pair
/// tracing with fewer than two measured qubits) — use
/// [`QuTracer::plan`] directly for typed [`PlanError`]s.
pub fn run_qutracer<R: Runner>(
    runner: &R,
    circuit: &Circuit,
    measured: &[usize],
    config: &QuTracerConfig,
) -> QuTracerReport {
    let plan = QuTracer::plan(circuit, measured, config)
        .unwrap_or_else(|e| panic!("invalid QuTracer configuration: {e}"));
    plan.execute(runner)
        .and_then(|artifacts| artifacts.recombine())
        .unwrap_or_else(|e| panic!("QuTracer pipeline failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_algos::{bernstein_vazirani, qaoa::QaoaParams, qaoa_maxcut, ring_graph, vqe_ansatz};
    use qt_dist::hellinger_fidelity;
    use qt_sim::{ideal_distribution, Backend, Executor, NoiseModel, Program, ReadoutModel};

    fn fidelity_of(dist: &Distribution, circ: &Circuit, measured: &[usize]) -> f64 {
        let ideal = ideal_distribution(&Program::from_circuit(circ), measured);
        hellinger_fidelity(dist, &ideal)
    }

    #[test]
    fn qutracer_beats_unmitigated_on_vqe() {
        let circ = vqe_ansatz(5, 1, 8);
        let measured: Vec<usize> = (0..5).collect();
        let noise = NoiseModel::depolarizing(0.002, 0.02)
            .with_readout_model(ReadoutModel::with_crosstalk(0.04, 0.01));
        let exec = Executor::with_backend(noise, Backend::DensityMatrix);
        let report = run_qutracer(&exec, &circ, &measured, &QuTracerConfig::single());
        let before = fidelity_of(&report.global, &circ, &measured);
        let after = fidelity_of(&report.distribution, &circ, &measured);
        assert!(
            after > before + 0.01,
            "QuTracer should improve fidelity: {before} -> {after}"
        );
        assert!(report.skipped.is_empty());
    }

    #[test]
    fn qutracer_chains_multiple_layers() {
        // Multi-layer tracing pays off in the paper's regime: substantial
        // measurement error with crosstalk (the global run measures all
        // qubits at once, the subset circuits only one).
        let circ = vqe_ansatz(5, 2, 2);
        let measured: Vec<usize> = (0..5).collect();
        let noise = NoiseModel::depolarizing(0.002, 0.015)
            .with_readout_model(ReadoutModel::with_crosstalk(0.03, 0.025));
        let exec = Executor::with_backend(noise, Backend::DensityMatrix);
        let report = run_qutracer(&exec, &circ, &measured, &QuTracerConfig::single());
        let before = fidelity_of(&report.global, &circ, &measured);
        let after = fidelity_of(&report.distribution, &circ, &measured);
        assert!(after > before + 0.02, "{before} -> {after}");
        // Each traced qubit should have run mitigation circuits.
        assert!(report.subset_stats.iter().all(|s| s.n_circuits > 0));
    }

    #[test]
    fn repeated_entangling_layers_coalesce_into_one_check() {
        // Fig. 8's CNOT-depth sweep repeats the CZ chain back to back; with
        // no subset-local rotations in between the whole block is a single
        // check segment, so QuTracer's cost does not grow with depth.
        let n = 4;
        let mut circ = Circuit::new(n);
        for q in 0..n {
            circ.ry(q, 0.4 + q as f64 * 0.2);
        }
        for _rep in 0..5 {
            for q in 0..n - 1 {
                circ.cz(q, q + 1);
            }
        }
        for q in 0..n {
            circ.ry(q, 0.3);
        }
        let segs = qt_circuit::passes::split_into_segments(&circ, &[1]).unwrap();
        let checks = segs.iter().filter(|s| s.check_touches(&[1])).count();
        assert_eq!(checks, 1, "CZ repetitions must merge into one check");
        // And the noiseless trace is exact (first cut is a product state).
        let exec = Executor::with_backend(NoiseModel::ideal(), Backend::DensityMatrix);
        let measured: Vec<usize> = (0..n).collect();
        let report = run_qutracer(&exec, &circ, &measured, &QuTracerConfig::single());
        let f = fidelity_of(&report.distribution, &circ, &measured);
        assert!(f > 1.0 - 1e-6, "deep single-layer fidelity {f}");
    }

    #[test]
    fn more_checked_layers_help_more() {
        // Fig. 9's trend on a small QAOA instance.
        let n = 4;
        let circ = qaoa_maxcut(n, &ring_graph(n), &QaoaParams::seeded(2, 3));
        let measured: Vec<usize> = (0..n).collect();
        let noise = NoiseModel::depolarizing(0.004, 0.04).with_readout(0.05);
        let exec = Executor::with_backend(noise, Backend::DensityMatrix);
        let mut fidelities = Vec::new();
        for k in 0..=2 {
            let cfg = QuTracerConfig::pairs()
                .with_symmetric_subsets()
                .with_checked_layers(k);
            let report = run_qutracer(&exec, &circ, &measured, &cfg);
            fidelities.push(fidelity_of(&report.distribution, &circ, &measured));
        }
        assert!(
            fidelities[2] > fidelities[0],
            "checking all layers should beat checking none: {fidelities:?}"
        );
    }

    #[test]
    fn bv_gets_large_improvement() {
        // The paper's most dramatic row (Table II: 0.07 → 0.89).
        let circ = bernstein_vazirani(5, 0b10111);
        let measured: Vec<usize> = (0..5).collect();
        let noise = NoiseModel::depolarizing(0.003, 0.03)
            .with_readout_model(ReadoutModel::with_crosstalk(0.05, 0.02));
        let exec = Executor::with_backend(noise, Backend::DensityMatrix);
        let report = run_qutracer(&exec, &circ, &measured, &QuTracerConfig::single());
        let before = fidelity_of(&report.global, &circ, &measured);
        let after = fidelity_of(&report.distribution, &circ, &measured);
        assert!(after > 0.7, "BV should improve a lot: {before} -> {after}");
        assert!(after > before + 0.2);
    }

    #[test]
    fn noiseless_single_layer_is_exact() {
        // The first cut sits on a product state, so severing is exact and
        // the noiseless run must reproduce the ideal distribution.
        let circ = vqe_ansatz(4, 1, 5);
        let measured: Vec<usize> = (0..4).collect();
        let exec = Executor::with_backend(NoiseModel::ideal(), Backend::DensityMatrix);
        let report = run_qutracer(&exec, &circ, &measured, &QuTracerConfig::single());
        let f = fidelity_of(&report.distribution, &circ, &measured);
        assert!(f > 1.0 - 1e-6, "noiseless fidelity {f}");
    }

    #[test]
    fn noiseless_multi_layer_stays_high_fidelity() {
        // Beyond the first layer the cut states are entangled with the rest
        // of the register; tracing with local information only (the paper's
        // regime) is an approximation, so noiseless multi-layer runs are
        // close to — but not exactly — ideal.
        let circ = vqe_ansatz(4, 2, 5);
        let measured: Vec<usize> = (0..4).collect();
        let exec = Executor::with_backend(NoiseModel::ideal(), Backend::DensityMatrix);
        let report = run_qutracer(&exec, &circ, &measured, &QuTracerConfig::single());
        let f = fidelity_of(&report.distribution, &circ, &measured);
        assert!(f > 0.9, "noiseless multi-layer fidelity {f}");
    }

    #[test]
    fn traceback_reduces_circuit_count_without_hurting() {
        let circ = vqe_ansatz(4, 2, 6);
        let measured: Vec<usize> = (0..4).collect();
        let noise = NoiseModel::depolarizing(0.002, 0.02).with_readout(0.03);
        let exec = Executor::with_backend(noise, Backend::DensityMatrix);
        let mut with_tb = QuTracerConfig::single();
        with_tb.trace.state_traceback = true;
        let mut without_tb = QuTracerConfig::single();
        without_tb.trace.state_traceback = false;
        let r1 = run_qutracer(&exec, &circ, &measured, &with_tb);
        let r2 = run_qutracer(&exec, &circ, &measured, &without_tb);
        assert!(
            r1.stats.n_circuits <= r2.stats.n_circuits,
            "traceback should not increase circuits"
        );
        let f1 = fidelity_of(&r1.distribution, &circ, &measured);
        let f2 = fidelity_of(&r2.distribution, &circ, &measured);
        assert!(
            (f1 - f2).abs() < 0.05,
            "traceback changed results: {f1} vs {f2}"
        );
    }
}
