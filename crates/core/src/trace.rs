//! Per-subset state tracing: the heart of the QuTracer framework.
//!
//! For each traced subset (one qubit or a pair), the circuit is segmented
//! into alternating *local* blocks (subset-only gates, simulated classically
//! — *localized gate simulation*) and *check segments* (operations commuting
//! with Z on the subset). The subset's density matrix is then walked through
//! the circuit:
//!
//! * local blocks update it exactly (and noiselessly) on the classical side;
//! * at each cut the *off-diagonal* components are (re)estimated by direct
//!   measurement of the true subset marginal (the paper's "measure the
//!   state at (1,3)" step, Sec. V-C) — the Z-diagonal, which a Z-commuting
//!   segment preserves exactly, carries the **mitigated** information across
//!   layers;
//! * checked segments update the state with the QSPC-mitigated output;
//! * unchecked segments (outside the checked window of Fig. 9) simply mark
//!   the tracked state stale, so the next cut re-measures everything.
//!
//! *State traceback* restricts which Pauli components are estimated at each
//! cut to exactly the ones the terminal Z measurement can depend on,
//! pulled backwards through the local blocks.
//!
//! # Execution ports
//!
//! The programs a walk requests are a *static* function of the circuit
//! analysis — measurement results feed only the classical combination, never
//! the choice of what to run next. The walk is therefore written against a
//! [`TracePort`] with three interchangeable backends:
//!
//! * [`LivePort`] submits each request to a [`Runner`] immediately (the
//!   classic serial behaviour of [`trace_single`]/[`trace_pair`]);
//! * [`CollectPort`] records every requested program, tagged by
//!   (subset, segment, preparation, basis) — stage 1 of the pipeline;
//! * [`ReplayPort`] feeds previously executed results back through the
//!   identical walk — stage 3 (recombination).
//!
//! All three traverse byte-identical job streams, which is what makes the
//! batched pipeline bit-identical to the serial path.

use crate::error::ExecError;
use qt_circuit::passes::{split_into_segments, Segment, UnsupportedCoupling};
use qt_circuit::{basis, embed, passes, Circuit, Instruction};
use qt_dist::Distribution;
use qt_math::states::PrepState;
use qt_math::{Complex, Matrix, Pauli};
use qt_pcs::{
    combine_pair_mitigated, combine_single_mitigated, project_to_physical, tabulate_pair,
    tabulate_single, QspcPairSpec, QspcSingleSpec, QspcStats,
};
use qt_sim::{BatchJob, Program, RunOutput, Runner};
use std::collections::{BTreeMap, BTreeSet};

/// Options of a subset trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Apply false-dependency removal / gate bypassing (Sec. V-B).
    pub optimize_circuits: bool,
    /// Restrict measured components via state traceback (Sec. V-B).
    pub state_traceback: bool,
    /// Check only this many trailing check segments (`None` = all);
    /// earlier segments propagate unmitigated (Fig. 9's sweep).
    pub checked_layers: Option<usize>,
    /// Use the reduced 4-state preparation basis.
    pub use_reduced_preps: bool,
    /// Denominator floor forwarded to the QSPC engine.
    pub den_floor: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            optimize_circuits: true,
            state_traceback: true,
            checked_layers: None,
            use_reduced_preps: true,
            den_floor: 0.05,
        }
    }
}

impl TraceConfig {
    fn qspc(&self) -> qt_pcs::QspcConfig {
        qt_pcs::QspcConfig {
            optimize_circuits: self.optimize_circuits,
            use_reduced_preps: self.use_reduced_preps,
            den_floor: self.den_floor,
        }
    }
}

/// Result of tracing one subset.
#[derive(Debug, Clone)]
pub struct TraceOutcome {
    /// The mitigated local Z distribution of the subset
    /// (bit `i` = subset qubit `i`).
    pub local: Distribution,
    /// The final traced subset state.
    pub rho: Matrix,
    /// Accumulated execution statistics.
    pub stats: QspcStats,
    /// Number of check segments that received a QSPC check.
    pub checks_applied: usize,
}

// ---------------------------------------------------------------------
// Job tagging and execution ports.
// ---------------------------------------------------------------------

/// The role of one planned program within a mitigation plan (the paper's
/// Fig. 4 stage-1 artifact, tagged by subset / segment / prep / basis).
#[derive(Debug, Clone, PartialEq)]
pub struct JobTag {
    /// The traced physical qubits (empty for the global run).
    pub subset: Vec<usize>,
    /// Segment index within the subset's segmentation, when applicable.
    pub segment: Option<usize>,
    /// What the program measures.
    pub kind: JobKind,
}

/// What a planned program measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobKind {
    /// The original circuit over all target qubits.
    Global,
    /// A true-marginal measurement at a cut, in the given per-slot bases
    /// (the high slot is `None` for single-qubit subsets).
    CutMarginal {
        /// Basis on subset slot 0.
        basis_low: Pauli,
        /// Basis on subset slot 1 (pairs only).
        basis_high: Option<Pauli>,
    },
    /// One member of a QSPC preparation ensemble (Eq. 9).
    Ensemble {
        /// Preparation on subset slot 0.
        prep_low: PrepState,
        /// Preparation on subset slot 1 (pairs only).
        prep_high: Option<PrepState>,
        /// Measurement basis on subset slot 0.
        basis_low: Pauli,
        /// Measurement basis on subset slot 1 (pairs only).
        basis_high: Option<Pauli>,
    },
    /// The whole circuit measured on the subset only (Jigsaw-style local
    /// fallback for trailing unchecked segments).
    Fallback,
}

/// Where a trace walk sends its program requests (see module docs).
pub(crate) trait TracePort {
    /// Submits a batch of tagged jobs and returns their results in order.
    fn submit(
        &mut self,
        jobs: Vec<BatchJob>,
        tags: Vec<JobTag>,
    ) -> Result<Vec<RunOutput>, ExecError>;
}

/// Executes every request immediately on a [`Runner`].
pub(crate) struct LivePort<'a, R: Runner> {
    pub runner: &'a R,
}

impl<R: Runner> TracePort for LivePort<'_, R> {
    fn submit(
        &mut self,
        jobs: Vec<BatchJob>,
        _tags: Vec<JobTag>,
    ) -> Result<Vec<RunOutput>, ExecError> {
        Ok(self.runner.run_batch(&jobs))
    }
}

/// Records every request (stage 1). Returns placeholder uniform outputs
/// with *exact* static gate counts, so plan-time statistics are real while
/// the tracked state — which no job generation depends on — is discarded.
pub(crate) struct CollectPort<'a> {
    pub sink: &'a mut Vec<(BatchJob, JobTag)>,
}

impl TracePort for CollectPort<'_> {
    fn submit(
        &mut self,
        jobs: Vec<BatchJob>,
        tags: Vec<JobTag>,
    ) -> Result<Vec<RunOutput>, ExecError> {
        let outs = jobs
            .iter()
            .map(|j| RunOutput {
                dist: Distribution::uniform(j.measured.len()),
                gates: j.program.gate_count(),
                two_qubit_gates: j.program.two_qubit_gate_count(),
            })
            .collect();
        for (job, tag) in jobs.into_iter().zip(tags) {
            self.sink.push((job, tag));
        }
        Ok(outs)
    }
}

/// Feeds recorded results back through the walk, in request order
/// (stage 3).
pub(crate) struct ReplayPort<'a> {
    outputs: &'a [RunOutput],
    cursor: usize,
}

impl<'a> ReplayPort<'a> {
    pub fn new(outputs: &'a [RunOutput]) -> Self {
        ReplayPort { outputs, cursor: 0 }
    }

    /// Whether every recorded result was consumed by the walk.
    pub fn fully_consumed(&self) -> bool {
        self.cursor == self.outputs.len()
    }
}

impl TracePort for ReplayPort<'_> {
    fn submit(
        &mut self,
        jobs: Vec<BatchJob>,
        _tags: Vec<JobTag>,
    ) -> Result<Vec<RunOutput>, ExecError> {
        let end = self.cursor + jobs.len();
        if end > self.outputs.len() {
            return Err(ExecError::ArtifactsExhausted);
        }
        let outs = self.outputs[self.cursor..end].to_vec();
        self.cursor = end;
        Ok(outs)
    }
}

/// Why a ported walk stopped.
#[derive(Debug)]
pub(crate) enum TraceError {
    /// Stage-1 failure: the subset is not Z-checkable.
    Coupling(UnsupportedCoupling),
    /// Stage-3 failure: the port could not serve a request.
    Exec(ExecError),
}

impl From<UnsupportedCoupling> for TraceError {
    fn from(e: UnsupportedCoupling) -> Self {
        TraceError::Coupling(e)
    }
}

impl From<ExecError> for TraceError {
    fn from(e: ExecError) -> Self {
        TraceError::Exec(e)
    }
}

// ---------------------------------------------------------------------
// Public (live) entry points.
// ---------------------------------------------------------------------

/// Traces a single qubit through `circuit` (subset size 1), executing each
/// request immediately on `runner`.
///
/// # Errors
///
/// Returns [`UnsupportedCoupling`] if a gate couples the qubit
/// non-diagonally (no Z check exists).
pub fn trace_single<R: Runner>(
    runner: &R,
    circuit: &Circuit,
    qubit: usize,
    config: &TraceConfig,
) -> Result<TraceOutcome, UnsupportedCoupling> {
    let mut port = LivePort { runner };
    match trace_single_with_port(&mut port, circuit, qubit, config) {
        Ok(o) => Ok(o),
        Err(TraceError::Coupling(e)) => Err(e),
        Err(TraceError::Exec(_)) => unreachable!("live port is infallible"),
    }
}

/// Traces a qubit pair through `circuit` (subset size 2), executing each
/// request immediately on `runner`.
///
/// # Errors
///
/// Returns [`UnsupportedCoupling`] if a gate couples the pair
/// non-diagonally to the rest.
pub fn trace_pair<R: Runner>(
    runner: &R,
    circuit: &Circuit,
    pair: [usize; 2],
    config: &TraceConfig,
) -> Result<TraceOutcome, UnsupportedCoupling> {
    let mut port = LivePort { runner };
    match trace_pair_with_port(&mut port, circuit, pair, config) {
        Ok(o) => Ok(o),
        Err(TraceError::Coupling(e)) => Err(e),
        Err(TraceError::Exec(_)) => unreachable!("live port is infallible"),
    }
}

// ---------------------------------------------------------------------
// Ported walks.
// ---------------------------------------------------------------------

pub(crate) fn trace_single_with_port(
    port: &mut dyn TracePort,
    circuit: &Circuit,
    qubit: usize,
    config: &TraceConfig,
) -> Result<TraceOutcome, TraceError> {
    let segments = split_into_segments(circuit, &[qubit])?;
    let n = circuit.n_qubits();
    let checked = checked_set(&segments, &[qubit], config.checked_layers);
    let needed_at = compute_needed_single(&segments, qubit, config.state_traceback);

    let mut rho = qt_math::states::PrepState::Zero.projector();
    let mut prefix = Circuit::new(n);
    let mut stats = QspcStats::default();
    let mut checks_applied = 0usize;
    // `offdiag_exact`: the traced state is still provably product with the
    // rest (severing is exact). `diag_valid`/`offdiag_valid`: whether the
    // tracked components are currently trustworthy at all.
    let mut offdiag_exact = true;
    let mut diag_valid = true;
    let mut offdiag_valid = true;

    for (i, seg) in segments.iter().enumerate() {
        rho = apply_local_block(&rho, &seg.local, &[qubit]);
        for instr in &seg.local {
            prefix.push(instr.gate.clone(), instr.qubits.clone());
        }
        if !seg.check_touches(&[qubit]) {
            for instr in &seg.check {
                prefix.push(instr.gate.clone(), instr.qubits.clone());
            }
            continue;
        }
        if !checked.contains(&i) {
            // Unchecked window: the segment runs inside the (global) noisy
            // circuit; we stop tracking and re-measure at the next cut.
            for instr in &seg.check {
                prefix.push(instr.gate.clone(), instr.qubits.clone());
            }
            offdiag_exact = false;
            diag_valid = false;
            offdiag_valid = false;
            continue;
        }

        // ---- refresh the input state where it went stale ----
        let mut bases: Vec<Pauli> = Vec::new();
        if !offdiag_valid {
            bases.push(Pauli::X);
            bases.push(Pauli::Y);
        }
        if !diag_valid {
            bases.push(Pauli::Z);
        }
        if !bases.is_empty() {
            let measured =
                measure_marginal_single(port, &prefix, qubit, &bases, config, &mut stats, i)?;
            rho = overwrite_bloch(&rho, &measured);
        }

        // ---- mitigated update through the checked segment ----
        // While the cut state is provably product, severing is exact and the
        // full mitigated state (incl. X/Y) is requested from QSPC — the
        // paper's QPE/BV regime. At entangled cuts only the severing-immune
        // diagonal is mitigated; off-diagonals come from a true-marginal
        // measurement at the post-check cut.
        let downstream: Vec<Pauli> = needed_at[i].to_vec();
        let outputs: Vec<Pauli> = if offdiag_exact {
            downstream.clone()
        } else {
            vec![Pauli::Z]
        };
        let mut segment = Circuit::new(n);
        for instr in &seg.check {
            segment.push(instr.gate.clone(), instr.qubits.clone());
        }
        checks_applied += 1;
        let qspc_config = config.qspc();
        let exps = {
            let spec = QspcSingleSpec {
                qubit,
                prefix: &prefix,
                segment: &segment,
                config: qspc_config,
            };
            let ens = spec.ensemble(&spec.mitigated_bases(&outputs));
            let tags = ens
                .keys
                .iter()
                .map(|&(s, b)| JobTag {
                    subset: vec![qubit],
                    segment: Some(i),
                    kind: JobKind::Ensemble {
                        prep_low: s,
                        prep_high: None,
                        basis_low: b,
                        basis_high: None,
                    },
                })
                .collect();
            let outs = port.submit(ens.jobs, tags)?;
            let (e, st) = tabulate_single(&ens.keys, &outs);
            stats = add_stats(stats, st);
            let (exps, _den) = combine_single_mitigated(&qspc_config, &rho, &outputs, &e);
            exps
        };
        let mut m = Matrix::identity(2).scale(Complex::real(0.5));
        for (&p, &v) in &exps {
            if p != Pauli::I {
                m = m.add(&p.matrix().scale(Complex::real(v / 2.0)));
            }
        }
        rho = project_to_physical(&m);
        for instr in &seg.check {
            prefix.push(instr.gate.clone(), instr.qubits.clone());
        }
        if !offdiag_exact {
            // True-marginal off-diagonals at the post-check cut, if any
            // downstream consumer needs them.
            let need_off: Vec<Pauli> = downstream
                .iter()
                .copied()
                .filter(|&p| p == Pauli::X || p == Pauli::Y)
                .collect();
            if !need_off.is_empty() {
                let measured = measure_marginal_single(
                    port, &prefix, qubit, &need_off, config, &mut stats, i,
                )?;
                rho = overwrite_bloch(&rho, &measured);
            }
        }
        offdiag_exact = false;
        diag_valid = true;
        offdiag_valid = true;
    }

    if !diag_valid {
        // Trailing unchecked segments: fall back to the plain subset
        // measurement of the full circuit (Jigsaw-style local).
        let job = BatchJob::new(Program::from_circuit(circuit), vec![qubit]);
        let tag = JobTag {
            subset: vec![qubit],
            segment: None,
            kind: JobKind::Fallback,
        };
        let out = port.submit(vec![job], vec![tag])?.remove(0);
        stats.n_circuits += 1;
        stats.total_gates += out.gates;
        stats.total_two_qubit_gates += out.two_qubit_gates;
        return Ok(TraceOutcome {
            local: out.dist.normalized(),
            rho,
            stats,
            checks_applied,
        });
    }

    let p0 = rho[(0, 0)].re.clamp(0.0, 1.0);
    Ok(TraceOutcome {
        local: Distribution::try_from_probs(1, vec![p0, 1.0 - p0])
            .expect("one-bit local distribution")
            .normalized(),
        rho,
        stats,
        checks_applied,
    })
}

pub(crate) fn trace_pair_with_port(
    port: &mut dyn TracePort,
    circuit: &Circuit,
    pair: [usize; 2],
    config: &TraceConfig,
) -> Result<TraceOutcome, TraceError> {
    let segments = split_into_segments(circuit, &pair)?;
    let n = circuit.n_qubits();
    let checked = checked_set(&segments, &pair, config.checked_layers);
    let needed_at = compute_needed_pair(&segments, pair, config.state_traceback);

    let zero = qt_math::states::PrepState::Zero.projector();
    let mut rho = zero.kron(&zero);
    let mut prefix = Circuit::new(n);
    let mut stats = QspcStats::default();
    let mut checks_applied = 0usize;
    let mut offdiag_exact = true;
    let mut diag_valid = true;
    let mut offdiag_valid = true;

    let is_diag_pair = |pl: Pauli, ph: Pauli| {
        (pl == Pauli::I || pl == Pauli::Z) && (ph == Pauli::I || ph == Pauli::Z)
    };
    let diag_outputs = [
        (Pauli::Z, Pauli::I),
        (Pauli::I, Pauli::Z),
        (Pauli::Z, Pauli::Z),
    ];

    for (i, seg) in segments.iter().enumerate() {
        rho = apply_local_block(&rho, &seg.local, &pair);
        for instr in &seg.local {
            prefix.push(instr.gate.clone(), instr.qubits.clone());
        }
        if !seg.check_touches(&pair) {
            for instr in &seg.check {
                prefix.push(instr.gate.clone(), instr.qubits.clone());
            }
            continue;
        }
        if !checked.contains(&i) {
            for instr in &seg.check {
                prefix.push(instr.gate.clone(), instr.qubits.clone());
            }
            offdiag_exact = false;
            diag_valid = false;
            offdiag_valid = false;
            continue;
        }

        let downstream: Vec<(Pauli, Pauli)> = needed_at[i].to_vec();

        // ---- refresh stale inputs from the true marginal ----
        let inputs = expand_pair_inputs(&downstream);
        let mut to_measure: Vec<(Pauli, Pauli)> = Vec::new();
        for &(pl, ph) in &inputs {
            let diag = is_diag_pair(pl, ph);
            if (diag && !diag_valid) || (!diag && !offdiag_valid) {
                to_measure.push((pl, ph));
            }
        }
        if !to_measure.is_empty() {
            let measured =
                measure_marginal_pair(port, &prefix, pair, &to_measure, config, &mut stats, i)?;
            rho = overwrite_pair_components(&rho, &measured);
        }

        // ---- mitigated update ----
        let outputs: Vec<(Pauli, Pauli)> = if offdiag_exact {
            downstream.clone()
        } else {
            diag_outputs.to_vec()
        };
        let mut segment = Circuit::new(n);
        for instr in &seg.check {
            segment.push(instr.gate.clone(), instr.qubits.clone());
        }
        checks_applied += 1;
        let qspc_config = config.qspc();
        let exps = {
            let spec = QspcPairSpec {
                qubits: pair,
                prefix: &prefix,
                segment: &segment,
                config: qspc_config,
            };
            let (needed_low, needed_high) = spec.mitigated_settings(&outputs);
            let ens = spec.ensemble(&needed_low, &needed_high);
            let tags = ens
                .keys
                .iter()
                .map(|&(sl, sh, bl, bh)| JobTag {
                    subset: pair.to_vec(),
                    segment: Some(i),
                    kind: JobKind::Ensemble {
                        prep_low: sl,
                        prep_high: Some(sh),
                        basis_low: bl,
                        basis_high: Some(bh),
                    },
                })
                .collect();
            let outs = port.submit(ens.jobs, tags)?;
            let (e, st) = tabulate_pair(&ens.keys, &outs);
            stats = add_stats(stats, st);
            let (exps, _den) =
                combine_pair_mitigated(&qspc_config, &rho, &outputs, &needed_low, &needed_high, &e);
            exps
        };
        let mut m = Matrix::identity(4).scale(Complex::real(0.25));
        for (&(pl, ph), &v) in &exps {
            let op = ph.matrix().kron(&pl.matrix());
            m = m.add(&op.scale(Complex::real(v / 4.0)));
        }
        rho = project_to_physical(&m);
        for instr in &seg.check {
            prefix.push(instr.gate.clone(), instr.qubits.clone());
        }
        if !offdiag_exact {
            let need_off: Vec<(Pauli, Pauli)> = downstream
                .iter()
                .copied()
                .filter(|&(pl, ph)| !is_diag_pair(pl, ph))
                .collect();
            if !need_off.is_empty() {
                let measured =
                    measure_marginal_pair(port, &prefix, pair, &need_off, config, &mut stats, i)?;
                rho = overwrite_pair_components(&rho, &measured);
            }
        }
        offdiag_exact = false;
        diag_valid = true;
        offdiag_valid = true;
    }

    if !diag_valid {
        let job = BatchJob::new(Program::from_circuit(circuit), vec![pair[0], pair[1]]);
        let tag = JobTag {
            subset: pair.to_vec(),
            segment: None,
            kind: JobKind::Fallback,
        };
        let out = port.submit(vec![job], vec![tag])?.remove(0);
        stats.n_circuits += 1;
        stats.total_gates += out.gates;
        stats.total_two_qubit_gates += out.two_qubit_gates;
        return Ok(TraceOutcome {
            local: out.dist.normalized(),
            rho,
            stats,
            checks_applied,
        });
    }

    let mut probs = vec![0.0; 4];
    for (b, p) in probs.iter_mut().enumerate() {
        *p = rho[(b, b)].re.max(0.0);
    }
    Ok(TraceOutcome {
        local: Distribution::try_from_probs(2, probs)
            .expect("two-bit local distribution")
            .normalized(),
        rho,
        stats,
        checks_applied,
    })
}

// ---------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------

fn checked_set(
    segments: &[Segment],
    subset: &[usize],
    checked_layers: Option<usize>,
) -> BTreeSet<usize> {
    let touching: Vec<usize> = segments
        .iter()
        .enumerate()
        .filter(|(_, s)| s.check_touches(subset))
        .map(|(i, _)| i)
        .collect();
    let first = match checked_layers {
        Some(k) => touching.len().saturating_sub(k),
        None => 0,
    };
    touching[first..].iter().copied().collect()
}

fn add_stats(mut a: QspcStats, b: QspcStats) -> QspcStats {
    a.n_circuits += b.n_circuits;
    a.total_gates += b.total_gates;
    a.total_two_qubit_gates += b.total_two_qubit_gates;
    a.max_two_qubit_gates = a.max_two_qubit_gates.max(b.max_two_qubit_gates);
    a
}

/// Overwrites the Bloch components of a single-qubit state with measured
/// values, clipping to the physical ball.
fn overwrite_bloch(rho: &Matrix, measured: &BTreeMap<Pauli, f64>) -> Matrix {
    let mut bloch = qt_math::states::bloch_vector(rho);
    for (&b, &v) in measured {
        match b {
            Pauli::X => bloch[0] = v,
            Pauli::Y => bloch[1] = v,
            Pauli::Z => bloch[2] = v,
            Pauli::I => {}
        }
    }
    let norm = (bloch[0] * bloch[0] + bloch[1] * bloch[1] + bloch[2] * bloch[2]).sqrt();
    if norm > 1.0 {
        for c in &mut bloch {
            *c /= norm;
        }
    }
    qt_math::states::density_from_bloch(bloch)
}

/// Applies a subset-local block of instructions to the subset state.
fn apply_local_block(rho: &Matrix, instrs: &[Instruction], subset: &[usize]) -> Matrix {
    if instrs.is_empty() {
        return rho.clone();
    }
    let k = subset.len();
    let mut u = Matrix::identity(1 << k);
    for instr in instrs {
        let positions: Vec<usize> = instr
            .qubits
            .iter()
            .map(|q| subset.iter().position(|x| x == q).expect("local gate"))
            .collect();
        u = embed(&instr.gate.matrix(), &positions, k).mul(&u);
    }
    u.mul(rho).mul(&u.dagger())
}

/// Overwrites Pauli-pair coefficients of a two-qubit state with measured
/// values and re-projects to a physical state.
fn overwrite_pair_components(rho: &Matrix, measured: &BTreeMap<(Pauli, Pauli), f64>) -> Matrix {
    let mut m = Matrix::identity(4).scale(Complex::real(0.25));
    for pl in Pauli::ALL {
        for ph in Pauli::ALL {
            if pl == Pauli::I && ph == Pauli::I {
                continue;
            }
            let op = ph.matrix().kron(&pl.matrix());
            let v = match measured.get(&(pl, ph)) {
                Some(&v) => v,
                None => op.trace_product(rho).re,
            };
            m = m.add(&op.scale(Complex::real(v / 4.0)));
        }
    }
    project_to_physical(&m)
}

/// Measures the unmitigated true marginal of one qubit at the current cut
/// (run the prefix, rotate, read) in each requested basis.
#[allow(clippy::too_many_arguments)]
fn measure_marginal_single(
    port: &mut dyn TracePort,
    prefix: &Circuit,
    qubit: usize,
    bases: &[Pauli],
    config: &TraceConfig,
    stats: &mut QspcStats,
    segment: usize,
) -> Result<BTreeMap<Pauli, f64>, ExecError> {
    // One reduced circuit per basis, executed as a single parallel batch.
    let jobs: Vec<BatchJob> = bases
        .iter()
        .map(|&b| {
            let mut c = Circuit::new(prefix.n_qubits());
            c.append(prefix);
            for i in basis::measure_rotation(b, qubit) {
                c.push_instruction(i);
            }
            let reduced = if config.optimize_circuits {
                passes::reduce_for_z_measurement(&c, &[qubit]).circuit
            } else {
                c
            };
            BatchJob::new(Program::from_circuit(&reduced), vec![qubit])
        })
        .collect();
    let tags: Vec<JobTag> = bases
        .iter()
        .map(|&b| JobTag {
            subset: vec![qubit],
            segment: Some(segment),
            kind: JobKind::CutMarginal {
                basis_low: b,
                basis_high: None,
            },
        })
        .collect();
    let mut out = BTreeMap::new();
    for (&b, run) in bases.iter().zip(port.submit(jobs, tags)?) {
        stats.n_circuits += 1;
        stats.total_gates += run.gates;
        stats.total_two_qubit_gates += run.two_qubit_gates;
        stats.max_two_qubit_gates = stats.max_two_qubit_gates.max(run.two_qubit_gates);
        out.insert(b, run.dist.prob(0) - run.dist.prob(1));
    }
    Ok(out)
}

/// Measures the unmitigated true marginal of a pair at the current cut for
/// each requested Pauli pair (batched by basis setting).
#[allow(clippy::too_many_arguments)]
fn measure_marginal_pair(
    port: &mut dyn TracePort,
    prefix: &Circuit,
    pair: [usize; 2],
    components: &[(Pauli, Pauli)],
    config: &TraceConfig,
    stats: &mut QspcStats,
    segment: usize,
) -> Result<BTreeMap<(Pauli, Pauli), f64>, ExecError> {
    // Group the requested components by the basis setting that measures
    // them; `I` slots ride along with whatever basis is chosen.
    let mut settings: Vec<(Pauli, Pauli)> = Vec::new();
    for &(pl, ph) in components {
        let bl = if pl == Pauli::I { Pauli::Z } else { pl };
        let bh = if ph == Pauli::I { Pauli::Z } else { ph };
        if !settings.contains(&(bl, bh)) {
            settings.push((bl, bh));
        }
    }
    // One reduced circuit per basis setting, executed as a parallel batch.
    let jobs: Vec<BatchJob> = settings
        .iter()
        .map(|&(bl, bh)| {
            let mut c = Circuit::new(prefix.n_qubits());
            c.append(prefix);
            for i in basis::measure_rotation(bl, pair[0]) {
                c.push_instruction(i);
            }
            for i in basis::measure_rotation(bh, pair[1]) {
                c.push_instruction(i);
            }
            let reduced = if config.optimize_circuits {
                passes::reduce_for_z_measurement(&c, &[pair[0], pair[1]]).circuit
            } else {
                c
            };
            BatchJob::new(Program::from_circuit(&reduced), vec![pair[0], pair[1]])
        })
        .collect();
    let tags: Vec<JobTag> = settings
        .iter()
        .map(|&(bl, bh)| JobTag {
            subset: pair.to_vec(),
            segment: Some(segment),
            kind: JobKind::CutMarginal {
                basis_low: bl,
                basis_high: Some(bh),
            },
        })
        .collect();
    let mut out = BTreeMap::new();
    for (&(bl, bh), run) in settings.iter().zip(port.submit(jobs, tags)?) {
        stats.n_circuits += 1;
        stats.total_gates += run.gates;
        stats.total_two_qubit_gates += run.two_qubit_gates;
        stats.max_two_qubit_gates = stats.max_two_qubit_gates.max(run.two_qubit_gates);
        let dist = run.dist;
        let exp = |mask: u64| -> f64 {
            dist.iter()
                .map(|(i, p)| {
                    if (i & mask).count_ones().is_multiple_of(2) {
                        p
                    } else {
                        -p
                    }
                })
                .sum()
        };
        out.insert((bl, Pauli::I), exp(0b01));
        out.insert((Pauli::I, bh), exp(0b10));
        out.insert((bl, bh), exp(0b11));
    }
    // Return only the requested components.
    let mut filtered = BTreeMap::new();
    for &(pl, ph) in components {
        if pl == Pauli::I && ph == Pauli::I {
            continue;
        }
        // Find a compatible recorded value.
        let key = if pl == Pauli::I {
            (Pauli::I, ph)
        } else if ph == Pauli::I {
            (pl, Pauli::I)
        } else {
            (pl, ph)
        };
        if let Some(&v) = out.get(&key) {
            filtered.insert((pl, ph), v);
        }
    }
    Ok(filtered)
}

/// The input components a pair check consumes for the given outputs
/// (per-slot expansion: `Z → {Z, I}`, `X/Y → {X, Y}`, plus the diagonal
/// components the denominator needs).
fn expand_pair_inputs(outputs: &[(Pauli, Pauli)]) -> Vec<(Pauli, Pauli)> {
    let expand = |p: Pauli| -> Vec<Pauli> {
        match p {
            Pauli::I => vec![Pauli::I],
            Pauli::Z => vec![Pauli::Z, Pauli::I],
            Pauli::X | Pauli::Y => vec![Pauli::X, Pauli::Y],
        }
    };
    let mut set: BTreeSet<(Pauli, Pauli)> = BTreeSet::from([
        (Pauli::Z, Pauli::I),
        (Pauli::I, Pauli::Z),
        (Pauli::Z, Pauli::Z),
    ]);
    for &(pl, ph) in outputs {
        for el in expand(pl) {
            for eh in expand(ph) {
                if !(el == Pauli::I && eh == Pauli::I) {
                    set.insert((el, eh));
                }
            }
        }
    }
    set.into_iter().collect()
}

/// Backward traceback for subset size 1: the set of output Paulis needed
/// per segment. Needed outputs at a check are those the final Z measurement
/// can depend on, pulled through the downstream local blocks.
fn compute_needed_single(segments: &[Segment], qubit: usize, traceback: bool) -> Vec<Vec<Pauli>> {
    let all = vec![Pauli::X, Pauli::Y, Pauli::Z];
    if !traceback {
        return vec![all; segments.len()];
    }
    let mut needed: BTreeSet<Pauli> = BTreeSet::from([Pauli::Z]);
    let mut out = vec![Vec::new(); segments.len()];
    for (i, seg) in segments.iter().enumerate().rev() {
        out[i] = needed.iter().copied().collect();
        if seg.check_touches(&[qubit]) {
            // Inputs the estimator consumes: Z→{Z}, X/Y→{X,Y} (+Z for den).
            let mut inputs = BTreeSet::from([Pauli::Z]);
            for &p in &needed {
                match p {
                    Pauli::Z | Pauli::I => {
                        inputs.insert(Pauli::Z);
                    }
                    Pauli::X | Pauli::Y => {
                        inputs.insert(Pauli::X);
                        inputs.insert(Pauli::Y);
                    }
                }
            }
            needed = inputs;
        }
        // Pull back through the local block: ρ_after = L ρ L†, so
        // tr[ρ_after P] = tr[ρ_before L†PL].
        if !seg.local.is_empty() {
            let mut u = Matrix::identity(2);
            for instr in &seg.local {
                u = instr.gate.matrix().mul(&u);
            }
            let mut pulled = BTreeSet::new();
            for &p in &needed {
                let v = u.dagger().mul(&p.matrix()).mul(&u);
                for q in [Pauli::X, Pauli::Y, Pauli::Z] {
                    if q.matrix().trace_product(&v).norm() > 1e-12 {
                        pulled.insert(q);
                    }
                }
            }
            needed = pulled;
            if needed.is_empty() {
                needed.insert(Pauli::Z);
            }
        }
    }
    out
}

/// Backward traceback for pairs: analogous, component-wise per qubit.
fn compute_needed_pair(
    segments: &[Segment],
    pair: [usize; 2],
    traceback: bool,
) -> Vec<Vec<(Pauli, Pauli)>> {
    let all: Vec<(Pauli, Pauli)> = {
        let mut v = Vec::new();
        for pl in Pauli::ALL {
            for ph in Pauli::ALL {
                if pl == Pauli::I && ph == Pauli::I {
                    continue;
                }
                v.push((pl, ph));
            }
        }
        v
    };
    if !traceback {
        return vec![all; segments.len()];
    }
    let diag: BTreeSet<(Pauli, Pauli)> = BTreeSet::from([
        (Pauli::Z, Pauli::I),
        (Pauli::I, Pauli::Z),
        (Pauli::Z, Pauli::Z),
    ]);
    let mut needed = diag.clone();
    let mut out = vec![Vec::new(); segments.len()];
    for (i, seg) in segments.iter().enumerate().rev() {
        out[i] = needed.iter().copied().collect();
        if seg.check_touches(&pair) {
            needed = expand_pair_inputs(&needed.iter().copied().collect::<Vec<_>>())
                .into_iter()
                .collect();
        }
        if !seg.local.is_empty() {
            let mut u = Matrix::identity(4);
            for instr in &seg.local {
                let positions: Vec<usize> = instr
                    .qubits
                    .iter()
                    .map(|q| pair.iter().position(|x| x == q).expect("local gate"))
                    .collect();
                u = embed(&instr.gate.matrix(), &positions, 2).mul(&u);
            }
            let mut pulled = BTreeSet::new();
            for &(pl, ph) in &needed {
                let p = ph.matrix().kron(&pl.matrix());
                let v = u.dagger().mul(&p).mul(&u);
                for ql in Pauli::ALL {
                    for qh in Pauli::ALL {
                        if ql == Pauli::I && qh == Pauli::I {
                            continue;
                        }
                        let op = qh.matrix().kron(&ql.matrix());
                        if op.trace_product(&v).norm() > 1e-12 {
                            pulled.insert((ql, qh));
                        }
                    }
                }
            }
            needed = pulled;
            if needed.is_empty() {
                needed = diag.clone();
            }
        }
    }
    out
}
