//! Chaos properties of the fallible pipeline: fault schedules are driven
//! through `plan → execute_fallible → recombine` and the invariant is
//! checked at the report level — every run terminates with a report
//! **bit-identical** to the fault-free run (when the fault budget is
//! recoverable) or with a typed error / typed degradation (when it is
//! not). No fault schedule may escape as a panic.

use proptest::prelude::*;
use qt_algos::{qaoa::QaoaParams, qaoa_maxcut, ring_graph, vqe_ansatz};
use qt_circuit::Circuit;
use qt_core::{
    ExecError, JobKind, QuTracer, QuTracerConfig, QuTracerReport, RetryPolicy, ShotPolicy,
};
use qt_sim::{
    Backend, ChaosConfig, ChaosRunner, Executor, Fault, JobKey, NoiseModel, RunErrorKind,
};

fn executor() -> Executor {
    Executor::with_backend(
        NoiseModel::depolarizing(0.002, 0.02).with_readout(0.03),
        Backend::DensityMatrix,
    )
}

/// A random small paper workload (sizes the exact DM engine handles
/// instantly, so the chaos sweep stays cheap).
fn arb_workload() -> impl Strategy<Value = (Circuit, Vec<usize>, QuTracerConfig)> {
    prop_oneof![
        (4usize..6, 1usize..3, 0u64..50).prop_map(|(n, layers, seed)| {
            (
                vqe_ansatz(n, layers, seed),
                (0..n).collect(),
                QuTracerConfig::single(),
            )
        }),
        (4usize..6, 1usize..3, 0u64..50).prop_map(|(n, p, seed)| {
            (
                qaoa_maxcut(n, &ring_graph(n), &QaoaParams::seeded(p, seed)),
                (0..n).collect(),
                QuTracerConfig::pairs().with_symmetric_subsets(),
            )
        }),
    ]
}

/// Base seed from the CI chaos matrix (`CHAOS_SEED`): mixed into every
/// injected schedule so each matrix entry explores a distinct — but still
/// deterministic and locally replayable — fault set.
fn chaos_base() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn matrix_seed(seed: u64) -> u64 {
    seed ^ chaos_base().wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Transient-only chaos whose worst case (`max_transient_attempts`
/// failures, then success) still fits inside `attempt_budget` total
/// attempts — every fault is recoverable by construction.
fn recoverable_chaos(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed: matrix_seed(seed),
        transient_rate: 0.35,
        corrupt_rate: 0.25,
        max_transient_attempts: 2,
        ..ChaosConfig::default()
    }
}

fn assert_reports_bit_identical(a: &QuTracerReport, b: &QuTracerReport, what: &str) {
    let xs: Vec<(u64, u64)> = a
        .distribution
        .iter()
        .map(|(i, p)| (i, p.to_bits()))
        .collect();
    let ys: Vec<(u64, u64)> = b
        .distribution
        .iter()
        .map(|(i, p)| (i, p.to_bits()))
        .collect();
    assert_eq!(xs, ys, "{what}: refined distribution diverged");
    assert_eq!(a.locals.len(), b.locals.len(), "{what}: locals count");
    for (i, ((da, pa), (db, pb))) in a.locals.iter().zip(&b.locals).enumerate() {
        assert_eq!(pa, pb, "{what}: locals[{i}] positions");
        let la: Vec<(u64, u64)> = da.iter().map(|(j, p)| (j, p.to_bits())).collect();
        let lb: Vec<(u64, u64)> = db.iter().map(|(j, p)| (j, p.to_bits())).collect();
        assert_eq!(la, lb, "{what}: locals[{i}] diverged");
    }
}

/// The key of some planned job tagged (resp. not tagged) with the global
/// run — targets for surgical fault injection.
fn job_key(plan: &qt_core::MitigationPlan, global: bool) -> Option<(usize, JobKey)> {
    plan.programs()
        .enumerate()
        .find(|(_, (_, tags))| tags.iter().any(|t| t.kind == JobKind::Global) == global)
        .map(|(slot, (job, _))| (slot, job.dedup_key()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline invariant: transient and corrupt-output faults that
    /// recover within the retry budget leave the report **bit-identical**
    /// to the fault-free run — retries are invisible in the data, visible
    /// only in the failure counters.
    #[test]
    fn recoverable_chaos_is_bit_identical_to_fault_free(
        (circ, measured, cfg) in arb_workload(),
        chaos_seed in 1u64..500,
    ) {
        let plan = QuTracer::plan(&circ, &measured, &cfg).expect("plannable workload");
        let clean = plan
            .execute(&executor())
            .expect("fault-free execution")
            .recombine()
            .expect("fault-free recombination");

        let chaos = ChaosRunner::new(executor(), recoverable_chaos(chaos_seed));
        // Budget: 1 first attempt + max_transient_attempts retries.
        let report = plan
            .execute_fallible(&chaos, &RetryPolicy::immediate(3))
            .expect("fallible execution")
            .recombine()
            .expect("recoverable chaos must still recombine");

        assert_reports_bit_identical(&report, &clean, "recoverable chaos");
        let failures = report.stats.failures.expect("fallible path records failures");
        prop_assert_eq!(failures.failed_jobs, 0, "all faults were recoverable");
        prop_assert_eq!(failures.voided_subsets, 0);
        let injected = chaos.injected();
        prop_assert!(
            failures.retries >= injected.transient_errors.min(1),
            "injected transients must show up as retries: {failures:?} vs {injected:?}"
        );
    }

    /// The sampled twin: retried jobs are re-sampled from their original
    /// submission-index seeds, so recovered chaos leaves the finite-shot
    /// report bit-identical too.
    #[test]
    fn recoverable_chaos_sampled_is_bit_identical(
        (circ, measured, cfg) in arb_workload(),
        chaos_seed in 1u64..500,
        sample_seed in 0u64..1000,
    ) {
        let plan = QuTracer::plan(&circ, &measured, &cfg).expect("plannable workload");
        let shots = plan.allocate_shots(512 * plan.n_programs(), ShotPolicy::Uniform)
            .expect("budget funds the floor");
        let clean = plan
            .execute_sampled(&executor(), &shots, sample_seed)
            .expect("fault-free sampled execution")
            .recombine()
            .expect("fault-free sampled recombination");

        let chaos = ChaosRunner::new(executor(), recoverable_chaos(chaos_seed));
        let report = plan
            .execute_sampled_fallible(&chaos, &shots, sample_seed, &RetryPolicy::immediate(3))
            .expect("fallible sampled execution")
            .recombine()
            .expect("recoverable sampled chaos must still recombine");

        assert_reports_bit_identical(&report, &clean, "recoverable sampled chaos");
        prop_assert_eq!(report.stats.total_shots, clean.stats.total_shots);
    }

    /// Determinism of the whole failure domain: the same fault seed
    /// replayed against a fresh chaos runner produces the same outcome —
    /// bit-identical reports on success, equal typed errors on failure.
    /// (This is what makes chaos failures debuggable: rerun the seed.)
    #[test]
    fn chaos_outcomes_reproduce_bit_identically_across_reruns(
        (circ, measured, cfg) in arb_workload(),
        chaos_seed in 1u64..500,
    ) {
        let plan = QuTracer::plan(&circ, &measured, &cfg).expect("plannable workload");
        // Unrecoverable mix on purpose: fatals and panics included.
        let config = ChaosConfig {
            seed: matrix_seed(chaos_seed),
            transient_rate: 0.3,
            fatal_rate: 0.15,
            panic_rate: 0.1,
            corrupt_rate: 0.15,
            max_transient_attempts: 2,
            ..ChaosConfig::default()
        };
        let outcome = |_: ()| {
            let chaos = ChaosRunner::new(executor(), config);
            plan.execute_fallible(&chaos, &RetryPolicy::immediate(2))
                .and_then(|artifacts| artifacts.recombine())
        };
        match (outcome(()), outcome(())) {
            (Ok(a), Ok(b)) => {
                assert_reports_bit_identical(&a, &b, "chaos rerun");
                prop_assert_eq!(a.stats.failures, b.stats.failures);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "typed errors must replay identically"),
            (a, b) => prop_assert!(
                false,
                "same seed diverged into {:?} vs {:?}",
                a.map(|r| r.stats.failures),
                b.map(|r| r.stats.failures)
            ),
        }
    }
}

/// A permanent fault on a *local-trace* job degrades gracefully: the
/// dependent subsets are voided (and counted), every other subset's
/// correction survives, and recombination still produces a report.
#[test]
fn permanent_local_fault_voids_only_dependent_subsets() {
    let circ = qaoa_maxcut(5, &ring_graph(5), &QaoaParams::seeded(1, 3));
    let measured: Vec<usize> = (0..5).collect();
    let cfg = QuTracerConfig::pairs().with_symmetric_subsets();
    let plan = QuTracer::plan(&circ, &measured, &cfg).expect("plannable workload");
    let clean = plan
        .execute(&executor())
        .unwrap()
        .recombine()
        .expect("fault-free run");

    let (_, key) = job_key(&plan, false).expect("plan has local-trace jobs");
    let chaos = ChaosRunner::new(executor(), ChaosConfig::quiet(1)).with_fault(key, Fault::Fatal);
    let report = plan
        .execute_fallible(&chaos, &RetryPolicy::none())
        .expect("fallible execution")
        .recombine()
        .expect("a local fault must degrade, not fail");

    let failures = report.stats.failures.expect("failures recorded");
    assert!(failures.failed_jobs >= 1, "the fatal job is failed");
    assert!(failures.voided_subsets >= 1, "its subsets are voided");
    assert!(
        report.locals.len() < clean.locals.len(),
        "voided subsets must drop locals: {} vs {}",
        report.locals.len(),
        clean.locals.len()
    );
    assert!(
        (report.distribution.total() - 1.0).abs() < 1e-9,
        "degraded report is still a distribution"
    );
}

/// A permanent fault on the *global* run is unrecoverable: recombination
/// fails with a typed `JobFailed` naming the global slot — never a panic,
/// never a silent wrong answer.
#[test]
fn global_fault_is_a_typed_job_failure() {
    let circ = vqe_ansatz(4, 2, 9);
    let measured: Vec<usize> = (0..4).collect();
    let plan = QuTracer::plan(&circ, &measured, &QuTracerConfig::single()).unwrap();
    let (global_slot, key) = job_key(&plan, true).expect("plan has a global job");

    let chaos = ChaosRunner::new(executor(), ChaosConfig::quiet(2)).with_fault(key, Fault::Fatal);
    let err = plan
        .execute_fallible(&chaos, &RetryPolicy::none())
        .expect("fallible execution itself succeeds")
        .recombine()
        .expect_err("losing the global run must be a typed failure");
    match err {
        ExecError::JobFailed { slot, error } => {
            assert_eq!(slot, global_slot, "the failure names the global slot");
            assert_eq!(error.kind, RunErrorKind::Backend);
            assert!(!error.transient);
        }
        other => panic!("expected JobFailed, got {other:?}"),
    }
}

/// A panicking job is quarantined by batch bisection: the panic never
/// escapes `execute_fallible`, the job fails typed as a panic, and the
/// rest of the batch degrades normally.
#[test]
fn panic_fault_is_quarantined_not_propagated() {
    let circ = qaoa_maxcut(4, &ring_graph(4), &QaoaParams::seeded(2, 7));
    let measured: Vec<usize> = (0..4).collect();
    let cfg = QuTracerConfig::pairs();
    let plan = QuTracer::plan(&circ, &measured, &cfg).unwrap();
    let (_, key) = job_key(&plan, false).expect("plan has local-trace jobs");

    let chaos = ChaosRunner::new(executor(), ChaosConfig::quiet(3)).with_fault(key, Fault::Panic);
    let artifacts = plan
        .execute_fallible(&chaos, &RetryPolicy::immediate(3))
        .expect("the panic must not unwind out of execute_fallible");
    let failed: Vec<_> = artifacts
        .slot_failures()
        .expect("fallible path records per-slot failures")
        .iter()
        .flatten()
        .collect();
    assert_eq!(failed.len(), 1, "exactly the panicking job failed");
    assert_eq!(failed[0].kind, RunErrorKind::Panic);
    assert!(!failed[0].transient, "panics are never retried");
    let stats = artifacts.failure_stats().unwrap();
    assert_eq!(stats.isolated_panics, 1);
    assert!(
        artifacts.recombine().is_ok(),
        "a quarantined local panic degrades instead of failing"
    );
}
