//! Finite-shot pipeline properties: the sampled staged pipeline
//! (`plan → execute_sampled → recombine`) must converge to the exact
//! pipeline as the shot budget grows, allocate budgets exactly, record
//! real shots in the overhead stats, and surface shape errors as typed
//! values instead of panics.

use proptest::prelude::*;
use qt_algos::{qaoa::QaoaParams, qaoa_maxcut, ring_graph, vqe_ansatz};
use qt_circuit::Circuit;
use qt_core::{ExecError, QuTracer, QuTracerConfig, ShotPolicy};
use qt_dist::hellinger_fidelity;
use qt_sim::{Backend, Executor, NoiseModel, ShotPlan};

fn executor() -> Executor {
    Executor::with_backend(
        NoiseModel::depolarizing(0.002, 0.02).with_readout(0.03),
        Backend::DensityMatrix,
    )
}

/// A random small paper workload (kept to sizes the exact DM engine
/// handles instantly, so the proptest sweep stays cheap).
fn arb_workload() -> impl Strategy<Value = (Circuit, Vec<usize>, QuTracerConfig)> {
    prop_oneof![
        (4usize..6, 1usize..3, 0u64..50).prop_map(|(n, layers, seed)| {
            (
                vqe_ansatz(n, layers, seed),
                (0..n).collect(),
                QuTracerConfig::single(),
            )
        }),
        (4usize..6, 1usize..3, 0u64..50).prop_map(|(n, p, seed)| {
            (
                qaoa_maxcut(n, &ring_graph(n), &QaoaParams::seeded(p, seed)),
                (0..n).collect(),
                QuTracerConfig::pairs().with_symmetric_subsets(),
            )
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline finite-shot property: as the per-program budget grows,
    /// the sampled pipeline's refined distribution converges to the exact
    /// pipeline's (Hellinger fidelity → 1), and it gets there through real
    /// sampled counts whose total the report records.
    #[test]
    fn sampled_pipeline_converges_to_exact((circ, measured, cfg) in arb_workload(), seed in 0u64..1000) {
        let exec = executor();
        let plan = QuTracer::plan(&circ, &measured, &cfg).expect("plannable workload");
        let exact = plan
            .execute(&exec)
            .expect("exact execution")
            .recombine()
            .expect("exact recombination");
        prop_assert!(exact.stats.total_shots.is_none(), "exact runs pay in densities");

        let mut fidelities = Vec::new();
        for per_program in [64usize, 65_536] {
            let budget = per_program * plan.n_programs();
            let shots = plan.allocate_shots(budget, ShotPolicy::Uniform).expect("budget funds the floor");
            let report = plan
                .execute_sampled(&exec, &shots, seed)
                .expect("sampled execution")
                .recombine()
                .expect("sampled recombination");
            prop_assert_eq!(report.stats.total_shots, Some(budget as u64));
            fidelities.push(hellinger_fidelity(&report.distribution, &exact.distribution));
        }
        prop_assert!(
            fidelities[1] > 0.995,
            "64k shots/program must track the exact pipeline: {fidelities:?}"
        );
        prop_assert!(
            fidelities[1] >= fidelities[0] - 0.02,
            "fidelity must not degrade with more shots: {fidelities:?}"
        );
    }

    /// Sampling is a pure function of the plan, the shot plan and the seed.
    #[test]
    fn sampled_pipeline_is_seed_stable((circ, measured, cfg) in arb_workload()) {
        let exec = executor();
        let plan = QuTracer::plan(&circ, &measured, &cfg).expect("plannable workload");
        let shots = plan.allocate_shots(2048 * plan.n_programs(), ShotPolicy::Uniform)
        .expect("budget funds the floor");
        let a = plan.execute_sampled(&exec, &shots, 5).unwrap().recombine().unwrap();
        let b = plan.execute_sampled(&exec, &shots, 5).unwrap().recombine().unwrap();
        let xs: Vec<(u64, f64)> = a.distribution.iter().collect();
        let ys: Vec<(u64, f64)> = b.distribution.iter().collect();
        prop_assert_eq!(xs.len(), ys.len(), "same seed, same support");
        for ((i, x), (j, y)) in xs.iter().zip(&ys) {
            prop_assert_eq!(i, j, "same seed, same support");
            prop_assert_eq!(x.to_bits(), y.to_bits(), "same seed, same distribution");
        }
    }
}

#[test]
fn uniform_allocation_splits_exactly() {
    let circ = vqe_ansatz(5, 2, 3);
    let measured: Vec<usize> = (0..5).collect();
    let plan = QuTracer::plan(&circ, &measured, &QuTracerConfig::single()).unwrap();
    let n = plan.n_programs();
    // A budget that does not divide evenly: largest-remainder must still
    // sum exactly, with every program within one shot of the others.
    let total = 10 * n + n / 2;
    let shots = plan.allocate_shots(total, ShotPolicy::Uniform).unwrap();
    assert_eq!(shots.n_jobs(), n);
    assert_eq!(shots.total_shots(), total as u64);
    let (min, max) = (
        shots.per_job().iter().min().unwrap(),
        shots.per_job().iter().max().unwrap(),
    );
    assert!(max - min <= 1, "uniform split spread {min}..{max}");
}

#[test]
fn fanout_weighted_allocation_favors_shared_programs() {
    // Symmetric QAOA pairs: one shared ensemble serves all 6 subsets, so
    // its programs carry fan-out ~6 while the global run has fan-out 1.
    let n = 6;
    let circ = qaoa_maxcut(n, &ring_graph(n), &QaoaParams::seeded(1, 5));
    let measured: Vec<usize> = (0..n).collect();
    let cfg = QuTracerConfig::pairs().with_symmetric_subsets();
    let plan = QuTracer::plan(&circ, &measured, &cfg).unwrap();
    assert!(plan.n_requests() > plan.n_programs(), "dedup happened");

    let total = 1000 * plan.n_requests();
    let weighted = plan
        .allocate_shots(total, ShotPolicy::WeightedByFanout)
        .unwrap();
    assert_eq!(weighted.total_shots(), total as u64);
    // Programs serving many requests get proportionally more than the
    // single-request ones.
    let (min, max) = (
        *weighted.per_job().iter().min().unwrap(),
        *weighted.per_job().iter().max().unwrap(),
    );
    assert!(
        max >= 5 * min.max(1),
        "fan-out weighting should spread allocations: {min}..{max}"
    );
    // Every program gets at least one shot when the budget affords it.
    assert!(min >= 1, "no zero-shot programs");
    let uniform = plan
        .allocate_shots(plan.n_programs(), ShotPolicy::Uniform)
        .unwrap();
    assert!(uniform.per_job().iter().all(|&s| s == 1));
}

#[test]
fn mismatched_shot_plans_are_typed_errors() {
    let circ = vqe_ansatz(4, 1, 7);
    let measured: Vec<usize> = (0..4).collect();
    let plan = QuTracer::plan(&circ, &measured, &QuTracerConfig::single()).unwrap();
    let exec = executor();
    let wrong = ShotPlan::uniform(plan.n_programs() + 3, 100);
    match plan.execute_sampled(&exec, &wrong, 1) {
        Err(ExecError::ShotPlanMismatch { expected, got }) => {
            assert_eq!(expected, plan.n_programs());
            assert_eq!(got, plan.n_programs() + 3);
        }
        other => panic!("expected ShotPlanMismatch, got {other:?}"),
    }
    let e = plan.execute_sampled(&exec, &wrong, 1).unwrap_err();
    assert!(e.to_string().contains("shot plan"), "{e}");

    // A zero-shot program would fabricate a uniform "measurement" that
    // recombination cannot tell from real data — rejected up front.
    let mut per_job = vec![100usize; plan.n_programs()];
    per_job[1] = 0;
    match plan.execute_sampled(&exec, &ShotPlan::from_shots(per_job), 1) {
        Err(ExecError::EmptyShotAllocation { slot }) => assert_eq!(slot, 1),
        other => panic!("expected EmptyShotAllocation, got {other:?}"),
    }
}

#[test]
fn sampled_artifacts_expose_per_program_shots() {
    let circ = vqe_ansatz(4, 1, 2);
    let measured: Vec<usize> = (0..4).collect();
    let plan = QuTracer::plan(&circ, &measured, &QuTracerConfig::single()).unwrap();
    let exec = executor();
    let shots = plan
        .allocate_shots(500 * plan.n_programs(), ShotPolicy::Uniform)
        .unwrap();
    let artifacts = plan.execute_sampled(&exec, &shots, 3).unwrap();
    let per_slot = artifacts
        .sampled_shots()
        .expect("sampled run records shots");
    assert_eq!(per_slot.len(), plan.n_programs());
    for (i, &s) in per_slot.iter().enumerate() {
        assert_eq!(s, shots.shots(i) as u64, "slot {i}");
    }
    assert_eq!(artifacts.total_sampled_shots(), Some(shots.total_shots()));
    // The exact path records nothing.
    assert_eq!(plan.execute(&exec).unwrap().total_sampled_shots(), None);
}
