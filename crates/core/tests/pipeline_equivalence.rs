//! The staged pipeline must be indistinguishable from the serial reference:
//! `plan → execute → recombine` reproduces the serial per-subset oracle
//! ([`legacy_oracle`], inlined below) **bit for bit** (distribution,
//! locals, stats) across random workloads, subset sizes, and noise models
//! — plus unit tests for plan-level deduplication, order-independent stats
//! accounting, and the typed error surface.

use proptest::prelude::*;
use qt_algos::{bernstein_vazirani, qaoa::QaoaParams, qaoa_maxcut, ring_graph, vqe_ansatz};
use qt_baselines::OverheadStats;
use qt_circuit::Circuit;
use qt_core::{
    run_qutracer, trace_pair, trace_single, PlanError, QuTracer, QuTracerConfig, QuTracerReport,
    SkippedSubset, TraceOutcome,
};
use qt_dist::{recombine, Distribution};
use qt_sim::{Backend, Executor, NoiseModel, Program, ReadoutModel, Runner};

/// The pre-pipeline reference implementation, preserved verbatim as the
/// equivalence oracle: traces every subset serially against the runner,
/// one small batch at a time. This used to ship as
/// `qt_core::run_qutracer_legacy`; it now lives only here, where its sole
/// remaining job — pinning down the pipeline's exact semantics — is done.
fn legacy_oracle<R: Runner>(
    runner: &R,
    circuit: &Circuit,
    measured: &[usize],
    config: &QuTracerConfig,
) -> QuTracerReport {
    assert!(
        config.subset_size == 1 || config.subset_size == 2,
        "subset size must be 1 or 2"
    );
    let program = Program::from_circuit(circuit);
    let global_out = runner.run(&program, measured);
    let global = global_out.dist.clone();

    // Enumerate subsets as positions into `measured` (the shapes
    // `QuTracer::plan` produces: singles, cyclic pairs, or disjoint pairs).
    let subsets: Vec<Vec<usize>> = if config.subset_size == 1 {
        (0..measured.len()).map(|p| vec![p]).collect()
    } else if config.symmetric_subsets {
        (0..measured.len())
            .map(|p| vec![p, (p + 1) % measured.len()])
            .collect()
    } else {
        let mut v = Vec::new();
        let mut start = 0;
        while start < measured.len() {
            let end = (start + 2).min(measured.len());
            let lo = end.saturating_sub(2);
            v.push((lo..end).collect());
            start = end;
        }
        v
    };

    let mut locals: Vec<(Distribution, Vec<usize>)> = Vec::new();
    let mut skipped: Vec<SkippedSubset> = Vec::new();
    let mut subset_stats = Vec::new();
    let mut shared: Option<TraceOutcome> = None;
    let skip = |skipped: &mut Vec<SkippedSubset>,
                qubits: Vec<usize>,
                positions: &[usize],
                e: qt_circuit::passes::UnsupportedCoupling| {
        skipped.push(SkippedSubset {
            qubits: qubits.clone(),
            positions: positions.to_vec(),
            reason: PlanError::coupling(qubits, e),
        });
    };

    for positions in &subsets {
        let qubits: Vec<usize> = positions.iter().map(|&p| measured[p]).collect();
        let outcome = if config.symmetric_subsets && config.subset_size == 2 {
            if shared.is_none() {
                shared = match trace_pair(runner, circuit, [qubits[0], qubits[1]], &config.trace) {
                    Ok(o) => Some(o),
                    Err(e) => {
                        skip(&mut skipped, qubits, positions, e);
                        continue;
                    }
                };
            }
            Some(shared.clone().expect("set above"))
        } else {
            let traced = if config.subset_size == 1 {
                trace_single(runner, circuit, qubits[0], &config.trace)
            } else {
                trace_pair(runner, circuit, [qubits[0], qubits[1]], &config.trace)
            };
            match traced {
                Ok(o) => Some(o),
                Err(e) => {
                    skip(&mut skipped, qubits.clone(), positions, e);
                    None
                }
            }
        };
        if let Some(o) = outcome {
            if !(config.symmetric_subsets && !locals.is_empty() && config.subset_size == 2) {
                subset_stats.push(o.stats);
            }
            locals.push((o.local, positions.clone()));
        }
    }

    let refined =
        recombine::try_bayesian_update_all(&global, locals.iter().map(|(d, p)| (d, p.as_slice())))
            .expect("oracle locals match their planned positions");
    let n_mitigation_circuits: usize = subset_stats.iter().map(|s| s.n_circuits).sum();
    let total_2q: usize = subset_stats.iter().map(|s| s.total_two_qubit_gates).sum();
    QuTracerReport {
        distribution: refined,
        global,
        locals,
        skipped,
        stats: OverheadStats {
            n_circuits: 1 + n_mitigation_circuits,
            normalized_shots: n_mitigation_circuits as f64,
            avg_two_qubit_gates: if n_mitigation_circuits > 0 {
                total_2q as f64 / n_mitigation_circuits as f64
            } else {
                0.0
            },
            global_two_qubit_gates: global_out.two_qubit_gates,
            batch: None,
            total_shots: None,
            round_shots: None,
            engine_mix: None,
            failures: None,
        },
        subset_stats,
    }
}

/// Bitwise equality of two distributions' nonzero `(outcome, mass)`
/// streams — representation-independent and exact.
fn assert_dist_bits(a: &Distribution, b: &Distribution, what: &str) {
    assert_eq!(a.n_bits(), b.n_bits(), "{what}: width");
    let xs: Vec<(u64, f64)> = a.iter().collect();
    let ys: Vec<(u64, f64)> = b.iter().collect();
    assert_eq!(xs.len(), ys.len(), "{what}: support size");
    for ((i, x), (j, y)) in xs.iter().zip(&ys) {
        assert_eq!(i, j, "{what}: support index");
        assert_bits(*x, *y, &format!("{what}[{i}]"));
    }
}

fn assert_bits(a: f64, b: f64, what: &str) {
    assert!(
        a.to_bits() == b.to_bits(),
        "{what}: {a:?} != {b:?} (bitwise)"
    );
}

/// Bit-for-bit equality of two framework reports.
fn assert_reports_identical(pipeline: &QuTracerReport, legacy: &QuTracerReport) {
    assert_dist_bits(&pipeline.distribution, &legacy.distribution, "distribution");
    assert_dist_bits(&pipeline.global, &legacy.global, "global");
    assert_eq!(pipeline.locals.len(), legacy.locals.len(), "locals count");
    for (i, ((dp, pp), (dl, pl))) in pipeline.locals.iter().zip(&legacy.locals).enumerate() {
        assert_eq!(pp, pl, "locals[{i}] positions");
        assert_dist_bits(dp, dl, &format!("locals[{i}]"));
    }
    assert_eq!(pipeline.subset_stats, legacy.subset_stats, "subset stats");
    assert_eq!(pipeline.stats.n_circuits, legacy.stats.n_circuits);
    assert_bits(
        pipeline.stats.normalized_shots,
        legacy.stats.normalized_shots,
        "normalized_shots",
    );
    assert_bits(
        pipeline.stats.avg_two_qubit_gates,
        legacy.stats.avg_two_qubit_gates,
        "avg_two_qubit_gates",
    );
    assert_eq!(
        pipeline.stats.global_two_qubit_gates,
        legacy.stats.global_two_qubit_gates
    );
    assert_eq!(pipeline.skipped.len(), legacy.skipped.len(), "skipped");
    for (a, b) in pipeline.skipped.iter().zip(&legacy.skipped) {
        assert_eq!(a.qubits, b.qubits);
    }
}

/// A random paper workload with its measured register.
fn arb_workload() -> impl Strategy<Value = (Circuit, Vec<usize>)> {
    prop_oneof![
        // VQE ansatz: n, layers, seed.
        (4usize..6, 1usize..3, 0u64..100)
            .prop_map(|(n, layers, seed)| { (vqe_ansatz(n, layers, seed), (0..n).collect()) }),
        // QAOA on a ring: n, p, seed.
        (4usize..6, 1usize..3, 0u64..100).prop_map(|(n, p, seed)| {
            (
                qaoa_maxcut(n, &ring_graph(n), &QaoaParams::seeded(p, seed)),
                (0..n).collect(),
            )
        }),
        // Bernstein–Vazirani: n, secret.
        (4usize..6, 0u64..32).prop_map(|(n, secret)| {
            (
                bernstein_vazirani(n, secret & ((1 << n) - 1)),
                (0..n).collect(),
            )
        }),
    ]
}

fn arb_config() -> impl Strategy<Value = QuTracerConfig> {
    (
        1usize..3,
        prop_oneof![Just(false), Just(true)],
        prop_oneof![Just(false), Just(true)],
        prop_oneof![Just(None), (0usize..3).prop_map(Some)],
    )
        .prop_map(|(size, symmetric, traceback, checked)| {
            let mut cfg = if size == 1 {
                QuTracerConfig::single()
            } else {
                QuTracerConfig::pairs()
            };
            if symmetric {
                cfg = cfg.with_symmetric_subsets();
            }
            cfg.trace.state_traceback = traceback;
            cfg.trace.checked_layers = checked;
            cfg
        })
}

fn arb_noise() -> impl Strategy<Value = NoiseModel> {
    prop_oneof![
        Just(NoiseModel::ideal()),
        (0.0005f64..0.004, 0.005f64..0.04, 0.01f64..0.06)
            .prop_map(|(p1, p2, ro)| { NoiseModel::depolarizing(p1, p2).with_readout(ro) }),
        (
            0.001f64..0.003,
            0.01f64..0.03,
            0.01f64..0.04,
            0.005f64..0.03
        )
            .prop_map(|(p1, p2, ro, xt)| {
                NoiseModel::depolarizing(p1, p2)
                    .with_readout_model(ReadoutModel::with_crosstalk(ro, xt))
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline acceptance property: batched-dedup pipeline ==
    /// serial legacy path, bit for bit.
    #[test]
    fn pipeline_reproduces_legacy_bit_for_bit(
        (circ, measured) in arb_workload(),
        cfg in arb_config(),
        noise in arb_noise(),
    ) {
        let exec = Executor::with_backend(noise, Backend::DensityMatrix);
        let legacy = legacy_oracle(&exec, &circ, &measured, &cfg);
        let report = run_qutracer(&exec, &circ, &measured, &cfg);
        assert_reports_identical(&report, &legacy);
    }
}

#[test]
fn symmetric_subsets_dedup_to_one_executed_ensemble() {
    // 6 cyclic pairs on a symmetric QAOA ring must share a single walk:
    // the batch contains the representative's programs exactly once.
    let n = 6;
    let circ = qaoa_maxcut(n, &ring_graph(n), &QaoaParams::seeded(1, 5));
    let measured: Vec<usize> = (0..n).collect();
    let cfg = QuTracerConfig::pairs().with_symmetric_subsets();
    let plan = QuTracer::plan(&circ, &measured, &cfg).unwrap();

    let summaries = plan.subset_summaries();
    assert_eq!(summaries.len(), n, "all cyclic pairs planned");
    let distinct: Vec<_> = summaries.iter().filter(|s| !s.shared).collect();
    assert_eq!(distinct.len(), 1, "one distinct (representative) walk");
    let k = distinct[0].n_requests;
    assert!(k > 0);
    // Every pair logically requests the representative's k programs…
    assert_eq!(plan.n_requests(), 1 + n * k);
    // …but the executed batch holds them once.
    assert_eq!(plan.n_programs(), 1 + k);

    // And the fan-out reproduces the legacy symmetric path exactly.
    let exec = Executor::with_backend(
        NoiseModel::depolarizing(0.002, 0.02).with_readout(0.03),
        Backend::DensityMatrix,
    );
    let report = plan.execute(&exec).unwrap().recombine().unwrap();
    let legacy = legacy_oracle(&exec, &circ, &measured, &cfg);
    assert_reports_identical(&report, &legacy);
}

#[test]
fn stats_derive_from_plan_and_count_shared_ensembles_once() {
    // Regression for the symmetric-subsets stats accounting: the old
    // `!(symmetric && !locals.is_empty() && subset_size == 2)` guard made
    // `OverheadStats` an artifact of iteration order. Plan-derived stats
    // count every distinct walk exactly once.
    let n = 6;
    let circ = qaoa_maxcut(n, &ring_graph(n), &QaoaParams::seeded(1, 9));
    let measured: Vec<usize> = (0..n).collect();
    let cfg = QuTracerConfig::pairs().with_symmetric_subsets();
    let exec = Executor::with_backend(
        NoiseModel::depolarizing(0.002, 0.02),
        Backend::DensityMatrix,
    );

    let plan = QuTracer::plan(&circ, &measured, &cfg).unwrap();
    let report = plan.execute(&exec).unwrap().recombine().unwrap();

    // One shared walk → one subset_stats entry, not six.
    assert_eq!(report.subset_stats.len(), 1);
    assert_eq!(
        report.stats.n_circuits,
        1 + report.subset_stats[0].n_circuits,
        "n_circuits counts the shared ensemble once"
    );
    // The plan preview agrees with the executed accounting on a plain
    // (non-transpiling) executor.
    let preview = plan.stats();
    assert_eq!(preview.n_circuits, report.stats.n_circuits);
    assert_eq!(
        preview.global_two_qubit_gates,
        report.stats.global_two_qubit_gates
    );
    assert!((preview.avg_two_qubit_gates - report.stats.avg_two_qubit_gates).abs() < 1e-12);

    // Non-symmetric pairs: one stats entry per disjoint pair.
    let plain = QuTracer::plan(&circ, &measured, &QuTracerConfig::pairs()).unwrap();
    let plain_report = plain.execute(&exec).unwrap().recombine().unwrap();
    assert_eq!(plain_report.subset_stats.len(), n / 2);
}

#[test]
fn plan_records_execution_trie_stats() {
    // The plan's overhead summary carries the prefix-sharing preview: a
    // QSPC ensemble batch shares most of its gate stream, and the
    // executed report surfaces the same numbers.
    let n = 6;
    let circ = qaoa_maxcut(n, &ring_graph(n), &QaoaParams::seeded(3, 9));
    let measured: Vec<usize> = (0..n).collect();
    let cfg = QuTracerConfig::pairs().with_symmetric_subsets();
    let plan = QuTracer::plan(&circ, &measured, &cfg).unwrap();

    let batch = plan.batch_stats();
    assert_eq!(batch.n_jobs, plan.n_programs());
    assert!(batch.unique_gates < batch.request_gates);
    assert!(
        batch.shared_gate_fraction() > 0.3,
        "ensemble batches share substantial prefix work: {batch:?}"
    );
    assert_eq!(plan.stats().batch, Some(batch), "preview carries the stats");

    let exec = Executor::with_backend(
        NoiseModel::depolarizing(0.002, 0.02),
        Backend::DensityMatrix,
    );
    let report = plan.execute(&exec).unwrap().recombine().unwrap();
    assert_eq!(report.stats.batch, Some(batch), "report carries the stats");
    // The serial legacy path makes no batching claim.
    let legacy = legacy_oracle(&exec, &circ, &measured, &cfg);
    assert_eq!(legacy.stats.batch, None);
}

#[test]
fn plan_rejects_bad_subset_size_with_typed_error() {
    let circ = vqe_ansatz(4, 1, 1);
    let mut cfg = QuTracerConfig::single();
    cfg.subset_size = 3;
    let err = QuTracer::plan(&circ, &[0, 1, 2, 3], &cfg).unwrap_err();
    assert_eq!(err, PlanError::UnsupportedSubsetSize { size: 3 });

    let err = QuTracer::plan(&circ, &[0], &QuTracerConfig::pairs()).unwrap_err();
    assert_eq!(err, PlanError::MeasuredTooSmall { needed: 2, got: 1 });
}

#[test]
fn skipped_subsets_keep_their_typed_reason() {
    // A CX *target* inside the subset has no Z check: qubit 1 must be
    // skipped with an UnsupportedCoupling reason naming it, while qubit 0
    // (the control) stays traceable.
    let mut circ = Circuit::new(2);
    circ.h(0).cx(0, 1);
    let plan = QuTracer::plan(&circ, &[0, 1], &QuTracerConfig::single()).unwrap();
    assert_eq!(plan.n_subsets(), 1);
    assert_eq!(plan.skipped().len(), 1);
    let skip = &plan.skipped()[0];
    assert_eq!(skip.qubits, vec![1]);
    assert!(skip.is_coupling(), "reason: {:?}", skip.reason);
    match &skip.reason {
        PlanError::UnsupportedCoupling { subset, .. } => assert_eq!(subset, &vec![1]),
        other => panic!("wrong reason: {other:?}"),
    }

    // The reason survives into the executed report.
    let exec = Executor::with_backend(NoiseModel::ideal(), Backend::DensityMatrix);
    let report = plan.execute(&exec).unwrap().recombine().unwrap();
    assert_eq!(report.skipped.len(), 1);
    assert!(report.skipped[0].is_coupling());
}

#[test]
fn artifacts_from_wrong_plan_are_rejected() {
    use qt_core::ExecError;
    let circ = vqe_ansatz(4, 1, 3);
    let measured = [0usize, 1, 2, 3];
    let plan = QuTracer::plan(&circ, &measured, &QuTracerConfig::single()).unwrap();

    // A runner that silently drops results violates the contract and is
    // caught instead of panicking or mis-zipping.
    struct Truncating(Executor);
    impl qt_sim::Runner for Truncating {
        fn run(&self, p: &qt_sim::Program, m: &[usize]) -> qt_sim::RunOutput {
            self.0.run(p, m)
        }
        fn run_batch(&self, jobs: &[qt_sim::BatchJob]) -> Vec<qt_sim::RunOutput> {
            let mut outs = self.0.run_batch(jobs);
            outs.pop();
            outs
        }
    }
    let bad = Truncating(Executor::with_backend(
        NoiseModel::ideal(),
        Backend::DensityMatrix,
    ));
    match plan.execute(&bad) {
        Err(ExecError::ResultCountMismatch { expected, got }) => {
            assert_eq!(expected, got + 1);
        }
        other => panic!("expected ResultCountMismatch, got {other:?}"),
    }
}

#[test]
fn device_executor_pipeline_matches_legacy() {
    // The transpiling runner exercises post-transpilation gate counts and
    // its own batch fan-out; the pipeline must still agree bit for bit.
    let circ = bernstein_vazirani(4, 0b1011);
    let measured: Vec<usize> = (0..4).collect();
    let exec = qt_device::DeviceExecutor::new(qt_device::Device::fake_hanoi());
    let cfg = QuTracerConfig::single();
    let legacy = legacy_oracle(&exec, &circ, &measured, &cfg);
    let report = run_qutracer(&exec, &circ, &measured, &cfg);
    assert_reports_identical(&report, &legacy);
}

#[test]
fn report_records_the_engine_mix() {
    // The recombined report and the plan-side preview both record which
    // simulation engines the batch resolved to, and they agree.
    let n = 6;
    let circ = qaoa_maxcut(n, &ring_graph(n), &QaoaParams::seeded(5, 9));
    let measured: Vec<usize> = (0..n).collect();
    let cfg = QuTracerConfig::pairs();
    let exec = Executor::with_backend(
        NoiseModel::depolarizing(0.002, 0.02),
        Backend::DensityMatrix,
    );

    let plan = QuTracer::plan(&circ, &measured, &cfg).unwrap();
    let report = plan.execute(&exec).unwrap().recombine().unwrap();
    let mix = report
        .stats
        .engine_mix
        .as_ref()
        .expect("Executor reports its engine mix");
    let total: usize = mix.iter().map(|(_, c)| c).sum();
    assert_eq!(total, plan.n_programs(), "every planned job is accounted");
    assert_eq!(mix.len(), 1, "forced backend resolves uniformly: {mix:?}");
    assert_eq!(mix[0].0, "density-matrix");

    // Plan-time preview (no execution) agrees with the executed record.
    let preview = plan.stats_for(&exec);
    assert_eq!(preview.engine_mix, report.stats.engine_mix);
    assert_eq!(preview.n_circuits, report.stats.n_circuits);
}
