//! The redesign's headline capability: a 32-qubit measured register runs
//! the full plan → execute → recombine pipeline without any 2^32-sized
//! buffer. Before the sparse distribution model this was impossible — the
//! executor asserted `measured.len() <= MAX_MEASURED_BITS` on every path
//! and recombination materialized dense `Vec<f64>` tables. Now only the
//! dense-table paths keep the cap, and everything from engine readout to
//! Bayesian recombination streams over nonzero outcomes.

use qt_circuit::Circuit;
use qt_core::{QuTracer, QuTracerConfig};
use qt_sim::{Executor, NoiseModel};

/// 32 qubits, low entanglement: Ry layers on the first four qubits with a
/// CZ chain across the whole register. The CZ chain is diagonal, so the
/// state's support never exceeds the 2^4 patterns of the rotated qubits —
/// exactly the shape the sparse-statevector engine admits at any width.
fn wide_low_entanglement() -> Circuit {
    let n = 32;
    let mut c = Circuit::new(n);
    for q in 0..4 {
        c.ry(q, 0.4 + 0.2 * q as f64);
    }
    for q in 0..n - 1 {
        c.cz(q, q + 1);
    }
    for q in 0..4 {
        c.ry(q, -0.3 + 0.1 * q as f64);
    }
    c
}

#[test]
fn thirty_two_qubit_register_runs_the_full_pipeline_sparsely() {
    let circ = wide_low_entanglement();
    let measured: Vec<usize> = (0..32).collect();
    let exec = Executor::new(NoiseModel::ideal());

    let plan = QuTracer::plan(&circ, &measured, &QuTracerConfig::single())
        .expect("diagonal couplings are traceable");
    let report = plan
        .execute(&exec)
        .expect("32-qubit execution")
        .recombine()
        .expect("32-qubit recombination");

    // The global job rode the sparse engine — nothing dense can represent
    // a 32-bit outcome space.
    let mix = report
        .stats
        .engine_mix
        .as_ref()
        .expect("executor reports its engine mix");
    assert!(
        mix.iter().any(|(name, _)| name == "sparse-statevector"),
        "expected a sparse-statevector job in {mix:?}"
    );

    // The refined distribution is a genuine 32-bit-outcome distribution …
    assert_eq!(report.distribution.n_bits(), 32);
    assert!((report.distribution.total() - 1.0).abs() < 1e-9);
    // … whose support stayed at the 2^4 rotated patterns: no dense 2^32
    // table was ever built, and densifying now would be refused.
    assert!(
        report.distribution.support_len() <= 16,
        "support blew up: {}",
        report.distribution.support_len()
    );
    assert!(!report.distribution.is_dense());
    assert!(report.distribution.densify().is_err());
    for (idx, p) in report.distribution.iter() {
        assert!(idx < 16, "outcome {idx:#x} outside the rotated subspace");
        assert!(p > 0.0);
    }

    // Ideal noise: recombination must agree with the (sparse) global run
    // on every marginal it refined.
    for pos in [0usize, 1, 2, 3, 31] {
        let refined = report.distribution.marginal(&[pos]);
        let global = report.global.marginal(&[pos]);
        assert!(
            (refined.prob(0) - global.prob(0)).abs() < 1e-9,
            "qubit {pos}: {} vs {}",
            refined.prob(0),
            global.prob(0)
        );
    }
}
