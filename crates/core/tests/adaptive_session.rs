//! Adaptive-session properties: the two-round pilot/Neyman schedule of
//! `ShotPolicy::Adaptive` must collapse to the single-round uniform
//! pipeline at the degenerate pilot fractions (bit-for-bit), produce the
//! same schedule and report regardless of seed replay, batch policy or
//! thread budget, converge to the uniform allocation when every program
//! has the same sampling dispersion, and degrade typed — never panic —
//! when chaos hits the pilot round.

use proptest::prelude::*;
use qt_algos::{qaoa::QaoaParams, qaoa_maxcut, ring_graph, vqe_ansatz};
use qt_circuit::Circuit;
use qt_core::{
    neyman_weights, MitigationStrategy, QuTracer, QuTracerConfig, QuTracerReport, RetryPolicy,
    ShotPolicy,
};
use qt_sim::{Backend, BatchPolicy, ChaosConfig, ChaosRunner, Executor, NoiseModel};

fn executor() -> Executor {
    Executor::with_backend(
        NoiseModel::depolarizing(0.002, 0.02).with_readout(0.03),
        Backend::DensityMatrix,
    )
}

/// A random small paper workload (sizes the exact DM engine handles
/// instantly, so the property sweep stays cheap).
fn arb_workload() -> impl Strategy<Value = (Circuit, Vec<usize>, QuTracerConfig)> {
    prop_oneof![
        (4usize..6, 1usize..3, 0u64..50).prop_map(|(n, layers, seed)| {
            (
                vqe_ansatz(n, layers, seed),
                (0..n).collect(),
                QuTracerConfig::single(),
            )
        }),
        (4usize..6, 1usize..3, 0u64..50).prop_map(|(n, p, seed)| {
            (
                qaoa_maxcut(n, &ring_graph(n), &QaoaParams::seeded(p, seed)),
                (0..n).collect(),
                QuTracerConfig::pairs().with_symmetric_subsets(),
            )
        }),
    ]
}

fn assert_reports_bit_identical(a: &QuTracerReport, b: &QuTracerReport, what: &str) {
    let xs: Vec<(u64, u64)> = a
        .distribution
        .iter()
        .map(|(i, p)| (i, p.to_bits()))
        .collect();
    let ys: Vec<(u64, u64)> = b
        .distribution
        .iter()
        .map(|(i, p)| (i, p.to_bits()))
        .collect();
    assert_eq!(xs, ys, "{what}: refined distributions must match bitwise");
    assert_eq!(
        a.stats.total_shots, b.stats.total_shots,
        "{what}: shot totals must match"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Degenerate pilot fractions are not "almost" the single-round
    /// pipeline — they ARE it. A pilot of 0 shots (pf=0) or a final round
    /// of 0 shots (pf=1) cannot fund two genuine rounds, so the session
    /// must fall back to the raw caller seed and reproduce the uniform
    /// single-round report bit-for-bit, with no per-round ledger.
    #[test]
    fn adaptive_pf_zero_and_one_are_bitwise_single_round(
        (circ, measured, cfg) in arb_workload(),
        seed in 0u64..1000,
    ) {
        let exec = executor();
        let plan = QuTracer::plan(&circ, &measured, &cfg).expect("plannable workload");
        let total = 2048 * plan.n_programs();

        let uniform = plan
            .run_sampled(&exec, total, ShotPolicy::Uniform, seed)
            .expect("uniform single-round run");
        // The session surface must itself agree with the legacy
        // allocate-then-execute chain before we compare pilots against it.
        let legacy = plan
            .execute_sampled(
                &exec,
                &plan.allocate_shots(total, ShotPolicy::Uniform).expect("funded budget"),
                seed,
            )
            .expect("legacy sampled execution")
            .recombine()
            .expect("legacy recombination");
        assert_reports_bit_identical(&uniform, &legacy, "session vs legacy chain");

        for pf in [0.0, 1.0] {
            let adaptive = plan
                .run_sampled(&exec, total, ShotPolicy::Adaptive { pilot_fraction: pf }, seed)
                .expect("degenerate adaptive run");
            assert_reports_bit_identical(&adaptive, &uniform, "degenerate adaptive vs uniform");
            prop_assert_eq!(
                adaptive.stats.round_shots.as_deref(),
                None,
                "a collapsed session must not report a round ledger (pf={})",
                pf
            );
        }
    }

    /// The adaptive schedule is a pure function of (plan, budget, seed):
    /// replaying the same seed reproduces the report bit-for-bit, and so
    /// does changing how the batch is *executed* — per-job fan-out versus
    /// trie sharing, full thread budget versus a single worker. Execution
    /// strategy must never leak into the pilot dispersions or the Neyman
    /// split.
    #[test]
    fn adaptive_schedule_is_seed_stable_and_thread_invariant(
        (circ, measured, cfg) in arb_workload(),
        seed in 0u64..1000,
    ) {
        let plan = QuTracer::plan(&circ, &measured, &cfg).expect("plannable workload");
        let total = 2048 * plan.n_programs();
        let policy = ShotPolicy::Adaptive { pilot_fraction: 0.25 };

        let baseline = plan
            .run_sampled(&executor(), total, policy, seed)
            .expect("adaptive run");
        let rounds = baseline
            .stats
            .round_shots
            .clone()
            .expect("a funded adaptive session runs two genuine rounds");
        prop_assert_eq!(rounds.len(), 2);
        prop_assert_eq!(rounds.iter().sum::<u64>(), total as u64);

        let replay = plan
            .run_sampled(&executor(), total, policy, seed)
            .expect("adaptive replay");
        assert_reports_bit_identical(&replay, &baseline, "seed replay");
        prop_assert_eq!(replay.stats.round_shots.as_deref(), Some(rounds.as_slice()));

        let per_job = executor()
            .with_batch_policy(BatchPolicy::PerJob)
            .expect("per-job policy is always valid");
        let via_per_job = plan
            .run_sampled(&per_job, total, policy, seed)
            .expect("adaptive run under per-job batching");
        assert_reports_bit_identical(&via_per_job, &baseline, "per-job batching");
        prop_assert_eq!(via_per_job.stats.round_shots.as_deref(), Some(rounds.as_slice()));

        let single_thread = Executor::with_backend(
            NoiseModel::depolarizing(0.002, 0.02).with_readout(0.03),
            Backend::DensityMatrix.with_thread_budget(1),
        );
        let via_one_thread = plan
            .run_sampled(&single_thread, total, policy, seed)
            .expect("adaptive run on one thread");
        assert_reports_bit_identical(&via_one_thread, &baseline, "single-thread budget");
        prop_assert_eq!(via_one_thread.stats.round_shots.as_deref(), Some(rounds.as_slice()));
    }

    /// Neyman with nothing to exploit is uniform: when every pilot
    /// dispersion is the same, `neyman_weights` must hand back equal
    /// weights and the plan's budget allocator must reproduce the uniform
    /// apportionment exactly — same integer shot counts, same total.
    #[test]
    fn uniform_dispersions_collapse_neyman_to_uniform(
        (circ, measured, cfg) in arb_workload(),
        dispersion in 0.01f64..1.0,
        total in 100usize..100_000,
    ) {
        let plan = QuTracer::plan(&circ, &measured, &cfg).expect("plannable workload");
        let n = plan.n_jobs();

        let weights = neyman_weights(&vec![Some(dispersion); n]);
        prop_assert_eq!(weights.len(), n);
        for &w in &weights {
            prop_assert!(
                (w - weights[0]).abs() < 1e-12,
                "equal dispersions must yield equal weights: {:?}",
                weights
            );
        }

        let neyman = plan.allocate_budget(total, &weights);
        let uniform = plan.allocate_budget(total, &vec![1.0; n]);
        prop_assert_eq!(&neyman, &uniform, "equal-weight Neyman must equal uniform");
        prop_assert_eq!(neyman.iter().sum::<usize>(), total, "allocation must spend the budget exactly");
    }

    /// Chaos during an adaptive session — pilot round included — is
    /// absorbed by the fallible surface: the outcome is a (possibly
    /// degraded) report or a typed error, deterministic under seed replay,
    /// and never a panic. The pilot's variance estimates may be built from
    /// partial data; that must degrade the schedule, not the process.
    #[test]
    fn chaos_in_the_pilot_degrades_typed_and_never_panics(
        (circ, measured, cfg) in arb_workload(),
        seed in 0u64..500,
        chaos_seed in 1u64..500,
    ) {
        let plan = QuTracer::plan(&circ, &measured, &cfg).expect("plannable workload");
        let total = 1024 * plan.n_programs();
        // Unrecoverable mix on purpose: fatals and panics included, so
        // some schedules void pilot jobs and some kill the session.
        let config = ChaosConfig {
            seed: chaos_seed,
            transient_rate: 0.3,
            fatal_rate: 0.15,
            panic_rate: 0.1,
            corrupt_rate: 0.15,
            max_transient_attempts: 2,
            ..ChaosConfig::default()
        };
        let outcome = |_: ()| {
            let chaos = ChaosRunner::new(executor(), config);
            plan.run_sampled_fallible(
                &chaos,
                total,
                ShotPolicy::Adaptive { pilot_fraction: 0.25 },
                seed,
                &RetryPolicy::immediate(2),
            )
        };
        match (outcome(()), outcome(())) {
            (Ok(a), Ok(b)) => {
                assert_reports_bit_identical(&a, &b, "chaotic adaptive rerun");
                // Voided jobs forfeit their shots, so degraded sessions may
                // record fewer than the budget — but never more.
                let spent = a.stats.total_shots.expect("sampled sessions record shots");
                prop_assert!(
                    spent <= total as u64,
                    "recorded shots {} exceed the {} budget",
                    spent,
                    total
                );
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "typed errors must replay identically"),
            (a, b) => prop_assert!(
                false,
                "same seed diverged into {:?} vs {:?}",
                a.map(|r| r.stats.failures),
                b.map(|r| r.stats.failures)
            ),
        }
    }
}
