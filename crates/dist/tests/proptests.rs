//! Representation-independence properties: every qt-dist operation must
//! produce **bit-identical** results whether its operands are stored
//! sparsely or densely. The tests build the same logical distribution (or
//! count table) under a density threshold of `0.0` (everything densifies)
//! and `2.0` (everything stays sparse) and compare the nonzero
//! `(outcome, mass)` streams bitwise, so a divergence in either arm's
//! traversal order or arithmetic fails loudly.

use proptest::prelude::*;
use qt_dist::{hellinger_fidelity, hellinger_fidelity_sampled, recombine, Counts, Distribution};

/// The same probabilities as a forced-dense and a forced-sparse
/// distribution (thresholds straddling every real density).
fn both_arms(n_bits: usize, probs: Vec<f64>) -> (Distribution, Distribution) {
    let dense = Distribution::try_from_probs(n_bits, probs.clone())
        .expect("within the dense cap")
        .with_density_threshold(0.0);
    let sparse = Distribution::try_from_probs(n_bits, probs)
        .expect("within the dense cap")
        .with_density_threshold(2.0);
    assert!(dense.is_dense() && !sparse.is_dense(), "arms must differ");
    (dense, sparse)
}

fn both_count_arms(n_bits: usize, counts: Vec<u64>) -> (Counts, Counts) {
    let dense = Counts::try_from_counts(n_bits, counts.clone())
        .expect("within the dense cap")
        .with_density_threshold(0.0);
    let sparse = Counts::try_from_counts(n_bits, counts)
        .expect("within the dense cap")
        .with_density_threshold(2.0);
    assert!(dense.is_dense() && !sparse.is_dense(), "arms must differ");
    (dense, sparse)
}

/// Bitwise equality of nonzero streams.
fn assert_identical(a: &Distribution, b: &Distribution, what: &str) {
    assert_eq!(a.n_bits(), b.n_bits(), "{what}: width");
    let xs: Vec<(u64, f64)> = a.iter().collect();
    let ys: Vec<(u64, f64)> = b.iter().collect();
    assert_eq!(xs.len(), ys.len(), "{what}: support size");
    for ((i, x), (j, y)) in xs.iter().zip(&ys) {
        assert_eq!(i, j, "{what}: support index");
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: outcome {i}: {x:?} != {y:?}"
        );
    }
}

/// Mixed-density probability vectors: some exact zeros, some mass.
fn arb_probs(n_bits: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![Just(0.0), Just(0.0), 0.001..1.0f64],
        1 << n_bits,
    )
    .prop_filter("need at least one nonzero", |v| v.iter().any(|&p| p > 0.0))
}

fn arb_counts(n_bits: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(prop_oneof![Just(0u64), Just(0u64), 1u64..500], 1 << n_bits)
        .prop_filter("need at least one shot", |v| v.iter().any(|&c| c > 0))
}

proptest! {
    #[test]
    fn marginal_is_representation_independent(
        probs in arb_probs(5),
        keep in prop::collection::vec(0usize..5, 1..4),
    ) {
        let mut keep = keep;
        keep.sort_unstable();
        keep.dedup();
        let (dense, sparse) = both_arms(5, probs);
        assert_identical(&dense.marginal(&keep), &sparse.marginal(&keep), "marginal");
    }

    #[test]
    fn normalized_is_representation_independent(probs in arb_probs(5)) {
        let (dense, sparse) = both_arms(5, probs);
        assert_identical(&dense.normalized(), &sparse.normalized(), "normalized");
    }

    #[test]
    fn hellinger_fidelity_is_representation_independent(
        p in arb_probs(4),
        q in arb_probs(4),
    ) {
        let (pd, ps) = both_arms(4, p);
        let (qd, qs) = both_arms(4, q);
        let dense = hellinger_fidelity(&pd, &qd);
        // Mixed representations must agree too: the sorted-merge
        // intersection cannot depend on which side is sparse.
        for (a, b) in [(&ps, &qs), (&pd, &qs), (&ps, &qd)] {
            prop_assert_eq!(dense.to_bits(), hellinger_fidelity(a, b).to_bits());
        }
    }

    #[test]
    fn hellinger_fidelity_sampled_is_representation_independent(
        p in arb_counts(4),
        q in arb_counts(4),
    ) {
        let (pd, ps) = both_count_arms(4, p);
        let (qd, qs) = both_count_arms(4, q);
        let dense = hellinger_fidelity_sampled(&pd, &qd);
        let sparse = hellinger_fidelity_sampled(&ps, &qs);
        prop_assert_eq!(dense.value.to_bits(), sparse.value.to_bits());
        prop_assert_eq!(dense.std_error.to_bits(), sparse.std_error.to_bits());
    }

    #[test]
    fn bayesian_update_is_representation_independent(
        global in arb_probs(5),
        local in arb_probs(2),
        pos in prop::collection::vec(0usize..5, 2),
    ) {
        prop_assume!(pos[0] != pos[1]);
        let (gd, gs) = both_arms(5, global);
        let (ld, ls) = both_arms(2, local);
        let dense = recombine::try_bayesian_update(&gd, &ld, &pos).unwrap();
        let sparse = recombine::try_bayesian_update(&gs, &ls, &pos).unwrap();
        assert_identical(&dense, &sparse, "bayesian_update");
    }

    #[test]
    fn bayesian_update_counts_is_representation_independent(
        global in arb_counts(4),
        local in arb_counts(1),
        pos in 0usize..4,
    ) {
        let (gd, gs) = both_count_arms(4, global);
        let (ld, ls) = both_count_arms(1, local);
        let dense = recombine::try_bayesian_update_counts(&gd, &ld, &[pos]).unwrap();
        let sparse = recombine::try_bayesian_update_counts(&gs, &ls, &[pos]).unwrap();
        assert_identical(&dense, &sparse, "bayesian_update_counts");
    }

    #[test]
    fn absorb_is_representation_independent(
        a in arb_counts(4),
        b in arb_counts(4),
    ) {
        let (mut ad, mut asp) = both_count_arms(4, a);
        let (bd, bs) = both_count_arms(4, b);
        ad.absorb(&bs); // cross representations on purpose
        asp.absorb(&bd);
        prop_assert_eq!(ad.shots(), asp.shots());
        let xs: Vec<(u64, u64)> = ad.iter().collect();
        let ys: Vec<(u64, u64)> = asp.iter().collect();
        prop_assert_eq!(xs, ys);
    }
}

/// The dense-cap round trip of the redesign: a distribution wider than
/// [`qt_dist::DEFAULT_DENSE_CAP_BITS`] refuses to densify with a typed
/// error, while the streaming recombination path handles it without ever
/// materializing the 2^n table.
#[test]
fn dense_cap_blocks_densify_but_not_streaming_recombination() {
    let n_bits = 40; // dim 2^40 — any dense buffer would be a terabyte.
    let global =
        Distribution::try_from_entries(n_bits, vec![(0, 0.25), (1 << 20, 0.25), (1 << 39, 0.5)])
            .unwrap();

    let err = global.densify().unwrap_err();
    assert!(
        matches!(err, qt_dist::DistError::DenseCap { .. }),
        "wrong error: {err:?}"
    );

    let local = Distribution::try_from_probs(1, vec![0.9, 0.1]).unwrap();
    let refined = recombine::try_bayesian_update(&global, &local, &[39]).unwrap();
    assert!((refined.total() - 1.0).abs() < 1e-12);
    assert!((refined.marginal(&[39]).prob(0) - 0.9).abs() < 1e-12);
    assert!(refined.support_len() <= 3, "support must stay sparse");
}
