//! Outcome distributions over measured qubits, Hellinger fidelity, and the
//! Bayesian local/global recombination QuTracer and its baselines share.
//!
//! Every mitigation method in this workspace ends the same way: a noisy
//! *global* distribution over all measured qubits is refined with one or
//! more high-fidelity *local* distributions over small subsets (Jigsaw's
//! measurement subsetting, QuTracer's traced subsets, SQEM's virtualized
//! checks). This crate owns that final, purely classical stage.
//!
//! Exact simulators hand over probability vectors ([`Distribution`]);
//! hardware — and the finite-shot execution mode mirroring it — hands over
//! sampled [`Counts`]. The count-based estimators here carry shot-noise
//! error bars ([`Estimate`]), because the paper's cost metric is *shots*
//! and every sampled quantity trades accuracy against that budget.
//!
//! # Example
//!
//! ```
//! use qt_dist::{hellinger_fidelity, recombine, Distribution};
//!
//! let global = Distribution::from_probs(2, vec![0.4, 0.1, 0.4, 0.1]);
//! let local = Distribution::from_probs(1, vec![0.3, 0.7]); // bit 1
//! let refined = recombine::bayesian_update(&global, &local, &[1]);
//! assert!((refined.total() - 1.0).abs() < 1e-12);
//! assert!((refined.marginal(&[1]).prob(1) - 0.7).abs() < 1e-12);
//! assert!(hellinger_fidelity(&refined, &refined) > 1.0 - 1e-12);
//! ```

pub mod recombine;

/// Default ceiling on the outcome-space width a dense table may allocate:
/// `2^26` f64 entries is 512 MiB — anything wider is almost certainly a
/// caller bug (e.g. measuring every qubit of a wide register that only a
/// sparse or stabilizer engine can even simulate). The fallible
/// constructors ([`Distribution::try_from_probs`],
/// [`Counts::try_from_counts`]) take an explicit cap for callers that know
/// better.
pub const DEFAULT_DENSE_CAP_BITS: usize = 26;

/// A dense outcome table was requested over more bits than the allocation
/// cap allows (the table would hold `2^n_bits` entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseCapError {
    /// The requested outcome-space width.
    pub n_bits: usize,
    /// The cap it exceeded.
    pub cap_bits: usize,
}

impl std::fmt::Display for DenseCapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dense outcome table over {} bits exceeds the {}-bit allocation cap \
             (2^{} entries); marginalize to fewer measured bits or raise the cap",
            self.n_bits, self.cap_bits, self.n_bits
        )
    }
}

impl std::error::Error for DenseCapError {}

fn check_dense_cap(n_bits: usize, cap_bits: usize) -> Result<(), DenseCapError> {
    if n_bits > cap_bits {
        Err(DenseCapError { n_bits, cap_bits })
    } else {
        Ok(())
    }
}

/// A (sub-)normalized probability distribution over `n_bits`-bit outcomes.
///
/// Outcome index bit `i` corresponds to measured qubit `i` of whichever
/// measurement list produced the distribution (the convention used across
/// the workspace: bit `i` of the index = `measured[i]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    n_bits: usize,
    probs: Vec<f64>,
}

impl Distribution {
    /// Builds a distribution over `n_bits` outcomes from raw probabilities.
    ///
    /// `probs` shorter than `2^n_bits` is zero-padded (finite-shot runs may
    /// omit trailing never-observed outcomes). Values are *not* normalized;
    /// call [`Distribution::normalized`] for that.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is longer than `2^n_bits`, or if `n_bits` exceeds
    /// [`DEFAULT_DENSE_CAP_BITS`] (use [`Distribution::try_from_probs`]
    /// with an explicit cap to go wider).
    pub fn from_probs(n_bits: usize, probs: Vec<f64>) -> Self {
        match Self::try_from_probs(n_bits, probs, DEFAULT_DENSE_CAP_BITS) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Distribution::from_probs`] with an explicit allocation
    /// cap: the table holds `2^n_bits` entries, so `n_bits > cap_bits` is
    /// rejected with a [`DenseCapError`] instead of attempting a dense
    /// allocation that can exhaust memory (or overflow the shift).
    ///
    /// # Panics
    ///
    /// Panics if `probs` is longer than `2^n_bits`.
    pub fn try_from_probs(
        n_bits: usize,
        mut probs: Vec<f64>,
        cap_bits: usize,
    ) -> Result<Self, DenseCapError> {
        check_dense_cap(n_bits, cap_bits)?;
        let dim = 1usize << n_bits;
        assert!(
            probs.len() <= dim,
            "{} probabilities do not fit {} bits",
            probs.len(),
            n_bits
        );
        probs.resize(dim, 0.0);
        Ok(Distribution { n_bits, probs })
    }

    /// The uniform distribution over `n_bits` outcomes.
    pub fn uniform(n_bits: usize) -> Self {
        let dim = 1usize << n_bits;
        Distribution {
            n_bits,
            probs: vec![1.0 / dim as f64; dim],
        }
    }

    /// Number of outcome bits.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Number of outcomes (`2^n_bits`).
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the distribution has zero outcomes (never: kept for the
    /// conventional `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The raw probability vector, indexed by outcome.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Probability of `outcome`, 0.0 when out of range.
    pub fn prob(&self, outcome: usize) -> f64 {
        self.probs.get(outcome).copied().unwrap_or(0.0)
    }

    /// Total mass (1.0 for a normalized distribution).
    pub fn total(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Clamps negatives to zero and rescales to unit mass. A distribution
    /// with no positive mass becomes uniform.
    pub fn normalized(mut self) -> Self {
        let mut total = 0.0;
        for p in &mut self.probs {
            if *p < 0.0 {
                *p = 0.0;
            }
            total += *p;
        }
        if total <= 0.0 {
            return Distribution::uniform(self.n_bits);
        }
        let inv = 1.0 / total;
        for p in &mut self.probs {
            *p *= inv;
        }
        self
    }

    /// The marginal distribution over the given bit `positions`: bit `j` of
    /// the marginal index is bit `positions[j]` of the full index.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    pub fn marginal(&self, positions: &[usize]) -> Distribution {
        for &p in positions {
            assert!(
                p < self.n_bits,
                "bit position {p} out of {} bits",
                self.n_bits
            );
        }
        let dim = 1usize << positions.len();
        let mut out = vec![0.0; dim];
        for (x, &p) in self.probs.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let mut y = 0usize;
            for (j, &pos) in positions.iter().enumerate() {
                y |= ((x >> pos) & 1) << j;
            }
            out[y] += p;
        }
        Distribution {
            n_bits: positions.len(),
            probs: out,
        }
    }

    /// Iterates `(outcome, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.probs.iter().copied().enumerate()
    }
}

/// Per-outcome measurement counts over `n_bits`-bit outcomes — the
/// finite-shot counterpart of [`Distribution`] (what hardware, and the
/// workspace's sampled execution mode, actually returns).
///
/// Bit conventions match [`Distribution`]: outcome index bit `i`
/// corresponds to measured qubit `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counts {
    n_bits: usize,
    counts: Vec<u64>,
}

impl Counts {
    /// Builds a count table over `n_bits` outcomes. `counts` shorter than
    /// `2^n_bits` is zero-padded (never-observed outcomes may be omitted).
    ///
    /// # Panics
    ///
    /// Panics if `counts` is longer than `2^n_bits`, or if `n_bits` exceeds
    /// [`DEFAULT_DENSE_CAP_BITS`] (use [`Counts::try_from_counts`] with an
    /// explicit cap to go wider).
    pub fn from_counts(n_bits: usize, counts: Vec<u64>) -> Self {
        match Self::try_from_counts(n_bits, counts, DEFAULT_DENSE_CAP_BITS) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Counts::from_counts`] with an explicit allocation cap:
    /// the table holds `2^n_bits` entries, so `n_bits > cap_bits` is
    /// rejected with a [`DenseCapError`] instead of attempting a dense
    /// allocation that can exhaust memory (or overflow the shift).
    ///
    /// # Panics
    ///
    /// Panics if `counts` is longer than `2^n_bits`.
    pub fn try_from_counts(
        n_bits: usize,
        mut counts: Vec<u64>,
        cap_bits: usize,
    ) -> Result<Self, DenseCapError> {
        check_dense_cap(n_bits, cap_bits)?;
        let dim = 1usize << n_bits;
        assert!(
            counts.len() <= dim,
            "{} counts do not fit {} bits",
            counts.len(),
            n_bits
        );
        counts.resize(dim, 0);
        Ok(Counts { n_bits, counts })
    }

    /// Number of outcome bits.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Number of outcomes (`2^n_bits`).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the table has zero outcomes (never: kept for the
    /// conventional `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The raw count vector, indexed by outcome.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of `outcome`, 0 when out of range.
    pub fn count(&self, outcome: usize) -> u64 {
        self.counts.get(outcome).copied().unwrap_or(0)
    }

    /// Total shots recorded.
    pub fn shots(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The empirical frequency of `outcome` (`count / shots`); 0.0 when no
    /// shots were recorded.
    pub fn frequency(&self, outcome: usize) -> f64 {
        let shots = self.shots();
        if shots == 0 {
            0.0
        } else {
            self.count(outcome) as f64 / shots as f64
        }
    }

    /// The plug-in estimator of the underlying distribution: empirical
    /// frequencies, normalized. Zero recorded shots yield the uniform
    /// distribution (consistent with [`Distribution::normalized`] on a
    /// zero-mass vector).
    pub fn to_distribution(&self) -> Distribution {
        Distribution::from_probs(self.n_bits, self.counts.iter().map(|&c| c as f64).collect())
            .normalized()
    }

    /// Marginal counts over the given bit `positions` (bit `j` of the
    /// marginal index is bit `positions[j]` of the full index). Exact —
    /// marginalizing counts loses no shots.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    pub fn marginal(&self, positions: &[usize]) -> Counts {
        for &p in positions {
            assert!(
                p < self.n_bits,
                "bit position {p} out of {} bits",
                self.n_bits
            );
        }
        let dim = 1usize << positions.len();
        let mut out = vec![0u64; dim];
        for (x, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let mut y = 0usize;
            for (j, &pos) in positions.iter().enumerate() {
                y |= ((x >> pos) & 1) << j;
            }
            out[y] += c;
        }
        Counts {
            n_bits: positions.len(),
            counts: out,
        }
    }

    /// The binomial standard error of the empirical frequency of `outcome`:
    /// `√(p̂(1−p̂)/N)`. Infinite when no shots were recorded.
    pub fn std_error(&self, outcome: usize) -> f64 {
        let shots = self.shots();
        if shots == 0 {
            return f64::INFINITY;
        }
        let p = self.count(outcome) as f64 / shots as f64;
        (p * (1.0 - p) / shots as f64).sqrt()
    }

    /// Accumulates another count table over the same outcome space.
    ///
    /// # Panics
    ///
    /// Panics if the bit counts differ.
    pub fn absorb(&mut self, other: &Counts) {
        assert_eq!(
            self.n_bits, other.n_bits,
            "cannot merge counts over different outcome spaces"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Iterates `(outcome, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().copied().enumerate()
    }
}

/// A sampled scalar estimate with its one-sigma shot-noise error bar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The point estimate.
    pub value: f64,
    /// One standard error of the estimator under multinomial shot noise.
    pub std_error: f64,
}

impl Estimate {
    /// Whether `value` lies within `k` of *this* estimate's standard
    /// errors. To compare two noisy estimates, fold their bars together
    /// first (`√(σ₁² + σ₂²)`) — this check uses only `self.std_error`.
    pub fn consistent_with(&self, value: f64, k: f64) -> bool {
        (self.value - value).abs() <= k * self.std_error
    }
}

/// The Hellinger fidelity `(Σᵢ √(pᵢ qᵢ))²` between two distributions over
/// the same outcome space — the metric every table and figure of the paper
/// reports. Inputs are normalized internally, so sub-normalized
/// distributions compare by shape.
///
/// # Panics
///
/// Panics if the distributions have different bit counts.
pub fn hellinger_fidelity(p: &Distribution, q: &Distribution) -> f64 {
    assert_eq!(
        p.n_bits, q.n_bits,
        "fidelity requires matching outcome spaces"
    );
    let (tp, tq) = (p.total(), q.total());
    if tp <= 0.0 || tq <= 0.0 {
        return 0.0;
    }
    let scale = 1.0 / (tp * tq).sqrt();
    let bc: f64 = p
        .probs
        .iter()
        .zip(&q.probs)
        .map(|(&a, &b)| (a.max(0.0) * b.max(0.0)).sqrt())
        .sum();
    let f = (bc * scale).powi(2);
    f.min(1.0)
}

/// The plug-in Hellinger fidelity between two sampled count tables, with a
/// delta-method shot-noise error bar.
///
/// The point estimate is [`hellinger_fidelity`] of the empirical
/// frequencies. For the error bar, write `BC = Σᵢ √(p̂ᵢ q̂ᵢ)`; under
/// independent multinomial sampling the delta method gives
/// `Var(BC) ≈ (1 − BC²)/4 · (1/N_p + 1/N_q)`, and `F = BC²` propagates to
/// `σ_F ≈ 2·BC·σ_BC`. The bar is infinite when either side recorded zero
/// shots.
///
/// # Panics
///
/// Panics if the count tables have different bit counts.
pub fn hellinger_fidelity_sampled(p: &Counts, q: &Counts) -> Estimate {
    assert_eq!(
        p.n_bits, q.n_bits,
        "fidelity requires matching outcome spaces"
    );
    let value = hellinger_fidelity(&p.to_distribution(), &q.to_distribution());
    let (np, nq) = (p.shots() as f64, q.shots() as f64);
    if np == 0.0 || nq == 0.0 {
        return Estimate {
            value,
            std_error: f64::INFINITY,
        };
    }
    let bc = value.sqrt();
    let var_bc = (1.0 - value).max(0.0) / 4.0 * (1.0 / np + 1.0 / nq);
    Estimate {
        value,
        std_error: 2.0 * bc * var_bc.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_probs_pads_and_rejects_overflow() {
        let d = Distribution::from_probs(2, vec![0.5, 0.5]);
        assert_eq!(d.len(), 4);
        assert_eq!(d.prob(2), 0.0);
        assert_eq!(d.prob(99), 0.0);
        assert_eq!(d.n_bits(), 2);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn from_probs_rejects_too_many_entries() {
        let _ = Distribution::from_probs(1, vec![0.2; 3]);
    }

    #[test]
    fn dense_cap_rejects_wide_tables_with_typed_error() {
        let err = Distribution::try_from_probs(40, vec![0.5], DEFAULT_DENSE_CAP_BITS)
            .expect_err("40 bits must exceed the default cap");
        assert_eq!(
            err,
            DenseCapError {
                n_bits: 40,
                cap_bits: DEFAULT_DENSE_CAP_BITS
            }
        );
        assert!(err.to_string().contains("40 bits"));
        let err = Counts::try_from_counts(30, vec![1], 20).expect_err("explicit cap applies");
        assert_eq!(err.cap_bits, 20);
        // Within the cap, the fallible and panicking paths agree.
        let ok = Distribution::try_from_probs(2, vec![0.5, 0.5], DEFAULT_DENSE_CAP_BITS)
            .expect("2 bits fit");
        assert_eq!(ok, Distribution::from_probs(2, vec![0.5, 0.5]));
    }

    #[test]
    #[should_panic(expected = "allocation cap")]
    fn from_probs_rejects_uncapped_width() {
        let _ = Distribution::from_probs(DEFAULT_DENSE_CAP_BITS + 1, vec![1.0]);
    }

    #[test]
    fn normalized_is_a_probability_vector() {
        let d = Distribution::from_probs(2, vec![3.0, -1.0, 1.0, 0.0]).normalized();
        assert!((d.total() - 1.0).abs() < 1e-12);
        assert!(d.probs().iter().all(|&p| p >= 0.0));
        assert!((d.prob(0) - 0.75).abs() < 1e-12, "negatives clamp to zero");
    }

    #[test]
    fn normalized_of_zero_mass_is_uniform() {
        let d = Distribution::from_probs(1, vec![0.0, 0.0]).normalized();
        assert!((d.prob(0) - 0.5).abs() < 1e-12);
        assert!((d.prob(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginal_reorders_bits() {
        // p(bit0=1) = 0.3, p(bit1=1) = 0.6, independent.
        let probs = vec![0.28, 0.12, 0.42, 0.18];
        let d = Distribution::from_probs(2, probs);
        let m0 = d.marginal(&[0]);
        assert!((m0.prob(1) - 0.3).abs() < 1e-12);
        let m1 = d.marginal(&[1]);
        assert!((m1.prob(1) - 0.6).abs() < 1e-12);
        // Swapped pair marginal: bit 0 of the result is original bit 1.
        let swapped = d.marginal(&[1, 0]);
        assert!((swapped.prob(0b01) - d.prob(0b10)).abs() < 1e-12);
        assert!((swapped.prob(0b10) - d.prob(0b01)).abs() < 1e-12);
    }

    #[test]
    fn hellinger_bounds_identity_and_symmetry() {
        let p = Distribution::from_probs(3, (0..8).map(|i| (i + 1) as f64).collect()).normalized();
        let q = Distribution::from_probs(3, (0..8).map(|i| ((i * 3) % 7) as f64).collect())
            .normalized();
        let f = hellinger_fidelity(&p, &q);
        assert!((0.0..=1.0).contains(&f));
        assert!((hellinger_fidelity(&p, &p) - 1.0).abs() < 1e-12);
        assert!((f - hellinger_fidelity(&q, &p)).abs() < 1e-15);
        // Disjoint supports → 0.
        let a = Distribution::from_probs(1, vec![1.0, 0.0]);
        let b = Distribution::from_probs(1, vec![0.0, 1.0]);
        assert_eq!(hellinger_fidelity(&a, &b), 0.0);
    }

    #[test]
    fn hellinger_ignores_scale() {
        let p = Distribution::from_probs(2, vec![0.1, 0.2, 0.3, 0.4]);
        let scaled = Distribution::from_probs(2, vec![0.2, 0.4, 0.6, 0.8]);
        assert!((hellinger_fidelity(&p, &scaled) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_pad_total_and_frequencies() {
        let c = Counts::from_counts(2, vec![30, 10]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.count(1), 10);
        assert_eq!(c.count(3), 0);
        assert_eq!(c.shots(), 40);
        assert!((c.frequency(0) - 0.75).abs() < 1e-12);
        let d = c.to_distribution();
        assert!((d.total() - 1.0).abs() < 1e-12);
        assert!((d.prob(0) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn counts_reject_too_many_entries() {
        let _ = Counts::from_counts(1, vec![1; 3]);
    }

    #[test]
    fn zero_shot_counts_yield_uniform_and_infinite_error() {
        let c = Counts::from_counts(1, vec![]);
        let d = c.to_distribution();
        assert!((d.prob(0) - 0.5).abs() < 1e-12);
        assert!(c.std_error(0).is_infinite());
        assert_eq!(c.frequency(1), 0.0);
    }

    #[test]
    fn counts_marginal_loses_no_shots_and_reorders_bits() {
        let c = Counts::from_counts(2, vec![7, 3, 2, 8]);
        let m0 = c.marginal(&[0]);
        assert_eq!(m0.counts(), &[9, 11]);
        assert_eq!(m0.shots(), c.shots());
        let swapped = c.marginal(&[1, 0]);
        assert_eq!(swapped.count(0b01), c.count(0b10));
        assert_eq!(swapped.count(0b10), c.count(0b01));
    }

    #[test]
    fn counts_absorb_accumulates() {
        let mut a = Counts::from_counts(1, vec![1, 2]);
        a.absorb(&Counts::from_counts(1, vec![10, 20]));
        assert_eq!(a.counts(), &[11, 22]);
    }

    #[test]
    fn std_error_shrinks_with_shots() {
        let small = Counts::from_counts(1, vec![50, 50]);
        let large = Counts::from_counts(1, vec![5000, 5000]);
        assert!(large.std_error(0) < small.std_error(0));
        // √(0.25/10000) = 0.005.
        assert!((large.std_error(0) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn sampled_fidelity_matches_plugin_estimate_with_shrinking_bars() {
        let p = Counts::from_counts(1, vec![60, 40]);
        let q = Counts::from_counts(1, vec![40, 60]);
        let est = hellinger_fidelity_sampled(&p, &q);
        let exact = hellinger_fidelity(&p.to_distribution(), &q.to_distribution());
        assert!((est.value - exact).abs() < 1e-12);
        assert!(est.std_error > 0.0 && est.std_error < 0.2);
        // 100x the shots → ~10x tighter bar.
        let p10 = Counts::from_counts(1, vec![6000, 4000]);
        let q10 = Counts::from_counts(1, vec![4000, 6000]);
        let tight = hellinger_fidelity_sampled(&p10, &q10);
        assert!(tight.std_error < est.std_error / 5.0);
        assert!(est.consistent_with(exact, 1.0));
        // Identical tables → fidelity 1 with a vanishing bar.
        let same = hellinger_fidelity_sampled(&p, &p);
        assert!((same.value - 1.0).abs() < 1e-12);
        assert!(same.std_error < 1e-6);
        // Zero shots on either side → infinite bar.
        let empty = Counts::from_counts(1, vec![]);
        assert!(hellinger_fidelity_sampled(&p, &empty)
            .std_error
            .is_infinite());
    }
}
