//! Outcome distributions over measured qubits, Hellinger fidelity, and the
//! Bayesian local/global recombination QuTracer and its baselines share.
//!
//! Every mitigation method in this workspace ends the same way: a noisy
//! *global* distribution over all measured qubits is refined with one or
//! more high-fidelity *local* distributions over small subsets (Jigsaw's
//! measurement subsetting, QuTracer's traced subsets, SQEM's virtualized
//! checks). This crate owns that final, purely classical stage.
//!
//! # Sparse-by-default storage
//!
//! QuTracer's premise is that per-subset marginals are tiny even when the
//! global register is wide, and the engine tier (stabilizer tableaux,
//! sparse statevectors) simulates registers far past anything a dense
//! `Vec<f64>` of length `2^n` could index. [`Distribution`] and [`Counts`]
//! therefore store an index→mass map ([`Mass`]): a sorted
//! `Vec<(u64, mass)>` of the nonzero outcomes, with a dense table as a
//! *fallback representation* chosen only when the outcome space is narrow
//! ([`DEFAULT_DENSE_CAP_BITS`]) **and** at least half full
//! ([`DEFAULT_DENSE_THRESHOLD`]). Outcome indices are `u64`, so >26-qubit
//! registers are representable at all.
//!
//! The canonical invariant — sparse entries sorted ascending with exact
//! zeros dropped — makes every operation *bit-reproducible across
//! representations*: both storages iterate the same nonzero entries in the
//! same ascending order, and adding an exact `0.0` to an `f64` accumulator
//! is the identity, so sums, marginals, Hellinger terms and Bayesian
//! updates produce bitwise-identical floats either way (property-tested in
//! `tests/proptests.rs`).
//!
//! Exact simulators hand over probability maps ([`Distribution`]);
//! hardware — and the finite-shot execution mode mirroring it — hands over
//! sampled [`Counts`]. The count-based estimators here carry shot-noise
//! error bars ([`Estimate`]), because the paper's cost metric is *shots*
//! and every sampled quantity trades accuracy against that budget.
//!
//! # Example
//!
//! ```
//! use qt_dist::{hellinger_fidelity, recombine, Distribution};
//!
//! let global = Distribution::try_from_probs(2, vec![0.4, 0.1, 0.4, 0.1]).unwrap();
//! let local = Distribution::try_from_probs(1, vec![0.3, 0.7]).unwrap(); // bit 1
//! let refined = recombine::try_bayesian_update(&global, &local, &[1]).unwrap();
//! assert!((refined.total() - 1.0).abs() < 1e-12);
//! assert!((refined.marginal(&[1]).prob(1) - 0.7).abs() < 1e-12);
//! assert!(hellinger_fidelity(&refined, &refined) > 1.0 - 1e-12);
//! ```

pub mod recombine;

/// Ceiling on the outcome-space width a **dense** table may allocate:
/// `2^26` f64 entries is 512 MiB. Distributions over more bits stay in the
/// sparse representation unconditionally; [`Distribution::densify`] and
/// [`Distribution::uniform`] (the only operations that *require* a dense
/// table) fail past this cap instead of attempting an allocation of
/// hundreds of GiB.
pub const DEFAULT_DENSE_CAP_BITS: usize = 26;

/// Nonzero-entry fraction at which a cap-respecting outcome table switches
/// to the dense representation: at half density the sorted map is strictly
/// more work per traversal than a flat vector. Representation never
/// changes results — only cost (see [`Mass`]).
pub const DEFAULT_DENSE_THRESHOLD: f64 = 0.5;

/// Widest representable outcome space: indices are `u64` bit patterns.
pub const MAX_OUTCOME_BITS: usize = 64;

/// The error type of the distribution stage: shape mismatches and dense
/// allocation-cap violations, unified so the staged pipelines upstream
/// propagate one typed error instead of a mix of panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistError {
    /// A dense outcome table was requested over more bits than the
    /// allocation cap allows (the table would hold `2^n_bits` entries).
    DenseCap {
        /// The requested outcome-space width.
        n_bits: usize,
        /// The cap it exceeded.
        cap_bits: usize,
    },
    /// More raw entries were supplied than the outcome space holds.
    ExcessEntries {
        /// Number of entries supplied.
        len: usize,
        /// The outcome-space width they were supplied for.
        n_bits: usize,
    },
    /// A sparse entry's outcome index does not fit the outcome space.
    IndexOutOfRange {
        /// The offending outcome index.
        index: u64,
        /// The outcome-space width it was supplied for.
        n_bits: usize,
    },
    /// A local distribution's bit count does not match its subset size.
    SubsetMismatch {
        /// Bits of the local distribution.
        local_bits: usize,
        /// Positions the caller asked to update.
        positions: usize,
    },
    /// A subset position indexes a bit the global distribution lacks.
    PositionOutOfRange {
        /// The offending bit position.
        position: usize,
        /// Bits of the global distribution.
        n_bits: usize,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::DenseCap { n_bits, cap_bits } => write!(
                f,
                "dense outcome table over {n_bits} bits exceeds the {cap_bits}-bit allocation cap \
                 (2^{n_bits} entries); keep the sparse representation or marginalize to fewer bits"
            ),
            DistError::ExcessEntries { len, n_bits } => {
                write!(f, "{len} entries do not fit {n_bits} bits")
            }
            DistError::IndexOutOfRange { index, n_bits } => {
                write!(f, "outcome index {index} does not fit {n_bits} bits")
            }
            DistError::SubsetMismatch {
                local_bits,
                positions,
            } => write!(
                f,
                "local distribution has {local_bits} bits but {positions} positions were given"
            ),
            DistError::PositionOutOfRange { position, n_bits } => {
                write!(f, "bit position {position} out of {n_bits} global bits")
            }
        }
    }
}

impl std::error::Error for DistError {}

fn check_dense_cap(n_bits: usize) -> Result<(), DistError> {
    if n_bits > DEFAULT_DENSE_CAP_BITS {
        Err(DistError::DenseCap {
            n_bits,
            cap_bits: DEFAULT_DENSE_CAP_BITS,
        })
    } else {
        Ok(())
    }
}

fn check_outcome_bits(n_bits: usize) {
    assert!(
        n_bits <= MAX_OUTCOME_BITS,
        "outcome indices are u64 bit patterns: {n_bits} bits is not representable"
    );
}

/// Number of outcomes of an `n_bits`-bit space (`u128`: 64-bit spaces are
/// representable, so the count itself overflows `u64`).
fn dim_of(n_bits: usize) -> u128 {
    1u128 << n_bits
}

/// A value a [`Mass`] table can store: probability mass (`f64`) or shot
/// counts (`u64`). The zero element defines sparsity — exact zeros are
/// never stored in the sparse representation.
pub trait MassValue: Copy + PartialEq + std::fmt::Debug {
    /// The additive identity.
    const ZERO: Self;
    /// Whether this value is exactly zero (dropped from sparse storage).
    fn is_zero(self) -> bool;
}

impl MassValue for f64 {
    const ZERO: f64 = 0.0;
    fn is_zero(self) -> bool {
        self == 0.0
    }
}

impl MassValue for u64 {
    const ZERO: u64 = 0;
    fn is_zero(self) -> bool {
        self == 0
    }
}

/// Index→mass storage of an outcome table: sorted nonzero entries, with a
/// dense fallback for narrow, at-least-half-full spaces.
///
/// # Canonical form
///
/// * `Sparse` entries are sorted by outcome index, strictly ascending, and
///   never hold an exact zero.
/// * `Dense` is used iff the space fits the allocation cap
///   ([`DEFAULT_DENSE_CAP_BITS`]) **and** the nonzero fraction meets the
///   density threshold at construction time.
///
/// Both representations therefore iterate the same `(index, mass)` pairs
/// in the same ascending order, which is what keeps every float traversal
/// upstairs bit-reproducible across representations. Equality of the
/// containing types ([`Distribution`], [`Counts`]) compares those streams,
/// never the representation.
#[derive(Debug, Clone)]
enum Mass<T> {
    /// Flat table of `2^n_bits` values, indexed by outcome.
    Dense(Vec<T>),
    /// Sorted `(outcome, mass)` pairs of the nonzero outcomes.
    Sparse(Vec<(u64, T)>),
}

impl<T: MassValue> Mass<T> {
    /// Whether the canonical representation of a table with `nnz` nonzero
    /// entries over `n_bits` bits is dense under `threshold`.
    fn dense_eligible(n_bits: usize, nnz: usize, threshold: f64) -> bool {
        n_bits <= DEFAULT_DENSE_CAP_BITS && nnz as f64 >= dim_of(n_bits) as f64 * threshold
    }

    /// Canonicalizes a dense (or shorter, zero-padded) value vector.
    fn from_dense(n_bits: usize, mut values: Vec<T>, threshold: f64) -> Mass<T> {
        let nnz = values.iter().filter(|v| !v.is_zero()).count();
        if Self::dense_eligible(n_bits, nnz, threshold) {
            values.resize(dim_of(n_bits) as usize, T::ZERO);
            Mass::Dense(values)
        } else {
            Mass::Sparse(
                values
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| !v.is_zero())
                    .map(|(i, &v)| (i as u64, v))
                    .collect(),
            )
        }
    }

    /// Canonicalizes sorted, deduplicated `(index, mass)` pairs (zeros
    /// allowed; they are dropped).
    fn from_sorted(n_bits: usize, entries: Vec<(u64, T)>, threshold: f64) -> Mass<T> {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "unsorted mass");
        let nnz = entries.iter().filter(|(_, v)| !v.is_zero()).count();
        if Self::dense_eligible(n_bits, nnz, threshold) {
            let mut dense = vec![T::ZERO; dim_of(n_bits) as usize];
            for (i, v) in entries {
                dense[i as usize] = v;
            }
            Mass::Dense(dense)
        } else {
            let mut entries = entries;
            entries.retain(|(_, v)| !v.is_zero());
            Mass::Sparse(entries)
        }
    }

    /// Iterates the nonzero `(index, mass)` pairs in ascending index
    /// order — identically for both representations.
    fn iter(&self) -> impl Iterator<Item = (u64, T)> + '_ {
        let (dense, sparse) = match self {
            Mass::Dense(v) => (Some(v), None),
            Mass::Sparse(e) => (None, Some(e)),
        };
        dense
            .into_iter()
            .flatten()
            .enumerate()
            .filter(|(_, v)| !v.is_zero())
            .map(|(i, &v)| (i as u64, v))
            .chain(sparse.into_iter().flatten().copied())
    }

    /// The mass at `index` (zero when absent or out of range).
    fn get(&self, index: u64) -> T {
        match self {
            Mass::Dense(v) => usize::try_from(index)
                .ok()
                .and_then(|i| v.get(i).copied())
                .unwrap_or(T::ZERO),
            Mass::Sparse(e) => match e.binary_search_by_key(&index, |&(i, _)| i) {
                Ok(pos) => e[pos].1,
                Err(_) => T::ZERO,
            },
        }
    }

    /// Number of stored nonzero entries.
    fn support_len(&self) -> usize {
        match self {
            Mass::Dense(v) => v.iter().filter(|x| !x.is_zero()).count(),
            Mass::Sparse(e) => e.len(),
        }
    }

    fn is_dense(&self) -> bool {
        matches!(self, Mass::Dense(_))
    }
}

/// Validates, sorts and duplicate-merges raw `(index, mass)` pairs into
/// canonical sorted unique entries. Duplicate indices accumulate in their
/// input order (stable sort), so construction is deterministic.
fn sorted_entries<T>(
    n_bits: usize,
    entries: Vec<(u64, T)>,
    add: impl Fn(T, T) -> T,
) -> Result<Vec<(u64, T)>, DistError>
where
    T: MassValue,
{
    let dim = dim_of(n_bits);
    if let Some(&(index, _)) = entries.iter().find(|&&(i, _)| u128::from(i) >= dim) {
        return Err(DistError::IndexOutOfRange { index, n_bits });
    }
    let mut entries = entries;
    if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
        entries.sort_by_key(|&(i, _)| i);
        let mut merged: Vec<(u64, T)> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            match merged.last_mut() {
                Some((j, acc)) if *j == i => *acc = add(*acc, v),
                _ => merged.push((i, v)),
            }
        }
        entries = merged;
    }
    Ok(entries)
}

/// A (sub-)normalized probability distribution over `n_bits`-bit outcomes,
/// stored sparsely by default (see [`Mass`]).
///
/// Outcome index bit `i` corresponds to measured qubit `i` of whichever
/// measurement list produced the distribution (the convention used across
/// the workspace: bit `i` of the index = `measured[i]`).
///
/// Equality compares nonzero `(outcome, probability)` streams, so two
/// distributions with equal content are equal regardless of
/// representation.
#[derive(Debug, Clone)]
pub struct Distribution {
    n_bits: usize,
    mass: Mass<f64>,
}

impl PartialEq for Distribution {
    fn eq(&self, other: &Self) -> bool {
        self.n_bits == other.n_bits && self.mass.iter().eq(other.mass.iter())
    }
}

impl Distribution {
    /// Builds a distribution over `n_bits` outcomes from a raw probability
    /// vector (entry `i` is the probability of outcome `i`).
    ///
    /// `probs` shorter than `2^n_bits` is zero-padded (finite-shot runs may
    /// omit trailing never-observed outcomes). Values are *not* normalized;
    /// call [`Distribution::normalized`] for that. There is no width cap:
    /// the vector's *nonzero* entries define the storage, so a 40-bit
    /// distribution with three outcomes is three map entries.
    ///
    /// # Errors
    ///
    /// [`DistError::ExcessEntries`] if `probs` is longer than `2^n_bits`.
    pub fn try_from_probs(n_bits: usize, probs: Vec<f64>) -> Result<Self, DistError> {
        check_outcome_bits(n_bits);
        if u128::try_from(probs.len()).unwrap_or(u128::MAX) > dim_of(n_bits) {
            return Err(DistError::ExcessEntries {
                len: probs.len(),
                n_bits,
            });
        }
        Ok(Distribution {
            n_bits,
            mass: Mass::from_dense(n_bits, probs, DEFAULT_DENSE_THRESHOLD),
        })
    }

    /// Builds a distribution from raw `(outcome, probability)` pairs — the
    /// native constructor for sparse producers (the sparse-statevector and
    /// stabilizer engines). Pairs need not be sorted; duplicate indices
    /// accumulate in input order.
    ///
    /// # Errors
    ///
    /// [`DistError::IndexOutOfRange`] if any outcome does not fit
    /// `n_bits`.
    pub fn try_from_entries(n_bits: usize, entries: Vec<(u64, f64)>) -> Result<Self, DistError> {
        check_outcome_bits(n_bits);
        let entries = sorted_entries(n_bits, entries, |a, b| a + b)?;
        Ok(Distribution {
            n_bits,
            mass: Mass::from_sorted(n_bits, entries, DEFAULT_DENSE_THRESHOLD),
        })
    }

    /// [`Distribution::try_from_probs`], panicking on shape errors.
    ///
    /// Kept as a thin migration alias for call sites whose inputs are
    /// correct by construction; new code should prefer the `try_`
    /// constructor. Slated for removal.
    #[doc(hidden)]
    pub fn from_probs(n_bits: usize, probs: Vec<f64>) -> Self {
        match Self::try_from_probs(n_bits, probs) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// The uniform distribution over `n_bits` outcomes — inherently dense
    /// (every outcome carries mass).
    ///
    /// # Panics
    ///
    /// Panics if `n_bits` exceeds [`DEFAULT_DENSE_CAP_BITS`]: a uniform
    /// table over a wide space has no sparse form. (This makes
    /// [`Distribution::normalized`] on a zero-mass wide distribution panic
    /// too — a zero-mass global over a >26-bit space has no meaningful
    /// uniform fallback.)
    pub fn uniform(n_bits: usize) -> Self {
        if let Err(e) = check_dense_cap(n_bits) {
            panic!("uniform distribution is inherently dense: {e}");
        }
        let dim = dim_of(n_bits) as usize;
        Distribution {
            n_bits,
            mass: Mass::Dense(vec![1.0 / dim as f64; dim]),
        }
    }

    /// Number of outcome bits.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Number of outcomes (`2^n_bits`; `u128` because 64-bit outcome
    /// spaces are representable).
    pub fn dim(&self) -> u128 {
        dim_of(self.n_bits)
    }

    /// Number of outcomes carrying nonzero mass.
    pub fn support_len(&self) -> usize {
        self.mass.support_len()
    }

    /// Whether the current storage is the dense fallback (representation
    /// introspection for tests and benches; never affects results).
    pub fn is_dense(&self) -> bool {
        self.mass.is_dense()
    }

    /// Probability of `outcome`; 0.0 when absent or out of range.
    pub fn prob(&self, outcome: u64) -> f64 {
        self.mass.get(outcome)
    }

    /// Iterates the nonzero `(outcome, probability)` pairs in ascending
    /// outcome order — the same stream for either representation.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.mass.iter()
    }

    /// Total mass (1.0 for a normalized distribution).
    pub fn total(&self) -> f64 {
        self.iter().map(|(_, p)| p).sum()
    }

    /// The full dense probability vector, indexed by outcome — the
    /// compatibility escape hatch for consumers that genuinely need flat
    /// storage (readout-error convolution, plotting).
    ///
    /// # Errors
    ///
    /// [`DistError::DenseCap`] if the outcome space exceeds
    /// [`DEFAULT_DENSE_CAP_BITS`] (the table would hold `2^n_bits`
    /// entries).
    pub fn densify(&self) -> Result<Vec<f64>, DistError> {
        check_dense_cap(self.n_bits)?;
        let mut out = vec![0.0; self.dim() as usize];
        for (i, p) in self.iter() {
            out[i as usize] = p;
        }
        Ok(out)
    }

    /// Re-bins the storage under an explicit density threshold: `0.0`
    /// forces the dense representation (within the allocation cap), any
    /// value above `1.0` forces sparse. Content is unchanged — this is a
    /// representation conversion for benchmarks and equivalence tests;
    /// results of subsequent operations re-canonicalize under the default
    /// threshold.
    pub fn with_density_threshold(self, threshold: f64) -> Self {
        let entries: Vec<(u64, f64)> = self.mass.iter().collect();
        Distribution {
            n_bits: self.n_bits,
            mass: Mass::from_sorted(self.n_bits, entries, threshold),
        }
    }

    /// Clamps negatives to zero and rescales to unit mass. A distribution
    /// with no positive mass becomes uniform.
    ///
    /// # Panics
    ///
    /// Panics when a zero-mass distribution is wider than
    /// [`DEFAULT_DENSE_CAP_BITS`] — the uniform fallback is inherently
    /// dense (see [`Distribution::uniform`]).
    pub fn normalized(self) -> Self {
        let mut total = 0.0;
        for (_, p) in self.iter() {
            total += p.max(0.0);
        }
        if total <= 0.0 {
            return Distribution::uniform(self.n_bits);
        }
        let inv = 1.0 / total;
        let entries: Vec<(u64, f64)> = self
            .iter()
            .filter(|&(_, p)| p > 0.0)
            .map(|(i, p)| (i, p * inv))
            .collect();
        Distribution {
            n_bits: self.n_bits,
            mass: Mass::from_sorted(self.n_bits, entries, DEFAULT_DENSE_THRESHOLD),
        }
    }

    /// The marginal distribution over the given bit `positions`: bit `j` of
    /// the marginal index is bit `positions[j]` of the full index. A
    /// sorted traversal of the nonzero entries — cost scales with the
    /// support, never with `2^n_bits`.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    pub fn marginal(&self, positions: &[usize]) -> Distribution {
        let project = marginal_projector(self.n_bits, positions);
        let k = positions.len();
        // Accumulate per marginal bin in ascending full-index order (the
        // shared iteration order of both representations), so bin sums are
        // bit-reproducible. Narrow targets use a flat accumulator; wide
        // ones a map — per-bin addition order is identical either way.
        if k <= DEFAULT_DENSE_CAP_BITS {
            let mut out = vec![0.0; dim_of(k) as usize];
            for (x, p) in self.iter() {
                out[project(x) as usize] += p;
            }
            Distribution {
                n_bits: k,
                mass: Mass::from_dense(k, out, DEFAULT_DENSE_THRESHOLD),
            }
        } else {
            let mut out: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
            for (x, p) in self.iter() {
                *out.entry(project(x)).or_insert(0.0) += p;
            }
            Distribution {
                n_bits: k,
                mass: Mass::from_sorted(k, out.into_iter().collect(), DEFAULT_DENSE_THRESHOLD),
            }
        }
    }
}

/// The bit-gather closure shared by the marginal traversals: maps a full
/// outcome index to its pattern over `positions`.
///
/// # Panics
///
/// Panics if any position is out of range (`>= n_bits`).
fn marginal_projector(n_bits: usize, positions: &[usize]) -> impl Fn(u64) -> u64 + '_ {
    for &p in positions {
        assert!(p < n_bits, "bit position {p} out of {n_bits} bits");
    }
    move |x: u64| {
        let mut y = 0u64;
        for (j, &pos) in positions.iter().enumerate() {
            y |= ((x >> pos) & 1) << j;
        }
        y
    }
}

/// Per-outcome measurement counts over `n_bits`-bit outcomes — the
/// finite-shot counterpart of [`Distribution`] (what hardware, and the
/// workspace's sampled execution mode, actually returns). Stored sparsely
/// by default, exactly like [`Distribution`].
///
/// Bit conventions match [`Distribution`]: outcome index bit `i`
/// corresponds to measured qubit `i`. Equality compares nonzero streams,
/// independent of representation.
#[derive(Debug, Clone)]
pub struct Counts {
    n_bits: usize,
    counts: Mass<u64>,
}

impl PartialEq for Counts {
    fn eq(&self, other: &Self) -> bool {
        self.n_bits == other.n_bits && self.counts.iter().eq(other.counts.iter())
    }
}

impl Eq for Counts {}

impl Counts {
    /// Builds a count table over `n_bits` outcomes from a raw count vector.
    /// `counts` shorter than `2^n_bits` is zero-padded (never-observed
    /// outcomes may be omitted). No width cap: nonzero entries define the
    /// storage.
    ///
    /// # Errors
    ///
    /// [`DistError::ExcessEntries`] if `counts` is longer than `2^n_bits`.
    pub fn try_from_counts(n_bits: usize, counts: Vec<u64>) -> Result<Self, DistError> {
        check_outcome_bits(n_bits);
        if u128::try_from(counts.len()).unwrap_or(u128::MAX) > dim_of(n_bits) {
            return Err(DistError::ExcessEntries {
                len: counts.len(),
                n_bits,
            });
        }
        Ok(Counts {
            n_bits,
            counts: Mass::from_dense(n_bits, counts, DEFAULT_DENSE_THRESHOLD),
        })
    }

    /// Builds a count table from raw `(outcome, count)` pairs — the native
    /// constructor for sparse samplers. Pairs need not be sorted;
    /// duplicate indices accumulate.
    ///
    /// # Errors
    ///
    /// [`DistError::IndexOutOfRange`] if any outcome does not fit
    /// `n_bits`.
    pub fn try_from_entries(n_bits: usize, entries: Vec<(u64, u64)>) -> Result<Self, DistError> {
        check_outcome_bits(n_bits);
        let entries = sorted_entries(n_bits, entries, |a: u64, b: u64| a + b)?;
        Ok(Counts {
            n_bits,
            counts: Mass::from_sorted(n_bits, entries, DEFAULT_DENSE_THRESHOLD),
        })
    }

    /// [`Counts::try_from_counts`], panicking on shape errors.
    ///
    /// Kept as a thin migration alias for call sites whose inputs are
    /// correct by construction; new code should prefer the `try_`
    /// constructor. Slated for removal.
    #[doc(hidden)]
    pub fn from_counts(n_bits: usize, counts: Vec<u64>) -> Self {
        match Self::try_from_counts(n_bits, counts) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of outcome bits.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Number of outcomes (`2^n_bits`).
    pub fn dim(&self) -> u128 {
        dim_of(self.n_bits)
    }

    /// Number of outcomes with at least one recorded shot.
    pub fn support_len(&self) -> usize {
        self.counts.support_len()
    }

    /// Whether the current storage is the dense fallback.
    pub fn is_dense(&self) -> bool {
        self.counts.is_dense()
    }

    /// Count of `outcome`; 0 when absent or out of range.
    pub fn count(&self, outcome: u64) -> u64 {
        self.counts.get(outcome)
    }

    /// Iterates the nonzero `(outcome, count)` pairs in ascending outcome
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter()
    }

    /// Total shots recorded.
    pub fn shots(&self) -> u64 {
        self.iter().map(|(_, c)| c).sum()
    }

    /// The empirical frequency of `outcome` (`count / shots`); 0.0 when no
    /// shots were recorded.
    pub fn frequency(&self, outcome: u64) -> f64 {
        let shots = self.shots();
        if shots == 0 {
            0.0
        } else {
            self.count(outcome) as f64 / shots as f64
        }
    }

    /// The full dense count vector, indexed by outcome.
    ///
    /// # Errors
    ///
    /// [`DistError::DenseCap`] if the outcome space exceeds
    /// [`DEFAULT_DENSE_CAP_BITS`].
    pub fn densify(&self) -> Result<Vec<u64>, DistError> {
        check_dense_cap(self.n_bits)?;
        let mut out = vec![0u64; self.dim() as usize];
        for (i, c) in self.iter() {
            out[i as usize] = c;
        }
        Ok(out)
    }

    /// Re-bins the storage under an explicit density threshold (see
    /// [`Distribution::with_density_threshold`]).
    pub fn with_density_threshold(self, threshold: f64) -> Self {
        let entries: Vec<(u64, u64)> = self.counts.iter().collect();
        Counts {
            n_bits: self.n_bits,
            counts: Mass::from_sorted(self.n_bits, entries, threshold),
        }
    }

    /// The plug-in estimator of the underlying distribution: empirical
    /// frequencies, normalized. Zero recorded shots yield the uniform
    /// distribution (consistent with [`Distribution::normalized`] on a
    /// zero-mass vector; like it, this panics for zero-shot tables wider
    /// than [`DEFAULT_DENSE_CAP_BITS`]).
    pub fn to_distribution(&self) -> Distribution {
        let entries: Vec<(u64, f64)> = self.iter().map(|(i, c)| (i, c as f64)).collect();
        Distribution::try_from_entries(self.n_bits, entries)
            .expect("count indices fit the same outcome space")
            .normalized()
    }

    /// Marginal counts over the given bit `positions` (bit `j` of the
    /// marginal index is bit `positions[j]` of the full index). Exact —
    /// marginalizing counts loses no shots.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    pub fn marginal(&self, positions: &[usize]) -> Counts {
        let project = marginal_projector(self.n_bits, positions);
        let k = positions.len();
        if k <= DEFAULT_DENSE_CAP_BITS {
            let mut out = vec![0u64; dim_of(k) as usize];
            for (x, c) in self.iter() {
                out[project(x) as usize] += c;
            }
            Counts {
                n_bits: k,
                counts: Mass::from_dense(k, out, DEFAULT_DENSE_THRESHOLD),
            }
        } else {
            let mut out: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
            for (x, c) in self.iter() {
                *out.entry(project(x)).or_insert(0) += c;
            }
            Counts {
                n_bits: k,
                counts: Mass::from_sorted(k, out.into_iter().collect(), DEFAULT_DENSE_THRESHOLD),
            }
        }
    }

    /// The binomial standard error of the empirical frequency of `outcome`:
    /// `√(p̂(1−p̂)/N)`. Infinite when no shots were recorded.
    pub fn std_error(&self, outcome: u64) -> f64 {
        let shots = self.shots();
        if shots == 0 {
            return f64::INFINITY;
        }
        let p = self.count(outcome) as f64 / shots as f64;
        (p * (1.0 - p) / shots as f64).sqrt()
    }

    /// The per-shot sampling dispersion of the empirical distribution:
    /// the l2-pooled [`Counts::std_error`] over the observed outcomes,
    /// rescaled to a single shot — `√(Σ_o p̂_o(1−p̂_o)) = √(1 − Σ_o p̂_o²)`.
    ///
    /// This is the multinomial analogue of a per-shot standard deviation:
    /// the total shot-noise "size" of one additional measurement. A
    /// deterministic outcome yields 0; the spread is maximal for the
    /// uniform distribution. It is the variance signal Neyman allocation
    /// consumes (`n_i ∝ σ_i`): programs whose outcome distributions are
    /// nearly deterministic need few shots, spread-out ones need many.
    ///
    /// Returns `None` when no shots were recorded (every `std_error` is
    /// infinite, so there is no finite pooled value).
    pub fn sampling_dispersion(&self) -> Option<f64> {
        let shots = self.shots();
        if shots == 0 {
            return None;
        }
        // Σ_o std_error(o)² · N  =  Σ_o p̂_o(1−p̂_o)  =  1 − Σ_o p̂_o²,
        // accumulated over the support only (zero-count outcomes
        // contribute 0 to both forms).
        let pooled: f64 = self
            .iter()
            .map(|(o, _)| {
                let se = self.std_error(o);
                se * se * shots as f64
            })
            .sum();
        Some(pooled.max(0.0).sqrt())
    }

    /// Accumulates another count table over the same outcome space — a
    /// sorted two-pointer merge of the nonzero streams.
    ///
    /// # Panics
    ///
    /// Panics if the bit counts differ.
    pub fn absorb(&mut self, other: &Counts) {
        assert_eq!(
            self.n_bits, other.n_bits,
            "cannot merge counts over different outcome spaces"
        );
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.support_len());
        {
            let mut a = self.iter().peekable();
            let mut b = other.iter().peekable();
            loop {
                match (a.peek().copied(), b.peek().copied()) {
                    (Some((i, x)), Some((j, y))) => {
                        if i < j {
                            merged.push((i, x));
                            a.next();
                        } else if j < i {
                            merged.push((j, y));
                            b.next();
                        } else {
                            merged.push((i, x + y));
                            a.next();
                            b.next();
                        }
                    }
                    (Some(e), None) => {
                        merged.push(e);
                        a.next();
                    }
                    (None, Some(e)) => {
                        merged.push(e);
                        b.next();
                    }
                    (None, None) => break,
                }
            }
        }
        self.counts = Mass::from_sorted(self.n_bits, merged, DEFAULT_DENSE_THRESHOLD);
    }
}

/// A sampled scalar estimate with its one-sigma shot-noise error bar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The point estimate.
    pub value: f64,
    /// One standard error of the estimator under multinomial shot noise.
    pub std_error: f64,
}

impl Estimate {
    /// Whether `value` lies within `k` of *this* estimate's standard
    /// errors. To compare two noisy estimates, fold their bars together
    /// first (`√(σ₁² + σ₂²)`) — this check uses only `self.std_error`.
    pub fn consistent_with(&self, value: f64, k: f64) -> bool {
        (self.value - value).abs() <= k * self.std_error
    }
}

/// The Hellinger fidelity `(Σᵢ √(pᵢ qᵢ))²` between two distributions over
/// the same outcome space — the metric every table and figure of the paper
/// reports. Inputs are normalized internally, so sub-normalized
/// distributions compare by shape. Computed as a sorted-merge traversal of
/// the two supports' intersection — cost scales with the supports, never
/// with `2^n_bits`.
///
/// # Panics
///
/// Panics if the distributions have different bit counts.
pub fn hellinger_fidelity(p: &Distribution, q: &Distribution) -> f64 {
    assert_eq!(
        p.n_bits, q.n_bits,
        "fidelity requires matching outcome spaces"
    );
    let (tp, tq) = (p.total(), q.total());
    if tp <= 0.0 || tq <= 0.0 {
        return 0.0;
    }
    let scale = 1.0 / (tp * tq).sqrt();
    let mut bc = 0.0f64;
    let mut qs = q.iter().peekable();
    for (i, a) in p.iter() {
        while matches!(qs.peek(), Some(&(j, _)) if j < i) {
            qs.next();
        }
        if let Some(&(j, b)) = qs.peek() {
            if j == i {
                bc += (a.max(0.0) * b.max(0.0)).sqrt();
            }
        }
    }
    let f = (bc * scale).powi(2);
    f.min(1.0)
}

/// The plug-in Hellinger fidelity between two sampled count tables, with a
/// delta-method shot-noise error bar.
///
/// The point estimate is [`hellinger_fidelity`] of the empirical
/// frequencies. For the error bar, write `BC = Σᵢ √(p̂ᵢ q̂ᵢ)`; under
/// independent multinomial sampling the delta method gives
/// `Var(BC) ≈ (1 − BC²)/4 · (1/N_p + 1/N_q)`, and `F = BC²` propagates to
/// `σ_F ≈ 2·BC·σ_BC`. The bar is infinite when either side recorded zero
/// shots.
///
/// # Panics
///
/// Panics if the count tables have different bit counts.
pub fn hellinger_fidelity_sampled(p: &Counts, q: &Counts) -> Estimate {
    assert_eq!(
        p.n_bits, q.n_bits,
        "fidelity requires matching outcome spaces"
    );
    let value = hellinger_fidelity(&p.to_distribution(), &q.to_distribution());
    let (np, nq) = (p.shots() as f64, q.shots() as f64);
    if np == 0.0 || nq == 0.0 {
        return Estimate {
            value,
            std_error: f64::INFINITY,
        };
    }
    let bc = value.sqrt();
    let var_bc = (1.0 - value).max(0.0) / 4.0 * (1.0 / np + 1.0 / nq);
    Estimate {
        value,
        std_error: 2.0 * bc * var_bc.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_probs_pads_and_rejects_overflow() {
        let d = Distribution::try_from_probs(2, vec![0.5, 0.5]).unwrap();
        assert_eq!(d.dim(), 4);
        assert_eq!(d.prob(2), 0.0);
        assert_eq!(d.prob(99), 0.0);
        assert_eq!(d.n_bits(), 2);
        assert_eq!(d.support_len(), 2);
    }

    #[test]
    fn from_probs_rejects_too_many_entries() {
        let err = Distribution::try_from_probs(1, vec![0.2; 3]).expect_err("3 entries, 1 bit");
        assert_eq!(err, DistError::ExcessEntries { len: 3, n_bits: 1 });
        assert!(err.to_string().contains("do not fit"));
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn panicking_alias_still_rejects_too_many_entries() {
        let _ = Distribution::from_probs(1, vec![0.2; 3]);
    }

    #[test]
    fn wide_sparse_tables_construct_but_refuse_densify() {
        // 40 bits is far past the dense cap; the sparse map holds it fine.
        let d = Distribution::try_from_entries(40, vec![(0, 0.5), (1 << 39, 0.5)]).unwrap();
        assert_eq!(d.n_bits(), 40);
        assert_eq!(d.support_len(), 2);
        assert!(!d.is_dense());
        assert!((d.prob(1 << 39) - 0.5).abs() < 1e-15);
        let err = d.densify().expect_err("40 bits exceeds the dense cap");
        assert_eq!(
            err,
            DistError::DenseCap {
                n_bits: 40,
                cap_bits: DEFAULT_DENSE_CAP_BITS
            }
        );
        assert!(err.to_string().contains("allocation cap"));
    }

    #[test]
    fn entry_constructor_sorts_merges_and_validates() {
        let d = Distribution::try_from_entries(2, vec![(3, 0.25), (0, 0.5), (3, 0.25), (1, 0.0)])
            .unwrap();
        assert_eq!(d.prob(3), 0.5);
        assert_eq!(d.prob(0), 0.5);
        assert_eq!(d.support_len(), 2);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![(0u64, 0.5), (3u64, 0.5)]);
        let err = Distribution::try_from_entries(2, vec![(4, 1.0)]).unwrap_err();
        assert_eq!(
            err,
            DistError::IndexOutOfRange {
                index: 4,
                n_bits: 2
            }
        );
        assert!(Counts::try_from_entries(1, vec![(2, 1)]).is_err());
    }

    #[test]
    fn equality_is_representation_independent() {
        let probs = vec![0.5, 0.0, 0.25, 0.25];
        let canonical = Distribution::try_from_probs(2, probs.clone()).unwrap();
        let dense = canonical.clone().with_density_threshold(0.0);
        let sparse = canonical.clone().with_density_threshold(2.0);
        assert!(dense.is_dense());
        assert!(!sparse.is_dense());
        assert_eq!(dense, sparse);
        assert_eq!(canonical, sparse);
        assert_eq!(dense.densify().unwrap(), sparse.densify().unwrap());
        // Content differences are still detected.
        let other = Distribution::try_from_probs(2, vec![0.5, 0.0, 0.25, 0.0]).unwrap();
        assert_ne!(canonical, other);
    }

    #[test]
    fn canonical_representation_follows_the_density_threshold() {
        // Half-full on 2 bits → dense; nearly empty on 10 bits → sparse.
        assert!(Distribution::try_from_probs(2, vec![0.5, 0.5])
            .unwrap()
            .is_dense());
        let sparse = Distribution::try_from_probs(10, vec![1.0]).unwrap();
        assert!(!sparse.is_dense());
        assert_eq!(sparse.support_len(), 1);
    }

    #[test]
    #[should_panic(expected = "allocation cap")]
    fn uniform_rejects_uncapped_width() {
        let _ = Distribution::uniform(DEFAULT_DENSE_CAP_BITS + 1);
    }

    #[test]
    fn normalized_is_a_probability_vector() {
        let d = Distribution::try_from_probs(2, vec![3.0, -1.0, 1.0, 0.0])
            .unwrap()
            .normalized();
        assert!((d.total() - 1.0).abs() < 1e-12);
        assert!(d.iter().all(|(_, p)| p >= 0.0));
        assert!((d.prob(0) - 0.75).abs() < 1e-12, "negatives clamp to zero");
        assert_eq!(d.prob(1), 0.0);
    }

    #[test]
    fn normalized_of_zero_mass_is_uniform() {
        let d = Distribution::try_from_probs(1, vec![0.0, 0.0])
            .unwrap()
            .normalized();
        assert!((d.prob(0) - 0.5).abs() < 1e-12);
        assert!((d.prob(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginal_reorders_bits() {
        // p(bit0=1) = 0.3, p(bit1=1) = 0.6, independent.
        let probs = vec![0.28, 0.12, 0.42, 0.18];
        let d = Distribution::try_from_probs(2, probs).unwrap();
        let m0 = d.marginal(&[0]);
        assert!((m0.prob(1) - 0.3).abs() < 1e-12);
        let m1 = d.marginal(&[1]);
        assert!((m1.prob(1) - 0.6).abs() < 1e-12);
        // Swapped pair marginal: bit 0 of the result is original bit 1.
        let swapped = d.marginal(&[1, 0]);
        assert!((swapped.prob(0b01) - d.prob(0b10)).abs() < 1e-12);
        assert!((swapped.prob(0b10) - d.prob(0b01)).abs() < 1e-12);
    }

    #[test]
    fn wide_marginal_never_allocates_the_outcome_space() {
        // A 48-bit distribution with two outcomes: marginals must come out
        // of a support traversal, not a 2^48 table.
        let hi = (1u64 << 47) | 1;
        let d = Distribution::try_from_entries(48, vec![(0, 0.5), (hi, 0.5)]).unwrap();
        let m = d.marginal(&[0, 47]);
        assert!((m.prob(0b00) - 0.5).abs() < 1e-15);
        assert!((m.prob(0b11) - 0.5).abs() < 1e-15);
        assert_eq!(m.support_len(), 2);
    }

    #[test]
    fn hellinger_bounds_identity_and_symmetry() {
        let p = Distribution::try_from_probs(3, (0..8).map(|i| (i + 1) as f64).collect())
            .unwrap()
            .normalized();
        let q = Distribution::try_from_probs(3, (0..8).map(|i| ((i * 3) % 7) as f64).collect())
            .unwrap()
            .normalized();
        let f = hellinger_fidelity(&p, &q);
        assert!((0.0..=1.0).contains(&f));
        assert!((hellinger_fidelity(&p, &p) - 1.0).abs() < 1e-12);
        assert!((f - hellinger_fidelity(&q, &p)).abs() < 1e-15);
        // Disjoint supports → 0.
        let a = Distribution::try_from_probs(1, vec![1.0, 0.0]).unwrap();
        let b = Distribution::try_from_probs(1, vec![0.0, 1.0]).unwrap();
        assert_eq!(hellinger_fidelity(&a, &b), 0.0);
    }

    #[test]
    fn hellinger_ignores_scale() {
        let p = Distribution::try_from_probs(2, vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let scaled = Distribution::try_from_probs(2, vec![0.2, 0.4, 0.6, 0.8]).unwrap();
        assert!((hellinger_fidelity(&p, &scaled) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hellinger_works_on_wide_sparse_supports() {
        let p = Distribution::try_from_entries(40, vec![(7, 0.5), (1 << 39, 0.5)]).unwrap();
        let q = Distribution::try_from_entries(40, vec![(7, 1.0)]).unwrap();
        assert!((hellinger_fidelity(&p, &p) - 1.0).abs() < 1e-12);
        assert!((hellinger_fidelity(&p, &q) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counts_pad_total_and_frequencies() {
        let c = Counts::try_from_counts(2, vec![30, 10]).unwrap();
        assert_eq!(c.dim(), 4);
        assert_eq!(c.count(1), 10);
        assert_eq!(c.count(3), 0);
        assert_eq!(c.shots(), 40);
        assert!((c.frequency(0) - 0.75).abs() < 1e-12);
        let d = c.to_distribution();
        assert!((d.total() - 1.0).abs() < 1e-12);
        assert!((d.prob(0) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn counts_reject_too_many_entries() {
        let _ = Counts::from_counts(1, vec![1; 3]);
    }

    #[test]
    fn zero_shot_counts_yield_uniform_and_infinite_error() {
        let c = Counts::try_from_counts(1, vec![]).unwrap();
        let d = c.to_distribution();
        assert!((d.prob(0) - 0.5).abs() < 1e-12);
        assert!(c.std_error(0).is_infinite());
        assert_eq!(c.frequency(1), 0.0);
    }

    #[test]
    fn counts_marginal_loses_no_shots_and_reorders_bits() {
        let c = Counts::try_from_counts(2, vec![7, 3, 2, 8]).unwrap();
        let m0 = c.marginal(&[0]);
        assert_eq!(m0.densify().unwrap(), vec![9, 11]);
        assert_eq!(m0.shots(), c.shots());
        let swapped = c.marginal(&[1, 0]);
        assert_eq!(swapped.count(0b01), c.count(0b10));
        assert_eq!(swapped.count(0b10), c.count(0b01));
    }

    #[test]
    fn counts_absorb_merges_sorted_streams() {
        let mut a = Counts::try_from_counts(1, vec![1, 2]).unwrap();
        a.absorb(&Counts::try_from_counts(1, vec![10, 20]).unwrap());
        assert_eq!(a.densify().unwrap(), vec![11, 22]);
        // Disjoint supports merge too (and across representations).
        let mut p = Counts::try_from_entries(33, vec![(1 << 32, 5)]).unwrap();
        p.absorb(&Counts::try_from_entries(33, vec![(3, 2)]).unwrap());
        assert_eq!(p.count(3), 2);
        assert_eq!(p.count(1 << 32), 5);
        assert_eq!(p.shots(), 7);
    }

    #[test]
    fn std_error_shrinks_with_shots() {
        let small = Counts::try_from_counts(1, vec![50, 50]).unwrap();
        let large = Counts::try_from_counts(1, vec![5000, 5000]).unwrap();
        assert!(large.std_error(0) < small.std_error(0));
        // √(0.25/10000) = 0.005.
        assert!((large.std_error(0) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn sampled_fidelity_matches_plugin_estimate_with_shrinking_bars() {
        let p = Counts::try_from_counts(1, vec![60, 40]).unwrap();
        let q = Counts::try_from_counts(1, vec![40, 60]).unwrap();
        let est = hellinger_fidelity_sampled(&p, &q);
        let exact = hellinger_fidelity(&p.to_distribution(), &q.to_distribution());
        assert!((est.value - exact).abs() < 1e-12);
        assert!(est.std_error > 0.0 && est.std_error < 0.2);
        // 100x the shots → ~10x tighter bar.
        let p10 = Counts::try_from_counts(1, vec![6000, 4000]).unwrap();
        let q10 = Counts::try_from_counts(1, vec![4000, 6000]).unwrap();
        let tight = hellinger_fidelity_sampled(&p10, &q10);
        assert!(tight.std_error < est.std_error / 5.0);
        assert!(est.consistent_with(exact, 1.0));
        // Identical tables → fidelity 1 with a vanishing bar.
        let same = hellinger_fidelity_sampled(&p, &p);
        assert!((same.value - 1.0).abs() < 1e-12);
        assert!(same.std_error < 1e-6);
        // Zero shots on either side → infinite bar.
        let empty = Counts::try_from_counts(1, vec![]).unwrap();
        assert!(hellinger_fidelity_sampled(&p, &empty)
            .std_error
            .is_infinite());
    }
}
