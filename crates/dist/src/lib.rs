//! Outcome distributions over measured qubits, Hellinger fidelity, and the
//! Bayesian local/global recombination QuTracer and its baselines share.
//!
//! Every mitigation method in this workspace ends the same way: a noisy
//! *global* distribution over all measured qubits is refined with one or
//! more high-fidelity *local* distributions over small subsets (Jigsaw's
//! measurement subsetting, QuTracer's traced subsets, SQEM's virtualized
//! checks). This crate owns that final, purely classical stage.
//!
//! # Example
//!
//! ```
//! use qt_dist::{hellinger_fidelity, recombine, Distribution};
//!
//! let global = Distribution::from_probs(2, vec![0.4, 0.1, 0.4, 0.1]);
//! let local = Distribution::from_probs(1, vec![0.3, 0.7]); // bit 1
//! let refined = recombine::bayesian_update(&global, &local, &[1]);
//! assert!((refined.total() - 1.0).abs() < 1e-12);
//! assert!((refined.marginal(&[1]).prob(1) - 0.7).abs() < 1e-12);
//! assert!(hellinger_fidelity(&refined, &refined) > 1.0 - 1e-12);
//! ```

pub mod recombine;

/// A (sub-)normalized probability distribution over `n_bits`-bit outcomes.
///
/// Outcome index bit `i` corresponds to measured qubit `i` of whichever
/// measurement list produced the distribution (the convention used across
/// the workspace: bit `i` of the index = `measured[i]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    n_bits: usize,
    probs: Vec<f64>,
}

impl Distribution {
    /// Builds a distribution over `n_bits` outcomes from raw probabilities.
    ///
    /// `probs` shorter than `2^n_bits` is zero-padded (finite-shot runs may
    /// omit trailing never-observed outcomes). Values are *not* normalized;
    /// call [`Distribution::normalized`] for that.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is longer than `2^n_bits`.
    pub fn from_probs(n_bits: usize, mut probs: Vec<f64>) -> Self {
        let dim = 1usize << n_bits;
        assert!(
            probs.len() <= dim,
            "{} probabilities do not fit {} bits",
            probs.len(),
            n_bits
        );
        probs.resize(dim, 0.0);
        Distribution { n_bits, probs }
    }

    /// The uniform distribution over `n_bits` outcomes.
    pub fn uniform(n_bits: usize) -> Self {
        let dim = 1usize << n_bits;
        Distribution {
            n_bits,
            probs: vec![1.0 / dim as f64; dim],
        }
    }

    /// Number of outcome bits.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Number of outcomes (`2^n_bits`).
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the distribution has zero outcomes (never: kept for the
    /// conventional `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The raw probability vector, indexed by outcome.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Probability of `outcome`, 0.0 when out of range.
    pub fn prob(&self, outcome: usize) -> f64 {
        self.probs.get(outcome).copied().unwrap_or(0.0)
    }

    /// Total mass (1.0 for a normalized distribution).
    pub fn total(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Clamps negatives to zero and rescales to unit mass. A distribution
    /// with no positive mass becomes uniform.
    pub fn normalized(mut self) -> Self {
        let mut total = 0.0;
        for p in &mut self.probs {
            if *p < 0.0 {
                *p = 0.0;
            }
            total += *p;
        }
        if total <= 0.0 {
            return Distribution::uniform(self.n_bits);
        }
        let inv = 1.0 / total;
        for p in &mut self.probs {
            *p *= inv;
        }
        self
    }

    /// The marginal distribution over the given bit `positions`: bit `j` of
    /// the marginal index is bit `positions[j]` of the full index.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    pub fn marginal(&self, positions: &[usize]) -> Distribution {
        for &p in positions {
            assert!(
                p < self.n_bits,
                "bit position {p} out of {} bits",
                self.n_bits
            );
        }
        let dim = 1usize << positions.len();
        let mut out = vec![0.0; dim];
        for (x, &p) in self.probs.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let mut y = 0usize;
            for (j, &pos) in positions.iter().enumerate() {
                y |= ((x >> pos) & 1) << j;
            }
            out[y] += p;
        }
        Distribution {
            n_bits: positions.len(),
            probs: out,
        }
    }

    /// Iterates `(outcome, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.probs.iter().copied().enumerate()
    }
}

/// The Hellinger fidelity `(Σᵢ √(pᵢ qᵢ))²` between two distributions over
/// the same outcome space — the metric every table and figure of the paper
/// reports. Inputs are normalized internally, so sub-normalized
/// distributions compare by shape.
///
/// # Panics
///
/// Panics if the distributions have different bit counts.
pub fn hellinger_fidelity(p: &Distribution, q: &Distribution) -> f64 {
    assert_eq!(
        p.n_bits, q.n_bits,
        "fidelity requires matching outcome spaces"
    );
    let (tp, tq) = (p.total(), q.total());
    if tp <= 0.0 || tq <= 0.0 {
        return 0.0;
    }
    let scale = 1.0 / (tp * tq).sqrt();
    let bc: f64 = p
        .probs
        .iter()
        .zip(&q.probs)
        .map(|(&a, &b)| (a.max(0.0) * b.max(0.0)).sqrt())
        .sum();
    let f = (bc * scale).powi(2);
    f.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_probs_pads_and_rejects_overflow() {
        let d = Distribution::from_probs(2, vec![0.5, 0.5]);
        assert_eq!(d.len(), 4);
        assert_eq!(d.prob(2), 0.0);
        assert_eq!(d.prob(99), 0.0);
        assert_eq!(d.n_bits(), 2);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn from_probs_rejects_too_many_entries() {
        let _ = Distribution::from_probs(1, vec![0.2; 3]);
    }

    #[test]
    fn normalized_is_a_probability_vector() {
        let d = Distribution::from_probs(2, vec![3.0, -1.0, 1.0, 0.0]).normalized();
        assert!((d.total() - 1.0).abs() < 1e-12);
        assert!(d.probs().iter().all(|&p| p >= 0.0));
        assert!((d.prob(0) - 0.75).abs() < 1e-12, "negatives clamp to zero");
    }

    #[test]
    fn normalized_of_zero_mass_is_uniform() {
        let d = Distribution::from_probs(1, vec![0.0, 0.0]).normalized();
        assert!((d.prob(0) - 0.5).abs() < 1e-12);
        assert!((d.prob(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginal_reorders_bits() {
        // p(bit0=1) = 0.3, p(bit1=1) = 0.6, independent.
        let probs = vec![0.28, 0.12, 0.42, 0.18];
        let d = Distribution::from_probs(2, probs);
        let m0 = d.marginal(&[0]);
        assert!((m0.prob(1) - 0.3).abs() < 1e-12);
        let m1 = d.marginal(&[1]);
        assert!((m1.prob(1) - 0.6).abs() < 1e-12);
        // Swapped pair marginal: bit 0 of the result is original bit 1.
        let swapped = d.marginal(&[1, 0]);
        assert!((swapped.prob(0b01) - d.prob(0b10)).abs() < 1e-12);
        assert!((swapped.prob(0b10) - d.prob(0b01)).abs() < 1e-12);
    }

    #[test]
    fn hellinger_bounds_identity_and_symmetry() {
        let p = Distribution::from_probs(3, (0..8).map(|i| (i + 1) as f64).collect()).normalized();
        let q = Distribution::from_probs(3, (0..8).map(|i| ((i * 3) % 7) as f64).collect())
            .normalized();
        let f = hellinger_fidelity(&p, &q);
        assert!((0.0..=1.0).contains(&f));
        assert!((hellinger_fidelity(&p, &p) - 1.0).abs() < 1e-12);
        assert!((f - hellinger_fidelity(&q, &p)).abs() < 1e-15);
        // Disjoint supports → 0.
        let a = Distribution::from_probs(1, vec![1.0, 0.0]);
        let b = Distribution::from_probs(1, vec![0.0, 1.0]);
        assert_eq!(hellinger_fidelity(&a, &b), 0.0);
    }

    #[test]
    fn hellinger_ignores_scale() {
        let p = Distribution::from_probs(2, vec![0.1, 0.2, 0.3, 0.4]);
        let scaled = Distribution::from_probs(2, vec![0.2, 0.4, 0.6, 0.8]);
        assert!((hellinger_fidelity(&p, &scaled) - 1.0).abs() < 1e-12);
    }
}
