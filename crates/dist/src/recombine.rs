//! Bayesian local/global recombination (Jigsaw's update rule, reused by
//! QuTracer and SQEM).
//!
//! Given a noisy global distribution `G` and a higher-fidelity local
//! distribution `L` over a subset `S` of its bits, each global outcome is
//! reweighted by how much more (or less) likely its `S`-pattern is under
//! `L` than under `G`'s own marginal:
//!
//! ```text
//! G'(x) ∝ G(x) · L(x|S) / G_S(x|S)
//! ```
//!
//! The update leaves conditional correlations *within* the rest of the
//! register untouched while pinning the subset marginal to the trusted
//! local distribution; applying it for every subset folds all local
//! information into the global picture (Fig. 4, stage ❸ of the paper).

use crate::{Counts, Distribution};

/// Bin-mass floor below which a marginal bin is considered unobserved and
/// its ratio skipped (no information to redistribute).
const MARGINAL_FLOOR: f64 = 1e-15;

/// A shape mismatch between a Bayesian update's inputs.
///
/// These were `assert!` panics before the staged pipeline grew typed
/// errors; recombination runs at the end of an expensive execution stage,
/// where aborting the process loses every result already paid for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecombineError {
    /// The local distribution's bit count does not match the subset size.
    SubsetMismatch {
        /// Bits of the local distribution.
        local_bits: usize,
        /// Positions the caller asked to update.
        positions: usize,
    },
    /// A subset position indexes a bit the global distribution lacks.
    PositionOutOfRange {
        /// The offending bit position.
        position: usize,
        /// Bits of the global distribution.
        n_bits: usize,
    },
}

impl std::fmt::Display for RecombineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecombineError::SubsetMismatch {
                local_bits,
                positions,
            } => write!(
                f,
                "local distribution has {local_bits} bits but {positions} positions were given"
            ),
            RecombineError::PositionOutOfRange { position, n_bits } => {
                write!(f, "bit position {position} out of {n_bits} global bits")
            }
        }
    }
}

impl std::error::Error for RecombineError {}

/// One Bayesian update of `global` with `local` over the bit `positions`
/// (positions index bits of `global`; bit `j` of `local`'s outcome space is
/// `positions[j]`). Returns a normalized distribution whose marginal over
/// `positions` equals `local` on the patterns `global` assigns mass to.
///
/// Marginal bins below the observation floor keep their (negligible)
/// global mass exactly — the local's mass on such patterns cannot be
/// honored without inventing probability, so it is redistributed over the
/// *observed* patterns in the local's proportions. Mass is conserved by
/// construction: the floor branch no longer leans on the final
/// normalization to paper over a sub-unit posterior, which previously
/// inflated unobserved bins by the inverse of the local's observed mass.
///
/// # Errors
///
/// [`RecombineError`] on a local/subset size mismatch or an out-of-range
/// position.
pub fn try_bayesian_update(
    global: &Distribution,
    local: &Distribution,
    positions: &[usize],
) -> Result<Distribution, RecombineError> {
    if local.n_bits() != positions.len() {
        return Err(RecombineError::SubsetMismatch {
            local_bits: local.n_bits(),
            positions: positions.len(),
        });
    }
    if let Some(&position) = positions.iter().find(|&&p| p >= global.n_bits()) {
        return Err(RecombineError::PositionOutOfRange {
            position,
            n_bits: global.n_bits(),
        });
    }
    let local = local.clone().normalized();
    let marginal = global.marginal(positions).normalized();
    let g_total = global.total();
    if g_total <= 0.0 {
        return Ok(Distribution::uniform(global.n_bits()));
    }

    // Partition the subset patterns into observed (marginal mass at or
    // above the floor) and unobserved. Unobserved patterns keep their
    // global mass; the local mass they would have received is rescaled
    // onto the observed patterns so the posterior stays normalized
    // without a corrective global rescale.
    let observed_local: f64 = (0..local.len())
        .filter(|&s| marginal.prob(s) >= MARGINAL_FLOOR)
        .map(|s| local.prob(s))
        .sum();
    let unobserved_mass: f64 = (0..local.len())
        .filter(|&s| marginal.prob(s) < MARGINAL_FLOOR)
        .map(|s| marginal.prob(s))
        .sum();
    // Precompute the per-pattern ratio: target subset mass / current mass.
    let ratios: Vec<f64> = (0..local.len())
        .map(|s| {
            let m = marginal.prob(s);
            if m < MARGINAL_FLOOR || observed_local <= 0.0 {
                // Unobserved pattern (or a local with no mass anywhere the
                // global looked): keep the global's mass untouched.
                1.0
            } else {
                local.prob(s) * (1.0 - unobserved_mass) / (observed_local * m)
            }
        })
        .collect();

    let probs = global
        .iter()
        .map(|(x, p)| {
            let mut s = 0usize;
            for (j, &pos) in positions.iter().enumerate() {
                s |= ((x >> pos) & 1) << j;
            }
            p.max(0.0) * ratios[s]
        })
        .collect();
    Ok(Distribution::from_probs(global.n_bits(), probs).normalized())
}

/// [`try_bayesian_update`], panicking on shape mismatches — the historical
/// signature, kept for callers whose inputs are correct by construction.
///
/// # Panics
///
/// Panics if `local`'s bit count does not match `positions.len()` or any
/// position is out of range.
pub fn bayesian_update(
    global: &Distribution,
    local: &Distribution,
    positions: &[usize],
) -> Distribution {
    try_bayesian_update(global, local, positions).unwrap_or_else(|e| panic!("{e}"))
}

/// Folds every `(local, positions)` pair into `global` by sequential
/// Bayesian updates, then normalizes — the full recombination stage shared
/// by QuTracer, Jigsaw and SQEM.
///
/// Updates are applied in the given order; with overlapping subsets later
/// updates take precedence on the shared bits (the workloads here use
/// disjoint or symmetric subsets, where order is immaterial).
///
/// # Errors
///
/// [`RecombineError`] on the first shape-mismatched pair.
pub fn try_bayesian_update_all(
    global: &Distribution,
    locals: &[(Distribution, Vec<usize>)],
) -> Result<Distribution, RecombineError> {
    let mut acc = global.clone().normalized();
    for (local, positions) in locals {
        acc = try_bayesian_update(&acc, local, positions)?;
    }
    Ok(acc)
}

/// [`try_bayesian_update_all`], panicking on shape mismatches.
///
/// # Panics
///
/// Panics if any pair's bit count does not match its positions or a
/// position is out of range.
pub fn bayesian_update_all(
    global: &Distribution,
    locals: &[(Distribution, Vec<usize>)],
) -> Distribution {
    try_bayesian_update_all(global, locals).unwrap_or_else(|e| panic!("{e}"))
}

/// The finite-shot Bayesian update (the paper's `P(x|s)` over sampled
/// counts): plug-in empirical frequencies on both sides. Subset patterns
/// the global counts never landed in are genuinely unobserved here (exact
/// zeros, not numeric dust), so the observation-floor handling of
/// [`try_bayesian_update`] is load-bearing rather than defensive.
///
/// # Errors
///
/// [`RecombineError`] on a local/subset size mismatch or an out-of-range
/// position.
pub fn bayesian_update_counts(
    global: &Counts,
    local: &Counts,
    positions: &[usize],
) -> Result<Distribution, RecombineError> {
    // `to_distribution` preserves bit counts, so `try_bayesian_update`'s
    // own shape validation covers the count tables too.
    try_bayesian_update(
        &global.to_distribution(),
        &local.to_distribution(),
        positions,
    )
}

/// Folds every sampled `(local, positions)` pair into the sampled global —
/// [`bayesian_update_all`] over counts.
///
/// # Errors
///
/// [`RecombineError`] on the first shape-mismatched pair.
pub fn bayesian_update_all_counts(
    global: &Counts,
    locals: &[(Counts, Vec<usize>)],
) -> Result<Distribution, RecombineError> {
    let mut acc = global.to_distribution();
    for (local, positions) in locals {
        acc = try_bayesian_update(&acc, &local.to_distribution(), positions)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn product_2q(p0: f64, p1: f64) -> Distribution {
        // Independent bits: P(bit0 = 1) = p0, P(bit1 = 1) = p1.
        Distribution::from_probs(
            2,
            vec![
                (1.0 - p0) * (1.0 - p1),
                p0 * (1.0 - p1),
                (1.0 - p0) * p1,
                p0 * p1,
            ],
        )
    }

    #[test]
    fn update_pins_the_subset_marginal() {
        let global = Distribution::from_probs(3, (1..=8).map(f64::from).collect()).normalized();
        let local = Distribution::from_probs(1, vec![0.9, 0.1]);
        let updated = bayesian_update(&global, &local, &[2]);
        assert!((updated.total() - 1.0).abs() < 1e-12);
        let m = updated.marginal(&[2]);
        assert!((m.prob(0) - 0.9).abs() < 1e-12);
        assert!((m.prob(1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn update_preserves_conditionals_elsewhere() {
        let global = product_2q(0.3, 0.6);
        let local = Distribution::from_probs(1, vec![0.5, 0.5]);
        let updated = bayesian_update(&global, &local, &[0]);
        // Bit 1 was independent of bit 0, so its marginal must not move.
        let m1 = updated.marginal(&[1]);
        assert!((m1.prob(1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn neutral_local_is_a_no_op() {
        let global = Distribution::from_probs(2, vec![0.4, 0.1, 0.3, 0.2]);
        let local = global.marginal(&[1]);
        let updated = bayesian_update(&global, &local, &[1]);
        for (x, p) in global.clone().normalized().iter() {
            assert!((updated.prob(x) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_mass_patterns_stay_zero() {
        // Global has no mass on bit0 = 1; the local cannot resurrect it.
        let global = Distribution::from_probs(2, vec![0.7, 0.0, 0.3, 0.0]);
        let local = Distribution::from_probs(1, vec![0.5, 0.5]);
        let updated = bayesian_update(&global, &local, &[0]);
        assert_eq!(updated.prob(0b01), 0.0);
        assert_eq!(updated.prob(0b11), 0.0);
        assert!((updated.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn update_all_round_trips_known_two_qubit_marginal() {
        // A correlated 3-bit global; feed back its own exact pair marginal
        // over bits (0, 2) plus a single-bit marginal over bit 1: the
        // distribution must be unchanged (round trip).
        let global =
            Distribution::from_probs(3, vec![0.22, 0.03, 0.07, 0.18, 0.05, 0.15, 0.2, 0.1]);
        let locals = vec![
            (global.marginal(&[0, 2]), vec![0, 2]),
            (global.marginal(&[1]), vec![1]),
        ];
        let updated = bayesian_update_all(&global, &locals);
        for (x, p) in global.iter() {
            assert!(
                (updated.prob(x) - p).abs() < 1e-12,
                "outcome {x}: {} vs {p}",
                updated.prob(x)
            );
        }
    }

    #[test]
    fn under_floor_marginals_conserve_mass() {
        // Regression: bit 0's pattern `1` carries marginal mass below the
        // observation floor. Its ratio is 1.0; previously the posterior was
        // only renormalized globally afterwards, which inflated the
        // unobserved bin by the inverse of the local's observed mass
        // (1/0.6 here). The mass-conserving update keeps it exactly.
        let tiny = 8e-16;
        let global = Distribution::from_probs(2, vec![0.7 - tiny, tiny, 0.3, 0.0]);
        // The local insists on mass 0.4 for the unobserved pattern; only
        // the remaining 0.6 is honorable.
        let local = Distribution::from_probs(1, vec![0.6, 0.4]);
        let updated = bayesian_update(&global, &local, &[0]);
        assert!((updated.total() - 1.0).abs() < 1e-12, "mass conserved");
        let m = updated.marginal(&[0]);
        // The unobserved pattern keeps its prior mass bit-for-bit (no
        // 1/0.6 inflation), and the observed pattern absorbs the rest.
        assert!(
            (m.prob(1) - tiny).abs() < tiny * 1e-6,
            "unobserved mass moved: {} vs {tiny}",
            m.prob(1)
        );
        assert!((m.prob(0) - (1.0 - tiny)).abs() < 1e-12);
        // Conditionals within the observed pattern are untouched.
        assert!((updated.prob(0b00) / updated.prob(0b10) - (0.7 - tiny) / 0.3).abs() < 1e-9);
    }

    #[test]
    fn typed_errors_replace_shape_asserts() {
        let global = Distribution::uniform(2);
        let local = Distribution::uniform(1);
        assert_eq!(
            try_bayesian_update(&global, &local, &[0, 1]),
            Err(RecombineError::SubsetMismatch {
                local_bits: 1,
                positions: 2
            })
        );
        assert_eq!(
            try_bayesian_update(&global, &local, &[5]),
            Err(RecombineError::PositionOutOfRange {
                position: 5,
                n_bits: 2
            })
        );
        let e = try_bayesian_update(&global, &local, &[5]).unwrap_err();
        assert!(e.to_string().contains('5'), "{e}");
        assert!(
            try_bayesian_update_all(&global, &[(local, vec![0, 1])]).is_err(),
            "update_all surfaces the same errors"
        );
    }

    #[test]
    fn counts_update_matches_plugin_frequencies() {
        let global = Counts::from_counts(2, vec![40, 10, 40, 10]);
        let local = Counts::from_counts(1, vec![30, 70]); // bit 1
        let refined = bayesian_update_counts(&global, &local, &[1]).unwrap();
        assert!((refined.total() - 1.0).abs() < 1e-12);
        assert!((refined.marginal(&[1]).prob(1) - 0.7).abs() < 1e-12);
        // Equivalent to the exact update on the empirical frequencies.
        let exact = bayesian_update(&global.to_distribution(), &local.to_distribution(), &[1]);
        for (x, p) in exact.iter() {
            assert!((refined.prob(x) - p).abs() < 1e-12);
        }
        // Never-sampled patterns stay at zero.
        let sparse_global = Counts::from_counts(1, vec![100, 0]);
        let optimistic_local = Counts::from_counts(1, vec![50, 50]);
        let r = bayesian_update_counts(&sparse_global, &optimistic_local, &[0]).unwrap();
        assert_eq!(r.prob(1), 0.0);
        assert!((r.total() - 1.0).abs() < 1e-12);
        // Shape mismatches are typed, not panics.
        assert!(bayesian_update_counts(&sparse_global, &optimistic_local, &[0, 1]).is_err());
        assert!(bayesian_update_all_counts(
            &global,
            &[(Counts::from_counts(1, vec![1, 1]), vec![9])]
        )
        .is_err());
    }

    #[test]
    fn update_all_moves_toward_trusted_locals() {
        // Noisy global says uniform; trusted locals say both bits are 0.
        let global = Distribution::uniform(2);
        let locals = vec![
            (Distribution::from_probs(1, vec![0.95, 0.05]), vec![0]),
            (Distribution::from_probs(1, vec![0.95, 0.05]), vec![1]),
        ];
        let updated = bayesian_update_all(&global, &locals);
        assert!((updated.prob(0) - 0.95 * 0.95).abs() < 1e-12);
        assert!((updated.total() - 1.0).abs() < 1e-12);
    }
}
