//! Bayesian local/global recombination (Jigsaw's update rule, reused by
//! QuTracer and SQEM).
//!
//! Given a noisy global distribution `G` and a higher-fidelity local
//! distribution `L` over a subset `S` of its bits, each global outcome is
//! reweighted by how much more (or less) likely its `S`-pattern is under
//! `L` than under `G`'s own marginal:
//!
//! ```text
//! G'(x) ∝ G(x) · L(x|S) / G_S(x|S)
//! ```
//!
//! The update leaves conditional correlations *within* the rest of the
//! register untouched while pinning the subset marginal to the trusted
//! local distribution; applying it for every subset folds all local
//! information into the global picture (Fig. 4, stage ❸ of the paper).
//!
//! Everything here *streams* over nonzero entries: likelihood ratios are
//! tabulated from the (small) subset marginal's support, and each global
//! outcome is reweighted in one sorted pass, so recombining a wide sparse
//! global never materializes a `2^n` table. The traversal order is the
//! canonical ascending order of [`Distribution::iter`], which keeps every
//! accumulation bit-reproducible across storage representations.

use crate::{Counts, DistError, Distribution};

/// Bin-mass floor below which a marginal bin is considered unobserved and
/// its ratio skipped (no information to redistribute).
const MARGINAL_FLOOR: f64 = 1e-15;

/// Applies one Bayesian subset update: reweights `global` so its marginal
/// on `positions` matches `local`, preserving conditionals elsewhere.
///
/// `local` must have exactly `positions.len()` bits, and `positions` index
/// bits of `global` (bit `j` of a local outcome corresponds to global bit
/// `positions[j]`).
///
/// Marginal bins at or below [`MARGINAL_FLOOR`] are treated as unobserved:
/// dividing by them would blow up a pattern the noisy global considers
/// (numerically) impossible, so their local mass is instead redistributed
/// over the observed patterns, keeping the update mass-conserving.
///
/// A single sorted pass over the global support — cost
/// `O(support(global) + 2^|S|)`, independent of `2^n_bits`.
///
/// # Errors
///
/// [`DistError::SubsetMismatch`] / [`DistError::PositionOutOfRange`] on
/// shape mismatches.
pub fn try_bayesian_update(
    global: &Distribution,
    local: &Distribution,
    positions: &[usize],
) -> Result<Distribution, DistError> {
    if local.n_bits() != positions.len() {
        return Err(DistError::SubsetMismatch {
            local_bits: local.n_bits(),
            positions: positions.len(),
        });
    }
    if let Some(&position) = positions.iter().find(|&&p| p >= global.n_bits()) {
        return Err(DistError::PositionOutOfRange {
            position,
            n_bits: global.n_bits(),
        });
    }
    let g_total = global.total();
    if g_total <= 0.0 {
        // Nothing to reweight; fall back to uniform like `normalized`.
        return Ok(Distribution::uniform(global.n_bits()));
    }

    let local = local.clone().normalized();
    let marginal = global.marginal(positions).normalized();

    // Likelihood ratios over the marginal's support. Patterns the noisy
    // global effectively never produces (marginal ≤ floor, or absent from
    // the support entirely) keep ratio 1.0: their local mass is instead
    // redistributed over the observed patterns via `scale`, so the update
    // conserves mass. Both sums run in ascending pattern order — the
    // shared iteration order of either storage representation.
    let mut observed_local = 0.0;
    let mut unobserved_mass = 0.0;
    for (s, m) in marginal.iter() {
        if m >= MARGINAL_FLOOR {
            observed_local += local.prob(s);
        } else {
            unobserved_mass += m;
        }
    }
    let mut ratios: Vec<(u64, f64)> = Vec::with_capacity(marginal.support_len());
    if observed_local > 0.0 {
        let scale = (1.0 - unobserved_mass) / observed_local;
        for (s, m) in marginal.iter() {
            if m >= MARGINAL_FLOOR {
                ratios.push((s, local.prob(s) * scale / m));
            }
        }
    }
    let ratio_of = |s: u64| match ratios.binary_search_by_key(&s, |&(i, _)| i) {
        Ok(pos) => ratios[pos].1,
        Err(_) => 1.0,
    };

    // Single streaming pass: reweight each nonzero global outcome by its
    // subset pattern's ratio (sorted input → sorted output, no re-sort).
    let entries: Vec<(u64, f64)> = global
        .iter()
        .map(|(x, p)| {
            let mut s = 0u64;
            for (j, &pos) in positions.iter().enumerate() {
                s |= ((x >> pos) & 1) << j;
            }
            (x, p.max(0.0) * ratio_of(s))
        })
        .collect();
    Ok(Distribution::try_from_entries(global.n_bits(), entries)
        .expect("reweighted outcomes stay in range")
        .normalized())
}

/// [`try_bayesian_update`], panicking on shape errors.
///
/// Kept as a thin migration alias for call sites whose shapes are correct
/// by construction; new code should prefer the `try_` updater. Slated for
/// removal.
#[doc(hidden)]
pub fn bayesian_update(
    global: &Distribution,
    local: &Distribution,
    positions: &[usize],
) -> Distribution {
    match try_bayesian_update(global, local, positions) {
        Ok(d) => d,
        Err(e) => panic!("{e}"),
    }
}

/// Applies [`try_bayesian_update`] for every `(local, positions)` pair in
/// sequence — the full recombination over all traced subsets. Later
/// updates can perturb earlier subsets' marginals when subsets overlap or
/// correlate; the paper's subsets are chosen small and near-independent so
/// the sequential pass converges in one sweep.
///
/// # Errors
///
/// Propagates the first shape error encountered.
pub fn try_bayesian_update_all<'a, I>(
    global: &Distribution,
    subsets: I,
) -> Result<Distribution, DistError>
where
    I: IntoIterator<Item = (&'a Distribution, &'a [usize])>,
{
    let mut acc = global.clone().normalized();
    for (local, positions) in subsets {
        acc = try_bayesian_update(&acc, local, positions)?;
    }
    Ok(acc)
}

/// [`try_bayesian_update_all`], panicking on shape errors.
///
/// Kept as a thin migration alias; new code should prefer the `try_`
/// updater. Slated for removal.
#[doc(hidden)]
pub fn bayesian_update_all<'a, I>(global: &Distribution, subsets: I) -> Distribution
where
    I: IntoIterator<Item = (&'a Distribution, &'a [usize])>,
{
    match try_bayesian_update_all(global, subsets) {
        Ok(d) => d,
        Err(e) => panic!("{e}"),
    }
}

/// Finite-shot variant of [`try_bayesian_update`]: both sides are sampled
/// count tables; the update runs on their plug-in distributions.
///
/// # Errors
///
/// Same shape errors as [`try_bayesian_update`].
pub fn try_bayesian_update_counts(
    global: &Counts,
    local: &Counts,
    positions: &[usize],
) -> Result<Distribution, DistError> {
    try_bayesian_update(
        &global.to_distribution(),
        &local.to_distribution(),
        positions,
    )
}

/// Finite-shot variant of [`try_bayesian_update_all`].
///
/// # Errors
///
/// Propagates the first shape error encountered.
pub fn try_bayesian_update_all_counts<'a, I>(
    global: &Counts,
    subsets: I,
) -> Result<Distribution, DistError>
where
    I: IntoIterator<Item = (&'a Counts, &'a [usize])>,
{
    let mut acc = global.to_distribution();
    for (local, positions) in subsets {
        acc = try_bayesian_update(&acc, &local.to_distribution(), positions)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(n_bits: usize, probs: Vec<f64>) -> Distribution {
        Distribution::try_from_probs(n_bits, probs).unwrap()
    }

    /// 2-bit product distribution with p(bit0=1)=a, p(bit1=1)=b.
    fn product_2q(a: f64, b: f64) -> Distribution {
        dist(
            2,
            vec![(1.0 - a) * (1.0 - b), a * (1.0 - b), (1.0 - a) * b, a * b],
        )
    }

    #[test]
    fn update_pins_the_subset_marginal() {
        let global = product_2q(0.3, 0.45);
        let local = dist(1, vec![0.1, 0.9]);
        let out = try_bayesian_update(&global, &local, &[0]).unwrap();
        let m = out.marginal(&[0]);
        assert!((m.prob(1) - 0.9).abs() < 1e-12, "marginal must match local");
        assert!((out.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn update_preserves_conditionals_elsewhere() {
        let global = product_2q(0.3, 0.45);
        let local = dist(1, vec![0.8, 0.2]);
        let out = try_bayesian_update(&global, &local, &[0]).unwrap();
        // Bit 1 was independent of bit 0, so its marginal must survive.
        let m1 = out.marginal(&[1]);
        assert!((m1.prob(1) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn neutral_local_is_a_no_op() {
        let global = dist(2, vec![0.4, 0.1, 0.4, 0.1]).normalized();
        let marginal = global.marginal(&[1]);
        let out = try_bayesian_update(&global, &marginal, &[1]).unwrap();
        for x in 0..4u64 {
            assert!((out.prob(x) - global.prob(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_mass_patterns_stay_zero() {
        // Global gives zero mass to bit0=1; a local that also avoids it
        // keeps the update well-defined.
        let global = dist(2, vec![0.6, 0.0, 0.4, 0.0]);
        let local = dist(1, vec![1.0, 0.0]);
        let out = try_bayesian_update(&global, &local, &[0]).unwrap();
        assert_eq!(out.prob(1), 0.0);
        assert_eq!(out.prob(3), 0.0);
        assert!((out.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn update_all_round_trips_known_two_qubit_marginal() {
        let probs = vec![0.22, 0.03, 0.07, 0.18, 0.05, 0.15, 0.2, 0.1];
        let global = dist(3, probs).normalized();
        // Use the true marginals as "traced" locals: fixed point.
        let m01 = global.marginal(&[0, 1]);
        let m2 = global.marginal(&[2]);
        let subsets: Vec<(&Distribution, &[usize])> =
            vec![(&m01, &[0usize, 1][..]), (&m2, &[2usize][..])];
        let out = try_bayesian_update_all(&global, subsets).unwrap();
        for x in 0..8u64 {
            assert!(
                (out.prob(x) - global.prob(x)).abs() < 1e-10,
                "fixed point drifted at {x}"
            );
        }
    }

    #[test]
    fn under_floor_marginals_conserve_mass() {
        // Pattern bit0=1 has marginal below the floor: its local mass is
        // redistributed instead of divided by ~0.
        let tiny = 8e-16;
        let global = dist(2, vec![0.7 - tiny, tiny, 0.3, 0.0]);
        let local = dist(1, vec![0.6, 0.4]);
        let out = try_bayesian_update(&global, &local, &[0]).unwrap();
        assert!((out.total() - 1.0).abs() < 1e-9, "mass must be conserved");
        assert!(out.iter().all(|(_, p)| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn typed_errors_replace_shape_asserts() {
        let global = product_2q(0.5, 0.5);
        let local = dist(1, vec![0.5, 0.5]);
        assert_eq!(
            try_bayesian_update(&global, &local, &[0, 1]).unwrap_err(),
            DistError::SubsetMismatch {
                local_bits: 1,
                positions: 2
            }
        );
        assert_eq!(
            try_bayesian_update(&global, &local, &[2]).unwrap_err(),
            DistError::PositionOutOfRange {
                position: 2,
                n_bits: 2
            }
        );
    }

    #[test]
    fn streaming_update_handles_wide_sparse_globals() {
        // 40-bit global: densify() is impossible (allocation cap), but the
        // streaming update runs over the 2-outcome support just fine.
        let hi = 1u64 << 39;
        let global = Distribution::try_from_entries(40, vec![(0, 0.5), (hi | 1, 0.5)]).unwrap();
        assert!(matches!(
            global.densify(),
            Err(DistError::DenseCap { n_bits: 40, .. })
        ));
        let local = dist(1, vec![0.2, 0.8]);
        let out = try_bayesian_update(&global, &local, &[0]).unwrap();
        assert!((out.prob(0) - 0.2).abs() < 1e-12);
        assert!((out.prob(hi | 1) - 0.8).abs() < 1e-12);
        assert_eq!(out.support_len(), 2);
        assert!((out.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_update_matches_plugin_frequencies() {
        let global = Counts::try_from_counts(2, vec![40, 10, 40, 10]).unwrap();
        let local = Counts::try_from_counts(1, vec![10, 90]).unwrap();
        let sampled = try_bayesian_update_counts(&global, &local, &[0]).unwrap();
        let exact =
            try_bayesian_update(&global.to_distribution(), &local.to_distribution(), &[0]).unwrap();
        for x in 0..4u64 {
            assert!((sampled.prob(x) - exact.prob(x)).abs() < 1e-12);
        }
        let all = try_bayesian_update_all_counts(&global, vec![(&local, &[0usize][..])]).unwrap();
        assert_eq!(all, sampled);
    }

    #[test]
    fn update_all_moves_toward_trusted_locals() {
        // Noisy global: uniform-ish. Trusted locals: strongly peaked.
        let global = dist(2, vec![0.3, 0.2, 0.3, 0.2]);
        let l0 = dist(1, vec![0.95, 0.05]);
        let l1 = dist(1, vec![0.95, 0.05]);
        let subsets: Vec<(&Distribution, &[usize])> =
            vec![(&l0, &[0usize][..]), (&l1, &[1usize][..])];
        let out = try_bayesian_update_all(&global, subsets).unwrap();
        assert!(
            out.prob(0) > 0.85,
            "both bits peaked at 0 → outcome 00 dominates, got {}",
            out.prob(0)
        );
    }
}
