//! Bayesian local/global recombination (Jigsaw's update rule, reused by
//! QuTracer and SQEM).
//!
//! Given a noisy global distribution `G` and a higher-fidelity local
//! distribution `L` over a subset `S` of its bits, each global outcome is
//! reweighted by how much more (or less) likely its `S`-pattern is under
//! `L` than under `G`'s own marginal:
//!
//! ```text
//! G'(x) ∝ G(x) · L(x|S) / G_S(x|S)
//! ```
//!
//! The update leaves conditional correlations *within* the rest of the
//! register untouched while pinning the subset marginal to the trusted
//! local distribution; applying it for every subset folds all local
//! information into the global picture (Fig. 4, stage ❸ of the paper).

use crate::Distribution;

/// Bin-mass floor below which a marginal bin is considered unobserved and
/// its ratio skipped (no information to redistribute).
const MARGINAL_FLOOR: f64 = 1e-15;

/// One Bayesian update of `global` with `local` over the bit `positions`
/// (positions index bits of `global`; bit `j` of `local`'s outcome space is
/// `positions[j]`). Returns a normalized distribution whose marginal over
/// `positions` equals `local` (up to bins `global` assigns zero mass).
///
/// # Panics
///
/// Panics if `local`'s bit count does not match `positions.len()` or any
/// position is out of range.
pub fn bayesian_update(
    global: &Distribution,
    local: &Distribution,
    positions: &[usize],
) -> Distribution {
    assert_eq!(
        local.n_bits(),
        positions.len(),
        "local distribution does not match subset size"
    );
    let local = local.clone().normalized();
    let marginal = global.marginal(positions).normalized();
    let g_total = global.total();
    if g_total <= 0.0 {
        return Distribution::uniform(global.n_bits());
    }

    // Precompute the per-pattern ratio L(s)/G_S(s).
    let ratios: Vec<f64> = (0..local.len())
        .map(|s| {
            let m = marginal.prob(s);
            if m < MARGINAL_FLOOR {
                // The global run never saw this pattern: keep its (zero)
                // mass instead of inventing probability from nothing.
                1.0
            } else {
                local.prob(s) / m
            }
        })
        .collect();

    let probs = global
        .iter()
        .map(|(x, p)| {
            let mut s = 0usize;
            for (j, &pos) in positions.iter().enumerate() {
                s |= ((x >> pos) & 1) << j;
            }
            p.max(0.0) * ratios[s]
        })
        .collect();
    Distribution::from_probs(global.n_bits(), probs).normalized()
}

/// Folds every `(local, positions)` pair into `global` by sequential
/// Bayesian updates, then normalizes — the full recombination stage shared
/// by QuTracer, Jigsaw and SQEM.
///
/// Updates are applied in the given order; with overlapping subsets later
/// updates take precedence on the shared bits (the workloads here use
/// disjoint or symmetric subsets, where order is immaterial).
pub fn bayesian_update_all(
    global: &Distribution,
    locals: &[(Distribution, Vec<usize>)],
) -> Distribution {
    let mut acc = global.clone().normalized();
    for (local, positions) in locals {
        acc = bayesian_update(&acc, local, positions);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn product_2q(p0: f64, p1: f64) -> Distribution {
        // Independent bits: P(bit0 = 1) = p0, P(bit1 = 1) = p1.
        Distribution::from_probs(
            2,
            vec![
                (1.0 - p0) * (1.0 - p1),
                p0 * (1.0 - p1),
                (1.0 - p0) * p1,
                p0 * p1,
            ],
        )
    }

    #[test]
    fn update_pins_the_subset_marginal() {
        let global = Distribution::from_probs(3, (1..=8).map(f64::from).collect()).normalized();
        let local = Distribution::from_probs(1, vec![0.9, 0.1]);
        let updated = bayesian_update(&global, &local, &[2]);
        assert!((updated.total() - 1.0).abs() < 1e-12);
        let m = updated.marginal(&[2]);
        assert!((m.prob(0) - 0.9).abs() < 1e-12);
        assert!((m.prob(1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn update_preserves_conditionals_elsewhere() {
        let global = product_2q(0.3, 0.6);
        let local = Distribution::from_probs(1, vec![0.5, 0.5]);
        let updated = bayesian_update(&global, &local, &[0]);
        // Bit 1 was independent of bit 0, so its marginal must not move.
        let m1 = updated.marginal(&[1]);
        assert!((m1.prob(1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn neutral_local_is_a_no_op() {
        let global = Distribution::from_probs(2, vec![0.4, 0.1, 0.3, 0.2]);
        let local = global.marginal(&[1]);
        let updated = bayesian_update(&global, &local, &[1]);
        for (x, p) in global.clone().normalized().iter() {
            assert!((updated.prob(x) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_mass_patterns_stay_zero() {
        // Global has no mass on bit0 = 1; the local cannot resurrect it.
        let global = Distribution::from_probs(2, vec![0.7, 0.0, 0.3, 0.0]);
        let local = Distribution::from_probs(1, vec![0.5, 0.5]);
        let updated = bayesian_update(&global, &local, &[0]);
        assert_eq!(updated.prob(0b01), 0.0);
        assert_eq!(updated.prob(0b11), 0.0);
        assert!((updated.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn update_all_round_trips_known_two_qubit_marginal() {
        // A correlated 3-bit global; feed back its own exact pair marginal
        // over bits (0, 2) plus a single-bit marginal over bit 1: the
        // distribution must be unchanged (round trip).
        let global =
            Distribution::from_probs(3, vec![0.22, 0.03, 0.07, 0.18, 0.05, 0.15, 0.2, 0.1]);
        let locals = vec![
            (global.marginal(&[0, 2]), vec![0, 2]),
            (global.marginal(&[1]), vec![1]),
        ];
        let updated = bayesian_update_all(&global, &locals);
        for (x, p) in global.iter() {
            assert!(
                (updated.prob(x) - p).abs() < 1e-12,
                "outcome {x}: {} vs {p}",
                updated.prob(x)
            );
        }
    }

    #[test]
    fn update_all_moves_toward_trusted_locals() {
        // Noisy global says uniform; trusted locals say both bits are 0.
        let global = Distribution::uniform(2);
        let locals = vec![
            (Distribution::from_probs(1, vec![0.95, 0.05]), vec![0]),
            (Distribution::from_probs(1, vec![0.95, 0.05]), vec![1]),
        ];
        let updated = bayesian_update_all(&global, &locals);
        assert!((updated.prob(0) - 0.95 * 0.95).abs() < 1e-12);
        assert!((updated.total() - 1.0).abs() < 1e-12);
    }
}
