//! Finite-shot regression for the Fig. 2 motivating workload: at a
//! hardware-realistic shot budget (≥10k shots per circuit) the sampled
//! pipeline must reproduce the exact pipeline's method ordering
//! (original < jigsaw < QuTracer) and land within shot noise of the exact
//! fidelities.

use qt_algos::iqft_example;
use qt_baselines::run_jigsaw;
use qt_bench::{fidelity_vs_ideal, BestReadoutRunner, SampledRunner};
use qt_core::{QuTracer, QuTracerConfig, ShotPolicy};
use qt_dist::hellinger_fidelity_sampled;
use qt_sim::{Backend, Executor, NoiseModel, ReadoutModel, Runner};

fn fig2_noise() -> NoiseModel {
    let mut readout = ReadoutModel::default();
    readout.per_qubit.insert(0, (0.1, 0.1));
    readout.per_qubit.insert(1, (0.3, 0.3));
    readout.per_qubit.insert(2, (0.3, 0.3));
    readout.per_qubit.insert(3, (0.3, 0.3));
    NoiseModel::depolarizing(0.01, 0.1).with_readout_model(readout)
}

fn methods<R: Runner>(exec: &R) -> (f64, f64, f64) {
    let circ = iqft_example();
    let measured = [0usize, 1, 2];
    let report = QuTracer::plan(&circ, &measured, &QuTracerConfig::single())
        .unwrap()
        .execute(exec)
        .unwrap()
        .recombine()
        .unwrap();
    let jig = run_jigsaw(exec, &circ, &measured, 1);
    (
        fidelity_vs_ideal(&report.global, &circ, &measured),
        fidelity_vs_ideal(&jig.distribution, &circ, &measured),
        fidelity_vs_ideal(&report.distribution, &circ, &measured),
    )
}

#[test]
fn sampled_fig2_reproduces_exact_method_ordering() {
    let noise = fig2_noise();
    let plain = Executor::with_backend(noise.clone(), Backend::DensityMatrix);
    let exec = BestReadoutRunner::new(plain.clone(), &noise, 3);
    let (orig, jig, qt) = methods(&exec);
    assert!(orig < jig && jig < qt, "exact ordering: {orig} {jig} {qt}");

    let shots = 16_384; // >= the 10k budget where ordering must be stable
    let sampled_exec = SampledRunner::new(BestReadoutRunner::new(plain, &noise, 3), shots, 0xF16);
    let (s_orig, s_jig, s_qt) = methods(&sampled_exec);
    assert!(
        s_orig < s_jig && s_jig < s_qt,
        "sampled ordering must match exact: {s_orig} {s_jig} {s_qt}"
    );
    // And each sampled fidelity sits within loose shot noise of exact.
    for (s, e) in [(s_orig, orig), (s_jig, jig), (s_qt, qt)] {
        assert!((s - e).abs() < 0.05, "sampled {s} vs exact {e}");
    }
}

#[test]
fn execute_sampled_matches_sampled_runner_regime() {
    // The plan-level finite-shot path (execute_sampled) must land in the
    // same fidelity regime as the runner-level SampledRunner harness on
    // the same workload and budget.
    let noise = fig2_noise();
    let exec = Executor::with_backend(noise, Backend::DensityMatrix);
    let circ = iqft_example();
    let measured = [0usize, 1, 2];
    let plan = QuTracer::plan(&circ, &measured, &QuTracerConfig::single()).unwrap();
    let exact = plan.execute(&exec).unwrap().recombine().unwrap();
    let shots = plan
        .allocate_shots(16_384 * plan.n_programs(), ShotPolicy::Uniform)
        .unwrap();
    let sampled = plan
        .execute_sampled(&exec, &shots, 0xCAFE)
        .unwrap()
        .recombine()
        .unwrap();
    let f = qt_dist::hellinger_fidelity(&sampled.distribution, &exact.distribution);
    assert!(f > 0.995, "sampled vs exact refined distribution: {f}");
    assert_eq!(sampled.stats.total_shots, Some(shots.total_shots()));

    // The shot-noise error bar machinery agrees with reality: two
    // independently seeded global samples are consistent within 5 sigma.
    let global = plan.programs().next().unwrap().0.clone();
    let a = exec.sampled_counts(&global.program, &global.measured, 20_000, 1);
    let b = exec.sampled_counts(&global.program, &global.measured, 20_000, 2);
    let est = hellinger_fidelity_sampled(&a, &b);
    assert!(
        est.value > 0.99,
        "same distribution resampled: {}",
        est.value
    );
    assert!(est.std_error < 0.01, "20k-shot bar: {}", est.std_error);
}
