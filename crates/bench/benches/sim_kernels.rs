//! Performance of the simulation substrate: state-vector and
//! density-matrix gate kernels, noise channels, and trajectory throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qt_circuit::{Gate, Instruction};
use qt_sim::{
    kernel, DensityMatrix, Executor, KrausChannel, NoiseModel, Program, StateVector,
    TrajectoryConfig,
};
use std::hint::black_box;

/// Generic `apply_op` vs the classified specialized kernels, per gate class
/// and register size — the headline rows of `BENCH_kernels.json`. Each
/// iteration applies a full layer of the gate (every qubit, or every
/// adjacent pair) so the ratio reflects steady-state kernel throughput.
fn bench_kernel_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    for &n in &[12usize, 16] {
        let one_q: Vec<(&str, Gate)> = vec![
            ("h", Gate::H),         // SingleQubitDense: stride butterfly
            ("rz", Gate::Rz(0.37)), // Diagonal: in-place factors
            ("x", Gate::X),         // Permutation: amplitude swap
            ("s", Gate::S),         // ControlledPhase (k=1)
        ];
        for (label, gate) in one_q {
            let m = gate.matrix();
            group.bench_function(format!("{label}_generic_{n}q"), |b| {
                let mut sv = StateVector::zero(n);
                b.iter(|| {
                    for q in 0..n {
                        kernel::apply_op_generic(sv.amplitudes_mut(), n, &m, &[q]);
                    }
                    sv.amplitudes()[0]
                })
            });
            group.bench_function(format!("{label}_specialized_{n}q"), |b| {
                let mut sv = StateVector::zero(n);
                b.iter(|| {
                    for q in 0..n {
                        kernel::apply_op(sv.amplitudes_mut(), n, &m, &[q]);
                    }
                    sv.amplitudes()[0]
                })
            });
        }
        let two_q: Vec<(&str, Gate)> = vec![
            ("cp", Gate::Cp(0.9)),   // ControlledPhase (k=2)
            ("cx", Gate::Cx),        // Permutation (two-qubit)
            ("crx", Gate::Crx(0.5)), // TwoQubitDense, control=1 subspace
        ];
        for (label, gate) in two_q {
            let m = gate.matrix();
            group.bench_function(format!("{label}_generic_{n}q"), |b| {
                let mut sv = StateVector::zero(n);
                b.iter(|| {
                    for q in 0..n - 1 {
                        kernel::apply_op_generic(sv.amplitudes_mut(), n, &m, &[q, q + 1]);
                    }
                    sv.amplitudes()[0]
                })
            });
            group.bench_function(format!("{label}_specialized_{n}q"), |b| {
                let mut sv = StateVector::zero(n);
                b.iter(|| {
                    for q in 0..n - 1 {
                        kernel::apply_op(sv.amplitudes_mut(), n, &m, &[q, q + 1]);
                    }
                    sv.amplitudes()[0]
                })
            });
        }
        // Low-bit-target CX (operands [q+1, q]): the contiguous-run
        // `swap_with_slice` case of the dedicated CX kernel.
        let m = Gate::Cx.matrix();
        group.bench_function(format!("cx_lowbit_generic_{n}q"), |b| {
            let mut sv = StateVector::zero(n);
            b.iter(|| {
                for q in 0..n - 1 {
                    kernel::apply_op_generic(sv.amplitudes_mut(), n, &m, &[q + 1, q]);
                }
                sv.amplitudes()[0]
            })
        });
        group.bench_function(format!("cx_lowbit_specialized_{n}q"), |b| {
            let mut sv = StateVector::zero(n);
            b.iter(|| {
                for q in 0..n - 1 {
                    kernel::apply_op(sv.amplitudes_mut(), n, &m, &[q + 1, q]);
                }
                sv.amplitudes()[0]
            })
        });
    }
    group.finish();
}

fn bench_statevector_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector");
    for &n in &[10usize, 14, 18] {
        group.bench_function(format!("h_chain_{n}q"), |b| {
            b.iter_batched(
                || StateVector::zero(n),
                |mut sv| {
                    for q in 0..n {
                        sv.apply_op(&Gate::H.matrix(), &[q]);
                    }
                    black_box(sv)
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("cx_chain_{n}q"), |b| {
            b.iter_batched(
                || StateVector::zero(n),
                |mut sv| {
                    for q in 0..n - 1 {
                        sv.apply_op(&Gate::Cx.matrix(), &[q, q + 1]);
                    }
                    black_box(sv)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_density_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_matrix");
    group.sample_size(20);
    for &n in &[6usize, 8] {
        group.bench_function(format!("cz_layer_{n}q"), |b| {
            b.iter_batched(
                || DensityMatrix::zero(n),
                |mut rho| {
                    for q in 0..n - 1 {
                        rho.apply_instruction(&Instruction::new(Gate::Cz, vec![q, q + 1]));
                    }
                    black_box(rho)
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("depolarizing_fast_path_{n}q"), |b| {
            b.iter_batched(
                || DensityMatrix::zero(n),
                |mut rho| {
                    rho.apply_depolarizing(&[0, 1], 0.01);
                    black_box(rho)
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("depolarizing_kraus_{n}q"), |b| {
            let ch = KrausChannel::depolarizing(2, 0.01);
            b.iter_batched(
                || DensityMatrix::zero(n),
                |mut rho| {
                    rho.apply_kraus(ch.ops(), &[0, 1]);
                    black_box(rho)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_trajectories(c: &mut Criterion) {
    let mut group = c.benchmark_group("trajectories");
    group.sample_size(10);
    let circ = qt_algos::vqe_ansatz(12, 1, 5);
    let program = Program::from_circuit(&circ);
    let measured: Vec<usize> = (0..12).collect();
    for &traj in &[256usize, 1024] {
        group.bench_function(format!("vqe12_{traj}traj"), |b| {
            let exec = Executor::with_backend(
                NoiseModel::depolarizing(0.001, 0.01),
                qt_sim::Backend::Trajectory(TrajectoryConfig {
                    n_trajectories: traj,
                    seed: 1,
                    n_threads: Some(2),
                }),
            );
            b.iter(|| black_box(exec.noisy_distribution(&program, &measured)))
        });
    }
    group.finish();
}

/// Serial vs multi-threaded batched shot execution on a 16-qubit
/// trajectory workload — the scaling headline of the parallel `Backend`
/// engine. Row names embed the *effective* worker count
/// (`..._<threads>t`), and the all-threads row is skipped entirely on
/// single-core machines, where it would be an identical re-measurement of
/// the serial row.
fn bench_parallel_trajectories(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_trajectories");
    group.sample_size(10);
    let circ = qt_algos::vqe_ansatz(16, 1, 5);
    let program = Program::from_circuit(&circ);
    let measured: Vec<usize> = (0..16).collect();
    let cores = qt_sim::backend::available_threads();
    let mut rows: Vec<(String, usize)> = vec![("vqe16_256traj_serial_1t".into(), 1)];
    if cores > 1 {
        rows.push((format!("vqe16_256traj_allthreads_{cores}t"), cores));
    }
    for (label, threads) in rows {
        group.bench_function(label, |b| {
            let exec = Executor::with_backend(
                // Strong enough that stratification cannot skip the work.
                NoiseModel::depolarizing(0.02, 0.08),
                qt_sim::Backend::Trajectory(TrajectoryConfig {
                    n_trajectories: 256,
                    seed: 1,
                    n_threads: Some(threads),
                }),
            );
            b.iter(|| black_box(exec.noisy_distribution(&program, &measured)))
        });
    }
    group.finish();
}

/// Legacy per-subset execution vs the staged pipeline's batched, dedup'd
/// execution on a 6-qubit symmetric QAOA ring — the headline rows of
/// `BENCH_pipeline.json`. Row names embed the executed circuit counts
/// (`..._<K>circ`) so the report is self-describing: batched dedup runs the
/// 6 symmetric pairs' shared ensemble once instead of six times.
fn bench_pipeline(c: &mut Criterion) {
    use qt_core::{QuTracer, QuTracerConfig};
    use qt_sim::Runner;

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let n = 6;
    let circ = qt_algos::qaoa_maxcut(
        n,
        &qt_algos::ring_graph(n),
        &qt_algos::qaoa::QaoaParams::seeded(1, 5),
    );
    let measured: Vec<usize> = (0..n).collect();
    let cfg = QuTracerConfig::pairs().with_symmetric_subsets();
    let exec = Executor::with_backend(
        NoiseModel::depolarizing(0.002, 0.02).with_readout(0.03),
        qt_sim::Backend::DensityMatrix,
    );

    // Circuit counts for the row labels, straight from the plan.
    let plan = QuTracer::plan(&circ, &measured, &cfg).expect("symmetric ring is traceable");
    let batched_circuits = plan.n_programs();
    let per_subset_circuits = plan.n_requests();

    // Naive per-subset execution: every cyclic pair traced independently,
    // one small serial batch at a time (what a runner loop without
    // plan-level dedup performs).
    group.bench_function(
        format!("legacy_per_subset_qaoa{n}_{per_subset_circuits}circ"),
        |b| {
            b.iter(|| {
                let global = exec.run(&Program::from_circuit(&circ), &measured);
                let mut locals = Vec::new();
                for p in 0..n {
                    let pair = [measured[p], measured[(p + 1) % n]];
                    let o = qt_core::trace_pair(&exec, &circ, pair, &cfg.trace)
                        .expect("traceable pair");
                    locals.push((o.local, vec![p, (p + 1) % n]));
                }
                black_box(
                    qt_dist::recombine::try_bayesian_update_all(
                        &global.dist,
                        locals.iter().map(|(d, p)| (d, p.as_slice())),
                    )
                    .expect("cyclic-pair locals match the measured register"),
                )
            })
        },
    );

    // Staged pipeline: one deduplicated batch for every subset.
    group.bench_function(
        format!("batched_dedup_qaoa{n}_{batched_circuits}circ"),
        |b| {
            b.iter(|| {
                let plan =
                    QuTracer::plan(&circ, &measured, &cfg).expect("symmetric ring is traceable");
                let report = plan
                    .execute(&exec)
                    .expect("batched execution")
                    .recombine()
                    .expect("recombination");
                black_box(report)
            })
        },
    );
    group.finish();
}

/// Trie-scheduled vs per-job batch execution on the 5-layer QAOA-6
/// pipeline workload (the deduplicated programs of the symmetric-pairs
/// plan; multi-layer QAOA is the paper's Table I sweep, and its
/// late-segment ensembles carry the long shared prefixes the trie
/// exploits) — the headline rows of `BENCH_batch.json`, with the batch
/// size embedded in the row names. The `perjob` row is PR 3's
/// `batched_dedup` execution path on the identical batch. The bench
/// asserts the two paths produce bit-identical outputs before timing
/// anything, so CI fails if the trie path stops being output-equivalent.
fn bench_batch_execution(c: &mut Criterion) {
    use qt_core::{QuTracer, QuTracerConfig};
    use qt_sim::{BatchJob, BatchPolicy, Runner};

    let mut group = c.benchmark_group("batch");
    group.sample_size(10);
    let (n, layers) = (6, 5);
    let circ = qt_algos::qaoa_maxcut(
        n,
        &qt_algos::ring_graph(n),
        &qt_algos::qaoa::QaoaParams::seeded(layers, 5),
    );
    let measured: Vec<usize> = (0..n).collect();
    let cfg = QuTracerConfig::pairs().with_symmetric_subsets();
    let plan = QuTracer::plan(&circ, &measured, &cfg).expect("symmetric ring is traceable");
    let jobs: Vec<BatchJob> = plan.programs().map(|(j, _)| j.clone()).collect();
    let k = jobs.len();
    let noise = NoiseModel::depolarizing(0.002, 0.02).with_readout(0.03);
    let trie = Executor::with_backend(noise.clone(), qt_sim::Backend::DensityMatrix);
    let perjob = Executor::with_backend(noise, qt_sim::Backend::DensityMatrix)
        .with_batch_policy(BatchPolicy::PerJob)
        .expect("per-job policy is always valid");
    assert_eq!(
        trie.run_batch(&jobs),
        perjob.run_batch(&jobs),
        "trie-scheduled batch diverged from per-job execution"
    );
    group.bench_function(format!("trie_qaoa{n}x{layers}_{k}circ"), |b| {
        b.iter(|| black_box(trie.run_batch(&jobs)))
    });
    group.bench_function(format!("perjob_qaoa{n}x{layers}_{k}circ"), |b| {
        b.iter(|| black_box(perjob.run_batch(&jobs)))
    });
    group.finish();
}

/// Finite-shot batch execution: trie-integrated sampling (terminal
/// distributions from the prefix-sharing trie walk, then per-job
/// multinomial draws) vs naive per-job sampling (every job simulated
/// independently before sampling) on the 5-layer QAOA-6 pipeline workload
/// — the headline rows of `BENCH_shots.json`, with the batch size and
/// per-job shot count embedded in the row names. The bench asserts the
/// two paths produce bit-identical counts before timing anything, so CI
/// failing here can mean a determinism regression, not just a slow run.
fn bench_sampled_execution(c: &mut Criterion) {
    use qt_core::{QuTracer, QuTracerConfig};
    use qt_sim::{BatchJob, BatchPolicy, Runner, ShotPlan};

    let mut group = c.benchmark_group("shots");
    group.sample_size(10);
    let (n, layers) = (6, 5);
    let circ = qt_algos::qaoa_maxcut(
        n,
        &qt_algos::ring_graph(n),
        &qt_algos::qaoa::QaoaParams::seeded(layers, 5),
    );
    let measured: Vec<usize> = (0..n).collect();
    let cfg = QuTracerConfig::pairs().with_symmetric_subsets();
    let plan = QuTracer::plan(&circ, &measured, &cfg).expect("symmetric ring is traceable");
    let jobs: Vec<BatchJob> = plan.programs().map(|(j, _)| j.clone()).collect();
    let k = jobs.len();
    let shots_each = 4096;
    let shot_plan = ShotPlan::uniform(k, shots_each);
    let noise = NoiseModel::depolarizing(0.002, 0.02).with_readout(0.03);
    let trie = Executor::with_backend(noise.clone(), qt_sim::Backend::DensityMatrix);
    let perjob = Executor::with_backend(noise, qt_sim::Backend::DensityMatrix)
        .with_batch_policy(BatchPolicy::PerJob)
        .expect("per-job policy is always valid");
    assert_eq!(
        trie.run_batch_sampled(&jobs, &shot_plan, 11),
        perjob.run_batch_sampled(&jobs, &shot_plan, 11),
        "trie-integrated sampling diverged from per-job sampling"
    );
    group.bench_function(
        format!("trie_sampled_qaoa{n}x{layers}_{k}circ_{shots_each}shots"),
        |b| b.iter(|| black_box(trie.run_batch_sampled(&jobs, &shot_plan, 11))),
    );
    group.bench_function(
        format!("perjob_sampled_qaoa{n}x{layers}_{k}circ_{shots_each}shots"),
        |b| b.iter(|| black_box(perjob.run_batch_sampled(&jobs, &shot_plan, 11))),
    );
    group.finish();
}

fn bench_circuit_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("passes");
    let circ = qt_algos::vqe_ansatz(15, 3, 9);
    group.bench_function("reduce_for_z_measurement_15q", |b| {
        b.iter(|| {
            black_box(qt_circuit::passes::reduce_for_z_measurement(
                black_box(&circ),
                &[7],
            ))
        })
    });
    group.bench_function("split_into_segments_15q", |b| {
        b.iter(|| {
            black_box(qt_circuit::passes::split_into_segments(
                black_box(&circ),
                &[7],
            ))
        })
    });
    group.bench_function("unitary_embedding_8q", |b| {
        let small = qt_algos::iqft(8);
        b.iter(|| black_box(small.unitary()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kernel_dispatch,
    bench_statevector_gates,
    bench_density_matrix,
    bench_trajectories,
    bench_parallel_trajectories,
    bench_pipeline,
    bench_batch_execution,
    bench_sampled_execution,
    bench_circuit_passes
);
criterion_main!(benches);
