//! Ablation benches for the design choices called out in DESIGN.md:
//! false-dependency removal on/off, reduced vs full preparation basis,
//! state traceback on/off, and layout-trial scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use qt_core::{trace_single, TraceConfig};
use qt_device::{choose_layout, lower_program, route_program, Device};
use qt_sim::{Backend, Executor, NoiseModel, Program};
use std::hint::black_box;

fn bench_optimization_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_optimizations");
    group.sample_size(10);
    let circ = qt_algos::vqe_ansatz(7, 1, 9);
    let exec = Executor::with_backend(
        NoiseModel::depolarizing(0.001, 0.01).with_readout(0.02),
        Backend::DensityMatrix,
    );
    for (label, optimize, traceback, reduced) in [
        ("all_optimizations", true, true, true),
        ("no_false_dep_removal", false, true, true),
        ("no_traceback", true, false, true),
        ("full_prep_basis", true, true, false),
    ] {
        group.bench_function(label, |b| {
            let config = TraceConfig {
                optimize_circuits: optimize,
                state_traceback: traceback,
                use_reduced_preps: reduced,
                ..Default::default()
            };
            b.iter(|| black_box(trace_single(&exec, &circ, 3, &config)))
        });
    }
    group.finish();
}

fn bench_layout_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_layout");
    group.sample_size(20);
    let device = Device::fake_hanoi();
    let circ = qt_algos::vqe_ansatz(12, 2, 4);
    let measured: Vec<usize> = (0..12).collect();
    for &trials in &[1usize, 8, 16] {
        group.bench_function(format!("layout_{trials}_trials"), |b| {
            b.iter(|| black_box(choose_layout(&circ, &device, &measured, 3, trials)))
        });
    }
    group.bench_function("route_after_layout", |b| {
        let layout = choose_layout(&circ, &device, &measured, 3, 8);
        let lowered = lower_program(&Program::from_circuit(&circ));
        b.iter(|| black_box(route_program(&lowered, &layout, &device.coupling)))
    });
    group.finish();
}

criterion_group!(benches, bench_optimization_ablation, bench_layout_ablation);
criterion_main!(benches);
