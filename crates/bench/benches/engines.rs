//! Engine-tier throughput: the stabilizer-tableau and sparse-statevector
//! engines against the dense oracles on their admissible workloads, plus a
//! 26-qubit end-to-end `plan → execute → recombine` demo on `Backend::Auto`
//! — a register no dense engine in the workspace could even allocate as a
//! density matrix.
//!
//! Every pair of rows is asserted equivalent (1e-9) before timing, so the
//! speedups in `BENCH_engines.json` are for *identical* answers.

use criterion::{criterion_group, criterion_main, Criterion};
use qt_circuit::Circuit;
use qt_core::{QuTracer, QuTracerConfig};
use qt_sim::{Backend, Executor, NoiseModel, Program};
use std::hint::black_box;

/// Layered Clifford brickwork: single-qubit H/S/Sdg rotations followed by
/// alternating-offset CX pairs — the shape of a twirled mitigation
/// ensemble member.
fn clifford_brickwork(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            match (q + layer) % 3 {
                0 => c.h(q),
                1 => c.s(q),
                _ => c.sdg(q),
            };
        }
        let mut q = layer % 2;
        while q + 1 < n {
            c.cx(q, q + 1);
            q += 2;
        }
    }
    c
}

/// GHZ chain followed by diagonal phase layers: wide but low-entanglement
/// (the sparse engine's support never exceeds 2 basis states).
fn ghz_with_phases(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    for layer in 0..layers {
        for q in 0..n {
            c.rz(q, 0.1 + 0.05 * (q + layer) as f64);
        }
        for q in 0..n - 1 {
            c.cp(q, q + 1, 0.2);
        }
    }
    c
}

fn assert_close(a: &qt_dist::Distribution, b: &qt_dist::Distribution, what: &str) {
    assert_eq!(a.n_bits(), b.n_bits(), "{what}: width mismatch");
    for i in 0..1u64 << a.n_bits() {
        let (x, y) = (a.prob(i), b.prob(i));
        assert!((x - y).abs() < 1e-9, "{what}: index {i}: {x} vs {y}");
    }
}

/// Stabilizer vs dense statevector on a 16-qubit noise-free Clifford
/// ensemble member (all-Clifford, so both are exact).
fn bench_stabilizer_vs_dense_sv(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    let circ = clifford_brickwork(16, 6);
    let prog = Program::from_circuit(&circ);
    let measured: Vec<usize> = (0..8).collect();
    let noise = NoiseModel::ideal();
    let stab = Executor::with_backend(noise.clone(), Backend::Stabilizer);
    let dense = Executor::with_backend(noise, Backend::Statevector);
    assert_close(
        &stab.noisy_distribution(&prog, &measured),
        &dense.noisy_distribution(&prog, &measured),
        "16q ideal Clifford",
    );
    group.bench_function("stabilizer_16q_clifford", |b| {
        b.iter(|| black_box(stab.noisy_distribution(black_box(&prog), &measured)))
    });
    group.bench_function("dense_sv_16q_clifford", |b| {
        b.iter(|| black_box(dense.noisy_distribution(black_box(&prog), &measured)))
    });
    group.finish();
}

/// Stabilizer (analytic Pauli-noise mixing) vs the exact density matrix on
/// a 10-qubit depolarized Clifford ensemble member — the largest register
/// the dense mixed-state oracle handles.
fn bench_stabilizer_vs_density_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    let circ = clifford_brickwork(10, 4);
    let prog = Program::from_circuit(&circ);
    let measured: Vec<usize> = (0..4).collect();
    let noise = NoiseModel::depolarizing(0.01, 0.02);
    let stab = Executor::with_backend(noise.clone(), Backend::Stabilizer);
    let dm = Executor::with_backend(noise, Backend::DensityMatrix);
    assert_close(
        &stab.noisy_distribution(&prog, &measured),
        &dm.noisy_distribution(&prog, &measured),
        "10q depolarized Clifford",
    );
    group.bench_function("stabilizer_10q_noisy_clifford", |b| {
        b.iter(|| black_box(stab.noisy_distribution(black_box(&prog), &measured)))
    });
    group.bench_function("density_matrix_10q_noisy_clifford", |b| {
        b.iter(|| black_box(dm.noisy_distribution(black_box(&prog), &measured)))
    });
    group.finish();
}

/// Sparse vs dense statevector on a wide, low-entanglement register: the
/// sparse map carries 2 nonzero amplitudes where the dense engine carries
/// 2^16.
fn bench_sparse_vs_dense_sv(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    let circ = ghz_with_phases(16, 4);
    let prog = Program::from_circuit(&circ);
    let measured: Vec<usize> = (0..8).collect();
    let noise = NoiseModel::ideal();
    let sparse = Executor::with_backend(noise.clone(), Backend::Sparse);
    let dense = Executor::with_backend(noise, Backend::Statevector);
    assert_close(
        &sparse.noisy_distribution(&prog, &measured),
        &dense.noisy_distribution(&prog, &measured),
        "16q low-entanglement",
    );
    group.bench_function("sparse_16q_low_entanglement", |b| {
        b.iter(|| black_box(sparse.noisy_distribution(black_box(&prog), &measured)))
    });
    group.bench_function("dense_sv_16q_low_entanglement", |b| {
        b.iter(|| black_box(dense.noisy_distribution(black_box(&prog), &measured)))
    });
    group.finish();
}

/// End-to-end demo: a 26-qubit GHZ workload through the full staged
/// pipeline under depolarizing noise, with `Backend::Auto` routing the
/// global circuit to the stabilizer engine. 2^26 complex amplitudes would
/// be a 1 GiB statevector and the density matrix is unthinkable; the
/// tableau holds it in a few kilobytes.
fn bench_auto_pipeline_26q(c: &mut Criterion) {
    let mut group = c.benchmark_group("demo");
    let n = 26;
    let mut circ = Circuit::new(n);
    circ.h(0);
    for q in 1..n {
        circ.cx(q - 1, q);
    }
    let measured: Vec<usize> = (0..8).collect();
    let cfg = QuTracerConfig::single();
    let plan = QuTracer::plan(&circ, &measured, &cfg).unwrap();
    let exec = Executor::new(NoiseModel::depolarizing(0.002, 0.01));

    // The Auto ladder must route the 26q global program to the stabilizer
    // engine (nothing else can hold the register), and the report must be
    // a sane noisy GHZ marginal.
    let report = plan.execute(&exec).unwrap().recombine().unwrap();
    let mix = report
        .stats
        .engine_mix
        .as_ref()
        .expect("engine mix recorded");
    assert!(
        mix.iter().any(|(name, _)| name == "stabilizer"),
        "26q global program must ride the tableau: {mix:?}"
    );
    let dist = &report.distribution;
    assert!(
        dist.prob(0) > 0.4 && dist.prob(255) > 0.4,
        "noisy GHZ marginal"
    );

    group.bench_function("auto_ghz26_pipeline", |b| {
        b.iter(|| {
            let arts = plan.execute(&exec).unwrap();
            black_box(arts.recombine().unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stabilizer_vs_dense_sv,
    bench_stabilizer_vs_density_matrix,
    bench_sparse_vs_dense_sv,
    bench_auto_pipeline_26q
);
criterion_main!(benches);
