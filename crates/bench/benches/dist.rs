//! Sparse vs dense distribution kernels: the `Mass` redesign's perf claim,
//! measured on a 24-qubit low-density workload (512 nonzero outcomes in a
//! 2^24 space — the shape a wide low-entanglement engine readout
//! produces). The sparse arm walks the nonzero stream; the dense arm scans
//! the full table. Both arms are asserted **bit-identical** before timing,
//! so every speedup in `BENCH_dist.json` is for the exact same answer.

use criterion::{criterion_group, criterion_main, Criterion};
use qt_dist::{recombine, Distribution};
use std::hint::black_box;

const N_BITS: usize = 24;
const SUPPORT: u64 = 512;

/// A deterministic scattered-support distribution: `SUPPORT` outcomes at
/// multiplicatively-hashed indices, unnormalized weights 1..=SUPPORT.
fn low_density_entries() -> Vec<(u64, f64)> {
    let mask = (1u64 << N_BITS) - 1;
    let mut entries: Vec<(u64, f64)> = (1..=SUPPORT)
        .map(|k| (k.wrapping_mul(0x9e37_79b9) & mask, k as f64))
        .collect();
    entries.sort_unstable_by_key(|&(i, _)| i);
    entries.dedup_by_key(|&mut (i, _)| i);
    entries
}

/// The same logical distribution in both storage arms.
fn both_arms() -> (Distribution, Distribution) {
    let base = Distribution::try_from_entries(N_BITS, low_density_entries())
        .expect("24-bit indices are in range")
        .normalized();
    let sparse = base.clone().with_density_threshold(2.0);
    let dense = base.with_density_threshold(0.0);
    assert!(!sparse.is_dense() && dense.is_dense(), "arms must differ");
    (sparse, dense)
}

fn assert_identical(a: &Distribution, b: &Distribution, what: &str) {
    let xs: Vec<(u64, f64)> = a.iter().collect();
    let ys: Vec<(u64, f64)> = b.iter().collect();
    assert_eq!(xs.len(), ys.len(), "{what}: support size");
    for ((i, x), (j, y)) in xs.iter().zip(&ys) {
        assert!(
            i == j && x.to_bits() == y.to_bits(),
            "{what}: ({i}, {x:?}) != ({j}, {y:?})"
        );
    }
}

/// Marginal over the low 8 positions: the recombination inner loop's
/// dominant traversal.
fn bench_marginal(c: &mut Criterion) {
    let (sparse, dense) = both_arms();
    let keep: Vec<usize> = (0..8).collect();
    assert_identical(
        &sparse.marginal(&keep),
        &dense.marginal(&keep),
        "marginal sparse vs dense",
    );

    let mut group = c.benchmark_group("dist");
    group.sample_size(10);
    group.bench_function("marginal_sparse_24q", |b| {
        b.iter(|| black_box(sparse.marginal(black_box(&keep))))
    });
    group.bench_function("marginal_dense_24q", |b| {
        b.iter(|| black_box(dense.marginal(black_box(&keep))))
    });
    group.finish();
}

/// One full Bayesian update (marginal + per-subset ratio + reweight):
/// the recombination stage of the pipeline on a single-qubit subset.
fn bench_recombine(c: &mut Criterion) {
    let (sparse, dense) = both_arms();
    let local = Distribution::try_from_probs(1, vec![0.85, 0.15])
        .expect("one-bit local")
        .normalized();
    let pos = [3usize];
    assert_identical(
        &recombine::try_bayesian_update(&sparse, &local, &pos).expect("sparse update"),
        &recombine::try_bayesian_update(&dense, &local, &pos).expect("dense update"),
        "recombine sparse vs dense",
    );

    let mut group = c.benchmark_group("dist");
    group.sample_size(10);
    group.bench_function("recombine_sparse_24q", |b| {
        b.iter(|| {
            black_box(
                recombine::try_bayesian_update(black_box(&sparse), &local, &pos)
                    .expect("sparse update"),
            )
        })
    });
    group.bench_function("recombine_dense_24q", |b| {
        b.iter(|| {
            black_box(
                recombine::try_bayesian_update(black_box(&dense), &local, &pos)
                    .expect("dense update"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_marginal, bench_recombine);
criterion_main!(benches);
