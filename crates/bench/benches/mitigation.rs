//! Performance of the mitigation stack: QSPC checks, Bayesian
//! recombination, Hellinger fidelity and wire-cut construction.

use criterion::{criterion_group, criterion_main, Criterion};
use qt_circuit::Circuit;
use qt_core::{run_qutracer, trace_single, QuTracerConfig, TraceConfig};
use qt_dist::{hellinger_fidelity, recombine, Distribution};
use qt_pcs::{QspcConfig, QspcSingle};
use qt_sim::{Backend, Executor, NoiseModel};
use std::hint::black_box;

fn vqe_pieces(n: usize) -> (Circuit, Circuit) {
    let mut prefix = Circuit::new(n);
    for q in 0..n {
        prefix.ry(q, 0.3 + q as f64 * 0.1);
    }
    let mut segment = Circuit::new(n);
    for q in 0..n - 1 {
        segment.cz(q, q + 1);
    }
    for q in 1..n {
        segment.ry(q, 0.2);
    }
    (prefix, segment)
}

fn bench_qspc(c: &mut Criterion) {
    let mut group = c.benchmark_group("qspc");
    group.sample_size(10);
    let exec = Executor::with_backend(
        NoiseModel::depolarizing(0.001, 0.01).with_readout(0.02),
        Backend::DensityMatrix,
    );
    let (prefix, segment) = vqe_pieces(6);
    let rho_in = qt_math::states::PrepState::Plus.projector();
    group.bench_function("single_check_6q", |b| {
        let q = QspcSingle {
            exec: &exec,
            qubit: 0,
            prefix: &prefix,
            segment: &segment,
            config: QspcConfig::default(),
        };
        b.iter(|| black_box(q.mitigated_expectations(&rho_in, &[qt_math::Pauli::Z])))
    });
    group.bench_function("trace_single_6q", |b| {
        let circ = qt_algos::vqe_ansatz(6, 1, 3);
        b.iter(|| black_box(trace_single(&exec, &circ, 2, &TraceConfig::default())))
    });
    group.bench_function("full_framework_5q_vqe", |b| {
        let circ = qt_algos::vqe_ansatz(5, 1, 3);
        let measured: Vec<usize> = (0..5).collect();
        b.iter(|| {
            black_box(run_qutracer(
                &exec,
                &circ,
                &measured,
                &QuTracerConfig::single(),
            ))
        })
    });
    group.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributions");
    let n_bits = 15;
    let dim = 1usize << n_bits;
    let probs: Vec<f64> = (0..dim).map(|i| (i % 97) as f64).collect();
    let g = Distribution::from_probs(n_bits, probs).normalized();
    let local = Distribution::from_probs(2, vec![0.4, 0.1, 0.3, 0.2]);
    group.bench_function("bayesian_update_15bit", |b| {
        b.iter(|| black_box(recombine::bayesian_update(&g, &local, &[3, 9])))
    });
    group.bench_function("hellinger_fidelity_15bit", |b| {
        b.iter(|| black_box(hellinger_fidelity(&g, &g)))
    });
    group.bench_function("marginal_15bit", |b| {
        b.iter(|| black_box(g.marginal(&[0, 5, 11])))
    });
    group.finish();
}

fn bench_wire_cut(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_cut");
    let mut circ = Circuit::new(4);
    circ.h(0).cx(0, 1).ry(0, 0.9).cz(0, 2).cx(2, 3);
    let cut = qt_cut::CutPoint {
        qubit: 0,
        position: 2,
    };
    group.bench_function("build_cut_programs", |b| {
        let terms = qt_cut::reduced_cut_terms();
        b.iter(|| black_box(qt_cut::build_cut_programs(&circ, cut, &terms)))
    });
    group.finish();
}

criterion_group!(benches, bench_qspc, bench_distributions, bench_wire_cut);
criterion_main!(benches);
