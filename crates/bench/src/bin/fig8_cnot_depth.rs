//! Fig. 8 — gate-error mitigation study: 8-qubit VQE whose linear
//! entanglement (CZ) layer is repeated 1…25 times, under depolarizing noise
//! (1q 0.001, 2q 0.01) and measurement error 0.001.
//!
//! Paper reference (Original=Jigsaw / SQEM / QuTracer):
//!   depth 1: 0.96 0.96 0.99 0.99 | 9: 0.66 0.66 0.93 0.96
//!   depth 17: 0.45 0.45 0.86 0.92 | 25: 0.31 0.31 0.80 0.88

use qt_algos::Workload;
use qt_baselines::{run_jigsaw, run_sqem};
use qt_bench::{fidelity_vs_ideal, header, quick_mode, CachedRunner};
use qt_circuit::Circuit;
use qt_core::{QuTracer, QuTracerConfig};
use qt_sim::{Backend, Executor, NoiseModel};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The Fig. 8 circuit: Ry layer, `depth` repetitions of the CZ chain, Ry
/// layer. Consecutive CZ chains have no interleaved rotations, so each
/// traced qubit sees a single (deep) check segment.
fn depth_circuit(n: usize, depth: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut theta = || rng.random::<f64>() * std::f64::consts::PI;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.ry(q, theta());
    }
    c.mark_layer();
    for _ in 0..depth {
        for q in 0..n - 1 {
            c.cz(q, q + 1);
        }
    }
    for q in 0..n {
        c.ry(q, theta());
    }
    Workload::new(format!("8q VQE depth {depth}"), c, (0..n).collect())
}

fn main() {
    let n = 8;
    header(
        "Fig. 8 — Hellinger fidelity vs CNOT depth (8q VQE)",
        "depolarizing 1q 0.001 / 2q 0.01, measurement error 0.001",
    );
    let depths: Vec<usize> = if quick_mode() {
        vec![1, 9, 25]
    } else {
        vec![1, 5, 9, 13, 17, 21, 25]
    };
    println!(
        "{:>6}  {:>9} {:>9} {:>9} {:>9}",
        "depth", "original", "jigsaw", "sqem", "qutracer"
    );
    for &depth in &depths {
        let wl = depth_circuit(n, depth, 88);
        let noise = NoiseModel::depolarizing(0.001, 0.01).with_readout(0.001);
        let exec = CachedRunner::new(Executor::with_backend(
            noise,
            Backend::Auto {
                dm_max_qubits: 8,
                trajectories: qt_sim::TrajectoryConfig::with_trajectories(2048),
            },
        ));
        let qt = QuTracer::plan(&wl.circuit, &wl.measured, &QuTracerConfig::single())
            .expect("plannable workload")
            .execute(&exec)
            .expect("batched execution")
            .recombine()
            .expect("recombination");
        let f_orig = fidelity_vs_ideal(&qt.global, &wl.circuit, &wl.measured);
        let f_qt = fidelity_vs_ideal(&qt.distribution, &wl.circuit, &wl.measured);
        let jig = run_jigsaw(&exec, &wl.circuit, &wl.measured, 2);
        let f_jig = fidelity_vs_ideal(&jig.distribution, &wl.circuit, &wl.measured);
        let sqem = run_sqem(&exec, &wl.circuit, &wl.measured).expect("single check layer");
        let f_sqem = fidelity_vs_ideal(&sqem.distribution, &wl.circuit, &wl.measured);
        println!("{depth:>6}  {f_orig:>9.2} {f_jig:>9.2} {f_sqem:>9.2} {f_qt:>9.2}");
    }
    println!("\npaper: 1: 0.96 0.96 0.99 0.99 | 9: 0.66 0.66 0.93 0.96");
    println!("       17: 0.45 0.45 0.86 0.92 | 25: 0.31 0.31 0.80 0.88");
}
