//! Fig. 7 — measurement-error mitigation study: 15-qubit single-layer VQE
//! under depolarizing gate noise (1q 0.001, 2q 0.01) with the uniform
//! measurement error swept over {0.01, 0.06, 0.11, 0.16}.
//!
//! Paper reference (Original/Jigsaw/IdealPCS/SQEM/QuTracer):
//!   0.01: 0.86 0.86 0.90 0.93 0.94
//!   0.06: 0.47 0.47 0.51 0.79 0.82
//!   0.11: 0.25 0.25 0.26 0.70 0.72
//!   0.16: 0.12 0.12 0.12 0.60 0.61

use qt_algos::vqe_ansatz;
use qt_baselines::{run_jigsaw, run_sqem};
use qt_bench::{auto_backend, fidelity_vs_ideal, header, quick_mode, AdaptiveRunner, CachedRunner};
use qt_circuit::passes::split_into_segments;
use qt_circuit::Circuit;
use qt_core::{QuTracer, QuTracerConfig};
use qt_dist::Distribution;
use qt_pcs::{postselected_distribution, z_check_sandwich};
use qt_sim::{Executor, NoiseModel};

fn main() {
    let n = 15;
    let trajectories = if quick_mode() { 1024 } else { 2048 };
    header(
        "Fig. 7 — Hellinger fidelity vs measurement error (15q VQE, 1 layer)",
        &format!("depolarizing 1q 0.001 / 2q 0.01; {trajectories} trajectories for >9q registers"),
    );
    let circ = vqe_ansatz(n, 1, 20240222);
    let measured: Vec<usize> = (0..n).collect();

    println!(
        "{:>8}  {:>9} {:>9} {:>9} {:>9} {:>9}",
        "meas err", "original", "jigsaw", "idealPCS", "sqem", "qutracer"
    );
    for (i, &meas_err) in [0.01, 0.06, 0.11, 0.16].iter().enumerate() {
        let noise = NoiseModel::depolarizing(0.001, 0.01).with_readout(meas_err);
        let exec = CachedRunner::new(AdaptiveRunner {
            global: Executor::with_backend(noise.clone(), auto_backend(trajectories, 7 + i as u64)),
            local: Executor::with_backend(noise, auto_backend(trajectories / 4, 9 + i as u64)),
            threshold: 4,
        });

        let qt = QuTracer::plan(&circ, &measured, &QuTracerConfig::single())
            .expect("plannable workload")
            .execute(&exec)
            .expect("batched execution")
            .recombine()
            .expect("recombination");
        let f_orig = fidelity_vs_ideal(&qt.global, &circ, &measured);
        let f_qt = fidelity_vs_ideal(&qt.distribution, &circ, &measured);

        let jig = run_jigsaw(&exec, &circ, &measured, 2);
        let f_jig = fidelity_vs_ideal(&jig.distribution, &circ, &measured);

        let sqem = run_sqem(&exec, &circ, &measured).expect("single layer");
        let f_sqem = fidelity_vs_ideal(&sqem.distribution, &circ, &measured);

        let f_pcs = ideal_pcs_fidelity(&exec.inner().local, &circ, &measured, &qt.global);

        println!(
            "{meas_err:>8.2}  {f_orig:>9.2} {f_jig:>9.2} {f_pcs:>9.2} {f_sqem:>9.2} {f_qt:>9.2}"
        );
    }
    println!("\npaper:   0.01: 0.86 0.86 0.90 0.93 0.94 | 0.06: 0.47 0.47 0.51 0.79 0.82");
    println!("         0.11: 0.25 0.25 0.26 0.70 0.72 | 0.16: 0.12 0.12 0.12 0.60 0.61");
}

/// Ideal-PCS baseline: per traced qubit, the ancilla-based Z-check sandwich
/// with noiseless checking circuitry and noiseless ancilla readout (the
/// plain-executor post-selection path); locals recombined into the global
/// like every other method.
fn ideal_pcs_fidelity(
    exec: &Executor,
    circ: &Circuit,
    measured: &[usize],
    global: &Distribution,
) -> f64 {
    let mut locals = Vec::new();
    for (pos, &q) in measured.iter().enumerate() {
        let Ok(segments) = split_into_segments(circ, &[q]) else {
            continue;
        };
        let mut pre = Circuit::new(circ.n_qubits());
        let mut payload = Circuit::new(circ.n_qubits());
        let mut tail = Circuit::new(circ.n_qubits());
        let mut seen = false;
        for seg in &segments {
            for i in &seg.local {
                if seen {
                    tail.push(i.gate.clone(), i.qubits.clone());
                } else {
                    pre.push(i.gate.clone(), i.qubits.clone());
                }
            }
            let target = if seg.check_touches(&[q]) {
                seen = true;
                &mut payload
            } else if seen {
                &mut tail
            } else {
                &mut pre
            };
            for i in &seg.check {
                target.push(i.gate.clone(), i.qubits.clone());
            }
        }
        if payload.is_empty() {
            continue;
        }
        let mut pcs = z_check_sandwich(&pre, &payload, &[q], true);
        for i in tail.instructions() {
            pcs.program.push_gate(i.clone());
        }
        let (dist, _acc) = postselected_distribution(exec, &pcs, &[q]);
        locals.push((dist, vec![pos]));
    }
    let refined = qt_dist::recombine::try_bayesian_update_all(
        global,
        locals.iter().map(|(d, p)| (d, p.as_slice())),
    )
    .expect("per-qubit locals match the measured register");
    fidelity_vs_ideal(&refined, circ, measured)
}
