//! Uniform vs adaptive (pilot + Neyman) shot allocation at equal budget —
//! the source of `BENCH_adaptive.json`.
//!
//! Workload: the paper's single-layer suite restricted to the register
//! sizes the exact density-matrix engine reproduces instantly, run
//! through the full staged pipeline. Each workload is planned once and
//! its exact (infinite-shot) refined distribution is the fidelity
//! reference. Both arms then spend the *same* total budget per seed:
//!
//! * **uniform** — `ShotPolicy::Uniform`, the single-round allocator.
//! * **adaptive** — `ShotPolicy::Adaptive`, which spends a pilot
//!   fraction uniformly, estimates per-program sampling dispersion from
//!   the pilot counts, and Neyman-allocates the remainder (n_i ∝ σ_i).
//!
//! Fidelity is the Hellinger fidelity of the refined sampled
//! distribution against the exact reference, averaged over seeds; with
//! equal budgets the comparison *is* fidelity-per-shot. Before timing
//! anything, a preflight asserts that `Adaptive {pilot_fraction: 0.0}`
//! reproduces the uniform single-round report bit-for-bit — the
//! degenerate schedule must not merely approximate the legacy path.
//!
//! ```text
//! adaptive_shots [--quick] [--json PATH]
//! ```

use qt_algos::paper_single_layer_suite;
use qt_bench::quick_mode;
use qt_core::{QuTracer, QuTracerConfig, QuTracerReport, ShotPolicy};
use qt_dist::hellinger_fidelity;
use qt_serve::json::{obj, Json};
use qt_sim::{Backend, Executor};

fn runner() -> Executor {
    Executor::with_backend(qt_bench::mumbai_uniform_noise(), Backend::DensityMatrix)
}

fn assert_bit_identical(a: &QuTracerReport, b: &QuTracerReport, what: &str) {
    let xs: Vec<(u64, u64)> = a
        .distribution
        .iter()
        .map(|(i, p)| (i, p.to_bits()))
        .collect();
    let ys: Vec<(u64, u64)> = b
        .distribution
        .iter()
        .map(|(i, p)| (i, p.to_bits()))
        .collect();
    assert_eq!(xs, ys, "{what}: distributions must match bitwise");
    assert_eq!(a.stats.total_shots, b.stats.total_shots, "{what}: totals");
}

struct WorkloadResult {
    name: String,
    n_programs: usize,
    total_shots: usize,
    uniform_fidelity: f64,
    adaptive_fidelity: f64,
}

fn main() {
    let quick = quick_mode();
    let json_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1).cloned())
    };

    // Half the budget piloted: dispersion estimates from a thin pilot
    // misallocate the remainder on concentrated registers (measured
    // empirically across pf ∈ {0.1, 0.25, 0.5}); an even split keeps the
    // Neyman round's gains without that regression.
    let pilot_fraction = 0.5;
    let per_program = 192usize;
    let n_seeds = if quick { 8 } else { 24 };
    // The suite's 12q/15q VQE entries need ~4^n density-matrix entries —
    // out of reach for an exact reference here; everything else stays.
    let workloads: Vec<_> = paper_single_layer_suite()
        .into_iter()
        .filter(|w| w.circuit.n_qubits() <= 10)
        .collect();
    let exec = runner();
    let cfg = QuTracerConfig::single();

    // Preflight: the degenerate adaptive schedule (no pilot) must BE the
    // uniform single-round pipeline, bit for bit.
    let mut preflight_ok = true;
    {
        let w = &workloads[0];
        let plan = QuTracer::plan(&w.circuit, &w.measured, &cfg).expect("plannable workload");
        let total = per_program * plan.n_programs();
        for seed in 0..3u64 {
            let uniform = plan
                .run_sampled(&exec, total, ShotPolicy::Uniform, seed)
                .expect("uniform run");
            let degenerate = plan
                .run_sampled(
                    &exec,
                    total,
                    ShotPolicy::Adaptive {
                        pilot_fraction: 0.0,
                    },
                    seed,
                )
                .expect("degenerate adaptive run");
            assert_bit_identical(&degenerate, &uniform, "pf=0 preflight");
        }
        preflight_ok &= true;
        println!("preflight: Adaptive{{pf=0}} is bit-identical to Uniform");
    }

    let mut results = Vec::new();
    for w in &workloads {
        let plan = QuTracer::plan(&w.circuit, &w.measured, &cfg).expect("plannable workload");
        let exact = plan
            .execute(&exec)
            .expect("exact execution")
            .recombine()
            .expect("exact recombination");
        let total = per_program * plan.n_programs();

        let (mut fu, mut fa) = (0.0, 0.0);
        for seed in 0..n_seeds as u64 {
            let uniform = plan
                .run_sampled(&exec, total, ShotPolicy::Uniform, seed)
                .expect("uniform run");
            let adaptive = plan
                .run_sampled(&exec, total, ShotPolicy::Adaptive { pilot_fraction }, seed)
                .expect("adaptive run");
            assert_eq!(uniform.stats.total_shots, Some(total as u64));
            assert_eq!(adaptive.stats.total_shots, Some(total as u64));
            fu += hellinger_fidelity(&uniform.distribution, &exact.distribution);
            fa += hellinger_fidelity(&adaptive.distribution, &exact.distribution);
        }
        results.push(WorkloadResult {
            name: w.name.clone(),
            n_programs: plan.n_programs(),
            total_shots: total,
            uniform_fidelity: fu / n_seeds as f64,
            adaptive_fidelity: fa / n_seeds as f64,
        });
    }

    println!(
        "{:<22} {:>5} {:>8} {:>10} {:>10} {:>8}",
        "workload", "progs", "shots", "uniform", "adaptive", "delta"
    );
    for r in &results {
        println!(
            "{:<22} {:>5} {:>8} {:>10.5} {:>10.5} {:>+8.5}",
            r.name,
            r.n_programs,
            r.total_shots,
            r.uniform_fidelity,
            r.adaptive_fidelity,
            r.adaptive_fidelity - r.uniform_fidelity
        );
    }

    let uniform_fidelity =
        results.iter().map(|r| r.uniform_fidelity).sum::<f64>() / results.len() as f64;
    let adaptive_fidelity =
        results.iter().map(|r| r.adaptive_fidelity).sum::<f64>() / results.len() as f64;
    println!(
        "suite mean: uniform {uniform_fidelity:.5}, adaptive {adaptive_fidelity:.5} \
         ({:+.5} at pf={pilot_fraction}, {n_seeds} seeds)",
        adaptive_fidelity - uniform_fidelity
    );

    assert!(
        adaptive_fidelity > uniform_fidelity,
        "Neyman allocation must beat uniform at equal budget: \
         adaptive {adaptive_fidelity} vs uniform {uniform_fidelity}"
    );

    if let Some(path) = json_path {
        let doc = obj([
            ("schema_version", Json::Num(1.0)),
            ("suite", Json::Str("adaptive".into())),
            (
                "mode",
                Json::Str(if quick { "quick" } else { "full" }.into()),
            ),
            ("pilot_fraction", Json::Num(pilot_fraction)),
            ("per_program_shots", Json::Num(per_program as f64)),
            ("n_seeds", Json::Num(n_seeds as f64)),
            ("preflight_bit_identical", Json::Bool(preflight_ok)),
            ("uniform_fidelity", Json::Num(uniform_fidelity)),
            ("adaptive_fidelity", Json::Num(adaptive_fidelity)),
            (
                "improvement",
                Json::Num(adaptive_fidelity - uniform_fidelity),
            ),
            (
                "workloads",
                Json::Arr(
                    results
                        .iter()
                        .map(|r| {
                            obj([
                                ("name", Json::Str(r.name.clone())),
                                ("n_programs", Json::Num(r.n_programs as f64)),
                                ("total_shots", Json::Num(r.total_shots as f64)),
                                ("uniform_fidelity", Json::Num(r.uniform_fidelity)),
                                ("adaptive_fidelity", Json::Num(r.adaptive_fidelity)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        std::fs::write(&path, doc.to_string() + "\n").expect("write BENCH_adaptive.json");
        println!("wrote {path}");
    }
}
