//! Fig. 9 — multi-layer qubit subsetting: 10-qubit, 4-layer QAOA MaxCut on
//! a ring under the ibmq_mumbai-median noise model, varying the number of
//! trailing layers that receive checks (0…4). Compared against the ideal
//! ancilla PCS applied around the same trailing segments.
//!
//! Paper reference: fidelity grows monotonically with the number of checked
//! layers (+3.96 % at 1 layer up to +9.42 % at 4), and QuTracer beats ideal
//! PCS because it can optimize each layer's circuits separately.

use qt_algos::{qaoa::optimize_angles, qaoa_maxcut, ring_graph};
use qt_bench::{fidelity_vs_ideal, header, mumbai_uniform_noise, quick_mode, CachedRunner};
use qt_circuit::passes::split_into_segments;
use qt_circuit::Circuit;
use qt_core::{QuTracer, QuTracerConfig};
use qt_dist::Distribution;
use qt_pcs::{postselected_distribution, z_check_sandwich};
use qt_sim::{Backend, Executor, TrajectoryConfig};

fn main() {
    let n = 10;
    let layers = 4;
    let trajectories = if quick_mode() { 512 } else { 2048 };
    header(
        "Fig. 9 — Hellinger fidelity vs number of checked layers (10q QAOA, 4 layers)",
        "ibmq_mumbai-median noise; subset size 2 with ring symmetry",
    );
    let edges = ring_graph(n);
    let params = optimize_angles(6, &ring_graph(6), layers, 5); // angles from a small proxy ring
    let circ = qaoa_maxcut(n, &edges, &params);
    let measured: Vec<usize> = (0..n).collect();

    let exec = CachedRunner::new(Executor::with_backend(
        mumbai_uniform_noise(),
        Backend::Auto {
            dm_max_qubits: 9,
            trajectories: TrajectoryConfig::with_trajectories(trajectories),
        },
    ));

    println!(
        "{:>8}  {:>9} {:>10} {:>9}  {:>12}",
        "checked", "qutracer", "ideal PCS", "original", "improvement"
    );
    let mut base = None;
    for k in 0..=layers {
        let cfg = QuTracerConfig::pairs()
            .with_symmetric_subsets()
            .with_checked_layers(k);
        let report = QuTracer::plan(&circ, &measured, &cfg)
            .expect("plannable workload")
            .execute(&exec)
            .expect("batched execution")
            .recombine()
            .expect("recombination");
        let f_orig = fidelity_vs_ideal(&report.global, &circ, &measured);
        let f_qt = fidelity_vs_ideal(&report.distribution, &circ, &measured);
        if base.is_none() {
            base = Some(f_qt);
        }
        let f_pcs = ideal_pcs_trailing(exec.inner(), &circ, &measured, &report.global, k);
        let improvement = 100.0 * (f_qt - f_orig) / f_orig.max(1e-9);
        println!("{k:>8}  {f_qt:>9.3} {f_pcs:>10.3} {f_orig:>9.3}  {improvement:>+11.2}%");
    }
    println!("\npaper: checking 1..4 trailing layers improves fidelity by");
    println!("       +3.96% / +5.74% / +7.68% / +9.42% over the unmitigated run,");
    println!("       with QuTracer above ideal PCS at every point.");
}

/// Ideal ancilla PCS protecting the trailing `k` check segments of each
/// ring pair (one representative pair by symmetry), recombined like
/// QuTracer's locals.
fn ideal_pcs_trailing(
    exec: &Executor,
    circ: &Circuit,
    measured: &[usize],
    global: &Distribution,
    k: usize,
) -> f64 {
    if k == 0 {
        return fidelity_vs_ideal(global, circ, measured);
    }
    let pair = [measured[0], measured[1]];
    let Ok(segments) = split_into_segments(circ, &pair) else {
        return fidelity_vs_ideal(global, circ, measured);
    };
    let touching: Vec<usize> = segments
        .iter()
        .enumerate()
        .filter(|(_, s)| s.check_touches(&pair))
        .map(|(i, _)| i)
        .collect();
    let first = touching.len().saturating_sub(k);
    let start_seg = touching[first];
    // pre = everything before the protected window; payload = the window.
    let mut pre = Circuit::new(circ.n_qubits());
    let mut payload = Circuit::new(circ.n_qubits());
    for (i, seg) in segments.iter().enumerate() {
        for instr in seg.local.iter().chain(&seg.check) {
            if i < start_seg {
                pre.push(instr.gate.clone(), instr.qubits.clone());
            } else {
                payload.push(instr.gate.clone(), instr.qubits.clone());
            }
        }
    }
    // PCS requires the payload to commute with the checks; the mixer Rx
    // gates on the pair do not, so the window is protected only if the
    // payload is checkable — mirroring the paper, ideal PCS must protect
    // the whole multi-layer block at once, so the non-commuting mixers of
    // *earlier* layers inside the window are moved to the preparation side
    // when possible. Here we simply protect the commuting tail: drop
    // leading non-commuting pair gates from the payload into `pre`.
    let mut trimmed = Circuit::new(circ.n_qubits());
    let mut still_pre = true;
    for instr in payload.instructions() {
        let on_pair = instr.qubits.iter().any(|q| pair.contains(q));
        let blocks = qt_circuit::commute::block_diagonal_on_subset(instr, &pair);
        if still_pre && on_pair && !blocks {
            pre.push(instr.gate.clone(), instr.qubits.clone());
        } else {
            if on_pair && !blocks {
                // A later mixer: everything from here on cannot be checked;
                // append to the tail after the sandwich.
                still_pre = false;
            }
            trimmed.push(instr.gate.clone(), instr.qubits.clone());
        }
    }
    // Split trimmed into checkable head and tail.
    let mut head = Circuit::new(circ.n_qubits());
    let mut tail = Circuit::new(circ.n_qubits());
    let mut in_tail = false;
    for instr in trimmed.instructions() {
        let on_pair = instr.qubits.iter().any(|q| pair.contains(q));
        let blocks = qt_circuit::commute::block_diagonal_on_subset(instr, &pair);
        if on_pair && !blocks {
            in_tail = true;
        }
        if in_tail {
            tail.push(instr.gate.clone(), instr.qubits.clone());
        } else {
            head.push(instr.gate.clone(), instr.qubits.clone());
        }
    }
    let mut pcs = z_check_sandwich(&pre, &head, &pair, true);
    for i in tail.instructions() {
        pcs.program.push_gate(i.clone());
    }
    let (local, _) = postselected_distribution(exec, &pcs, &pair);
    // Reuse by ring symmetry for all adjacent pairs.
    let locals: Vec<(Distribution, Vec<usize>)> = (0..measured.len())
        .map(|p| (local.clone(), vec![p, (p + 1) % measured.len()]))
        .collect();
    let refined = qt_dist::recombine::try_bayesian_update_all(
        global,
        locals.iter().map(|(d, p)| (d, p.as_slice())),
    )
    .expect("ring-pair locals match the measured register");
    fidelity_vs_ideal(&refined, circ, measured)
}
