//! Table II — "real device" results for single-layer circuits, executed on
//! the synthesized device models (fake_hanoi 27q for QFTMultiplier / QPE /
//! QFTAdder / BV / VQE, fake_kyoto 127q for QAOA) with noise-aware layout,
//! routing and measurement crosstalk.
//!
//! Paper reference (Original / Jigsaw / SQEM / QuTracer fidelity):
//!   4q QFTMultiplier 0.49/0.49/ N/A/0.65 | 5q QPE 0.20/0.20/N/A/0.49
//!   6q QPE 0.19/0.19/N/A/0.29            | 7q QFTAdder 0.22/0.22/N/A/0.35
//!   9q BV 0.07/0.09/0.13/0.89            | 12q VQE 0.67/0.76/0.88/0.96
//!   15q VQE 0.36/0.50/0.65/0.87          | 10q QAOA 0.57/0.57/N/A/0.86

use qt_algos::{
    bernstein_vazirani, qaoa::optimize_angles, qaoa_maxcut, qft_adder_sized, qft_multiplier, qpe,
    ring_graph, vqe_ansatz, Workload,
};
use qt_baselines::{run_jigsaw, run_sqem};
use qt_bench::{fidelity_vs_ideal, header, quick_mode, AdaptiveRunner, CachedRunner};
use qt_core::{QuTracer, QuTracerConfig};
use qt_device::{Device, DeviceExecutor};
use qt_sim::{Backend, TrajectoryConfig};

fn main() {
    let trajectories = if quick_mode() { 512 } else { 2048 };
    header(
        "Table II — device-model results for single-layer circuits",
        "fake_hanoi (27q) / fake_kyoto (127q); noise-aware layout + routing + crosstalk",
    );

    let workloads: Vec<(Workload, bool, &str)> = vec![
        (
            Workload::new(
                "4-q QFTMultiplier",
                qft_multiplier(1, 1, 2, 1, 1),
                vec![2, 3],
            ),
            false,
            "hanoi",
        ),
        (
            Workload::new("5-q QPE", qpe(4, 1.0 / 3.0), (0..4).collect()),
            false,
            "hanoi",
        ),
        (
            Workload::new("6-q QPE", qpe(5, 1.0 / 3.0), (0..5).collect()),
            false,
            "hanoi",
        ),
        (
            Workload::new(
                "7-q QFTAdder",
                qft_adder_sized(3, 4, 5, 6),
                (3..7).collect(),
            ),
            false,
            "hanoi",
        ),
        (
            Workload::new(
                "9-q BV",
                bernstein_vazirani(8, 0b1011_0110),
                (0..8).collect(),
            ),
            true,
            "hanoi",
        ),
        (
            Workload::new("12-q VQE 1 layer", vqe_ansatz(12, 1, 11), (0..12).collect()),
            true,
            "hanoi",
        ),
        (
            Workload::new("15-q VQE 1 layer", vqe_ansatz(15, 1, 12), (0..15).collect()),
            true,
            "hanoi",
        ),
        (
            Workload::new(
                "10-q QAOA 1 layer",
                qaoa_maxcut(
                    10,
                    &ring_graph(10),
                    &optimize_angles(6, &ring_graph(6), 1, 6),
                ),
                (0..10).collect(),
            ),
            false,
            "kyoto",
        ),
    ];

    println!(
        "{:<18} {:>7} | {:>5} {:>5} | {:>6} {:>6} {:>6} {:>6}",
        "workload", "sh:qt", "2q:or", "2q:qt", "f:or", "f:ji", "f:sqem", "f:qt"
    );
    for (wl, sqem_ok, dev_name) in &workloads {
        let device = if *dev_name == "hanoi" {
            Device::fake_hanoi()
        } else {
            Device::fake_kyoto()
        };
        let mut dev_exec = DeviceExecutor::new(device);
        dev_exec.backend = Backend::Auto {
            dm_max_qubits: 9,
            trajectories: TrajectoryConfig::with_trajectories(trajectories),
        };
        let mut local_exec = dev_exec.clone();
        local_exec.backend = Backend::Auto {
            dm_max_qubits: 9,
            trajectories: TrajectoryConfig::with_trajectories(trajectories / 4),
        };
        let exec = CachedRunner::new(AdaptiveRunner {
            global: dev_exec,
            local: local_exec,
            threshold: 4,
        });

        let cfg = if wl.name.contains("QAOA") {
            QuTracerConfig::pairs().with_symmetric_subsets()
        } else {
            QuTracerConfig::single()
        };
        let qt = QuTracer::plan(&wl.circuit, &wl.measured, &cfg)
            .expect("plannable workload")
            .execute(&exec)
            .expect("batched execution")
            .recombine()
            .expect("recombination");
        let f_orig = fidelity_vs_ideal(&qt.global, &wl.circuit, &wl.measured);
        let f_qt = fidelity_vs_ideal(&qt.distribution, &wl.circuit, &wl.measured);
        let jig = run_jigsaw(&exec, &wl.circuit, &wl.measured, 2);
        let f_jig = fidelity_vs_ideal(&jig.distribution, &wl.circuit, &wl.measured);
        let f_sqem = if *sqem_ok {
            match run_sqem(&exec, &wl.circuit, &wl.measured) {
                Ok(r) => format!(
                    "{:6.2}",
                    fidelity_vs_ideal(&r.distribution, &wl.circuit, &wl.measured)
                ),
                Err(_) => "   N/A".to_string(),
            }
        } else {
            "   N/A".to_string()
        };
        println!(
            "{:<18} {:>7} | {:>5} {:>5.1} | {:>6.2} {:>6.2} {} {:>6.2}",
            wl.name,
            qt.stats.normalized_shots as usize,
            qt.stats.global_two_qubit_gates,
            qt.stats.avg_two_qubit_gates,
            f_orig,
            f_jig,
            f_sqem,
            f_qt
        );
    }
    println!("\npaper fidelities (or/ji/sqem/qt):");
    println!("  QFTMult 0.49/0.49/N-A/0.65   QPE5 0.20/0.20/N-A/0.49  QPE6 0.19/0.19/N-A/0.29");
    println!("  Adder   0.22/0.22/N-A/0.35   BV   0.07/0.09/0.13/0.89");
    println!("  VQE12   0.67/0.76/0.88/0.96  VQE15 0.36/0.50/0.65/0.87  QAOA 0.57/0.57/N-A/0.86");
}
