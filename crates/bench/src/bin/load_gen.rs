//! Closed-loop load generator for the `qt-serve` mitigation service —
//! the source of `BENCH_service.json`.
//!
//! Workload: QAOA max-cut circuits on a ring graph with a small pool of
//! seeded parameter variants; each request picks its variant from a
//! Zipf-skewed, deterministically seeded schedule (production traffic:
//! many users, few distinct ansätze). Clients are closed-loop — each
//! thread submits, waits for the report, then issues its next request.
//!
//! Two arms over the *same* request schedule:
//!
//! * **per-request** — batching and caching disabled
//!   ([`ServiceConfig::per_request`]): every request plans and executes
//!   alone, the one-shot library-call baseline behind HTTP.
//! * **service** — cross-request batching + the sharded result cache.
//!
//! Before timing, every variant's served report is checked bit-for-bit
//! against an in-process `run_qutracer` call with the same runner, so the
//! speedup is measured over verified-identical results.
//!
//! ```text
//! load_gen [--quick] [--json PATH]
//! ```

use qt_algos::{qaoa_maxcut, ring_graph, QaoaParams};
use qt_bench::quick_mode;
use qt_circuit::Circuit;
use qt_core::{run_qutracer, QuTracerConfig, QuTracerReport};
use qt_dist::Distribution;
use qt_serve::json::{obj, Json};
use qt_serve::{serve, ServiceClient, ServiceConfig, ServiceStats};
use qt_sim::{Backend, Executor};
use std::time::{Duration, Instant};

/// One deterministic SplitMix64 step (the schedule's only RNG).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The Zipf-skewed variant schedule: request `i` → variant index.
fn zipf_schedule(n_requests: usize, n_variants: usize, s: f64, seed: u64) -> Vec<usize> {
    let weights: Vec<f64> = (1..=n_variants).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    (0..n_requests)
        .map(|i| {
            let u = splitmix(seed ^ (i as u64).wrapping_mul(0x2545f4914f6cdd1d)) as f64
                / (u64::MAX as f64)
                * total;
            let mut acc = 0.0;
            for (v, w) in weights.iter().enumerate() {
                acc += w;
                if u < acc {
                    return v;
                }
            }
            n_variants - 1
        })
        .collect()
}

fn service_runner() -> Executor {
    Executor::with_backend(qt_bench::mumbai_uniform_noise(), Backend::DensityMatrix)
}

/// Exact-entry equality: same outcomes, bit-identical probabilities.
fn assert_dist_identical(a: &Distribution, b: &Distribution, what: &str) {
    assert_eq!(a.n_bits(), b.n_bits(), "{what}: width mismatch");
    let ea: Vec<(u64, u64)> = a.iter().map(|(i, p)| (i, p.to_bits())).collect();
    let eb: Vec<(u64, u64)> = b.iter().map(|(i, p)| (i, p.to_bits())).collect();
    assert_eq!(ea, eb, "{what}: served result is not bit-identical");
}

fn assert_report_identical(served: &QuTracerReport, local: &QuTracerReport) {
    assert_dist_identical(&served.distribution, &local.distribution, "distribution");
    assert_dist_identical(&served.global, &local.global, "global");
    assert_eq!(served.locals.len(), local.locals.len(), "locals count");
    for (i, ((da, pa), (db, pb))) in served.locals.iter().zip(&local.locals).enumerate() {
        assert_eq!(pa, pb, "locals[{i}] positions");
        assert_dist_identical(da, db, &format!("locals[{i}]"));
    }
    assert_eq!(
        served.stats.n_circuits, local.stats.n_circuits,
        "stats.n_circuits"
    );
}

struct ArmResult {
    wall: Duration,
    latencies_ms: Vec<f64>,
    stats: ServiceStats,
}

/// Runs the full schedule through a freshly booted server under `config`.
fn run_arm(
    circuits: &[Circuit],
    measured: &[usize],
    qt_config: &QuTracerConfig,
    schedule: &[usize],
    n_clients: usize,
    config: ServiceConfig,
) -> ArmResult {
    let server = serve("127.0.0.1:0", service_runner(), config).expect("bind ephemeral port");
    let addr = server.addr();
    let started = Instant::now();
    let latencies: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_clients)
            .map(|c| {
                scope.spawn(move || {
                    let client = ServiceClient::new(addr);
                    let mut lat = Vec::new();
                    // Round-robin partition keeps the schedule deterministic
                    // regardless of thread interleaving.
                    for i in (c..schedule.len()).step_by(n_clients) {
                        let circuit = &circuits[schedule[i]];
                        let t0 = Instant::now();
                        let job = loop {
                            match client.submit(circuit, measured, qt_config) {
                                Ok(job) => break job,
                                Err(e) if e.is_overloaded() => {
                                    std::thread::sleep(Duration::from_millis(1))
                                }
                                Err(e) => panic!("submit failed: {e}"),
                            }
                        };
                        client
                            .wait_result(job, Duration::from_secs(120))
                            .unwrap_or_else(|e| panic!("job {job} failed: {e}"));
                        lat.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed();
    let stats = server.service().stats();
    server.shutdown();
    ArmResult {
        wall,
        latencies_ms: latencies.into_iter().flatten().collect(),
        stats,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn arm_metrics(arm: &ArmResult, n_requests: usize) -> (f64, f64, f64) {
    let mut lat = arm.latencies_ms.clone();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let throughput = n_requests as f64 / arm.wall.as_secs_f64();
    (throughput, percentile(&lat, 0.5), percentile(&lat, 0.99))
}

fn main() {
    let quick = quick_mode();
    let json_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1).cloned())
    };

    let n_qubits = 8;
    let layers = 2;
    let n_variants = if quick { 6 } else { 10 };
    let n_requests = if quick { 48 } else { 160 };
    let n_clients = 3;
    let zipf_s = 1.1;
    let seed = 0x5eed_cafe;

    let edges = ring_graph(n_qubits);
    let circuits: Vec<Circuit> = (0..n_variants)
        .map(|v| qaoa_maxcut(n_qubits, &edges, &QaoaParams::seeded(layers, v as u64)))
        .collect();
    let measured: Vec<usize> = (0..n_qubits).collect();
    let qt_config = QuTracerConfig::single();
    let schedule = zipf_schedule(n_requests, n_variants, zipf_s, seed);

    // Correctness preflight: every variant served over the wire must be
    // bit-identical to a one-shot pipeline call with the same runner.
    {
        let server = serve("127.0.0.1:0", service_runner(), ServiceConfig::default())
            .expect("bind ephemeral port");
        let client = ServiceClient::new(server.addr());
        let local_runner = service_runner();
        for (v, circuit) in circuits.iter().enumerate() {
            let job = client
                .submit(circuit, &measured, &qt_config)
                .expect("preflight submit");
            let served = client
                .wait_result(job, Duration::from_secs(120))
                .expect("preflight result");
            let local = run_qutracer(&local_runner, circuit, &measured, &qt_config);
            assert_report_identical(&served, &local);
            println!("preflight: variant {v} bit-identical over the wire");
        }
        server.shutdown();
    }

    println!(
        "workload: QAOA-{n_qubits} ring, {layers} layers, {n_variants} variants, \
         {n_requests} requests, {n_clients} closed-loop clients, zipf s={zipf_s}"
    );

    let per_request = run_arm(
        &circuits,
        &measured,
        &qt_config,
        &schedule,
        n_clients,
        ServiceConfig::default().per_request(),
    );
    let service = run_arm(
        &circuits,
        &measured,
        &qt_config,
        &schedule,
        n_clients,
        ServiceConfig::default(),
    );

    let (pr_tp, pr_p50, pr_p99) = arm_metrics(&per_request, n_requests);
    let (sv_tp, sv_p50, sv_p99) = arm_metrics(&service, n_requests);
    let speedup = sv_tp / pr_tp;
    let hit_rate = service.stats.cache.hit_rate();
    let shared = service.stats.batch_trie.shared_gate_fraction();
    let avg_batch = service.stats.batched_requests as f64 / service.stats.batches.max(1) as f64;

    println!("arm          req/s      p50 ms     p99 ms");
    println!("per-request  {pr_tp:<10.1} {pr_p50:<10.2} {pr_p99:<10.2}");
    println!("service      {sv_tp:<10.1} {sv_p50:<10.2} {sv_p99:<10.2}");
    println!(
        "batching speedup {speedup:.2}x | cache hit rate {hit_rate:.3} | \
         avg batch {avg_batch:.2} requests | shared gate fraction {shared:.3}"
    );

    assert!(
        speedup >= 1.0,
        "cross-request batching must not lose to per-request execution"
    );
    assert!(hit_rate > 0.0, "Zipf reuse must produce cache hits");

    if let Some(path) = json_path {
        let doc = obj([
            ("schema_version", Json::Num(1.0)),
            ("suite", Json::Str("service".into())),
            (
                "mode",
                Json::Str(if quick { "quick" } else { "full" }.into()),
            ),
            (
                "workload",
                obj([
                    ("n_qubits", Json::Num(n_qubits as f64)),
                    ("layers", Json::Num(layers as f64)),
                    ("n_variants", Json::Num(n_variants as f64)),
                    ("n_requests", Json::Num(n_requests as f64)),
                    ("n_clients", Json::Num(n_clients as f64)),
                    ("zipf_s", Json::Num(zipf_s)),
                ]),
            ),
            (
                "per_request",
                obj([
                    ("throughput_rps", Json::Num(pr_tp)),
                    ("p50_ms", Json::Num(pr_p50)),
                    ("p99_ms", Json::Num(pr_p99)),
                ]),
            ),
            (
                "service",
                obj([
                    ("throughput_rps", Json::Num(sv_tp)),
                    ("p50_ms", Json::Num(sv_p50)),
                    ("p99_ms", Json::Num(sv_p99)),
                    ("cache_hit_rate", Json::Num(hit_rate)),
                    ("avg_batch_requests", Json::Num(avg_batch)),
                    ("shared_gate_fraction", Json::Num(shared)),
                    (
                        "distinct_jobs",
                        Json::Num(service.stats.distinct_jobs as f64),
                    ),
                    (
                        "executed_jobs",
                        Json::Num(service.stats.executed_jobs as f64),
                    ),
                ]),
            ),
            ("batching_speedup", Json::Num(speedup)),
        ]);
        std::fs::write(&path, doc.to_string() + "\n").expect("write BENCH_service.json");
        println!("wrote {path}");
    }
}
