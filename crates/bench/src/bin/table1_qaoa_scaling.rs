//! Table I — simulation results for 10-qubit QAOA MaxCut with 1…5 layers
//! under the ibmq_mumbai-median noise model: normalized number of shots,
//! average 2-qubit basis gate count and Hellinger fidelity for Original /
//! Jigsaw / QuTracer.
//!
//! Paper reference rows (shots | 2q count | fidelity | improvement):
//!   1 layer:  1/1/16   26/26/6    0.90/0.90/0.92   +2.89%
//!   2 layers: 1/1/106  52/52/21   0.80/0.80/0.83   +3.58%
//!   3 layers: 1/1/196  78/78/29   0.78/0.79/0.84   +8.41%
//!   4 layers: 1/1/286  104/104/37 0.74/0.74/0.81   +9.42%
//!   5 layers: 1/1/376  130/130/47 0.59/0.60/0.70  +18.09%

use qt_algos::{qaoa::optimize_angles, qaoa_maxcut, ring_graph};
use qt_baselines::run_jigsaw;
use qt_bench::{fidelity_vs_ideal, header, mumbai_uniform_noise, quick_mode, CachedRunner};
use qt_core::{QuTracer, QuTracerConfig, ShotPolicy};
use qt_device::{Device, DeviceExecutor};
use qt_sim::{Backend, Executor, Program, TrajectoryConfig};

fn main() {
    let n = 10;
    let trajectories = if quick_mode() { 512 } else { 2048 };
    let max_layers = if quick_mode() { 3 } else { 5 };
    // The paper samples 100 000 shots per circuit; the quick smoke run
    // keeps the sampling real but cheaper.
    let base_shots = if quick_mode() { 4_096 } else { 100_000 };
    header(
        "Table I — 10q QAOA MaxCut scaling (ibmq_mumbai-median noise model)",
        "columns: normalized shots (from sampled counts) | avg 2q basis gates | Hellinger fidelity",
    );
    let edges = ring_graph(n);
    // Gate counts come from transpiling onto the mumbai coupling map, as in
    // the paper; fidelities from the uniform-median noise simulation.
    let device = DeviceExecutor::new(Device::fake_mumbai());

    println!(
        "{:<22} {:>5} {:>5} {:>7} | {:>5} {:>5} {:>5} | {:>6} {:>6} {:>6} {:>8} | {:>8}",
        "workload",
        "sh:or",
        "sh:ji",
        "sh:qt",
        "2q:or",
        "2q:ji",
        "2q:qt",
        "f:or",
        "f:ji",
        "f:qt",
        "f:qt@sh",
        "improve"
    );
    for layers in 1..=max_layers {
        let params = optimize_angles(6, &ring_graph(6), layers, 5);
        let circ = qaoa_maxcut(n, &edges, &params);
        let measured: Vec<usize> = (0..n).collect();
        let exec = CachedRunner::new(Executor::with_backend(
            mumbai_uniform_noise(),
            Backend::Auto {
                dm_max_qubits: 9,
                trajectories: TrajectoryConfig::with_trajectories(trajectories),
            },
        ));

        let cfg = QuTracerConfig::pairs().with_symmetric_subsets();
        let plan = QuTracer::plan(&circ, &measured, &cfg).expect("plannable workload");
        let qt = plan
            .execute(&exec)
            .expect("batched execution")
            .recombine()
            .expect("recombination");
        let f_orig = fidelity_vs_ideal(&qt.global, &circ, &measured);
        let f_qt = fidelity_vs_ideal(&qt.distribution, &circ, &measured);
        let jig = run_jigsaw(&exec, &circ, &measured, 2);
        let f_jig = fidelity_vs_ideal(&jig.distribution, &circ, &measured);

        // Finite-shot pass: every *executed* (deduplicated) circuit gets
        // `base_shots` — Table I's accounting, where symmetric subsets'
        // shared ensemble bills once and fans its counts out. The shot
        // column is then the real sampled total (minus the global run),
        // normalized by the per-circuit budget — measured counts, not a
        // circuit tally. The cached runner serves the exact pass's
        // distributions back, so this pass only pays for the draws.
        let budget = base_shots * plan.n_programs();
        let shot_plan = plan
            .allocate_shots(budget, ShotPolicy::Uniform)
            .expect("budget funds the floor");
        let sampled = plan
            .execute_sampled(&exec, &shot_plan, 0xF1D0 + layers as u64)
            .expect("sampled execution")
            .recombine()
            .expect("sampled recombination");
        let total_shots = sampled
            .stats
            .total_shots
            .expect("sampled runs record real shots");
        let sh_qt = ((total_shots as f64 - base_shots as f64) / base_shots as f64).round() as usize;
        let f_qt_sh = fidelity_vs_ideal(&sampled.distribution, &circ, &measured);

        // Transpiled 2q counts: the original circuit, and the average over
        // QuTracer's (already reduced) mitigation circuit sizes scaled to
        // CX-basis counts.
        let (compact, _, _) = device.transpile(&Program::from_circuit(&circ), &measured);
        let or_2q = compact.two_qubit_gate_count();
        let qt_2q = qt.stats.avg_two_qubit_gates * 2.0; // CP→2 CX lowering
        let improvement = 100.0 * (f_qt - f_orig) / f_orig.max(1e-9);

        println!(
            "{:<22} {:>5} {:>5} {:>7} | {:>5} {:>5} {:>5.0} | {:>6.2} {:>6.2} {:>6.2} {:>8.2} | {:>+7.2}%",
            format!("10-q QAOA {layers} layer(s)"),
            1,
            1,
            sh_qt,
            or_2q,
            or_2q,
            qt_2q,
            f_orig,
            f_jig,
            f_qt,
            f_qt_sh,
            improvement
        );
    }
    println!("\npaper:  1: 16 | 26/26/6  | 0.90/0.90/0.92 (+2.89%)");
    println!("        2: 106| 52/52/21 | 0.80/0.80/0.83 (+3.58%)");
    println!("        3: 196| 78/78/29 | 0.78/0.79/0.84 (+8.41%)");
    println!("        4: 286|104/104/37| 0.74/0.74/0.81 (+9.42%)");
    println!("        5: 376|130/130/47| 0.59/0.60/0.70 (+18.09%)");
}
