//! Fig. 2 — the motivating example: a 3-qubit iQFT under heavy gate and
//! measurement noise (1q 0.01, 2q 0.1; measurement errors 0.1/0.3/0.3,
//! ancilla 0.3).
//!
//! Paper reference fidelities: Original 0.39, Jigsaw 0.57, optimized
//! copies 0.71, (noisy) PCS 0.68, QuTracer 0.87.

use qt_algos::iqft_example;
use qt_baselines::run_jigsaw;
use qt_bench::{fidelity_vs_ideal, header, BestReadoutRunner};
use qt_circuit::passes::split_into_segments;
use qt_circuit::Circuit;
use qt_core::{QuTracer, QuTracerConfig};
use qt_dist::Distribution;
use qt_pcs::{postselected_distribution, z_check_sandwich};
use qt_sim::{Backend, Executor, NoiseModel, ReadoutModel};

fn main() {
    header(
        "Fig. 2 — motivating example: 3-qubit iQFT bitwise distributions",
        "paper: Original 0.39 | Jigsaw 0.57 | optimized 0.71 | PCS 0.68 | QuTracer 0.87",
    );
    let circ = iqft_example();
    let measured: Vec<usize> = vec![0, 1, 2];

    let mut readout = ReadoutModel::default();
    readout.per_qubit.insert(0, (0.1, 0.1));
    readout.per_qubit.insert(1, (0.3, 0.3));
    readout.per_qubit.insert(2, (0.3, 0.3));
    // The PCS ancilla (qubit 3 of the sandwich program) is also noisy.
    readout.per_qubit.insert(3, (0.3, 0.3));
    let noise = NoiseModel::depolarizing(0.01, 0.1).with_readout_model(readout);
    let plain = Executor::with_backend(noise.clone(), Backend::DensityMatrix);
    // Subset circuits (Jigsaw locals, QSPC ensembles) are remapped onto the
    // best-readout qubit, the paper's qubit-remapping optimization.
    let exec = BestReadoutRunner::new(plain.clone(), &noise, 3);

    // (a) Original.
    let report = QuTracer::plan(&circ, &measured, &QuTracerConfig::single())
        .expect("plannable workload")
        .execute(&exec)
        .expect("batched execution")
        .recombine()
        .expect("recombination");
    let f_orig = fidelity_vs_ideal(&report.global, &circ, &measured);

    // (b) Jigsaw, subset size 1 as in the figure.
    let jig = run_jigsaw(&exec, &circ, &measured, 1);
    let f_jig = fidelity_vs_ideal(&jig.distribution, &circ, &measured);

    // (c) Optimized circuit copies without checks: QuTracer with zero
    // checked layers still removes false dependencies and bypasses gates.
    let cfg_nochecks = QuTracerConfig::single().with_checked_layers(0);
    let opt = QuTracer::plan(&circ, &measured, &cfg_nochecks)
        .expect("plannable workload")
        .execute(&exec)
        .expect("batched execution")
        .recombine()
        .expect("recombination");
    let f_opt = fidelity_vs_ideal(&opt.distribution, &circ, &measured);

    // (d) Ancilla-based PCS with *noisy* checks: one Z check per traced
    // qubit around its commuting segment, recombined like the others.
    let mut pcs_locals = Vec::new();
    for (pos, &q) in measured.iter().enumerate() {
        let Ok(segments) = split_into_segments(&circ, &[q]) else {
            continue;
        };
        let mut pre = Circuit::new(circ.n_qubits());
        let mut payload = Circuit::new(circ.n_qubits());
        let mut tail = Circuit::new(circ.n_qubits());
        let mut seen_check = false;
        for seg in &segments {
            for i in &seg.local {
                if seen_check {
                    tail.push(i.gate.clone(), i.qubits.clone());
                } else {
                    pre.push(i.gate.clone(), i.qubits.clone());
                }
            }
            if seg.check_touches(&[q]) {
                for i in &seg.check {
                    payload.push(i.gate.clone(), i.qubits.clone());
                }
                seen_check = true;
            } else {
                for i in &seg.check {
                    if seen_check {
                        tail.push(i.gate.clone(), i.qubits.clone());
                    } else {
                        pre.push(i.gate.clone(), i.qubits.clone());
                    }
                }
            }
        }
        if payload.is_empty() {
            continue;
        }
        let mut pcs = z_check_sandwich(&pre, &payload, &[q], false);
        for i in tail.instructions() {
            pcs.program.push_gate(i.clone());
        }
        let (dist, _acc) = postselected_distribution(&plain, &pcs, &[q]);
        pcs_locals.push((Distribution::from_probs(1, dist), vec![pos]));
    }
    let pcs_dist = qt_dist::recombine::bayesian_update_all(&report.global, &pcs_locals);
    let f_pcs = fidelity_vs_ideal(&pcs_dist, &circ, &measured);

    // (e) QuTracer (QSPC).
    let f_qt = fidelity_vs_ideal(&report.distribution, &circ, &measured);

    println!("{:<28} {:>8}  (paper)", "method", "fidelity");
    println!("{:<28} {:>8.2}  (0.39)", "original", f_orig);
    println!("{:<28} {:>8.2}  (0.57)", "jigsaw (subset 1)", f_jig);
    println!(
        "{:<28} {:>8.2}  (0.71)",
        "optimized copies, no checks", f_opt
    );
    println!(
        "{:<28} {:>8.2}  (0.68)",
        "ancilla PCS (noisy checks)", f_pcs
    );
    println!("{:<28} {:>8.2}  (0.87)", "QuTracer (QSPC)", f_qt);

    println!("\nbitwise local distributions (QuTracer):");
    for (l, pos) in &report.locals {
        println!("  q{}: p0={:.3} p1={:.3}", pos[0], l.prob(0), l.prob(1));
    }
}
