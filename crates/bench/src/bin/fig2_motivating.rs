//! Fig. 2 — the motivating example: a 3-qubit iQFT under heavy gate and
//! measurement noise (1q 0.01, 2q 0.1; measurement errors 0.1/0.3/0.3,
//! ancilla 0.3).
//!
//! Paper reference fidelities: Original 0.39, Jigsaw 0.57, optimized
//! copies 0.71, (noisy) PCS 0.68, QuTracer 0.87.
//!
//! Printed twice: once from exact simulator distributions, and once with
//! every circuit sampled at a finite per-circuit shot budget (the paper's
//! hardware regime) — the method ordering must survive shot noise.

use qt_algos::iqft_example;
use qt_baselines::run_jigsaw;
use qt_bench::{fidelity_vs_ideal, header, BestReadoutRunner, SampledRunner};
use qt_circuit::passes::split_into_segments;
use qt_circuit::Circuit;
use qt_core::{QuTracer, QuTracerConfig, QuTracerReport};
use qt_dist::Distribution;
use qt_pcs::{postselected_distribution, postselected_distribution_sampled, z_check_sandwich};
use qt_sim::{Backend, Executor, NoiseModel, ReadoutModel, Runner};

/// Per-method Fig. 2 fidelities, in the paper's order.
struct MethodFidelities {
    orig: f64,
    jigsaw: f64,
    optimized: f64,
    pcs: f64,
    qutracer: f64,
}

impl MethodFidelities {
    /// Method indices sorted by ascending fidelity — the "ordering" the
    /// finite-shot run must reproduce.
    fn ranking(&self) -> Vec<usize> {
        let f = [
            self.orig,
            self.jigsaw,
            self.optimized,
            self.pcs,
            self.qutracer,
        ];
        let mut idx: Vec<usize> = (0..f.len()).collect();
        idx.sort_by(|&a, &b| f[a].partial_cmp(&f[b]).unwrap());
        idx
    }
}

/// Runs every Fig. 2 method on the given runner (`exec` remaps subset
/// circuits onto the best-readout qubit; `pcs_dist` executes a PCS
/// sandwich program and returns its post-selected distribution). The
/// runner decides whether distributions are exact or sampled — the
/// mitigation flows themselves are identical.
fn run_methods<R: Runner>(
    circ: &Circuit,
    measured: &[usize],
    exec: &R,
    pcs_dist: &dyn Fn(&qt_pcs::PcsProgram, &[usize]) -> Distribution,
) -> (MethodFidelities, QuTracerReport) {
    // (a) Original + (e) QuTracer from one staged-pipeline run.
    let report = QuTracer::plan(circ, measured, &QuTracerConfig::single())
        .expect("plannable workload")
        .execute(exec)
        .expect("batched execution")
        .recombine()
        .expect("recombination");
    let f_orig = fidelity_vs_ideal(&report.global, circ, measured);
    let f_qt = fidelity_vs_ideal(&report.distribution, circ, measured);

    // (b) Jigsaw, subset size 1 as in the figure.
    let jig = run_jigsaw(exec, circ, measured, 1);
    let f_jig = fidelity_vs_ideal(&jig.distribution, circ, measured);

    // (c) Optimized circuit copies without checks: QuTracer with zero
    // checked layers still removes false dependencies and bypasses gates.
    let cfg_nochecks = QuTracerConfig::single().with_checked_layers(0);
    let opt = QuTracer::plan(circ, measured, &cfg_nochecks)
        .expect("plannable workload")
        .execute(exec)
        .expect("batched execution")
        .recombine()
        .expect("recombination");
    let f_opt = fidelity_vs_ideal(&opt.distribution, circ, measured);

    // (d) Ancilla-based PCS with *noisy* checks: one Z check per traced
    // qubit around its commuting segment, recombined like the others.
    let mut pcs_locals = Vec::new();
    for (pos, &q) in measured.iter().enumerate() {
        let Ok(segments) = split_into_segments(circ, &[q]) else {
            continue;
        };
        let mut pre = Circuit::new(circ.n_qubits());
        let mut payload = Circuit::new(circ.n_qubits());
        let mut tail = Circuit::new(circ.n_qubits());
        let mut seen_check = false;
        for seg in &segments {
            for i in &seg.local {
                if seen_check {
                    tail.push(i.gate.clone(), i.qubits.clone());
                } else {
                    pre.push(i.gate.clone(), i.qubits.clone());
                }
            }
            if seg.check_touches(&[q]) {
                for i in &seg.check {
                    payload.push(i.gate.clone(), i.qubits.clone());
                }
                seen_check = true;
            } else {
                for i in &seg.check {
                    if seen_check {
                        tail.push(i.gate.clone(), i.qubits.clone());
                    } else {
                        pre.push(i.gate.clone(), i.qubits.clone());
                    }
                }
            }
        }
        if payload.is_empty() {
            continue;
        }
        let mut pcs = z_check_sandwich(&pre, &payload, &[q], false);
        for i in tail.instructions() {
            pcs.program.push_gate(i.clone());
        }
        let dist = pcs_dist(&pcs, &[q]);
        pcs_locals.push((dist, vec![pos]));
    }
    let pcs_dist = qt_dist::recombine::try_bayesian_update_all(
        &report.global,
        pcs_locals.iter().map(|(d, p)| (d, p.as_slice())),
    )
    .expect("per-qubit PCS locals match the measured register");
    let f_pcs = fidelity_vs_ideal(&pcs_dist, circ, measured);

    (
        MethodFidelities {
            orig: f_orig,
            jigsaw: f_jig,
            optimized: f_opt,
            pcs: f_pcs,
            qutracer: f_qt,
        },
        report,
    )
}

fn print_table(f: &MethodFidelities) {
    println!("{:<28} {:>8}  (paper)", "method", "fidelity");
    println!("{:<28} {:>8.2}  (0.39)", "original", f.orig);
    println!("{:<28} {:>8.2}  (0.57)", "jigsaw (subset 1)", f.jigsaw);
    println!(
        "{:<28} {:>8.2}  (0.71)",
        "optimized copies, no checks", f.optimized
    );
    println!(
        "{:<28} {:>8.2}  (0.68)",
        "ancilla PCS (noisy checks)", f.pcs
    );
    println!("{:<28} {:>8.2}  (0.87)", "QuTracer (QSPC)", f.qutracer);
}

fn main() {
    header(
        "Fig. 2 — motivating example: 3-qubit iQFT bitwise distributions",
        "paper: Original 0.39 | Jigsaw 0.57 | optimized 0.71 | PCS 0.68 | QuTracer 0.87",
    );
    let circ = iqft_example();
    let measured: Vec<usize> = vec![0, 1, 2];

    let mut readout = ReadoutModel::default();
    readout.per_qubit.insert(0, (0.1, 0.1));
    readout.per_qubit.insert(1, (0.3, 0.3));
    readout.per_qubit.insert(2, (0.3, 0.3));
    // The PCS ancilla (qubit 3 of the sandwich program) is also noisy.
    readout.per_qubit.insert(3, (0.3, 0.3));
    let noise = NoiseModel::depolarizing(0.01, 0.1).with_readout_model(readout);
    let plain = Executor::with_backend(noise.clone(), Backend::DensityMatrix);
    // Subset circuits (Jigsaw locals, QSPC ensembles) are remapped onto the
    // best-readout qubit, the paper's qubit-remapping optimization.
    let exec = BestReadoutRunner::new(plain.clone(), &noise, 3);

    let exact_pcs =
        |pcs: &qt_pcs::PcsProgram, m: &[usize]| postselected_distribution(&plain, pcs, m).0;
    let (exact, report) = run_methods(&circ, &measured, &exec, &exact_pcs);
    print_table(&exact);

    println!("\nbitwise local distributions (QuTracer):");
    for (l, pos) in &report.locals {
        println!("  q{}: p0={:.3} p1={:.3}", pos[0], l.prob(0), l.prob(1));
    }

    // Finite-shot replay: the identical flows, with every circuit sampled
    // at a fixed shot budget (well above the 10k where shot noise stops
    // reordering methods separated by ≥0.05 fidelity).
    let shots = 16_384;
    let sampled_exec = SampledRunner::new(
        BestReadoutRunner::new(plain.clone(), &noise, 3),
        shots,
        0xF162,
    );
    let sampled_pcs = |pcs: &qt_pcs::PcsProgram, m: &[usize]| {
        postselected_distribution_sampled(&plain, pcs, m, shots, 0xF162).0
    };
    let (sampled, _) = run_methods(&circ, &measured, &sampled_exec, &sampled_pcs);
    println!("\nfinite-shot replay ({shots} shots per circuit):");
    print_table(&sampled);
    let preserved = exact.ranking() == sampled.ranking();
    println!(
        "method ordering vs exact pipeline: {}",
        if preserved { "preserved" } else { "CHANGED" }
    );
}
