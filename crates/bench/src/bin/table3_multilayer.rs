//! Table III — device-model results for multi-layer circuits: 12q/15q VQE
//! with 2–3 layers (fake_hanoi) and 10q QAOA with 2–3 layers (fake_cusco).
//! SQEM is absent: its cost is exponential in the layer count.
//!
//! Paper reference (Original / Jigsaw / QuTracer fidelity):
//!   12q VQE 2: 0.37/0.52/0.65   12q VQE 3: 0.29/0.39/0.49
//!   15q VQE 2: 0.21/0.28/0.69   15q VQE 3: 0.06/0.06/0.54
//!   10q QAOA 2: 0.16/0.28/0.36  10q QAOA 3: 0.14/0.16/0.40

use qt_algos::{qaoa::optimize_angles, qaoa_maxcut, ring_graph, vqe_ansatz, Workload};
use qt_baselines::run_jigsaw;
use qt_bench::{fidelity_vs_ideal, header, quick_mode, AdaptiveRunner, CachedRunner};
use qt_core::{QuTracer, QuTracerConfig};
use qt_device::{Device, DeviceExecutor};
use qt_sim::{Backend, TrajectoryConfig};

fn main() {
    let trajectories = if quick_mode() { 512 } else { 2048 };
    header(
        "Table III — device-model results for multi-layer circuits",
        "12q/15q VQE on fake_hanoi; 10q QAOA on fake_cusco",
    );

    let mut workloads: Vec<(Workload, &str)> = Vec::new();
    for layers in [2usize, 3] {
        workloads.push((
            Workload::new(
                format!("12-q VQE {layers} layers"),
                vqe_ansatz(12, layers, 11),
                (0..12).collect(),
            ),
            "hanoi",
        ));
    }
    for layers in [2usize, 3] {
        workloads.push((
            Workload::new(
                format!("15-q VQE {layers} layers"),
                vqe_ansatz(15, layers, 12),
                (0..15).collect(),
            ),
            "hanoi",
        ));
    }
    for layers in [2usize, 3] {
        workloads.push((
            Workload::new(
                format!("10-q QAOA {layers} layers"),
                qaoa_maxcut(
                    10,
                    &ring_graph(10),
                    &optimize_angles(6, &ring_graph(6), layers, 5),
                ),
                (0..10).collect(),
            ),
            "cusco",
        ));
    }
    if quick_mode() {
        workloads.truncate(2);
    }

    println!(
        "{:<18} {:>7} | {:>5} {:>5} | {:>6} {:>6} {:>6}",
        "workload", "sh:qt", "2q:or", "2q:qt", "f:or", "f:ji", "f:qt"
    );
    for (wl, dev_name) in &workloads {
        let device = if *dev_name == "hanoi" {
            Device::fake_hanoi()
        } else {
            Device::fake_cusco()
        };
        let mut dev_exec = DeviceExecutor::new(device);
        dev_exec.backend = Backend::Auto {
            dm_max_qubits: 9,
            trajectories: TrajectoryConfig::with_trajectories(trajectories),
        };
        let mut local_exec = dev_exec.clone();
        local_exec.backend = Backend::Auto {
            dm_max_qubits: 9,
            trajectories: TrajectoryConfig::with_trajectories(trajectories / 4),
        };
        let exec = CachedRunner::new(AdaptiveRunner {
            global: dev_exec,
            local: local_exec,
            threshold: 4,
        });
        let cfg = if wl.name.contains("QAOA") {
            QuTracerConfig::pairs().with_symmetric_subsets()
        } else {
            QuTracerConfig::single()
        };
        let qt = QuTracer::plan(&wl.circuit, &wl.measured, &cfg)
            .expect("plannable workload")
            .execute(&exec)
            .expect("batched execution")
            .recombine()
            .expect("recombination");
        let f_orig = fidelity_vs_ideal(&qt.global, &wl.circuit, &wl.measured);
        let f_qt = fidelity_vs_ideal(&qt.distribution, &wl.circuit, &wl.measured);
        let jig = run_jigsaw(&exec, &wl.circuit, &wl.measured, 2);
        let f_jig = fidelity_vs_ideal(&jig.distribution, &wl.circuit, &wl.measured);
        println!(
            "{:<18} {:>7} | {:>5} {:>5.1} | {:>6.2} {:>6.2} {:>6.2}",
            wl.name,
            qt.stats.normalized_shots as usize,
            qt.stats.global_two_qubit_gates,
            qt.stats.avg_two_qubit_gates,
            f_orig,
            f_jig,
            f_qt
        );
    }
    println!("\npaper (or/ji/qt): VQE12x2 0.37/0.52/0.65  VQE12x3 0.29/0.39/0.49");
    println!("                  VQE15x2 0.21/0.28/0.69  VQE15x3 0.06/0.06/0.54");
    println!("                  QAOAx2  0.16/0.28/0.36  QAOAx3  0.14/0.16/0.40");
}
