//! Shared harness utilities for the experiment binaries that regenerate
//! every table and figure of the paper's evaluation (see `DESIGN.md` for
//! the experiment index).

use qt_dist::{hellinger_fidelity, Distribution};
use qt_sim::cache::{run_output_weight, CacheStats, ShardedLruCache};
use qt_sim::{ideal_distribution, BatchJob, JobKey, Program, RunOutput, Runner, SampledOutput};
use std::collections::HashMap;

/// Default byte budget of a [`CachedRunner`]'s result cache — generous
/// for the harness workloads, but bounded: the old `HashMap`-backed cache
/// grew without limit for the lifetime of the runner.
pub const DEFAULT_CACHE_BYTES: usize = 256 << 20;

/// A memoizing wrapper around any [`Runner`]: identical (program, measured)
/// pairs are executed once. The evaluation flows re-run the same global
/// circuit for every mitigation method; caching keeps the harness honest
/// (identical inputs ⇒ identical noisy outputs) and fast.
///
/// Backed by the shared [`ShardedLruCache`], so the cache is bounded
/// (memory-weighted LRU eviction instead of silent unbounded growth) and
/// exposes hit/miss/eviction counters via
/// [`CachedRunner::cache_stats`].
pub struct CachedRunner<R: Runner> {
    inner: R,
    cache: ShardedLruCache<RunOutput>,
}

impl<R: Runner> CachedRunner<R> {
    /// Wraps a runner with the default cache budget
    /// ([`DEFAULT_CACHE_BYTES`]).
    pub fn new(inner: R) -> Self {
        Self::with_capacity(inner, DEFAULT_CACHE_BYTES, 8)
    }

    /// Wraps a runner with an explicit cache byte budget and shard count.
    pub fn with_capacity(inner: R, capacity_bytes: usize, shards: usize) -> Self {
        CachedRunner {
            inner,
            cache: ShardedLruCache::new(capacity_bytes, shards),
        }
    }

    /// The wrapped runner.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Number of inner executions performed — equal to the number of
    /// distinct jobs seen as long as nothing has been evicted (the
    /// harness workloads fit comfortably in the default budget).
    pub fn distinct_runs(&self) -> usize {
        self.cache.stats().insertions as usize
    }

    /// Hit/miss/eviction counters of the result cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

impl<R: Runner> Runner for CachedRunner<R> {
    fn run(&self, program: &Program, measured: &[usize]) -> RunOutput {
        let key = BatchJob::key_of(program, measured);
        if let Some(hit) = self.cache.get(key) {
            return hit;
        }
        let out = self.inner.run(program, measured);
        self.cache.insert(key, out.clone(), run_output_weight(&out));
        out
    }

    /// Serves cache hits directly and forwards only the distinct misses to
    /// the wrapped runner's (possibly parallel) batch path. Return values
    /// come from the executed results themselves, so correctness never
    /// depends on the entries surviving in the cache.
    fn run_batch(&self, jobs: &[BatchJob]) -> Vec<RunOutput> {
        let keys: Vec<JobKey> = jobs.iter().map(|j| j.dedup_key()).collect();
        let mut results: Vec<Option<RunOutput>> = keys.iter().map(|&k| self.cache.get(k)).collect();
        let mut misses: Vec<usize> = Vec::new();
        {
            let mut seen: Vec<JobKey> = Vec::new();
            for (i, key) in keys.iter().enumerate() {
                if results[i].is_none() && !seen.contains(key) {
                    misses.push(i);
                    seen.push(*key);
                }
            }
        }
        let fresh_jobs: Vec<BatchJob> = misses.iter().map(|&i| jobs[i].clone()).collect();
        let fresh = self.inner.run_batch(&fresh_jobs);
        let mut executed: HashMap<JobKey, RunOutput> = HashMap::with_capacity(misses.len());
        for (&i, out) in misses.iter().zip(fresh) {
            self.cache
                .insert(keys[i], out.clone(), run_output_weight(&out));
            executed.insert(keys[i], out);
        }
        results
            .iter_mut()
            .zip(&keys)
            .map(|(slot, key)| {
                slot.take().unwrap_or_else(|| {
                    executed
                        .get(key)
                        .expect("every non-hit key was executed")
                        .clone()
                })
            })
            .collect()
    }
}

/// A finite-shot view of any [`Runner`]: every executed job's noisy
/// distribution is replaced by the empirical frequencies of a fixed
/// per-circuit shot budget — the paper's hardware regime (100 000 shots per
/// circuit), replayable over any simulator-backed runner and any
/// mitigation flow without touching the flow itself.
///
/// Per-job sampling seeds derive from the job's structural [`JobKey`], so
/// identical circuits see identical shot noise wherever they appear (batch
/// order, dedup fan-out, repeated methods sharing the global run) — the
/// finite-shot analogue of [`CachedRunner`]'s "identical inputs ⇒ identical
/// noisy outputs" honesty property.
pub struct SampledRunner<R: Runner> {
    /// The wrapped (exact) runner.
    pub inner: R,
    /// Shots sampled per executed circuit.
    pub shots_per_circuit: usize,
    /// Base sampling seed.
    pub seed: u64,
}

impl<R: Runner> SampledRunner<R> {
    /// Wraps `inner`, sampling every circuit at `shots_per_circuit`.
    pub fn new(inner: R, shots_per_circuit: usize, seed: u64) -> Self {
        SampledRunner {
            inner,
            shots_per_circuit,
            seed,
        }
    }

    fn seed_for(&self, program: &Program, measured: &[usize]) -> u64 {
        let bits = BatchJob::key_of(program, measured).bits();
        self.seed ^ (bits as u64) ^ ((bits >> 64) as u64).rotate_left(17)
    }

    fn sample(&self, out: &RunOutput, program: &Program, measured: &[usize]) -> RunOutput {
        SampledOutput::from_run(
            out,
            self.shots_per_circuit,
            self.seed_for(program, measured),
        )
        .to_run_output()
    }
}

impl<R: Runner> Runner for SampledRunner<R> {
    fn run(&self, program: &Program, measured: &[usize]) -> RunOutput {
        let out = self.inner.run(program, measured);
        self.sample(&out, program, measured)
    }

    /// Forwards the whole batch to the wrapped runner's (batched, possibly
    /// prefix-sharing) path, then samples each job's terminal distribution.
    fn run_batch(&self, jobs: &[BatchJob]) -> Vec<RunOutput> {
        self.inner
            .run_batch(jobs)
            .iter()
            .zip(jobs)
            .map(|(out, job)| self.sample(out, &job.program, &job.measured))
            .collect()
    }
}

/// Hellinger fidelity of `dist` against the ideal distribution of `circuit`
/// over `measured`.
pub fn fidelity_vs_ideal(
    dist: &Distribution,
    circuit: &qt_circuit::Circuit,
    measured: &[usize],
) -> f64 {
    let ideal = ideal_distribution(&Program::from_circuit(circuit), measured);
    hellinger_fidelity(dist, &ideal)
}

/// Formats one row of a fixed-width results table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Prints a standard experiment header.
pub fn header(title: &str, note: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    if !note.is_empty() {
        println!("{note}");
    }
    println!("{}", "=".repeat(78));
}

/// Reads an optional scale factor from the command line: `--quick` shrinks
/// trajectory counts for smoke runs.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The `ibmq_mumbai`-median uniform noise model used by the simulation
/// experiments of Sec. VII-C/D (Fig. 9, Table I): depolarizing gate errors
/// at the reported medians plus uniform readout error. Thermal relaxation
/// is folded into the depolarizing rates (T1/T2 ≫ gate time at these
/// depths); the device-model experiments (Tables II/III) keep it explicit.
pub fn mumbai_uniform_noise() -> qt_sim::NoiseModel {
    qt_sim::NoiseModel::depolarizing(2.5e-4, 7.611e-3).with_readout(1.810e-2)
}

/// A trajectory-backed auto backend with the given trajectory count.
pub fn auto_backend(trajectories: usize, seed: u64) -> qt_sim::Backend {
    qt_sim::Backend::Auto {
        dm_max_qubits: 9,
        trajectories: qt_sim::TrajectoryConfig {
            n_trajectories: trajectories,
            seed,
            n_threads: None,
        },
    }
}

/// A runner that remaps small measured sets onto the lowest-readout-error
/// qubits before executing — the paper's *qubit remapping* optimization for
/// simulator experiments with per-qubit readout calibration (Jigsaw "maps
/// the qubit subset to qubits with lower measurement errors", Sec. III).
pub struct BestReadoutRunner<R: Runner> {
    /// The wrapped runner.
    pub inner: R,
    /// Physical qubits sorted by ascending readout error.
    pub ranked: Vec<usize>,
    /// Remap only when at most this many qubits are measured.
    pub max_measured: usize,
}

impl<R: Runner> BestReadoutRunner<R> {
    /// Ranks qubits by the readout model of `noise`.
    pub fn new(inner: R, noise: &qt_sim::NoiseModel, n_qubits: usize) -> Self {
        let mut ranked: Vec<usize> = (0..n_qubits).collect();
        ranked.sort_by(|&a, &b| {
            let e = |q: usize| {
                let (p01, p10) = noise.readout.flip_probs(q, 1);
                p01 + p10
            };
            e(a).partial_cmp(&e(b)).unwrap()
        });
        BestReadoutRunner {
            inner,
            ranked,
            max_measured: 2,
        }
    }
}

impl<R: Runner> BestReadoutRunner<R> {
    /// The remapped `(program, measured)` this runner would execute, or
    /// `None` when the job runs unmodified.
    fn remapped_job(&self, program: &Program, measured: &[usize]) -> Option<(Program, Vec<usize>)> {
        if measured.len() > self.max_measured
            || measured.len() > self.ranked.len()
            || self.ranked.is_empty()
        {
            return None;
        }
        // Swap each measured qubit onto the next-best readout slot.
        let n = program.n_qubits();
        let mut map: Vec<usize> = (0..n).collect();
        for (rank, &m) in measured.iter().enumerate() {
            let target = self.ranked[rank];
            if target >= n {
                return None;
            }
            let w = (0..n).find(|&x| map[x] == target).expect("permutation");
            map.swap(m, w);
        }
        let new_measured: Vec<usize> = measured.iter().map(|&q| map[q]).collect();
        Some((program.remapped(&map), new_measured))
    }
}

impl<R: Runner> Runner for BestReadoutRunner<R> {
    fn run(&self, program: &Program, measured: &[usize]) -> RunOutput {
        match self.remapped_job(program, measured) {
            Some((p, m)) => self.inner.run(&p, &m),
            None => self.inner.run(program, measured),
        }
    }

    /// Remaps each job, then forwards the whole batch to the wrapped
    /// runner's (possibly parallel) batch path.
    fn run_batch(&self, jobs: &[BatchJob]) -> Vec<RunOutput> {
        let remapped: Vec<BatchJob> = jobs
            .iter()
            .map(|j| match self.remapped_job(&j.program, &j.measured) {
                Some((p, m)) => BatchJob::new(p, m),
                None => j.clone(),
            })
            .collect();
        self.inner.run_batch(&remapped)
    }
}

/// A runner that adapts the trajectory budget to the output dimension:
/// global-distribution runs (many measured qubits, `2^n` Hellinger bins) get
/// the full budget, while the low-dimensional mitigation-circuit runs (1–2
/// measured qubits, expectation values) use a fraction of it. This matches
/// the paper's shot analysis (subset circuits need `O(s/n)` of the global
/// shots for the same accuracy, Sec. V-E).
pub struct AdaptiveRunner<R: Runner, S: Runner> {
    /// Runner used when more than `threshold` qubits are measured.
    pub global: R,
    /// Runner used for small measured sets.
    pub local: S,
    /// Measured-qubit count at which the global runner takes over.
    pub threshold: usize,
}

impl<R: Runner, S: Runner> Runner for AdaptiveRunner<R, S> {
    fn run(&self, program: &Program, measured: &[usize]) -> RunOutput {
        if measured.len() > self.threshold {
            self.global.run(program, measured)
        } else {
            self.local.run(program, measured)
        }
    }

    /// Partitions the batch by threshold and forwards each part to the
    /// owning runner's (possibly parallel) batch path, preserving order.
    fn run_batch(&self, jobs: &[BatchJob]) -> Vec<RunOutput> {
        let (mut big, mut small) = (Vec::new(), Vec::new());
        for (i, job) in jobs.iter().enumerate() {
            if job.measured.len() > self.threshold {
                big.push(i);
            } else {
                small.push(i);
            }
        }
        let big_jobs: Vec<BatchJob> = big.iter().map(|&i| jobs[i].clone()).collect();
        let small_jobs: Vec<BatchJob> = small.iter().map(|&i| jobs[i].clone()).collect();
        let mut out: Vec<Option<RunOutput>> = vec![None; jobs.len()];
        for (&i, o) in big.iter().zip(self.global.run_batch(&big_jobs)) {
            out[i] = Some(o);
        }
        for (&i, o) in small.iter().zip(self.local.run_batch(&small_jobs)) {
            out[i] = Some(o);
        }
        out.into_iter()
            .map(|o| o.expect("every job dispatched"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_circuit::Circuit;
    use qt_sim::{Backend, Executor, NoiseModel};

    #[test]
    fn cache_hits_identical_requests() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let exec = CachedRunner::new(Executor::with_backend(
            NoiseModel::depolarizing(0.01, 0.02),
            Backend::DensityMatrix,
        ));
        let p = Program::from_circuit(&c);
        let a = exec.run(&p, &[0, 1]);
        let b = exec.run(&p, &[0, 1]);
        assert_eq!(a, b);
        assert_eq!(exec.distinct_runs(), 1);
        let _ = exec.run(&p, &[0]);
        assert_eq!(exec.distinct_runs(), 2);
    }

    #[test]
    fn sampled_runner_gives_equal_jobs_equal_noise() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let p = Program::from_circuit(&c);
        let inner = Executor::with_backend(
            NoiseModel::ideal().with_readout(0.05),
            Backend::DensityMatrix,
        );
        let runner = SampledRunner::new(inner.clone(), 4096, 7);
        // Serial and batched paths agree, and the same job sampled at two
        // different batch positions sees identical shot noise.
        let jobs = vec![
            BatchJob::new(p.clone(), vec![0, 1]),
            BatchJob::new(p.clone(), vec![0]),
            BatchJob::new(p.clone(), vec![0, 1]),
        ];
        let batched = runner.run_batch(&jobs);
        assert_eq!(batched[0], batched[2], "equal jobs, equal noise");
        for (job, out) in jobs.iter().zip(&batched) {
            assert_eq!(out, &runner.run(&job.program, &job.measured));
        }
        // Frequencies approach the exact distribution as shots grow.
        let exact = inner.run(&p, &[0, 1]);
        let coarse = SampledRunner::new(inner.clone(), 128, 7).run(&p, &[0, 1]);
        let fine = SampledRunner::new(inner, 1 << 20, 7).run(&p, &[0, 1]);
        let f_coarse = hellinger_fidelity(&coarse.dist, &exact.dist);
        let f_fine = hellinger_fidelity(&fine.dist, &exact.dist);
        assert!(f_fine > 0.9999, "1M shots ≈ exact: {f_fine}");
        assert!(f_fine >= f_coarse - 1e-9, "{f_coarse} -> {f_fine}");
    }

    #[test]
    fn row_formats_right_aligned() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }

    #[test]
    fn adaptive_run_batch_routes_and_preserves_order() {
        // Distinguishable runners: global adds readout error, local is
        // ideal. Batched results must match per-job routing exactly.
        let global = Executor::with_backend(
            NoiseModel::ideal().with_readout(0.2),
            Backend::DensityMatrix,
        );
        let local = Executor::with_backend(NoiseModel::ideal(), Backend::DensityMatrix);
        let runner = AdaptiveRunner {
            global,
            local,
            threshold: 1,
        };
        let mut c = Circuit::new(2);
        c.x(0).x(1);
        let p = Program::from_circuit(&c);
        let jobs = vec![
            BatchJob::new(p.clone(), vec![0, 1]), // global (2 > threshold)
            BatchJob::new(p.clone(), vec![0]),    // local
            BatchJob::new(p.clone(), vec![1]),    // local
            BatchJob::new(p.clone(), vec![1, 0]), // global
        ];
        let batched = runner.run_batch(&jobs);
        for (job, out) in jobs.iter().zip(&batched) {
            let want = runner.run(&job.program, &job.measured);
            assert_eq!(out, &want);
        }
        // Local jobs really took the ideal path (no readout error).
        assert!((batched[1].dist.prob(1) - 1.0).abs() < 1e-12);
        // Global jobs really saw readout error.
        assert!(batched[0].dist.prob(3) < 0.7);
    }

    #[test]
    fn best_readout_run_batch_matches_serial() {
        let noise = NoiseModel::ideal().with_readout(0.1);
        let exec = Executor::with_backend(noise.clone(), Backend::DensityMatrix);
        let runner = BestReadoutRunner::new(exec, &noise, 3);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).x(2);
        let p = Program::from_circuit(&c);
        let jobs = vec![
            BatchJob::new(p.clone(), vec![0]), // remapped (≤ max_measured)
            BatchJob::new(p.clone(), vec![0, 1, 2]), // passthrough
            BatchJob::new(p.clone(), vec![2, 1]), // remapped
        ];
        let batched = runner.run_batch(&jobs);
        for (job, out) in jobs.iter().zip(&batched) {
            assert_eq!(out, &runner.run(&job.program, &job.measured));
        }
    }
}
