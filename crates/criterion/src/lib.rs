//! Vendored micro-benchmark harness with the slice of the `criterion` API
//! this workspace uses: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The container this repository builds in has no crates.io access, so the
//! shim reimplements the surface in-tree. It reports a mean wall-clock time
//! per iteration (no statistical analysis, outlier detection or HTML
//! reports). Under `cargo test` (which passes `--test` to bench
//! executables) every benchmark body runs exactly once as a smoke test;
//! `--quick` also runs each body once but records its real wall-clock time,
//! which CI uses for fast machine-readable smoke runs.
//!
//! # Machine-readable output
//!
//! When the `BENCH_JSON` environment variable names a file, every benchmark
//! result recorded by the process is written there as JSON (schema
//! documented in the repository's `DESIGN.md` under "BENCH_kernels.json").
//! Results accumulate across benchmark groups; the file is rewritten as
//! each group finishes so a crash mid-suite still leaves valid output.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim treats every variant
/// the same: setup runs outside the timed section for each batch of one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-setup on every iteration.
    PerIteration,
}

/// Execution mode of the harness, reflected in the JSON report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Full measurement (default under `cargo bench`).
    Full,
    /// One timed iteration per benchmark (`--quick`).
    Quick,
    /// One untimed iteration per benchmark (`--test`, i.e. `cargo test`).
    Test,
}

impl Mode {
    fn as_str(self) -> &'static str {
        match self {
            Mode::Full => "full",
            Mode::Quick => "quick",
            Mode::Test => "test",
        }
    }
}

/// One measured benchmark.
#[derive(Clone, Debug)]
struct Record {
    id: String,
    ns_per_iter: f64,
    iters: u64,
}

/// Results from every `Criterion` instance in the process (one per
/// `criterion_group!`), merged into a single JSON report.
static ALL_RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
    /// Target measurement time per benchmark.
    measurement: Duration,
    /// Positional substring filters (real criterion behaviour): when
    /// non-empty, only benchmarks whose id contains one of them run.
    filters: Vec<String>,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench targets with `--test` under `cargo test`;
        // honor it (and `--quick`) by running each body once.
        let args: Vec<String> = std::env::args().collect();
        let mode = if args.iter().any(|a| a == "--test") {
            Mode::Test
        } else if args.iter().any(|a| a == "--quick") {
            Mode::Quick
        } else {
            Mode::Full
        };
        let filters = args
            .iter()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .cloned()
            .collect();
        Criterion {
            mode,
            measurement: Duration::from_millis(300),
            filters,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            crit: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if !self.matches(&id) {
            return self;
        }
        let mut b = Bencher {
            mode: self.mode,
            measurement: self.measurement,
            report: None,
        };
        f(&mut b);
        b.print(&id);
        self.record(&id, &b);
        self
    }

    fn record(&mut self, id: &str, b: &Bencher) {
        if let Some((elapsed, iters)) = b.report {
            let ns = if iters == 0 {
                0.0
            } else {
                elapsed.as_nanos() as f64 / iters as f64
            };
            self.records.push(Record {
                id: id.to_string(),
                ns_per_iter: if ns.is_finite() { ns } else { 0.0 },
                iters,
            });
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        let Ok(path) = std::env::var("BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let mut all = ALL_RECORDS.lock().expect("bench record registry poisoned");
        all.append(&mut self.records);
        let json = render_json(&all, self.mode);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("BENCH_JSON: failed to write {path}: {e}");
        }
    }
}

/// Renders the accumulated records as the BENCH_*.json document.
fn render_json(records: &[Record], mode: Mode) -> String {
    let suite = suite_name();
    let mut out = String::from("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"suite\": \"{}\",\n", escape(&suite)));
    out.push_str(&format!("  \"mode\": \"{}\",\n", mode.as_str()));
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        let (group, name) = match r.id.split_once('/') {
            Some((g, n)) => (g, n),
            None => ("", r.id.as_str()),
        };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"group\": \"{}\", \"name\": \"{}\", \
             \"ns_per_iter\": {:.3}, \"iters\": {}}}{}\n",
            escape(&r.id),
            escape(group),
            escape(name),
            r.ns_per_iter,
            r.iters,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The benchmark suite name: the executable stem with cargo's trailing
/// `-<hash>` stripped.
fn suite_name() -> String {
    let exe = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&exe)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    match stem.rsplit_once('-') {
        Some((prefix, hash)) if hash.len() >= 8 && hash.chars().all(|c| c.is_ascii_hexdigit()) => {
            prefix.to_string()
        }
        _ => stem.to_string(),
    }
}

/// Escapes a string for embedding in a JSON literal (benchmark ids are
/// plain ASCII; quotes and backslashes are the only realistic offenders).
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    crit: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall clock,
    /// not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.crit.measurement = d;
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        if !self.crit.matches(&id) {
            return self;
        }
        let mut b = Bencher {
            mode: self.crit.mode,
            measurement: self.crit.measurement,
            report: None,
        };
        f(&mut b);
        b.print(&id);
        self.crit.record(&id, &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark body to drive the timed routine.
pub struct Bencher {
    mode: Mode,
    measurement: Duration,
    report: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, called repeatedly until the measurement window is
    /// filled (once in test/quick mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Test => {
                std::hint::black_box(routine());
                self.report = Some((Duration::ZERO, 1));
                return;
            }
            Mode::Quick => {
                let start = Instant::now();
                std::hint::black_box(routine());
                self.report = Some((start.elapsed(), 1));
                return;
            }
            Mode::Full => {}
        }
        // Warm-up and per-iteration cost estimate.
        let warm = Instant::now();
        std::hint::black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measurement.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.report = Some((start.elapsed(), iters));
    }

    /// Times `routine` on inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Test => {
                let input = setup();
                std::hint::black_box(routine(input));
                self.report = Some((Duration::ZERO, 1));
                return;
            }
            Mode::Quick => {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                self.report = Some((start.elapsed(), 1));
                return;
            }
            Mode::Full => {}
        }
        let input = setup();
        let warm = Instant::now();
        std::hint::black_box(routine(input));
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measurement.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.report = Some((total, iters));
    }

    fn print(&self, id: &str) {
        match self.report {
            Some((elapsed, iters)) if self.mode != Mode::Test => {
                let per = elapsed.as_nanos() as f64 / iters as f64;
                let (value, unit) = if per >= 1e9 {
                    (per / 1e9, "s")
                } else if per >= 1e6 {
                    (per / 1e6, "ms")
                } else if per >= 1e3 {
                    (per / 1e3, "µs")
                } else {
                    (per, "ns")
                };
                println!("{id:<48} {value:>10.2} {unit}/iter ({iters} iters)");
            }
            Some(_) => println!("{id:<48}        ok (test mode)"),
            None => println!("{id:<48}        no measurement recorded"),
        }
    }
}

/// Groups benchmark functions into a single callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_is_well_formed() {
        let records = vec![
            Record {
                id: "kernels/h_specialized_16q".into(),
                ns_per_iter: 1234.5,
                iters: 100,
            },
            Record {
                id: "ungrouped".into(),
                ns_per_iter: 7.0,
                iters: 1,
            },
        ];
        let json = render_json(&records, Mode::Quick);
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"mode\": \"quick\""));
        assert!(json.contains("\"group\": \"kernels\""));
        assert!(json.contains("\"name\": \"h_specialized_16q\""));
        assert!(json.contains("\"ns_per_iter\": 1234.500"));
        // Exactly one comma between the two entries, none trailing.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
