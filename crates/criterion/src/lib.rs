//! Vendored micro-benchmark harness with the slice of the `criterion` API
//! this workspace uses: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The container this repository builds in has no crates.io access, so the
//! shim reimplements the surface in-tree. It reports a mean wall-clock time
//! per iteration (no statistical analysis, outlier detection or HTML
//! reports). Under `cargo test` (which passes `--test` to bench
//! executables) every benchmark body runs exactly once as a smoke test.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim treats every variant
/// the same: setup runs outside the timed section for each batch of one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-setup on every iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench targets with `--test` under `cargo test`;
        // honor it (and `--quick`) by running each body once.
        let args: Vec<String> = std::env::args().collect();
        let test_mode = args.iter().any(|a| a == "--test" || a == "--quick");
        Criterion {
            test_mode,
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            crit: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            test_mode: self.test_mode,
            measurement: self.measurement,
            report: None,
        };
        f(&mut b);
        b.print(&id);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    crit: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall clock,
    /// not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.crit.measurement = d;
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            test_mode: self.crit.test_mode,
            measurement: self.crit.measurement,
            report: None,
        };
        f(&mut b);
        b.print(&id);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark body to drive the timed routine.
pub struct Bencher {
    test_mode: bool,
    measurement: Duration,
    report: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, called repeatedly until the measurement window is
    /// filled (once in test mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.report = Some((Duration::ZERO, 1));
            return;
        }
        // Warm-up and per-iteration cost estimate.
        let warm = Instant::now();
        std::hint::black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measurement.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.report = Some((start.elapsed(), iters));
    }

    /// Times `routine` on inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            std::hint::black_box(routine(input));
            self.report = Some((Duration::ZERO, 1));
            return;
        }
        let input = setup();
        let warm = Instant::now();
        std::hint::black_box(routine(input));
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measurement.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.report = Some((total, iters));
    }

    fn print(&self, id: &str) {
        match self.report {
            Some((elapsed, iters)) if !self.test_mode => {
                let per = elapsed.as_nanos() as f64 / iters as f64;
                let (value, unit) = if per >= 1e9 {
                    (per / 1e9, "s")
                } else if per >= 1e6 {
                    (per / 1e6, "ms")
                } else if per >= 1e3 {
                    (per / 1e3, "µs")
                } else {
                    (per, "ns")
                };
                println!("{id:<48} {value:>10.2} {unit}/iter ({iters} iters)");
            }
            Some(_) => println!("{id:<48}        ok (test mode)"),
            None => println!("{id:<48}        no measurement recorded"),
        }
    }
}

/// Groups benchmark functions into a single callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
