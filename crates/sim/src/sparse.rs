//! Sparse statevector simulation for low-entanglement pure evolutions.
//!
//! Many QuTracer subset circuits touch a wide register but build little
//! superposition: the number of nonzero amplitudes reachable from `|0…0⟩` is
//! at most `2^s` where `s` counts the superposition-growing ops (see
//! [`ProgramProfile::superposing_ops`]). [`SparseState`] stores only the
//! nonzero amplitudes in a `BTreeMap<u64, Complex>` — the canonical key
//! order makes every float summation deterministic, so trie-forked and
//! per-job executions stay bit-identical.
//!
//! When a non-diagonal gate pushes the map past half the dense size on a
//! register the dense engine can hold, the state densifies in place and
//! stays dense: at that density the map is strictly more work per gate than
//! a flat vector.

use crate::classify::ProgramProfile;
use crate::noise::NoiseModel;
use crate::program::{Op, Program};
use crate::statevector::{self, StateVector};
use qt_circuit::{GateStructure, Instruction};
use qt_dist::Distribution;
use qt_math::Complex;
use std::collections::BTreeMap;

/// Whether a `(noise, program)` pair admits the sparse pure-state
/// representation — the same precondition as the dense statevector engine
/// (no resets, ideal gate noise); sparsity only changes the cost, never the
/// answer.
pub fn sparse_admissible(noise: &NoiseModel, profile: &ProgramProfile) -> bool {
    !profile.has_resets && noise.gates_are_ideal()
}

/// Map-or-dense internal representation. Once dense, stays dense.
#[derive(Debug, Clone)]
enum Repr {
    Map(BTreeMap<u64, Complex>),
    Dense(StateVector),
}

/// The sparse statevector [`crate::backend::EngineState`] payload.
#[derive(Debug, Clone)]
pub(crate) struct SparseState {
    n: usize,
    repr: Repr,
}

impl SparseState {
    /// A fresh `|0…0⟩` state (one nonzero amplitude).
    pub(crate) fn zero(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "empty register");
        assert!(
            n_qubits <= 64,
            "sparse statevector keys are u64 basis indices"
        );
        let mut map = BTreeMap::new();
        map.insert(0u64, Complex::ONE);
        SparseState {
            n: n_qubits,
            repr: Repr::Map(map),
        }
    }

    /// Applies one op.
    ///
    /// # Panics
    ///
    /// Panics on resets — the sparse fork class excludes them.
    pub(crate) fn apply_op(&mut self, op: &Op) {
        match op {
            Op::Gate(i) | Op::IdealGate(i) => self.apply_gate(i),
            Op::Reset { .. } => {
                unreachable!("sparse fork class excludes programs with resets")
            }
        }
    }

    fn apply_gate(&mut self, instr: &Instruction) {
        match &mut self.repr {
            Repr::Dense(sv) => sv.apply_op(&instr.gate.matrix(), &instr.qubits),
            Repr::Map(map) => {
                let m = instr.gate.matrix();
                let qs = &instr.qubits;
                let diagonal = matches!(
                    instr.gate.structure(),
                    GateStructure::ControlledPhase | GateStructure::Diagonal
                );
                if diagonal {
                    // Phase-only: multiply amplitudes in place, support fixed.
                    for (&key, amp) in map.iter_mut() {
                        let l = gather(key, qs);
                        *amp *= m[(l, l)];
                    }
                    map.retain(|_, a| a.re != 0.0 || a.im != 0.0);
                    return;
                }
                // General: scatter each amplitude through the gate columns.
                let dim = 1usize << qs.len();
                let mut out: BTreeMap<u64, Complex> = BTreeMap::new();
                for (&key, &amp) in map.iter() {
                    let l = gather(key, qs);
                    let rest = clear(key, qs);
                    for lp in 0..dim {
                        let c = m[(lp, l)];
                        if c.re == 0.0 && c.im == 0.0 {
                            continue;
                        }
                        let e = out.entry(rest | scatter(lp, qs)).or_insert(Complex::ZERO);
                        *e += c * amp;
                    }
                }
                out.retain(|_, a| a.re != 0.0 || a.im != 0.0);
                *map = out;
                self.maybe_densify();
            }
        }
    }

    /// Densifies once the map holds more than half the dense amplitude
    /// count (and the register fits the dense engine).
    fn maybe_densify(&mut self) {
        let Repr::Map(map) = &self.repr else { return };
        if self.n > statevector::MAX_QUBITS || map.len() * 2 <= (1usize << self.n) {
            return;
        }
        let mut amps = vec![Complex::ZERO; 1usize << self.n];
        for (&key, &amp) in map.iter() {
            amps[key as usize] = amp;
        }
        self.repr = Repr::Dense(StateVector::from_amplitudes(amps));
    }

    /// Exact checkpoint.
    pub(crate) fn fork(&self) -> SparseState {
        self.clone()
    }

    /// Number of stored nonzero amplitudes (dense size once densified).
    #[cfg(test)]
    pub(crate) fn support(&self) -> usize {
        match &self.repr {
            Repr::Map(m) => m.len(),
            Repr::Dense(sv) => sv.amplitudes().len(),
        }
    }

    /// The outcome distribution over `measured` (bit `i` of the index =
    /// `measured[i]`), summed in canonical key order. The map
    /// representation emits sparse entries natively — no `2^|measured|`
    /// buffer exists on this path, so wide measurement lists are fine.
    pub(crate) fn raw_distribution(&self, measured: &[usize]) -> Distribution {
        match &self.repr {
            Repr::Dense(sv) => {
                Distribution::try_from_probs(measured.len(), sv.marginal_probabilities(measured))
                    .expect("dense register fits the outcome space")
            }
            Repr::Map(map) => {
                let mut out: BTreeMap<u64, f64> = BTreeMap::new();
                for (&key, amp) in map.iter() {
                    *out.entry(gather_wide(key, measured)).or_insert(0.0) += amp.norm_sqr();
                }
                Distribution::try_from_entries(measured.len(), out.into_iter().collect())
                    .expect("gathered patterns fit the measured bit count")
            }
        }
    }
}

/// Extracts the operand bits of `key` into a compact index (operand 0 →
/// bit 0).
#[inline]
fn gather(key: u64, qs: &[usize]) -> usize {
    let mut l = 0usize;
    for (o, &q) in qs.iter().enumerate() {
        l |= (((key >> q) & 1) as usize) << o;
    }
    l
}

/// [`gather`] over a measurement list that may span the full 64-bit
/// register: the compact pattern stays a `u64` outcome index.
#[inline]
fn gather_wide(key: u64, qs: &[usize]) -> u64 {
    let mut l = 0u64;
    for (o, &q) in qs.iter().enumerate() {
        l |= ((key >> q) & 1) << o;
    }
    l
}

/// Clears the operand bits of `key`.
#[inline]
fn clear(key: u64, qs: &[usize]) -> u64 {
    let mut mask = 0u64;
    for &q in qs {
        mask |= 1u64 << q;
    }
    key & !mask
}

/// Spreads a compact operand index back onto the register bit positions.
#[inline]
fn scatter(l: usize, qs: &[usize]) -> u64 {
    let mut key = 0u64;
    for (o, &q) in qs.iter().enumerate() {
        key |= (((l >> o) & 1) as u64) << q;
    }
    key
}

/// Runs `program` on a fresh sparse state and reads the distribution — the
/// serial path of the sparse engine; callers check [`sparse_admissible`]
/// first.
pub(crate) fn sparse_distribution(program: &Program, measured: &[usize]) -> Distribution {
    let mut st = SparseState::zero(program.n_qubits());
    for op in program.ops() {
        st.apply_op(op);
    }
    st.raw_distribution(measured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVector;
    use qt_circuit::{Circuit, Gate};

    fn dense_dist(prog: &Program, measured: &[usize]) -> Vec<f64> {
        let mut sv = StateVector::zero(prog.n_qubits());
        for op in prog.ops() {
            match op {
                Op::Gate(i) | Op::IdealGate(i) => sv.apply_op(&i.gate.matrix(), &i.qubits),
                Op::Reset { .. } => unreachable!(),
            }
        }
        sv.marginal_probabilities(measured)
    }

    fn assert_close(a: &Distribution, b: &[f64], tol: f64, ctx: &str) {
        let a = a.densify().expect("test distributions are narrow");
        assert_eq!(a.len(), b.len(), "{ctx}");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "{ctx}: idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_dense_on_mixed_circuit() {
        let mut c = Circuit::new(4);
        c.h(0)
            .cx(0, 1)
            .t(1)
            .cp(1, 2, 0.7)
            .ry(2, 0.4)
            .ccp(0, 2, 3, 1.1)
            .rz(3, 0.2);
        let prog = Program::from_circuit(&c);
        assert_close(
            &sparse_distribution(&prog, &[0, 1, 2, 3]),
            &dense_dist(&prog, &[0, 1, 2, 3]),
            1e-12,
            "mixed circuit",
        );
        assert_close(
            &sparse_distribution(&prog, &[3, 1]),
            &dense_dist(&prog, &[3, 1]),
            1e-12,
            "subset measurement",
        );
    }

    #[test]
    fn support_stays_bounded_on_wide_low_entanglement_register() {
        // 60 qubits, far past any dense engine, but only one H: support 2.
        let mut prog = Program::new(60);
        prog.push_gate(Instruction::new(Gate::H, vec![0]));
        for q in 0..59 {
            prog.push_gate(Instruction::new(Gate::Cx, vec![q, q + 1]));
        }
        let mut st = SparseState::zero(60);
        for op in prog.ops() {
            st.apply_op(op);
        }
        assert_eq!(st.support(), 2, "GHZ-60 has two nonzero amplitudes");
        let d = st.raw_distribution(&[0, 30, 59]);
        assert!((d.prob(0) - 0.5).abs() < 1e-12);
        assert!((d.prob(7) - 0.5).abs() < 1e-12);
        assert_eq!(d.support_len(), 2);
        // The full 60-bit readout also works — natively sparse output.
        let wide = st.raw_distribution(&(0..60).collect::<Vec<_>>());
        assert_eq!(wide.n_bits(), 60);
        assert_eq!(wide.support_len(), 2);
        assert!((wide.prob(u64::MAX >> 4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn densifies_past_half_density_and_stays_exact() {
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.h(q);
        }
        c.t(0).cx(0, 1).ry(2, 0.9);
        let prog = Program::from_circuit(&c);
        let mut st = SparseState::zero(3);
        for op in prog.ops() {
            st.apply_op(op);
        }
        assert!(
            matches!(st.repr, Repr::Dense(_)),
            "full superposition on 3 qubits must densify"
        );
        assert_close(
            &st.raw_distribution(&[0, 1, 2]),
            &dense_dist(&prog, &[0, 1, 2]),
            1e-12,
            "densified state",
        );
    }

    #[test]
    fn diagonal_gates_keep_support_fixed() {
        let mut st = SparseState::zero(8);
        st.apply_op(&Op::Gate(Instruction::new(Gate::H, vec![3])));
        for (g, qs) in [
            (Gate::S, vec![3]),
            (Gate::T, vec![3]),
            (Gate::Rz(0.3), vec![3]),
            (Gate::Cz, vec![3, 4]),
            (Gate::Cp(0.5), vec![3, 0]),
        ] {
            st.apply_op(&Op::Gate(Instruction::new(g, qs)));
        }
        assert_eq!(st.support(), 2);
    }

    #[test]
    fn fork_is_exact() {
        let mut st = SparseState::zero(4);
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1);
        for i in c.instructions() {
            st.apply_op(&Op::Gate(i.clone()));
        }
        let mut fork = st.fork();
        let mut c2 = Circuit::new(4);
        c2.t(1).cx(1, 2).ry(3, 0.4);
        for i in c2.instructions() {
            st.apply_op(&Op::Gate(i.clone()));
            fork.apply_op(&Op::Gate(i.clone()));
        }
        assert_eq!(
            st.raw_distribution(&[0, 1, 2, 3]),
            fork.raw_distribution(&[0, 1, 2, 3]),
            "forked evolution must be bit-identical"
        );
    }

    #[test]
    #[should_panic(expected = "resets")]
    fn reset_is_a_hard_failure() {
        // Sparse admissibility excludes resets; a slipped-through reset
        // must panic, never decohere silently.
        let mut st = SparseState::zero(2);
        let mut p = Program::new(2);
        p.push_gate(qt_circuit::Instruction::new(Gate::H, vec![0]));
        p.push_reset_state(&[0], qt_math::states::PrepState::Zero);
        for op in p.ops() {
            st.apply_op(op);
        }
    }
}
