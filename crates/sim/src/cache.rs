//! A sharded, memory-weighted, concurrent LRU result cache keyed by
//! [`JobKey`].
//!
//! This is the cache substrate shared by `qt_bench::CachedRunner` and the
//! `qt-serve` service front-end. Design points:
//!
//! * **Sharding** — the key space is split across `n_shards` independent
//!   shards (power of two), each behind its own `Mutex`, so concurrent
//!   lookups from different connections rarely contend. The shard index
//!   comes from folding the 128 structural key bits.
//! * **Memory-weighted capacity** — every entry carries a caller-supplied
//!   weight in bytes (see [`run_output_weight`]); each shard evicts its
//!   least-recently-used entries until an insert fits its slice of the
//!   global budget. Total resident weight therefore never exceeds
//!   `capacity_bytes`, fixing the silent unbounded growth of the old
//!   `CachedRunner` map.
//! * **Counters** — hits, misses, insertions and evictions are tracked
//!   with relaxed atomics and snapshot via [`CacheStats`].
//!
//! Recency is a per-shard monotonic tick: `get` re-stamps the entry, and
//! eviction pops the minimum tick from a `BTreeMap` index, so both paths
//! are `O(log n)` in the shard's entry count.

use crate::sync::LockRecoverExt;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::executor::{JobKey, RunOutput};

/// A point-in-time snapshot of a cache's activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found the key resident.
    pub hits: u64,
    /// `get` calls that did not.
    pub misses: u64,
    /// Entries removed to make room for an insert.
    pub evictions: u64,
    /// Successful `insert` calls (replacements included).
    pub insertions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (`0.0` when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    value: V,
    weight: usize,
    tick: u64,
}

struct Shard<V> {
    map: HashMap<JobKey, Entry<V>>,
    /// Recency index: tick -> key, ascending ticks are least recent.
    by_tick: BTreeMap<u64, JobKey>,
    weight: usize,
    next_tick: u64,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            by_tick: BTreeMap::new(),
            weight: 0,
            next_tick: 0,
        }
    }
}

impl<V> Shard<V> {
    fn touch(&mut self, key: JobKey) {
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(entry) = self.map.get_mut(&key) {
            self.by_tick.remove(&entry.tick);
            entry.tick = tick;
            self.by_tick.insert(tick, key);
        }
    }

    fn remove_lru(&mut self) -> bool {
        let Some((&tick, &key)) = self.by_tick.iter().next() else {
            return false;
        };
        self.by_tick.remove(&tick);
        if let Some(entry) = self.map.remove(&key) {
            self.weight -= entry.weight;
        }
        true
    }
}

/// A concurrent LRU cache keyed by [`JobKey`], sharded to keep lock
/// contention low and bounded by a global memory-weight budget.
pub struct ShardedLruCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// Per-shard slice of the global byte budget.
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

impl<V: Clone> ShardedLruCache<V> {
    /// A cache holding at most `capacity_bytes` of entry weight, split
    /// across `n_shards` independently locked shards (rounded up to a
    /// power of two, at least one).
    pub fn new(capacity_bytes: usize, n_shards: usize) -> Self {
        let n_shards = n_shards.max(1).next_power_of_two();
        let shard_capacity = capacity_bytes / n_shards;
        let shards = (0..n_shards)
            .map(|_| Mutex::new(Shard::default()))
            .collect();
        ShardedLruCache {
            shards,
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: JobKey) -> &Mutex<Shard<V>> {
        let bits = key.bits();
        let folded = (bits ^ (bits >> 64)) as u64;
        &self.shards[(folded as usize) & (self.shards.len() - 1)]
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: JobKey) -> Option<V> {
        let mut shard = self.shard_of(key).lock_recover();
        if shard.map.contains_key(&key) {
            shard.touch(key);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(shard.map[&key].value.clone())
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Insert `value` under `key` with the given weight in bytes,
    /// evicting least-recently-used entries until it fits. Returns
    /// `false` (and caches nothing) when `weight` alone exceeds a
    /// shard's capacity slice — such a value could only ever be resident
    /// by evicting everything, so it is cheaper to recompute.
    pub fn insert(&self, key: JobKey, value: V, weight: usize) -> bool {
        if weight > self.shard_capacity {
            return false;
        }
        let mut shard = self.shard_of(key).lock_recover();
        if let Some(old) = shard.map.remove(&key) {
            shard.by_tick.remove(&old.tick);
            shard.weight -= old.weight;
        }
        let mut evicted = 0u64;
        while shard.weight + weight > self.shard_capacity {
            if !shard.remove_lru() {
                break;
            }
            evicted += 1;
        }
        let tick = shard.next_tick;
        shard.next_tick += 1;
        shard.map.insert(
            key,
            Entry {
                value,
                weight,
                tick,
            },
        );
        shard.by_tick.insert(tick, key);
        shard.weight += weight;
        drop(shard);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Number of resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock_recover().map.len()).sum()
    }

    /// `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total resident entry weight in bytes across all shards.
    pub fn weight_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock_recover().weight).sum()
    }

    /// The global byte budget (each shard holds an equal slice).
    pub fn capacity_bytes(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// Snapshot the activity counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
        }
    }
}

/// Approximate resident size of a cached [`RunOutput`]: 16 bytes per
/// stored nonzero (`(u64, f64)`) plus fixed struct overhead.
pub fn run_output_weight(out: &RunOutput) -> usize {
    out.dist.support_len() * 16 + 64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::BatchJob;
    use crate::program::Program;
    use qt_circuit::Circuit;
    use qt_dist::Distribution;

    fn key(tag: u64) -> JobKey {
        let mut c = Circuit::new(2);
        for _ in 0..(tag % 7) {
            c.h(0);
        }
        c.rz(1, tag as f64);
        BatchJob::key_of(&Program::from_circuit(&c), &[0, 1])
    }

    fn out(p: f64) -> RunOutput {
        RunOutput {
            dist: Distribution::try_from_entries(1, vec![(0, p), (1, 1.0 - p)]).unwrap(),
            gates: 1,
            two_qubit_gates: 0,
        }
    }

    #[test]
    fn hit_returns_inserted_value_and_counts() {
        let cache = ShardedLruCache::new(1 << 20, 4);
        assert!(cache.get(key(1)).is_none());
        assert!(cache.insert(key(1), out(0.25), 100));
        let got = cache.get(key(1)).unwrap();
        assert_eq!(got.dist.prob(0).to_bits(), 0.25f64.to_bits());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn capacity_is_enforced_by_lru_eviction() {
        // Single shard so the eviction order is fully deterministic.
        let cache = ShardedLruCache::new(300, 1);
        assert!(cache.insert(key(1), out(0.1), 100));
        assert!(cache.insert(key(2), out(0.2), 100));
        assert!(cache.insert(key(3), out(0.3), 100));
        // Refresh key(1) so key(2) is now the LRU entry.
        assert!(cache.get(key(1)).is_some());
        assert!(cache.insert(key(4), out(0.4), 100));
        assert!(cache.weight_bytes() <= cache.capacity_bytes());
        assert!(cache.get(key(2)).is_none(), "LRU entry should be evicted");
        assert!(cache.get(key(1)).is_some());
        assert!(cache.get(key(3)).is_some());
        assert!(cache.get(key(4)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let cache = ShardedLruCache::new(64, 1);
        assert!(!cache.insert(key(1), out(0.5), 65));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn replacement_updates_weight_in_place() {
        let cache = ShardedLruCache::new(300, 1);
        assert!(cache.insert(key(1), out(0.1), 100));
        assert!(cache.insert(key(1), out(0.9), 250));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.weight_bytes(), 250);
        let got = cache.get(key(1)).unwrap();
        assert_eq!(got.dist.prob(0).to_bits(), 0.9f64.to_bits());
        assert_eq!(cache.stats().evictions, 0);
    }
}
