//! CHP-style stabilizer tableau simulation (Aaronson–Gottesman) with exact,
//! trajectory-free Pauli-channel noise mixing.
//!
//! The tableau holds `2n` Pauli rows (n destabilizers, n stabilizers) as
//! packed x/z bit matrices plus a sign vector; Clifford gates conjugate each
//! row in `O(n)` (`O(n²)` per gate over all rows) instead of touching `2^n`
//! amplitudes, which is what lets ≥24-qubit Clifford workloads run through
//! the full plan → execute → recombine pipeline.
//!
//! # Exact Pauli-noise mixing
//!
//! A Pauli error `E` conjugates every row `P` to `±P`: it never changes the
//! x/z bits, only the sign — and the sign flips exactly for the rows that
//! anticommute with `E`. Gates never mix rows (only measurement row-sums
//! do), and a gate's sign update depends on x/z bits alone, so a sign
//! *difference* injected by a noise option persists per row until
//! measurement. Each channel application is therefore recorded as a
//! [`NoiseEvent`]: per mixture option, its probability and the bitmask of
//! stabilizer rows it anticommutes with *at application time*. The ideal
//! branch (identity option) evolves the tableau; nothing is sampled.
//!
//! At readout the extraction walks the measured qubits once per random
//! branch: random outcomes stay 50/50 regardless of noise (sign flips never
//! make a random outcome deterministic), while each deterministic outcome's
//! dependence on the events is a parity `⟨flips, combo⟩` tracked through
//! row-sum provenance masks. The leaf distribution over the deterministic
//! bits is then the GF(2) convolution of the per-event flip distributions,
//! evaluated with a Walsh–Hadamard transform — exact in one pass, with no
//! trajectory variance.

use crate::classify::ProgramProfile;
use crate::noise::NoiseModel;
use crate::program::{Op, Program};
use qt_circuit::{CliffordGate, Instruction};
use qt_dist::Distribution;
use qt_math::Pauli;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Largest register for which the *noisy* stabilizer path is admissible:
/// noise-event row masks are single `u64` words over the stabilizer rows.
/// Noise-free Clifford programs have no events and are unrestricted.
pub const STAB_NOISE_MAX_QUBITS: usize = 64;

/// Whether a `(noise, program)` pair admits the stabilizer representation:
/// every gate Clifford, no resets, and gate noise either absent or a Pauli
/// mixture (on a register small enough for the event masks).
pub fn stabilizer_admissible(noise: &NoiseModel, profile: &ProgramProfile) -> bool {
    profile.all_clifford
        && !profile.has_resets
        && (noise.gates_are_ideal()
            || (profile.n_qubits <= STAB_NOISE_MAX_QUBITS && noise.gate_noise_is_pauli()))
}

/// One recorded Pauli-channel application: per mixture option, its
/// probability and the mask (bit `i` = stabilizer row `i`) of rows that
/// anticommute with that option's Pauli at application time.
#[derive(Debug, Clone)]
struct NoiseEvent {
    options: Vec<(f64, u64)>,
}

/// The packed CHP tableau: rows `0..n` are destabilizers, rows `n..2n`
/// stabilizers.
#[derive(Debug, Clone)]
struct Tableau {
    n: usize,
    /// 64-bit words per row.
    words: usize,
    /// X bits, row-major (`2n * words`).
    x: Vec<u64>,
    /// Z bits, row-major.
    z: Vec<u64>,
    /// Row signs (`true` = −1), length `2n`.
    sign: Vec<bool>,
}

impl Tableau {
    /// The `|0…0⟩` tableau: destabilizer `i` = `X_i`, stabilizer `i` = `Z_i`.
    fn zero_state(n: usize) -> Self {
        assert!(n > 0, "empty register");
        let words = n.div_ceil(64);
        let mut t = Tableau {
            n,
            words,
            x: vec![0; 2 * n * words],
            z: vec![0; 2 * n * words],
            sign: vec![false; 2 * n],
        };
        for i in 0..n {
            let (w, m) = (i >> 6, 1u64 << (i & 63));
            t.x[i * words + w] |= m;
            t.z[(n + i) * words + w] |= m;
        }
        t
    }

    #[inline]
    fn x_bit(&self, row: usize, q: usize) -> bool {
        self.x[row * self.words + (q >> 6)] & (1u64 << (q & 63)) != 0
    }

    #[inline]
    fn z_bit(&self, row: usize, q: usize) -> bool {
        self.z[row * self.words + (q >> 6)] & (1u64 << (q & 63)) != 0
    }

    /// Applies one Clifford to all `2n` rows (conjugation `P → U P U†`).
    fn apply(&mut self, gate: CliffordGate, qs: &[usize]) {
        use CliffordGate as C;
        match gate {
            C::I => {}
            C::H => self.one_qubit(qs[0], |x, z, s| (z, x, s ^ (x & z))),
            C::X => self.one_qubit(qs[0], |x, z, s| (x, z, s ^ z)),
            C::Y => self.one_qubit(qs[0], |x, z, s| (x, z, s ^ x ^ z)),
            C::Z => self.one_qubit(qs[0], |x, z, s| (x, z, s ^ x)),
            C::S => self.one_qubit(qs[0], |x, z, s| (x, z ^ x, s ^ (x & z))),
            C::Sdg => self.one_qubit(qs[0], |x, z, s| (x, z ^ x, s ^ (x & !z))),
            C::Sx => self.one_qubit(qs[0], |x, z, s| (x ^ z, z, s ^ (z & !x))),
            C::Sxdg => self.one_qubit(qs[0], |x, z, s| (x ^ z, z, s ^ (z & x))),
            C::Sy => self.one_qubit(qs[0], |x, z, s| (z, x, s ^ (x & !z))),
            C::Sydg => self.one_qubit(qs[0], |x, z, s| (z, x, s ^ (!x & z))),
            C::Cx => self.cx(qs[0], qs[1]),
            C::Cz => {
                // CZ = (I⊗H)·CX·(I⊗H).
                self.apply(C::H, &[qs[1]]);
                self.cx(qs[0], qs[1]);
                self.apply(C::H, &[qs[1]]);
            }
            C::Cy => {
                // CY = (I⊗S)·CX·(I⊗S†); conjugation applies inner-first.
                self.apply(C::Sdg, &[qs[1]]);
                self.cx(qs[0], qs[1]);
                self.apply(C::S, &[qs[1]]);
            }
            C::Swap => {
                let (a, b) = (qs[0], qs[1]);
                for row in 0..2 * self.n {
                    let (xa, za) = (self.x_bit(row, a), self.z_bit(row, a));
                    let (xb, zb) = (self.x_bit(row, b), self.z_bit(row, b));
                    self.set_xz(row, a, xb, zb);
                    self.set_xz(row, b, xa, za);
                }
            }
        }
    }

    /// Applies a single-qubit tableau rule `(x, z, sign) → (x', z', sign')`
    /// to every row.
    #[inline]
    fn one_qubit(&mut self, q: usize, rule: impl Fn(bool, bool, bool) -> (bool, bool, bool)) {
        for row in 0..2 * self.n {
            let (x, z) = (self.x_bit(row, q), self.z_bit(row, q));
            let (nx, nz, ns) = rule(x, z, self.sign[row]);
            self.set_xz(row, q, nx, nz);
            self.sign[row] = ns;
        }
    }

    #[inline]
    fn set_xz(&mut self, row: usize, q: usize, x: bool, z: bool) {
        let (w, m) = (row * self.words + (q >> 6), 1u64 << (q & 63));
        if x {
            self.x[w] |= m;
        } else {
            self.x[w] &= !m;
        }
        if z {
            self.z[w] |= m;
        } else {
            self.z[w] &= !m;
        }
    }

    fn cx(&mut self, a: usize, b: usize) {
        for row in 0..2 * self.n {
            let (xa, za) = (self.x_bit(row, a), self.z_bit(row, a));
            let (xb, zb) = (self.x_bit(row, b), self.z_bit(row, b));
            if xa && zb && (xb == za) {
                self.sign[row] = !self.sign[row];
            }
            self.set_xz(row, a, xa, za ^ zb);
            self.set_xz(row, b, xb ^ xa, zb);
        }
    }

    /// The CHP phase function `g`: the power of `i` picked up when
    /// multiplying single-qubit Paulis `(x1,z1)·(x2,z2)` (target · source
    /// ordering as in Aaronson–Gottesman's `rowsum`).
    #[inline]
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => z2 as i32 - x2 as i32,
            (true, false) => (z2 as i32) * (2 * x2 as i32 - 1),
            (false, true) => (x2 as i32) * (1 - 2 * z2 as i32),
        }
    }

    /// `row h ← row h · row i` with exact sign tracking.
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase: i32 = 2 * (self.sign[h] as i32) + 2 * (self.sign[i] as i32);
        for q in 0..self.n {
            phase += Self::g(
                self.x_bit(i, q),
                self.z_bit(i, q),
                self.x_bit(h, q),
                self.z_bit(h, q),
            );
        }
        for w in 0..self.words {
            let src_x = self.x[i * self.words + w];
            let src_z = self.z[i * self.words + w];
            self.x[h * self.words + w] ^= src_x;
            self.z[h * self.words + w] ^= src_z;
        }
        let p = phase.rem_euclid(4);
        // A destabilizer target may anticommute with the source row (its
        // partner stabilizer), giving an odd phase — destabilizer signs are
        // never read, so only stabilizer targets must stay real.
        debug_assert!(
            h < self.n || p == 0 || p == 2,
            "rowsum produced imaginary phase on a stabilizer row"
        );
        self.sign[h] = p == 2;
    }

    /// Accumulates stabilizer row `n+i` into an external scratch row (the
    /// deterministic-outcome computation of CHP's measurement).
    fn rowsum_scratch(&self, sx: &mut [u64], sz: &mut [u64], phase: &mut i32, i: usize) {
        let row = self.n + i;
        *phase += 2 * (self.sign[row] as i32);
        for q in 0..self.n {
            let (w, m) = (q >> 6, 1u64 << (q & 63));
            let x2 = sx[w] & m != 0;
            let z2 = sz[w] & m != 0;
            *phase += Self::g(self.x_bit(row, q), self.z_bit(row, q), x2, z2);
        }
        for w in 0..self.words {
            sx[w] ^= self.x[row * self.words + w];
            sz[w] ^= self.z[row * self.words + w];
        }
    }
}

/// The stabilizer [`crate::backend::EngineState`] payload: tableau plus the
/// recorded noise events (mixed analytically at readout).
#[derive(Debug, Clone)]
pub(crate) struct StabilizerState {
    tab: Tableau,
    noise: Arc<NoiseModel>,
    events: Vec<NoiseEvent>,
}

impl StabilizerState {
    /// A fresh `|0…0⟩` state.
    pub(crate) fn zero(n_qubits: usize, noise: Arc<NoiseModel>) -> Self {
        StabilizerState {
            tab: Tableau::zero_state(n_qubits),
            noise,
            events: Vec::new(),
        }
    }

    /// Applies one op: the Clifford conjugation, then (for noisy gates) one
    /// [`NoiseEvent`] per attached channel.
    ///
    /// # Panics
    ///
    /// Panics on non-Clifford gates, resets, or non-Pauli channels — a
    /// misclassified program must fail loudly, never silently approximate.
    pub(crate) fn apply_op(&mut self, op: &Op) {
        match op {
            Op::IdealGate(i) => self.apply_clifford(i),
            Op::Gate(i) => {
                self.apply_clifford(i);
                let noise = Arc::clone(&self.noise);
                for (qs, ch) in noise.channels_for(i) {
                    self.record_event(&qs, ch.pauli_mixture().expect(
                        "stabilizer engine scheduled with non-Pauli noise (misclassified program)",
                    ));
                }
            }
            Op::Reset { .. } => {
                unreachable!("stabilizer fork class excludes programs with resets")
            }
        }
    }

    fn apply_clifford(&mut self, instr: &Instruction) {
        let class = instr
            .gate
            .clifford_class()
            .expect("stabilizer engine scheduled with a non-Clifford gate (misclassified program)");
        self.tab.apply(class, &instr.qubits);
    }

    /// Records a Pauli-mixture channel application on `qs` as sign-flip
    /// masks against the current stabilizer rows.
    fn record_event(&mut self, qs: &[usize], mixture: Vec<(f64, Vec<Pauli>)>) {
        let n = self.tab.n;
        assert!(
            n <= STAB_NOISE_MAX_QUBITS,
            "noisy stabilizer path caps at {STAB_NOISE_MAX_QUBITS} qubits"
        );
        let mut options = Vec::with_capacity(mixture.len());
        for (p, paulis) in mixture {
            debug_assert_eq!(paulis.len(), qs.len());
            let mut mask = 0u64;
            for i in 0..n {
                let row = n + i;
                let mut anti = false;
                for (o, &pl) in paulis.iter().enumerate() {
                    let q = qs[o];
                    let (px, pz) = match pl {
                        Pauli::I => (false, false),
                        Pauli::X => (true, false),
                        Pauli::Y => (true, true),
                        Pauli::Z => (false, true),
                    };
                    anti ^= (px && self.tab.z_bit(row, q)) ^ (pz && self.tab.x_bit(row, q));
                }
                if anti {
                    mask |= 1u64 << i;
                }
            }
            options.push((p, mask));
        }
        // An event whose every option commutes with every stabilizer row
        // can never change an outcome — drop it.
        if options.iter().any(|&(_, m)| m != 0) {
            self.events.push(NoiseEvent { options });
        }
    }

    /// Exact checkpoint.
    pub(crate) fn fork(&self) -> StabilizerState {
        self.clone()
    }

    /// The gate-noisy outcome distribution over `measured` (bit `i` of the
    /// index = `measured[i]`), before readout error. Leaves accumulate into
    /// a sorted outcome→mass map in a fixed descent order, so the result is
    /// deterministic and no `2^|measured|` buffer ever exists — wide
    /// measurement lists are as cheap as their outcome count.
    pub(crate) fn raw_distribution(&self, measured: &[usize]) -> Distribution {
        let mut out: BTreeMap<u64, f64> = BTreeMap::new();
        let walk = Walk {
            tab: self.tab.clone(),
            prov: (0..self.tab.n as u64).map(|i| 1u64 << (i & 63)).collect(),
            det: Vec::new(),
            rand_bits: 0,
            n_random: 0,
        };
        // Provenance masks are single words; without events they are never
        // read, so wide noise-free registers stay admissible.
        walk.descend(measured, 0, &self.events, &mut out);
        Distribution::try_from_entries(measured.len(), out.into_iter().collect())
            .expect("walk outcomes fit the measured bit count")
    }
}

/// One branch of the measurement extraction: a projected tableau copy plus
/// per-stabilizer-row provenance masks over the extraction-start rows.
struct Walk {
    tab: Tableau,
    /// `prov[i]` = which extraction-start stabilizer rows row `n+i` is a
    /// product of (signs XOR accordingly under noise flips).
    prov: Vec<u64>,
    /// Deterministic outcomes so far: `(measured position, base bit, combo)`
    /// where `combo` is the provenance of the accumulated scratch row.
    det: Vec<(usize, bool, u64)>,
    /// Random outcome bits, already placed at their measured positions.
    rand_bits: u64,
    n_random: u32,
}

impl Walk {
    fn descend(
        mut self,
        measured: &[usize],
        pos: usize,
        events: &[NoiseEvent],
        out: &mut BTreeMap<u64, f64>,
    ) {
        if pos == measured.len() {
            return self.emit(events, out);
        }
        let q = measured[pos];
        let n = self.tab.n;
        let random_p = (0..n).find(|&p| self.tab.x_bit(n + p, q));
        match random_p {
            None => {
                // Deterministic: accumulate the stabilizer rows selected by
                // the destabilizers' x bits into a scratch row.
                let words = self.tab.words;
                let mut sx = vec![0u64; words];
                let mut sz = vec![0u64; words];
                let mut phase = 0i32;
                let mut combo = 0u64;
                for i in 0..n {
                    if self.tab.x_bit(i, q) {
                        self.tab.rowsum_scratch(&mut sx, &mut sz, &mut phase, i);
                        combo ^= self.prov[i];
                    }
                }
                let p = phase.rem_euclid(4);
                debug_assert!(
                    p == 0 || p == 2,
                    "deterministic outcome has imaginary phase"
                );
                self.det.push((pos, p == 2, combo));
                self.descend(measured, pos + 1, events, out);
            }
            Some(p) => {
                // Random: project once (shared by both outcomes), then fork
                // on the replacement row's sign.
                let row = n + p;
                for h in 0..2 * n {
                    if h != row && self.tab.x_bit(h, q) {
                        self.tab.rowsum(h, row);
                        if h >= n {
                            self.prov[h - n] ^= self.prov[p];
                        }
                    }
                }
                let words = self.tab.words;
                for w in 0..words {
                    self.tab.x[p * words + w] = self.tab.x[row * words + w];
                    self.tab.z[p * words + w] = self.tab.z[row * words + w];
                    self.tab.x[row * words + w] = 0;
                    self.tab.z[row * words + w] = 0;
                }
                self.tab.sign[p] = self.tab.sign[row];
                self.tab.set_xz(row, q, false, true);
                self.prov[p] = 0;
                self.n_random += 1;

                let mut one = Walk {
                    tab: self.tab.clone(),
                    prov: self.prov.clone(),
                    det: self.det.clone(),
                    rand_bits: self.rand_bits | (1u64 << pos),
                    n_random: self.n_random,
                };
                one.tab.sign[row] = true;
                self.tab.sign[row] = false;
                self.descend(measured, pos + 1, events, out);
                one.descend(measured, pos + 1, events, out);
            }
        }
    }

    /// Adds this leaf's probability mass: `2^{-n_random}` spread over the
    /// deterministic bits by the GF(2) convolution of the event flips.
    fn emit(self, events: &[NoiseEvent], out: &mut BTreeMap<u64, f64>) {
        let weight = (0.5f64).powi(self.n_random as i32);
        let base: u64 = self
            .det
            .iter()
            .filter(|&&(_, bit, _)| bit)
            .fold(0, |acc, &(pos, _, _)| acc | (1u64 << pos));

        // Project each event onto the deterministic bits of this leaf:
        // option flip-vector bit t = ⟨option mask, combo_t⟩.
        let k = self.det.len();
        let mut relevant: Vec<Vec<(f64, u64)>> = Vec::new();
        for ev in events {
            let ws: Vec<(f64, u64)> = ev
                .options
                .iter()
                .map(|&(p, mask)| {
                    let mut w = 0u64;
                    for (t, &(_, _, combo)) in self.det.iter().enumerate() {
                        if ((mask & combo).count_ones() & 1) == 1 {
                            w |= 1u64 << t;
                        }
                    }
                    (p, w)
                })
                .collect();
            if ws.iter().any(|&(_, w)| w != 0) {
                relevant.push(ws);
            }
        }
        if relevant.is_empty() {
            *out.entry(self.rand_bits | base).or_insert(0.0) += weight;
            return;
        }

        // Characteristic function over GF(2)^k, then an inverse WHT.
        let dim = 1usize << k;
        let mut f = vec![1.0f64; dim];
        for ws in &relevant {
            for (chi, val) in f.iter_mut().enumerate() {
                let mut s = 0.0;
                for &(p, w) in ws {
                    let parity = ((chi as u64) & w).count_ones() & 1;
                    s += if parity == 1 { -p } else { p };
                }
                *val *= s;
            }
        }
        // In-place Walsh–Hadamard butterfly (self-inverse up to 1/dim).
        let mut h = 1;
        while h < dim {
            let mut i = 0;
            while i < dim {
                for j in i..i + h {
                    let (a, b) = (f[j], f[j + h]);
                    f[j] = a + b;
                    f[j + h] = a - b;
                }
                i += 2 * h;
            }
            h *= 2;
        }
        let scale = weight / dim as f64;
        for (d, &fd) in f.iter().enumerate() {
            if fd == 0.0 {
                continue;
            }
            // Flip vector d moves the deterministic bits off their base.
            let mut idx = self.rand_bits;
            for (t, &(pos, _, _)) in self.det.iter().enumerate() {
                let bit = ((base >> pos) & 1) ^ (((d >> t) & 1) as u64);
                idx |= bit << pos;
            }
            *out.entry(idx).or_insert(0.0) += scale * fd;
        }
    }
}

/// Runs `program` on a fresh stabilizer state and reads the distribution —
/// the serial path of the stabilizer engine; callers check
/// [`stabilizer_admissible`] first.
pub(crate) fn stabilizer_distribution(
    program: &Program,
    noise: &Arc<NoiseModel>,
    measured: &[usize],
) -> Distribution {
    let mut st = StabilizerState::zero(program.n_qubits(), Arc::clone(noise));
    for op in program.ops() {
        st.apply_op(op);
    }
    st.raw_distribution(measured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::density_evolution;
    use qt_circuit::{Circuit, Gate};

    fn stab_dist(prog: &Program, noise: &NoiseModel, measured: &[usize]) -> Vec<f64> {
        stabilizer_distribution(prog, &Arc::new(noise.clone()), measured)
            .densify()
            .expect("test measurement lists are narrow")
    }

    fn dm_dist(prog: &Program, noise: &NoiseModel, measured: &[usize]) -> Vec<f64> {
        density_evolution(prog, noise).marginal_probabilities(measured)
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64, ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "{ctx}: idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn ghz_distribution_is_correct() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let prog = Program::from_circuit(&c);
        let d = stab_dist(&prog, &NoiseModel::ideal(), &[0, 1, 2]);
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[7] - 0.5).abs() < 1e-12);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn every_clifford_gate_matches_dense_oracle() {
        use std::f64::consts::{FRAC_PI_2, PI};
        let gates: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::H, vec![0]),
            (Gate::X, vec![1]),
            (Gate::Y, vec![0]),
            (Gate::Z, vec![1]),
            (Gate::S, vec![0]),
            (Gate::Sdg, vec![1]),
            (Gate::Sx, vec![0]),
            (Gate::Rx(FRAC_PI_2), vec![1]),
            (Gate::Rx(-FRAC_PI_2), vec![0]),
            (Gate::Ry(FRAC_PI_2), vec![1]),
            (Gate::Ry(-FRAC_PI_2), vec![0]),
            (Gate::Ry(PI), vec![1]),
            (Gate::Rz(FRAC_PI_2), vec![0]),
            (Gate::Phase(-FRAC_PI_2), vec![1]),
            (Gate::Cx, vec![0, 1]),
            (Gate::Cx, vec![1, 0]),
            (Gate::Cy, vec![0, 1]),
            (Gate::Cz, vec![0, 1]),
            (Gate::Swap, vec![0, 1]),
            (Gate::Cp(PI), vec![1, 0]),
        ];
        // Prefix with superposition/phase so sign rules are exercised.
        for (g, qs) in gates {
            let mut prog = Program::new(2);
            prog.push_gate(Instruction::new(Gate::H, vec![0]));
            prog.push_gate(Instruction::new(Gate::S, vec![0]));
            prog.push_gate(Instruction::new(Gate::H, vec![1]));
            prog.push_gate(Instruction::new(Gate::Sdg, vec![1]));
            prog.push_gate(Instruction::new(Gate::Cx, vec![0, 1]));
            prog.push_gate(Instruction::new(g.clone(), qs.clone()));
            let noise = NoiseModel::ideal();
            assert_close(
                &stab_dist(&prog, &noise, &[0, 1]),
                &dm_dist(&prog, &noise, &[0, 1]),
                1e-10,
                &format!("{g:?} on {qs:?}"),
            );
        }
    }

    #[test]
    fn pauli_noise_mixes_exactly() {
        // Bit-flip after X: deterministic outcome flipped with probability p.
        let mut prog = Program::new(1);
        prog.push_gate(Instruction::new(Gate::X, vec![0]));
        let mut noise = NoiseModel::ideal();
        noise
            .one_qubit
            .full
            .push(crate::KrausChannel::bit_flip(0.1));
        let d = stab_dist(&prog, &noise, &[0]);
        assert!((d[0] - 0.1).abs() < 1e-12, "{d:?}");
        assert!((d[1] - 0.9).abs() < 1e-12, "{d:?}");
    }

    #[test]
    fn depolarizing_clifford_matches_density_matrix() {
        let mut c = Circuit::new(4);
        c.h(0)
            .cx(0, 1)
            .s(1)
            .cz(1, 2)
            .cx(2, 3)
            .h(3)
            .sx(2)
            .cy(0, 3)
            .swap(1, 2);
        let prog = Program::from_circuit(&c);
        let noise = NoiseModel::depolarizing(0.02, 0.07);
        assert_close(
            &stab_dist(&prog, &noise, &[0, 1, 2, 3]),
            &dm_dist(&prog, &noise, &[0, 1, 2, 3]),
            1e-10,
            "depolarizing clifford",
        );
        // Subset measurement too.
        assert_close(
            &stab_dist(&prog, &noise, &[2, 0]),
            &dm_dist(&prog, &noise, &[2, 0]),
            1e-10,
            "subset measurement",
        );
    }

    #[test]
    fn correlated_noise_on_entangled_pairs_matches() {
        // Errors between the CX pair are where naive independent mixing
        // would go wrong: the flip masks must track entangled rows.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let prog = Program::from_circuit(&c);
        let mut noise = NoiseModel::ideal();
        noise
            .one_qubit
            .full
            .push(crate::KrausChannel::phase_flip(0.2));
        noise
            .two_qubit
            .per_operand
            .push(crate::KrausChannel::bit_flip(0.05));
        assert_close(
            &stab_dist(&prog, &noise, &[0, 1, 2]),
            &dm_dist(&prog, &noise, &[0, 1, 2]),
            1e-10,
            "correlated noise",
        );
    }

    #[test]
    fn wide_noise_free_register_runs() {
        // 40 qubits — far beyond any dense representation.
        let mut c = Circuit::new(40);
        c.h(0);
        for q in 0..39 {
            c.cx(q, q + 1);
        }
        let prog = Program::from_circuit(&c);
        let d = stab_dist(&prog, &NoiseModel::ideal(), &[0, 20, 39]);
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[7] - 0.5).abs() < 1e-12);
        // Reading out all 40 qubits emits a two-entry sparse distribution —
        // no 2^40 buffer anywhere.
        let wide = stabilizer_distribution(
            &prog,
            &Arc::new(NoiseModel::ideal()),
            &(0..40).collect::<Vec<_>>(),
        );
        assert_eq!(wide.support_len(), 2);
        assert!((wide.prob((1u64 << 40) - 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fork_is_exact() {
        let noise = Arc::new(NoiseModel::depolarizing(0.01, 0.03));
        let mut st = StabilizerState::zero(3, Arc::clone(&noise));
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1);
        for instr in c.instructions() {
            st.apply_op(&Op::Gate(instr.clone()));
        }
        let fork = st.fork();
        let mut c2 = Circuit::new(3);
        c2.cx(1, 2).s(2);
        let tail: Vec<Op> = c2.instructions().iter().cloned().map(Op::Gate).collect();
        let mut a = st;
        let mut b = fork;
        for op in &tail {
            a.apply_op(op);
            b.apply_op(op);
        }
        assert_eq!(
            a.raw_distribution(&[0, 1, 2]),
            b.raw_distribution(&[0, 1, 2]),
            "forked evolution must be bit-identical"
        );
    }

    #[test]
    #[should_panic(expected = "misclassified program")]
    fn non_clifford_gate_is_a_hard_failure() {
        // If the classifier ever lets a non-Clifford program through, the
        // tableau must refuse loudly instead of silently approximating.
        let mut st = StabilizerState::zero(2, Arc::new(NoiseModel::ideal()));
        let mut c = Circuit::new(2);
        c.h(0).t(0);
        for instr in c.instructions() {
            st.apply_op(&Op::Gate(instr.clone()));
        }
    }
}
