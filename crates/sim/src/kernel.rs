//! Low-level gate-application kernels shared by the state-vector and
//! density-matrix engines.
//!
//! Amplitude arrays are indexed with qubit 0 as the least-significant bit.
//! A gate on operand list `qs` uses `qs[0]` as the least-significant bit of
//! its local index (matching [`qt_circuit::Gate::matrix`]).
//!
//! # Kernel specialization
//!
//! Applying every gate as a dense `2^k × 2^k` matrix wastes most of its work
//! on structured operators: a controlled phase touches one amplitude in four,
//! a CX moves amplitudes without any arithmetic, and a diagonal gate never
//! needs a gather/scatter at all. [`KernelClass`] classifies an operator
//! matrix once and [`apply_classified`] dispatches to a dedicated kernel:
//!
//! | class                | kernel                                | gates |
//! |----------------------|---------------------------------------|-------|
//! | `ControlledPhase`    | phase on the all-ones sub-lattice     | Z, S, T, P, Cz, Cp, Ccp |
//! | `Diagonal`           | in-place factor multiplication        | Rz, Crz |
//! | `Permutation`        | gather/permute/scatter, no matmul     | X, Y, Cx, Cy, Swap |
//! | `SingleQubitDense`   | stride-based 2×2 butterfly            | H, Sx, Rx, Ry, U |
//! | `TwoQubitDense`      | 4-amplitude gather + 4×4 product, or a control=1-subspace butterfly | Crx, Cry, any 4×4 |
//! | `General`            | [`apply_op_generic`] (the oracle)     | everything else |
//!
//! [`apply_op`] classifies and dispatches; [`apply_op_generic`] is the
//! original dense path, kept as the correctness oracle the property tests
//! compare every specialized kernel against. Registers with at least
//! [`PARALLEL_MIN_AMPS`] amplitudes route the specialized kernels through
//! [`crate::backend::parallel_chunks_mut`] (built on
//! [`crate::backend::parallel_indexed`]); in-place kernels write each
//! amplitude exactly once from fixed inputs, so the parallel path is
//! bit-identical to the serial one regardless of worker count.

use crate::backend::{available_threads, parallel_chunks_mut};
use qt_circuit::Gate;
use qt_math::{Complex, Matrix};

/// Register size (in amplitudes) from which the specialized kernels fan out
/// over worker threads (2²⁰ amplitudes = a 20-qubit state vector or a
/// 10-qubit density matrix).
pub const PARALLEL_MIN_AMPS: usize = 1 << 20;

/// A dense 2×2 block applied on the control=1 subspace of a two-qubit gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlledBlock {
    /// Local operand index of the control qubit (0 or 1).
    pub control: u8,
    /// Row-major 2×2 block applied to the target when the control is set.
    pub block: [Complex; 4],
}

/// Structural classification of an operator matrix, computed once per
/// application (or once per program — see
/// [`KernelClass::for_gate`]) and dispatched by [`apply_classified`].
#[derive(Debug, Clone, PartialEq)]
pub enum KernelClass {
    /// Diagonal operator: in-place multiplication by `factors[local]`.
    Diagonal {
        /// Diagonal entries, indexed by the local operand index.
        factors: Vec<Complex>,
    },
    /// Monomial operator: `new[perm[c]] = factors[c] · old[c]`.
    Permutation {
        /// Row index of the single nonzero entry in each column.
        perm: Vec<u8>,
        /// The nonzero entry of each column.
        factors: Vec<Complex>,
    },
    /// Identity except for `phase` on the all-ones local index; touches only
    /// `2^{n-k}` amplitudes.
    ControlledPhase {
        /// The phase picked up by the all-ones basis state.
        phase: Complex,
    },
    /// Dense 2×2 operator: stride-based butterfly.
    SingleQubitDense {
        /// Row-major entries `[m00, m01, m10, m11]`.
        m: [Complex; 4],
    },
    /// Dense 4×4 operator; when `control` is set, the matrix is the identity
    /// on the control=0 subspace and the kernel touches only the control=1
    /// half.
    TwoQubitDense {
        /// Row-major 4×4 entries.
        m: Box<[Complex; 16]>,
        /// Controlled-gate structure, if the matrix has it.
        control: Option<ControlledBlock>,
    },
    /// No exploitable structure: fall back to [`apply_op_generic`].
    General(Matrix),
}

impl KernelClass {
    /// Classifies an operator matrix by inspecting its entries.
    ///
    /// Classification uses exact comparisons against 0 and 1, which the
    /// workspace's gate constructors produce exactly; a nearly-diagonal
    /// matrix with `1e-30` off-diagonal dust is treated as dense, which is
    /// always correct (just slower).
    pub fn classify(u: &Matrix) -> KernelClass {
        if !u.is_square() || !u.rows().is_power_of_two() {
            return KernelClass::General(u.clone());
        }
        let d = u.rows();
        if let Some(factors) = diagonal_of(u) {
            if factors[..d - 1].iter().all(|&f| f == Complex::ONE) {
                return KernelClass::ControlledPhase {
                    phase: factors[d - 1],
                };
            }
            return KernelClass::Diagonal { factors };
        }
        if let Some((perm, factors)) = monomial_of(u) {
            return KernelClass::Permutation { perm, factors };
        }
        match d {
            2 => KernelClass::SingleQubitDense {
                m: [u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]],
            },
            4 => {
                let mut m = Box::new([Complex::ZERO; 16]);
                for r in 0..4 {
                    for c in 0..4 {
                        m[r * 4 + c] = u[(r, c)];
                    }
                }
                let control = controlled_block_of(u);
                KernelClass::TwoQubitDense { m, control }
            }
            _ => KernelClass::General(u.clone()),
        }
    }

    /// Classifies a gate, constructing the class directly from the gate's
    /// parameters where possible (no matrix allocation for diagonal,
    /// permutation and controlled-phase gates — the hot path of trajectory
    /// replay).
    pub fn for_gate(gate: &Gate) -> KernelClass {
        let i = Complex::I;
        match gate {
            Gate::Z | Gate::Cz => KernelClass::ControlledPhase {
                phase: -Complex::ONE,
            },
            Gate::S => KernelClass::ControlledPhase { phase: i },
            Gate::Sdg => KernelClass::ControlledPhase { phase: -i },
            Gate::T => KernelClass::ControlledPhase {
                phase: Complex::from_phase(std::f64::consts::FRAC_PI_4),
            },
            Gate::Tdg => KernelClass::ControlledPhase {
                phase: Complex::from_phase(-std::f64::consts::FRAC_PI_4),
            },
            Gate::Phase(t) | Gate::Cp(t) | Gate::Ccp(t) => KernelClass::ControlledPhase {
                phase: Complex::from_phase(*t),
            },
            Gate::Rz(t) => KernelClass::Diagonal {
                factors: vec![Complex::from_phase(-t / 2.0), Complex::from_phase(t / 2.0)],
            },
            Gate::Crz(t) => KernelClass::Diagonal {
                factors: vec![
                    Complex::ONE,
                    Complex::from_phase(-t / 2.0),
                    Complex::ONE,
                    Complex::from_phase(t / 2.0),
                ],
            },
            Gate::X => KernelClass::Permutation {
                perm: vec![1, 0],
                factors: vec![Complex::ONE; 2],
            },
            Gate::Y => KernelClass::Permutation {
                perm: vec![1, 0],
                factors: vec![i, -i],
            },
            Gate::Cx => KernelClass::Permutation {
                perm: vec![0, 3, 2, 1],
                factors: vec![Complex::ONE; 4],
            },
            Gate::Cy => KernelClass::Permutation {
                perm: vec![0, 3, 2, 1],
                factors: vec![Complex::ONE, i, Complex::ONE, -i],
            },
            Gate::Swap => KernelClass::Permutation {
                perm: vec![0, 2, 1, 3],
                factors: vec![Complex::ONE; 4],
            },
            Gate::Crx(t) => controlled_dense(&Gate::Rx(*t).matrix()),
            Gate::Cry(t) => controlled_dense(&Gate::Ry(*t).matrix()),
            _ => KernelClass::classify(&gate.matrix()),
        }
    }

    /// The class of the element-wise conjugate operator — what the column
    /// side of a vectorized density matrix evolves under. The structure is
    /// preserved; only the stored entries conjugate.
    pub fn conj(&self) -> KernelClass {
        match self {
            KernelClass::Diagonal { factors } => KernelClass::Diagonal {
                factors: factors.iter().map(|f| f.conj()).collect(),
            },
            KernelClass::Permutation { perm, factors } => KernelClass::Permutation {
                perm: perm.clone(),
                factors: factors.iter().map(|f| f.conj()).collect(),
            },
            KernelClass::ControlledPhase { phase } => KernelClass::ControlledPhase {
                phase: phase.conj(),
            },
            KernelClass::SingleQubitDense { m } => KernelClass::SingleQubitDense {
                m: [m[0].conj(), m[1].conj(), m[2].conj(), m[3].conj()],
            },
            KernelClass::TwoQubitDense { m, control } => {
                let mut mc = Box::new([Complex::ZERO; 16]);
                for (dst, src) in mc.iter_mut().zip(m.iter()) {
                    *dst = src.conj();
                }
                let control = control.map(|cb| ControlledBlock {
                    control: cb.control,
                    block: [
                        cb.block[0].conj(),
                        cb.block[1].conj(),
                        cb.block[2].conj(),
                        cb.block[3].conj(),
                    ],
                });
                KernelClass::TwoQubitDense { m: mc, control }
            }
            KernelClass::General(u) => KernelClass::General(u.conj()),
        }
    }

    /// Number of operand qubits the class acts on.
    pub fn n_qubits(&self) -> Option<usize> {
        match self {
            KernelClass::Diagonal { factors } => Some(factors.len().trailing_zeros() as usize),
            KernelClass::Permutation { perm, .. } => Some(perm.len().trailing_zeros() as usize),
            KernelClass::ControlledPhase { .. } => None, // any operand count
            KernelClass::SingleQubitDense { .. } => Some(1),
            KernelClass::TwoQubitDense { .. } => Some(2),
            KernelClass::General(u) => Some(u.rows().trailing_zeros() as usize),
        }
    }
}

/// The diagonal of `u` if it is exactly diagonal.
fn diagonal_of(u: &Matrix) -> Option<Vec<Complex>> {
    let d = u.rows();
    for r in 0..d {
        for c in 0..d {
            if r != c && u[(r, c)] != Complex::ZERO {
                return None;
            }
        }
    }
    Some(u.diagonal())
}

/// The `(perm, factors)` decomposition of `u` if it is exactly monomial
/// (one nonzero per row and column).
fn monomial_of(u: &Matrix) -> Option<(Vec<u8>, Vec<Complex>)> {
    let d = u.rows();
    // The permutation kernel gathers into a fixed 8-slot buffer; larger
    // monomial operators (≥ 4 qubits) fall through to the generic path.
    if d > 8 {
        return None;
    }
    let mut perm = vec![0u8; d];
    let mut factors = vec![Complex::ZERO; d];
    let mut row_used = vec![false; d];
    for c in 0..d {
        let mut hit = None;
        for r in 0..d {
            if u[(r, c)] != Complex::ZERO {
                if hit.is_some() {
                    return None;
                }
                hit = Some(r);
            }
        }
        let r = hit?;
        if row_used[r] {
            return None;
        }
        row_used[r] = true;
        perm[c] = r as u8;
        factors[c] = u[(r, c)];
    }
    Some((perm, factors))
}

/// The controlled-block structure of a 4×4 matrix, if it is the identity on
/// one operand's control=0 subspace.
fn controlled_block_of(u: &Matrix) -> Option<ControlledBlock> {
    for control in 0..2u8 {
        // Local indices with the control bit clear / set.
        let (clear, set) = if control == 0 {
            ([0usize, 2], [1usize, 3])
        } else {
            ([0, 1], [2, 3])
        };
        let identity_on_clear = u[(clear[0], clear[0])] == Complex::ONE
            && u[(clear[1], clear[1])] == Complex::ONE
            && u[(clear[0], clear[1])] == Complex::ZERO
            && u[(clear[1], clear[0])] == Complex::ZERO;
        let decoupled = clear.iter().all(|&a| {
            set.iter()
                .all(|&b| u[(a, b)] == Complex::ZERO && u[(b, a)] == Complex::ZERO)
        });
        if identity_on_clear && decoupled {
            return Some(ControlledBlock {
                control,
                block: [
                    u[(set[0], set[0])],
                    u[(set[0], set[1])],
                    u[(set[1], set[0])],
                    u[(set[1], set[1])],
                ],
            });
        }
    }
    None
}

/// Builds the [`KernelClass`] of a controlled single-qubit gate (control =
/// operand 0) from the target's 2×2 matrix.
fn controlled_dense(target: &Matrix) -> KernelClass {
    let mut m = Box::new([Complex::ZERO; 16]);
    m[0] = Complex::ONE; // |c=0,t=0⟩
    m[2 * 4 + 2] = Complex::ONE; // |c=0,t=1⟩
    let block = [
        target[(0, 0)],
        target[(0, 1)],
        target[(1, 0)],
        target[(1, 1)],
    ];
    m[4 + 1] = block[0];
    m[4 + 3] = block[1];
    m[3 * 4 + 1] = block[2];
    m[3 * 4 + 3] = block[3];
    KernelClass::TwoQubitDense {
        m,
        control: Some(ControlledBlock { control: 0, block }),
    }
}

/// Applies a `2^k × 2^k` operator `u` to the amplitudes `amps` of an
/// `n`-qubit register on the operand qubits `qs`, classifying the matrix and
/// dispatching to the matching specialized kernel.
///
/// `u` need not be unitary (Kraus operators are applied with the same
/// kernel).
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn apply_op(amps: &mut [Complex], n: usize, u: &Matrix, qs: &[usize]) {
    assert_eq!(u.rows(), 1 << qs.len(), "operator does not match operands");
    apply_classified(amps, n, &KernelClass::classify(u), qs);
}

/// Applies a pre-classified operator (see [`KernelClass`]).
///
/// # Panics
///
/// Panics if the class's operand count or the register size disagree with
/// `qs` and `amps`.
pub fn apply_classified(amps: &mut [Complex], n: usize, class: &KernelClass, qs: &[usize]) {
    assert_eq!(
        amps.len(),
        1 << n,
        "amplitude array does not match register"
    );
    if let Some(k) = class.n_qubits() {
        assert_eq!(k, qs.len(), "kernel class does not match operand count");
    }
    debug_assert!(qs.iter().all(|&q| q < n));
    let period = 1usize << (qs.iter().max().copied().unwrap_or(0) + 1);
    match class {
        KernelClass::Diagonal { factors } => {
            for_each_slab(amps, period, |slab| diagonal_kernel(slab, qs, factors));
        }
        KernelClass::Permutation { perm, factors } => {
            for_each_slab(amps, period, |slab| {
                permutation_kernel(slab, qs, perm, factors)
            });
        }
        KernelClass::ControlledPhase { phase } => {
            if *phase == Complex::ONE {
                return; // identity
            }
            for_each_slab(amps, period, |slab| {
                controlled_phase_kernel(slab, qs, *phase)
            });
        }
        KernelClass::SingleQubitDense { m } => {
            for_each_slab(amps, period, |slab| butterfly_kernel(slab, qs[0], m));
        }
        KernelClass::TwoQubitDense { m, control } => match control {
            Some(cb) => for_each_slab(amps, period, |slab| controlled_dense_kernel(slab, qs, cb)),
            None => for_each_slab(amps, period, |slab| two_qubit_dense_kernel(slab, qs, m)),
        },
        KernelClass::General(u) => apply_op_generic(amps, n, u, qs),
    }
}

/// Runs `kernel` over independent slabs of the amplitude array, in parallel
/// for large registers.
///
/// A gate whose highest operand qubit is `m` decomposes the array into
/// independent contiguous blocks of `period = 2^{m+1}` amplitudes; any slab
/// that is a multiple of `period` long can be processed as a register of its
/// own (the kernels only inspect index bits below `m+1`, which slab-relative
/// indices preserve). Each amplitude is written exactly once from fixed
/// inputs, so the result is bit-identical for every worker count.
///
/// Two situations stay serial by design: gates whose highest operand is a
/// top qubit (the period reaches the array length, leaving a single slab),
/// and calls made from inside a `parallel_indexed` worker (a trajectory or
/// batch job already owns its share of the machine; fanning out again per
/// gate would oversubscribe it).
fn for_each_slab<F>(amps: &mut [Complex], period: usize, kernel: F)
where
    F: Fn(&mut [Complex]) + Sync,
{
    let threads = if amps.len() >= PARALLEL_MIN_AMPS && !crate::backend::in_parallel_worker() {
        available_threads()
    } else {
        1
    };
    if threads <= 1 || amps.len() <= period {
        kernel(amps);
        return;
    }
    // ~4 chunks per worker for load balance, each a multiple of the period.
    let target = amps.len().div_ceil(threads * 4).max(period);
    let chunk_len = target.div_ceil(period) * period;
    parallel_chunks_mut(amps, chunk_len, threads, |_, slab| kernel(slab));
}

/// Inserts zero bits at the (sorted ascending) positions `sorted`,
/// spreading `i`'s bits across the remaining positions.
#[inline]
pub(crate) fn expand_index(mut i: usize, sorted: &[usize]) -> usize {
    for &q in sorted {
        let low = i & ((1usize << q) - 1);
        i = ((i >> q) << (q + 1)) | low;
    }
    i
}

/// Local-offset table: `offsets[l]` ORs local index `l`'s bits into a base
/// index at the operand positions `qs`.
fn local_offsets(qs: &[usize]) -> Vec<usize> {
    local_offsets_shifted(qs, 0)
}

/// [`local_offsets`] with every operand position shifted up by `shift` —
/// the column side of a vectorized density matrix uses `shift = n`.
pub(crate) fn local_offsets_shifted(qs: &[usize], shift: usize) -> Vec<usize> {
    let dim_local = 1usize << qs.len();
    let mut offsets = vec![0usize; dim_local];
    for (l, off) in offsets.iter_mut().enumerate() {
        for (pos, &q) in qs.iter().enumerate() {
            if (l >> pos) & 1 == 1 {
                *off |= 1 << (q + shift);
            }
        }
    }
    offsets
}

/// In-place multiplication by a diagonal operator.
fn diagonal_kernel(slab: &mut [Complex], qs: &[usize], factors: &[Complex]) {
    if let [q] = qs {
        let stride = 1usize << q;
        let (f0, f1) = (factors[0], factors[1]);
        for pair in slab.chunks_exact_mut(2 * stride) {
            let (lo, hi) = pair.split_at_mut(stride);
            if f0 != Complex::ONE {
                for a in lo {
                    *a *= f0;
                }
            }
            if f1 != Complex::ONE {
                for a in hi {
                    *a *= f1;
                }
            }
        }
        return;
    }
    for (i, a) in slab.iter_mut().enumerate() {
        let mut l = 0usize;
        for (pos, &q) in qs.iter().enumerate() {
            l |= ((i >> q) & 1) << pos;
        }
        *a *= factors[l];
    }
}

/// Phase multiplication restricted to the all-ones sub-lattice.
fn controlled_phase_kernel(slab: &mut [Complex], qs: &[usize], phase: Complex) {
    if let [q] = qs {
        let stride = 1usize << q;
        for pair in slab.chunks_exact_mut(2 * stride) {
            for a in &mut pair[stride..] {
                *a *= phase;
            }
        }
        return;
    }
    let k = qs.len();
    let mask: usize = qs.iter().map(|&q| 1usize << q).sum();
    let mut sorted = qs.to_vec();
    sorted.sort_unstable();
    for o in 0..slab.len() >> k {
        slab[expand_index(o, &sorted) | mask] *= phase;
    }
}

/// Gather/permute/scatter for monomial operators — no matrix arithmetic.
fn permutation_kernel(slab: &mut [Complex], qs: &[usize], perm: &[u8], factors: &[Complex]) {
    // CX (perm [0,3,2,1], unit factors) gets a dedicated kernel: paired
    // in-place `swap_with_slice` over contiguous runs instead of the
    // 4-amplitude gather/scatter with per-group index expansion.
    if let ([c, t], [0, 3, 2, 1]) = (qs, perm) {
        if factors.iter().all(|&f| f == Complex::ONE) {
            cx_kernel(slab, *c, *t);
            return;
        }
    }
    // Diagonal monomials classify as Diagonal, so a single-qubit class from
    // `classify`/`for_gate` always has perm == [1, 0]; hand-built classes
    // with any other permutation fall through to the general path below.
    if let ([q], [1, 0]) = (qs, perm) {
        let stride = 1usize << q;
        let (f0, f1) = (factors[0], factors[1]);
        let trivial = f0 == Complex::ONE && f1 == Complex::ONE;
        for pair in slab.chunks_exact_mut(2 * stride) {
            let (lo, hi) = pair.split_at_mut(stride);
            if trivial {
                lo.swap_with_slice(hi);
            } else {
                for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                    let t = *a;
                    *a = f1 * *b;
                    *b = f0 * t;
                }
            }
        }
        return;
    }
    let k = qs.len();
    let dim_local = 1usize << k;
    debug_assert!(dim_local <= 8, "permutation kernels cover ≤ 3 qubits");
    let mut sorted = qs.to_vec();
    sorted.sort_unstable();
    let offsets = local_offsets(qs);
    let mut buf = [Complex::ZERO; 8];
    for o in 0..slab.len() >> k {
        let base = expand_index(o, &sorted);
        for c in 0..dim_local {
            buf[perm[c] as usize] = factors[c] * slab[base | offsets[c]];
        }
        for (l, &off) in offsets.iter().enumerate() {
            slab[base | off] = buf[l];
        }
    }
}

/// CX on (control `cq`, target `tq`): swaps the target-paired amplitudes
/// of the control=1 subspace, walking the array in contiguous
/// `swap_with_slice` runs in both operand orders — no index expansion, no
/// scratch buffer. When the target is the low bit the control=1 subspace
/// is itself contiguous and the kernel degenerates to back-to-back slice
/// swaps, the memcpy-speed case the `cx_lowbit` bench rows measure.
fn cx_kernel(slab: &mut [Complex], cq: usize, tq: usize) {
    let (cs, ts) = (1usize << cq, 1usize << tq);
    if tq < cq {
        // Control is the high operand: within every control period the
        // upper half (control = 1) is one contiguous run of target pairs.
        for block in slab.chunks_exact_mut(2 * cs) {
            let on = &mut block[cs..];
            for pair in on.chunks_exact_mut(2 * ts) {
                let (lo, hi) = pair.split_at_mut(ts);
                lo.swap_with_slice(hi);
            }
        }
    } else {
        // Target is the high operand: swap the control=1 runs between the
        // target=0 and target=1 halves of every target period.
        for pair in slab.chunks_exact_mut(2 * ts) {
            let (lo, hi) = pair.split_at_mut(ts);
            for (lc, hc) in lo.chunks_exact_mut(2 * cs).zip(hi.chunks_exact_mut(2 * cs)) {
                lc[cs..].swap_with_slice(&mut hc[cs..]);
            }
        }
    }
}

/// Stride-based butterfly for a dense 2×2 operator.
fn butterfly_kernel(slab: &mut [Complex], q: usize, m: &[Complex; 4]) {
    let stride = 1usize << q;
    let [m00, m01, m10, m11] = *m;
    for pair in slab.chunks_exact_mut(2 * stride) {
        let (lo, hi) = pair.split_at_mut(stride);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (x, y) = (*a, *b);
            *a = m00 * x + m01 * y;
            *b = m10 * x + m11 * y;
        }
    }
}

/// Butterfly on the target qubit, restricted to the control=1 subspace.
fn controlled_dense_kernel(slab: &mut [Complex], qs: &[usize], cb: &ControlledBlock) {
    let (cq, tq) = if cb.control == 0 {
        (qs[0], qs[1])
    } else {
        (qs[1], qs[0])
    };
    let [m00, m01, m10, m11] = cb.block;
    let (cbit, tbit) = (1usize << cq, 1usize << tq);
    let mut sorted = [cq, tq];
    sorted.sort_unstable();
    for o in 0..slab.len() >> 2 {
        let i = expand_index(o, &sorted) | cbit;
        let (x, y) = (slab[i], slab[i | tbit]);
        slab[i] = m00 * x + m01 * y;
        slab[i | tbit] = m10 * x + m11 * y;
    }
}

/// Four-amplitude gather + dense 4×4 product.
fn two_qubit_dense_kernel(slab: &mut [Complex], qs: &[usize], m: &[Complex; 16]) {
    let (b0, b1) = (1usize << qs[0], 1usize << qs[1]);
    let mut sorted = [qs[0], qs[1]];
    sorted.sort_unstable();
    for o in 0..slab.len() >> 2 {
        let base = expand_index(o, &sorted);
        let idx = [base, base | b0, base | b1, base | b0 | b1];
        let g = [slab[idx[0]], slab[idx[1]], slab[idx[2]], slab[idx[3]]];
        for (r, &i) in idx.iter().enumerate() {
            slab[i] =
                m[r * 4] * g[0] + m[r * 4 + 1] * g[1] + m[r * 4 + 2] * g[2] + m[r * 4 + 3] * g[3];
        }
    }
}

/// Applies a `2^k × 2^k` operator `u` on the operand qubits `qs` with the
/// generic dense gather/scatter path — the correctness oracle every
/// specialized kernel is property-tested against, and the fallback for
/// operators with no exploitable structure.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn apply_op_generic(amps: &mut [Complex], n: usize, u: &Matrix, qs: &[usize]) {
    let k = qs.len();
    assert_eq!(u.rows(), 1 << k, "operator does not match operand count");
    assert_eq!(
        amps.len(),
        1 << n,
        "amplitude array does not match register"
    );
    debug_assert!(qs.iter().all(|&q| q < n));

    let dim_local = 1usize << k;
    let mut sorted = qs.to_vec();
    sorted.sort_unstable();

    let mut gathered = vec![Complex::ZERO; dim_local];
    let offsets = local_offsets(qs);

    let outer = 1usize << (n - k);
    for i in 0..outer {
        let base = expand_index(i, &sorted);
        for (l, g) in gathered.iter_mut().enumerate() {
            *g = amps[base | offsets[l]];
        }
        for r in 0..dim_local {
            let mut acc = Complex::ZERO;
            for (c, &g) in gathered.iter().enumerate() {
                let m = u[(r, c)];
                if m != Complex::ZERO {
                    acc += m * g;
                }
            }
            amps[base | offsets[r]] = acc;
        }
    }
}

/// Computes `⟨ψ| Op_{qs} |ψ⟩` for a local operator without copying the state.
pub fn expectation_local(amps: &[Complex], n: usize, op: &Matrix, qs: &[usize]) -> Complex {
    let k = qs.len();
    assert_eq!(op.rows(), 1 << k);
    assert_eq!(amps.len(), 1 << n);

    let dim_local = 1usize << k;
    let mut sorted = qs.to_vec();
    sorted.sort_unstable();
    let offsets = local_offsets(qs);
    let mut acc = Complex::ZERO;
    let outer = 1usize << (n - k);
    for i in 0..outer {
        let base = expand_index(i, &sorted);
        for r in 0..dim_local {
            let ar = amps[base | offsets[r]];
            if ar == Complex::ZERO {
                continue;
            }
            for c in 0..dim_local {
                let m = op[(r, c)];
                if m != Complex::ZERO {
                    acc += ar.conj() * m * amps[base | offsets[c]];
                }
            }
        }
    }
    acc
}

/// Sums `|amps|²` over all indices whose bit `q` equals `bit`.
pub fn probability_of_bit(amps: &[Complex], q: usize, bit: usize) -> f64 {
    let mask = 1usize << q;
    let want = bit << q;
    amps.iter()
        .enumerate()
        .filter(|(i, _)| i & mask == want)
        .map(|(_, a)| a.norm_sqr())
        .sum()
}

/// Marginal probability vector over `subset` (output bit `i` is `subset[i]`).
pub fn marginal_probabilities(amps: &[Complex], subset: &[usize]) -> Vec<f64> {
    let mut out = vec![0.0; 1 << subset.len()];
    for (idx, a) in amps.iter().enumerate() {
        let p = a.norm_sqr();
        if p == 0.0 {
            continue;
        }
        let mut key = 0usize;
        for (pos, &q) in subset.iter().enumerate() {
            if (idx >> q) & 1 == 1 {
                key |= 1 << pos;
            }
        }
        out[key] += p;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_circuit::Gate;

    fn zero_state(n: usize) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; 1 << n];
        v[0] = Complex::ONE;
        v
    }

    /// A fixed pseudo-random dense state (not normalized; kernels are
    /// linear, so normalization is irrelevant to equivalence checks).
    fn scrambled_state(n: usize) -> Vec<Complex> {
        let mut x = 0x2545f4914f6cdd1du64;
        (0..1usize << n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let re = ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let im = ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                Complex::new(re, im)
            })
            .collect()
    }

    fn all_test_gates() -> Vec<(Gate, Vec<usize>)> {
        use Gate::*;
        vec![
            (H, vec![1]),
            (X, vec![2]),
            (Y, vec![0]),
            (Z, vec![3]),
            (S, vec![1]),
            (Sdg, vec![2]),
            (T, vec![0]),
            (Tdg, vec![3]),
            (Sx, vec![1]),
            (Rx(0.3), vec![2]),
            (Ry(-1.2), vec![0]),
            (Rz(2.5), vec![3]),
            (Phase(0.7), vec![1]),
            (U(0.4, 1.1, -0.6), vec![2]),
            (Cx, vec![1, 3]),
            (Cx, vec![3, 1]),
            (Cy, vec![0, 2]),
            (Cz, vec![2, 0]),
            (Cp(0.9), vec![1, 2]),
            (Crz(1.3), vec![3, 0]),
            (Crx(-0.8), vec![0, 3]),
            (Cry(0.2), vec![2, 1]),
            (Swap, vec![0, 3]),
            (Ccp(0.55), vec![2, 0, 3]),
        ]
    }

    #[test]
    fn every_specialized_kernel_matches_the_generic_oracle() {
        let n = 4;
        for (g, qs) in all_test_gates() {
            let mut fast = scrambled_state(n);
            let mut slow = fast.clone();
            apply_classified(&mut fast, n, &KernelClass::for_gate(&g), &qs);
            apply_op_generic(&mut slow, n, &g.matrix(), &qs);
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!(
                    a.approx_eq(*b, 1e-12),
                    "{} on {qs:?}: amp {i} differs ({a:?} vs {b:?})",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn classify_matches_gate_structure() {
        use qt_circuit::GateStructure as GS;
        for (g, _) in all_test_gates() {
            let class = KernelClass::classify(&g.matrix());
            let ok = match g.structure() {
                GS::ControlledPhase => matches!(class, KernelClass::ControlledPhase { .. }),
                GS::Diagonal => matches!(class, KernelClass::Diagonal { .. }),
                GS::Permutation => matches!(class, KernelClass::Permutation { .. }),
                GS::SingleQubitDense => matches!(class, KernelClass::SingleQubitDense { .. }),
                GS::ControlledDense => matches!(
                    class,
                    KernelClass::TwoQubitDense {
                        control: Some(_),
                        ..
                    }
                ),
                GS::Dense => true,
            };
            assert!(ok, "{} classified as {class:?}", g.name());
        }
    }

    #[test]
    fn for_gate_agrees_with_matrix_classification() {
        for (g, _) in all_test_gates() {
            let direct = KernelClass::for_gate(&g);
            let scanned = KernelClass::classify(&g.matrix());
            match (&direct, &scanned) {
                (
                    KernelClass::TwoQubitDense { m: a, .. },
                    KernelClass::TwoQubitDense { m: b, .. },
                ) => {
                    for (x, y) in a.iter().zip(b.iter()) {
                        assert!(x.approx_eq(*y, 1e-15), "{} entries differ", g.name());
                    }
                }
                _ => assert_eq!(direct, scanned, "{} classes differ", g.name()),
            }
        }
    }

    #[test]
    fn degenerate_parameters_specialize_further() {
        // Rz(0) is the identity: a controlled phase of 1.
        assert_eq!(
            KernelClass::classify(&Gate::Rz(0.0).matrix()),
            KernelClass::ControlledPhase {
                phase: Complex::ONE
            }
        );
        // Non-square and non-power-of-two matrices stay general.
        assert!(matches!(
            KernelClass::classify(&Matrix::zeros(2, 4)),
            KernelClass::General(_)
        ));
    }

    #[test]
    fn non_unitary_kraus_operators_classify_safely() {
        // Amplitude-damping K0 = diag(1, √(1−γ)) is diagonal; K1 has an
        // empty column and must fall through to a dense class.
        let g = 0.3f64;
        let k0 = Matrix::mat2(
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::real((1.0 - g).sqrt()),
        );
        let k1 = Matrix::mat2(
            Complex::ZERO,
            Complex::real(g.sqrt()),
            Complex::ZERO,
            Complex::ZERO,
        );
        // diag(1, f) is "identity except a factor on |1⟩" — the controlled
        // phase kernel applies it even though f is not a unit phase.
        assert!(matches!(
            KernelClass::classify(&k0),
            KernelClass::ControlledPhase { .. }
        ));
        assert!(matches!(
            KernelClass::classify(&k1),
            KernelClass::SingleQubitDense { .. }
        ));
        for k in [k0, k1] {
            let mut fast = scrambled_state(3);
            let mut slow = fast.clone();
            apply_op(&mut fast, 3, &k, &[1]);
            apply_op_generic(&mut slow, 3, &k, &[1]);
            for (a, b) in fast.iter().zip(&slow) {
                assert!(a.approx_eq(*b, 1e-12));
            }
        }
    }

    #[test]
    fn kernel_matches_embedded_matrix() {
        // Random-ish 3-qubit circuit applied both ways.
        let n = 3;
        let ops: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::H, vec![0]),
            (Gate::Cx, vec![0, 2]),
            (Gate::Ry(0.7), vec![1]),
            (Gate::Cp(1.1), vec![2, 1]),
            (Gate::Swap, vec![0, 1]),
        ];
        let mut amps = zero_state(n);
        let mut u = Matrix::identity(1 << n);
        for (g, qs) in &ops {
            apply_op(&mut amps, n, &g.matrix(), qs);
            u = qt_circuit::embed(&g.matrix(), qs, n).mul(&u);
        }
        for (i, a) in amps.iter().enumerate() {
            assert!(a.approx_eq(u[(i, 0)], 1e-12), "amp {i} differs");
        }
    }

    #[test]
    fn expectation_matches_direct() {
        let n = 2;
        let mut amps = zero_state(n);
        apply_op(&mut amps, n, &Gate::H.matrix(), &[0]);
        apply_op(&mut amps, n, &Gate::Cx.matrix(), &[0, 1]);
        // Bell state: ⟨Z0 Z1⟩ = 1, ⟨Z0⟩ = 0.
        let zz = qt_math::pauli::z2().kron(&qt_math::pauli::z2());
        let e = expectation_local(&amps, n, &zz, &[0, 1]);
        assert!(e.approx_eq(Complex::ONE, 1e-12));
        let z = qt_math::pauli::z2();
        let e0 = expectation_local(&amps, n, &z, &[0]);
        assert!(e0.approx_eq(Complex::ZERO, 1e-12));
    }

    #[test]
    fn marginals_sum_to_one() {
        let n = 3;
        let mut amps = zero_state(n);
        for q in 0..n {
            apply_op(&mut amps, n, &Gate::H.matrix(), &[q]);
        }
        let m = marginal_probabilities(&amps, &[1, 2]);
        assert_eq!(m.len(), 4);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((m[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn probability_of_bit_on_plus_state() {
        let mut amps = zero_state(1);
        apply_op(&mut amps, 1, &Gate::H.matrix(), &[0]);
        assert!((probability_of_bit(&amps, 0, 0) - 0.5).abs() < 1e-12);
        assert!((probability_of_bit(&amps, 0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn operand_order_is_respected() {
        // CX with control=1, target=0: |10⟩ → |11⟩.
        let n = 2;
        let mut amps = zero_state(n);
        apply_op(&mut amps, n, &Gate::X.matrix(), &[1]); // |10⟩ (index 2)
        apply_op(&mut amps, n, &Gate::Cx.matrix(), &[1, 0]);
        assert!(amps[3].approx_eq(Complex::ONE, 1e-12));
    }
}
