//! Low-level gate-application kernels shared by the state-vector and
//! density-matrix engines.
//!
//! Amplitude arrays are indexed with qubit 0 as the least-significant bit.
//! A gate on operand list `qs` uses `qs[0]` as the least-significant bit of
//! its local index (matching [`qt_circuit::Gate::matrix`]).

use qt_math::{Complex, Matrix};

/// Applies a `2^k × 2^k` operator `u` to the amplitudes `amps` of an
/// `n`-qubit register on the operand qubits `qs`.
///
/// `u` need not be unitary (Kraus operators are applied with the same
/// kernel).
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn apply_op(amps: &mut [Complex], n: usize, u: &Matrix, qs: &[usize]) {
    let k = qs.len();
    assert_eq!(u.rows(), 1 << k, "operator does not match operand count");
    assert_eq!(
        amps.len(),
        1 << n,
        "amplitude array does not match register"
    );
    debug_assert!(qs.iter().all(|&q| q < n));

    let dim_local = 1usize << k;
    let mut sorted = qs.to_vec();
    sorted.sort_unstable();

    let mut gathered = vec![Complex::ZERO; dim_local];
    // Precompute, for each local index l, the offset to OR into the base.
    let mut offsets = vec![0usize; dim_local];
    for (l, off) in offsets.iter_mut().enumerate() {
        for (pos, &q) in qs.iter().enumerate() {
            if (l >> pos) & 1 == 1 {
                *off |= 1 << q;
            }
        }
    }

    let outer = 1usize << (n - k);
    for i in 0..outer {
        // Expand i into a full index with zero bits at the operand positions.
        let mut base = i;
        for &q in &sorted {
            let low = base & ((1usize << q) - 1);
            base = ((base >> q) << (q + 1)) | low;
        }
        for l in 0..dim_local {
            gathered[l] = amps[base | offsets[l]];
        }
        for r in 0..dim_local {
            let mut acc = Complex::ZERO;
            for (c, &g) in gathered.iter().enumerate() {
                let m = u[(r, c)];
                if m != Complex::ZERO {
                    acc += m * g;
                }
            }
            amps[base | offsets[r]] = acc;
        }
    }
}

/// Computes `⟨ψ| Op_{qs} |ψ⟩` for a local operator without copying the state.
pub fn expectation_local(amps: &[Complex], n: usize, op: &Matrix, qs: &[usize]) -> Complex {
    let k = qs.len();
    assert_eq!(op.rows(), 1 << k);
    assert_eq!(amps.len(), 1 << n);

    let dim_local = 1usize << k;
    let mut sorted = qs.to_vec();
    sorted.sort_unstable();
    let mut offsets = vec![0usize; dim_local];
    for (l, off) in offsets.iter_mut().enumerate() {
        for (pos, &q) in qs.iter().enumerate() {
            if (l >> pos) & 1 == 1 {
                *off |= 1 << q;
            }
        }
    }
    let mut acc = Complex::ZERO;
    let outer = 1usize << (n - k);
    for i in 0..outer {
        let mut base = i;
        for &q in &sorted {
            let low = base & ((1usize << q) - 1);
            base = ((base >> q) << (q + 1)) | low;
        }
        for r in 0..dim_local {
            let ar = amps[base | offsets[r]];
            if ar == Complex::ZERO {
                continue;
            }
            for c in 0..dim_local {
                let m = op[(r, c)];
                if m != Complex::ZERO {
                    acc += ar.conj() * m * amps[base | offsets[c]];
                }
            }
        }
    }
    acc
}

/// Sums `|amps|²` over all indices whose bit `q` equals `bit`.
pub fn probability_of_bit(amps: &[Complex], q: usize, bit: usize) -> f64 {
    let mask = 1usize << q;
    let want = bit << q;
    amps.iter()
        .enumerate()
        .filter(|(i, _)| i & mask == want)
        .map(|(_, a)| a.norm_sqr())
        .sum()
}

/// Marginal probability vector over `subset` (output bit `i` is `subset[i]`).
pub fn marginal_probabilities(amps: &[Complex], subset: &[usize]) -> Vec<f64> {
    let mut out = vec![0.0; 1 << subset.len()];
    for (idx, a) in amps.iter().enumerate() {
        let p = a.norm_sqr();
        if p == 0.0 {
            continue;
        }
        let mut key = 0usize;
        for (pos, &q) in subset.iter().enumerate() {
            if (idx >> q) & 1 == 1 {
                key |= 1 << pos;
            }
        }
        out[key] += p;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_circuit::Gate;

    fn zero_state(n: usize) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; 1 << n];
        v[0] = Complex::ONE;
        v
    }

    #[test]
    fn kernel_matches_embedded_matrix() {
        // Random-ish 3-qubit circuit applied both ways.
        let n = 3;
        let ops: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::H, vec![0]),
            (Gate::Cx, vec![0, 2]),
            (Gate::Ry(0.7), vec![1]),
            (Gate::Cp(1.1), vec![2, 1]),
            (Gate::Swap, vec![0, 1]),
        ];
        let mut amps = zero_state(n);
        let mut u = Matrix::identity(1 << n);
        for (g, qs) in &ops {
            apply_op(&mut amps, n, &g.matrix(), qs);
            u = qt_circuit::embed(&g.matrix(), qs, n).mul(&u);
        }
        for (i, a) in amps.iter().enumerate() {
            assert!(a.approx_eq(u[(i, 0)], 1e-12), "amp {i} differs");
        }
    }

    #[test]
    fn expectation_matches_direct() {
        let n = 2;
        let mut amps = zero_state(n);
        apply_op(&mut amps, n, &Gate::H.matrix(), &[0]);
        apply_op(&mut amps, n, &Gate::Cx.matrix(), &[0, 1]);
        // Bell state: ⟨Z0 Z1⟩ = 1, ⟨Z0⟩ = 0.
        let zz = qt_math::pauli::z2().kron(&qt_math::pauli::z2());
        let e = expectation_local(&amps, n, &zz, &[0, 1]);
        assert!(e.approx_eq(Complex::ONE, 1e-12));
        let z = qt_math::pauli::z2();
        let e0 = expectation_local(&amps, n, &z, &[0]);
        assert!(e0.approx_eq(Complex::ZERO, 1e-12));
    }

    #[test]
    fn marginals_sum_to_one() {
        let n = 3;
        let mut amps = zero_state(n);
        for q in 0..n {
            apply_op(&mut amps, n, &Gate::H.matrix(), &[q]);
        }
        let m = marginal_probabilities(&amps, &[1, 2]);
        assert_eq!(m.len(), 4);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((m[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn probability_of_bit_on_plus_state() {
        let mut amps = zero_state(1);
        apply_op(&mut amps, 1, &Gate::H.matrix(), &[0]);
        assert!((probability_of_bit(&amps, 0, 0) - 0.5).abs() < 1e-12);
        assert!((probability_of_bit(&amps, 0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn operand_order_is_respected() {
        // CX with control=1, target=0: |10⟩ → |11⟩.
        let n = 2;
        let mut amps = zero_state(n);
        apply_op(&mut amps, n, &Gate::X.matrix(), &[1]); // |10⟩ (index 2)
        apply_op(&mut amps, n, &Gate::Cx.matrix(), &[1, 0]);
        assert!(amps[3].approx_eq(Complex::ONE, 1e-12));
    }
}
