//! Pure-state simulation.

use crate::kernel;
use qt_circuit::{Circuit, Instruction};
use qt_math::{Complex, Matrix, PauliString};
use rand::{Rng, RngExt};

/// Maximum register size accepted by the state-vector engine.
pub const MAX_QUBITS: usize = 26;

/// A normalized pure state of `n` qubits.
///
/// # Example
///
/// ```
/// use qt_sim::StateVector;
/// use qt_circuit::Circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let sv = StateVector::from_circuit(&bell);
/// let p = sv.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12 && (p[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_QUBITS`.
    pub fn zero(n: usize) -> Self {
        assert!(n <= MAX_QUBITS, "register too large: {n} qubits");
        let mut amps = vec![Complex::ZERO; 1 << n];
        amps[0] = Complex::ONE;
        StateVector { n, amps }
    }

    /// Builds a state from raw amplitudes (must have power-of-two length).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the norm is not ≈ 1.
    pub fn from_amplitudes(amps: Vec<Complex>) -> Self {
        let len = amps.len();
        assert!(len.is_power_of_two(), "length must be a power of two");
        let n = len.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-8,
            "state vector is not normalized (norm² = {norm})"
        );
        StateVector { n, amps }
    }

    /// Runs `circ` (noiselessly) on `|0…0⟩`.
    pub fn from_circuit(circ: &Circuit) -> Self {
        let mut sv = StateVector::zero(circ.n_qubits());
        sv.apply_circuit(circ);
        sv
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The amplitude array (index bit `q` = qubit `q`).
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Mutable access to the amplitudes.
    ///
    /// The caller is responsible for keeping the state normalized.
    pub fn amplitudes_mut(&mut self) -> &mut [Complex] {
        &mut self.amps
    }

    /// Applies a raw operator matrix on the given qubits, dispatching to the
    /// specialized kernel matching the matrix's structure.
    pub fn apply_op(&mut self, op: &Matrix, qubits: &[usize]) {
        kernel::apply_op(&mut self.amps, self.n, op, qubits);
    }

    /// Applies a pre-classified operator (see [`kernel::KernelClass`]);
    /// callers that apply the same gate many times classify once and reuse
    /// the class.
    pub fn apply_class(&mut self, class: &kernel::KernelClass, qubits: &[usize]) {
        kernel::apply_classified(&mut self.amps, self.n, class, qubits);
    }

    /// Applies one instruction via the gate's kernel class (no matrix
    /// allocation for diagonal, permutation and controlled-phase gates).
    pub fn apply_instruction(&mut self, instr: &Instruction) {
        let class = kernel::KernelClass::for_gate(&instr.gate);
        kernel::apply_classified(&mut self.amps, self.n, &class, &instr.qubits);
    }

    /// Applies a whole circuit.
    pub fn apply_circuit(&mut self, circ: &Circuit) {
        assert!(circ.n_qubits() <= self.n, "circuit does not fit register");
        for instr in circ.instructions() {
            self.apply_instruction(instr);
        }
    }

    /// The Born-rule probability vector over all `2^n` outcomes.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Marginal probabilities over `subset` (output bit `i` = `subset[i]`).
    pub fn marginal_probabilities(&self, subset: &[usize]) -> Vec<f64> {
        kernel::marginal_probabilities(&self.amps, subset)
    }

    /// Expectation value of a Pauli string.
    pub fn expectation_pauli(&self, p: &PauliString) -> Complex {
        assert_eq!(p.len(), self.n, "pauli string length mismatch");
        let support = p.support();
        if support.is_empty() {
            return p.phase();
        }
        let mut op = Matrix::identity(1);
        for &q in support.iter().rev() {
            op = op.kron(&p.pauli(q).matrix());
        }
        kernel::expectation_local(&self.amps, self.n, &op, &support) * p.phase()
    }

    /// Expectation of a local operator on `qubits`.
    pub fn expectation_local(&self, op: &Matrix, qubits: &[usize]) -> Complex {
        kernel::expectation_local(&self.amps, self.n, op, qubits)
    }

    /// Probability that qubit `q` reads `bit` in the computational basis.
    pub fn probability_of_bit(&self, q: usize, bit: usize) -> f64 {
        kernel::probability_of_bit(&self.amps, q, bit)
    }

    /// Projects qubit `q` onto `bit` and renormalizes. Returns the
    /// probability of that outcome.
    ///
    /// If the outcome has zero probability the state is left unchanged and
    /// `0.0` is returned.
    pub fn collapse(&mut self, q: usize, bit: usize) -> f64 {
        let p = self.probability_of_bit(q, bit);
        if p <= 0.0 {
            return 0.0;
        }
        let mask = 1usize << q;
        let want = bit << q;
        let scale = 1.0 / p.sqrt();
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & mask == want {
                *a = a.scale(scale);
            } else {
                *a = Complex::ZERO;
            }
        }
        p
    }

    /// Measures qubit `q` in the computational basis, collapsing the state.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> usize {
        let p0 = self.probability_of_bit(q, 0);
        let bit = if rng.random::<f64>() < p0 { 0 } else { 1 };
        self.collapse(q, bit);
        bit
    }

    /// Resets `qubits` to the pure state `ket` (dimension `2^k`), tracing out
    /// their previous contents by a projective Z measurement.
    ///
    /// This realizes the reset channel exactly in expectation over the
    /// measurement randomness — the workhorse of QSPC's wire replacement.
    pub fn reset_to_ket<R: Rng + ?Sized>(
        &mut self,
        qubits: &[usize],
        ket: &[Complex],
        rng: &mut R,
    ) {
        assert_eq!(ket.len(), 1 << qubits.len(), "ket dimension mismatch");
        // Collapse each qubit, then map the observed basis state to |0…0⟩.
        for &q in qubits {
            let bit = self.measure(q, rng);
            if bit == 1 {
                self.apply_op(&qt_math::pauli::x2(), &[q]);
            }
        }
        // Apply a unitary whose first column is `ket`.
        let u = unitary_with_first_column(ket);
        self.apply_op(&u, qubits);
    }

    /// The squared norm (should be 1 up to rounding).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Samples `shots` outcomes over `subset`, returning counts indexed by
    /// the subset bit pattern.
    pub fn sample_counts<R: Rng + ?Sized>(
        &self,
        subset: &[usize],
        shots: usize,
        rng: &mut R,
    ) -> Vec<u64> {
        let probs = self.marginal_probabilities(subset);
        sample_from_probs(&probs, shots, rng)
    }
}

/// Samples `shots` outcomes from a probability vector.
pub fn sample_from_probs<R: Rng + ?Sized>(probs: &[f64], shots: usize, rng: &mut R) -> Vec<u64> {
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for &p in probs {
        acc += p.max(0.0);
        cdf.push(acc);
    }
    let total = acc;
    let mut counts = vec![0u64; probs.len()];
    for _ in 0..shots {
        let r: f64 = rng.random::<f64>() * total;
        let idx = cdf.partition_point(|&c| c < r).min(probs.len() - 1);
        counts[idx] += 1;
    }
    counts
}

/// Builds a unitary whose first column is `ket` via Gram–Schmidt over the
/// computational basis.
///
/// # Panics
///
/// Panics if `ket` is (numerically) zero.
pub fn unitary_with_first_column(ket: &[Complex]) -> Matrix {
    let d = ket.len();
    let mut cols: Vec<Vec<Complex>> = Vec::with_capacity(d);
    let norm = ket.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    assert!(norm > 1e-12, "cannot build unitary from zero vector");
    cols.push(ket.iter().map(|a| a.scale(1.0 / norm)).collect());
    for basis in 0..d {
        if cols.len() == d {
            break;
        }
        let mut v = vec![Complex::ZERO; d];
        v[basis] = Complex::ONE;
        for c in &cols {
            let overlap: Complex = c.iter().zip(&v).map(|(a, b)| a.conj() * *b).sum();
            for (vi, ci) in v.iter_mut().zip(c) {
                *vi -= *ci * overlap;
            }
        }
        let vnorm = v.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        if vnorm > 1e-9 {
            cols.push(v.iter().map(|a| a.scale(1.0 / vnorm)).collect());
        }
    }
    assert_eq!(cols.len(), d, "failed to complete unitary basis");
    let mut u = Matrix::zeros(d, d);
    for (j, c) in cols.iter().enumerate() {
        for (i, &a) in c.iter().enumerate() {
            u[(i, j)] = a;
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_math::states::PrepState;
    use qt_math::Pauli;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ghz_probabilities() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let sv = StateVector::from_circuit(&c);
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[7] - 0.5).abs() < 1e-12);
        assert!(p[1].abs() < 1e-12);
    }

    #[test]
    fn pauli_expectations_on_ghz() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let sv = StateVector::from_circuit(&c);
        let xxx = PauliString::from_paulis(vec![Pauli::X; 3]);
        assert!(sv.expectation_pauli(&xxx).approx_eq(Complex::ONE, 1e-12));
        let zzi = PauliString::from_paulis(vec![Pauli::Z, Pauli::Z, Pauli::I]);
        assert!(sv.expectation_pauli(&zzi).approx_eq(Complex::ONE, 1e-12));
        let z = PauliString::single(3, 0, Pauli::Z);
        assert!(sv.expectation_pauli(&z).approx_eq(Complex::ZERO, 1e-12));
    }

    #[test]
    fn collapse_renormalizes() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut sv = StateVector::from_circuit(&c);
        let p = sv.collapse(0, 1);
        assert!((p - 0.5).abs() < 1e-12);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
        // After collapsing qubit 0 to 1 the Bell state is |11⟩.
        assert!(sv.probabilities()[3] > 1.0 - 1e-12);
    }

    #[test]
    fn reset_prepares_requested_state() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        for s in PrepState::ALL {
            let mut sv = StateVector::from_circuit(&c);
            sv.reset_to_ket(&[0], &s.ket(), &mut rng);
            // Qubit 0 must now be exactly in state s (pure).
            let rho = [
                sv.expectation_pauli(&PauliString::single(2, 0, Pauli::X)),
                sv.expectation_pauli(&PauliString::single(2, 0, Pauli::Y)),
                sv.expectation_pauli(&PauliString::single(2, 0, Pauli::Z)),
            ];
            let want = qt_math::states::bloch_vector(&s.projector());
            for (got, want) in rho.iter().zip(want) {
                assert!(
                    got.approx_eq(Complex::real(want), 1e-10),
                    "reset to {s} wrong"
                );
            }
        }
    }

    #[test]
    fn unitary_first_column_is_unitary() {
        for s in PrepState::ALL {
            let u = unitary_with_first_column(&s.ket());
            assert!(u.is_unitary(1e-10));
            assert!(u[(0, 0)].approx_eq(s.ket()[0], 1e-12));
            assert!(u[(1, 0)].approx_eq(s.ket()[1], 1e-12));
        }
        // Also a 2-qubit (4-dim) example.
        let bell = vec![
            Complex::real(std::f64::consts::FRAC_1_SQRT_2),
            Complex::ZERO,
            Complex::ZERO,
            Complex::real(std::f64::consts::FRAC_1_SQRT_2),
        ];
        let u = unitary_with_first_column(&bell);
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn sampling_concentrates_on_support() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = Circuit::new(2);
        c.x(1);
        let sv = StateVector::from_circuit(&c);
        let counts = sv.sample_counts(&[0, 1], 100, &mut rng);
        assert_eq!(counts[2], 100); // |q1 q0⟩ = |10⟩ → subset pattern 0b10
    }

    #[test]
    fn measure_statistics_roughly_match() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ones = 0;
        for _ in 0..2000 {
            let mut sv = StateVector::zero(1);
            sv.apply_op(&qt_circuit::Gate::H.matrix(), &[0]);
            ones += sv.measure(0, &mut rng);
        }
        let f = ones as f64 / 2000.0;
        assert!((f - 0.5).abs() < 0.05, "measured frequency {f}");
    }
}
