//! First-class simulation backends and the scoped-thread helpers behind
//! every parallel execution path in the workspace.
//!
//! The [`Backend`] value a caller configures (exact density matrix,
//! trajectories, or automatic selection by register size) resolves per
//! program to a concrete [`BackendEngine`] — the object that turns a noisy
//! program into an outcome distribution. Everything above this module
//! (executors, QSPC checks, the tracing framework, baselines, benches)
//! speaks [`crate::Runner`]; everything below it is an engine.
//!
//! ```text
//! Runner::run / run_batch
//!         │
//!         ▼
//! Backend::resolve_for(n, noise, profile)
//!         ├─► StabilizerEngine          (Clifford + Pauli noise, O(n²)/gate)
//!         ├─► SparseStatevectorEngine   (low-entanglement pure states)
//!         ├─► DensityMatrixEngine       (exact mixed state, small n)
//!         ├─► StatevectorEngine         (dense pure state, mid n)
//!         └─► TrajectoryEngine          (sampled, large n)
//! ```
//!
//! Engine choice never changes results — only cost. Every engine is exact
//! for the programs it admits, and inadmissible programs transparently fall
//! back to the density matrix, so `Backend::Auto` is a pure performance
//! decision driven by the one-pass [`ProgramProfile`] classifier.

use crate::classify::ProgramProfile;
use crate::density::DensityMatrix;
use crate::noise::NoiseModel;
use crate::program::{Op, Program};
use crate::sparse::{sparse_admissible, sparse_distribution, SparseState};
use crate::stabilizer::{stabilizer_admissible, stabilizer_distribution, StabilizerState};
use crate::statevector::{self, StateVector};
use crate::trajectory::{self, TrajectoryConfig};
use qt_dist::Distribution;
use qt_math::Matrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A deterministic, checkpointable simulation state — the fork/snapshot
/// capability behind trie-scheduled batch execution (see [`crate::trie`]).
///
/// Contract: applying the ops of a program in order to a fresh snapshot
/// and reading [`EngineState::raw_distribution`] must be **bit-identical**
/// to the owning engine's [`BackendEngine::raw_distribution`] for that
/// program, and [`EngineState::fork`] must be an exact copy — together
/// these make prefix-shared execution indistinguishable from per-job runs.
pub trait EngineState: Send {
    /// Applies one program op (gate + attached noise, ideal gate, or
    /// reset).
    fn apply_op(&mut self, op: &Op);

    /// Checkpoints the state (exact copy).
    fn fork(&self) -> Box<dyn EngineState>;

    /// The gate-noisy outcome distribution over `measured` at this point
    /// of the evolution (bit `i` of the index = `measured[i]`), before
    /// readout error.
    fn raw_distribution(&self, measured: &[usize]) -> Distribution;
}

/// A simulation engine: anything that can turn a noisy [`Program`] into a
/// gate-noisy outcome distribution (readout error is applied above, by the
/// executor, because it needs original qubit identities).
pub trait BackendEngine: Send + Sync + std::fmt::Debug {
    /// Engine name for diagnostics and reports.
    fn name(&self) -> &'static str;

    /// The gate-noisy distribution over `measured` (bit `i` of the outcome
    /// index = `measured[i]`), **before** readout error.
    fn raw_distribution(
        &self,
        program: &Program,
        noise: &NoiseModel,
        measured: &[usize],
    ) -> Distribution;

    /// The engine's fork-capability class for a job with the given shape,
    /// or `None` when the engine must run whole jobs (stochastic
    /// trajectory sampling draws one RNG stream per program and cannot
    /// split mid-evolution). Jobs with equal `(register size, class)` may
    /// share one [`EngineState`] evolution; the class therefore encodes
    /// every state-representation choice the engine makes (pure state vs
    /// density matrix vs stabilizer tableau vs sparse map), which is why it
    /// takes the full [`ProgramProfile`] rather than just the reset flag.
    fn fork_class(&self, _noise: &NoiseModel, _profile: &ProgramProfile) -> Option<u8> {
        None
    }

    /// A fresh `|0…0⟩` [`EngineState`] for a fork class previously
    /// returned by [`BackendEngine::fork_class`], or `None` for engines
    /// without the capability. The noise model arrives shared (`Arc`) so
    /// that snapshot-heavy walks (one per independent subtree, one per
    /// budget-forced replay) do not clone channel tables.
    fn snapshot(
        &self,
        _n_qubits: usize,
        _noise: &Arc<NoiseModel>,
        _class: u8,
    ) -> Option<Box<dyn EngineState>> {
        None
    }
}

/// Applies one program op to a density matrix exactly as
/// [`density_evolution`] does — the single definition both the serial
/// engine and the trie scheduler's [`EngineState`] share, so their
/// results are bit-identical by construction.
pub(crate) fn apply_density_op(rho: &mut DensityMatrix, op: &Op, noise: &NoiseModel) {
    match op {
        Op::Gate(instr) => {
            rho.apply_instruction(instr);
            for (qs, ch) in noise.channels_for(instr) {
                rho.apply_channel(ch, &qs);
            }
        }
        Op::IdealGate(instr) => rho.apply_instruction(instr),
        Op::Reset { qubits, ket } => {
            let rho_small = ket_to_density(ket);
            rho.reset_qubits(qubits, &rho_small);
        }
    }
}

/// Wraps a dense marginal-probability vector as a [`Distribution`] — the
/// adapter every dense engine readout shares.
fn dense_raw(probs: Vec<f64>, measured: &[usize]) -> Distribution {
    Distribution::try_from_probs(measured.len(), probs)
        .expect("dense marginal fits its measured bit count")
}

/// The [`EngineState`] of the exact density-matrix engine.
#[derive(Debug, Clone)]
struct DensityState {
    rho: DensityMatrix,
    noise: Arc<NoiseModel>,
}

impl EngineState for DensityState {
    fn apply_op(&mut self, op: &Op) {
        apply_density_op(&mut self.rho, op, &self.noise);
    }

    fn fork(&self) -> Box<dyn EngineState> {
        Box::new(self.clone())
    }

    fn raw_distribution(&self, measured: &[usize]) -> Distribution {
        dense_raw(self.rho.marginal_probabilities(measured), measured)
    }
}

/// The [`EngineState`] of the exact pure-state engine (reset-free
/// programs under gate-ideal noise only — see [`StatevectorEngine`]).
#[derive(Debug, Clone)]
struct PureState {
    sv: StateVector,
}

impl EngineState for PureState {
    fn apply_op(&mut self, op: &Op) {
        match op {
            Op::Gate(i) | Op::IdealGate(i) => self.sv.apply_instruction(i),
            Op::Reset { .. } => {
                unreachable!("pure fork class excludes programs with resets")
            }
        }
    }

    fn fork(&self) -> Box<dyn EngineState> {
        Box::new(self.clone())
    }

    fn raw_distribution(&self, measured: &[usize]) -> Distribution {
        dense_raw(self.sv.marginal_probabilities(measured), measured)
    }
}

/// Exact mixed-state evolution: every Kraus channel applied in full.
#[derive(Debug, Clone, Copy, Default)]
pub struct DensityMatrixEngine;

impl BackendEngine for DensityMatrixEngine {
    fn name(&self) -> &'static str {
        "density-matrix"
    }

    fn raw_distribution(
        &self,
        program: &Program,
        noise: &NoiseModel,
        measured: &[usize],
    ) -> Distribution {
        dense_raw(
            density_evolution(program, noise).marginal_probabilities(measured),
            measured,
        )
    }

    fn fork_class(&self, _noise: &NoiseModel, _profile: &ProgramProfile) -> Option<u8> {
        // One representation for every program shape: the mixed state.
        Some(FORK_CLASS_DM)
    }

    fn snapshot(
        &self,
        n_qubits: usize,
        noise: &Arc<NoiseModel>,
        class: u8,
    ) -> Option<Box<dyn EngineState>> {
        debug_assert_eq!(class, FORK_CLASS_DM);
        Some(Box::new(DensityState {
            rho: DensityMatrix::zero(n_qubits),
            noise: Arc::clone(noise),
        }))
    }
}

/// Fork class of a density-matrix representation.
const FORK_CLASS_DM: u8 = 0;
/// Fork class of a pure-state representation.
const FORK_CLASS_PURE: u8 = 1;
/// Fork class of a stabilizer-tableau representation.
const FORK_CLASS_STABILIZER: u8 = 2;
/// Fork class of a sparse-statevector representation.
const FORK_CLASS_SPARSE: u8 = 3;

/// Exact pure-state evolution for reset-free programs under gate-ideal
/// noise (`2^n` amplitudes instead of the density matrix's `4^n`), with a
/// transparent density-matrix fallback for programs that need mixed
/// states (resets) or whose noise model attaches gate channels. Readout
/// error still applies (above, by the executor) — the engine choice only
/// concerns gate evolution.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatevectorEngine;

impl StatevectorEngine {
    /// Whether a program/noise pair admits the pure-state representation.
    fn pure_eligible(noise: &NoiseModel, has_resets: bool) -> bool {
        !has_resets && noise.gates_are_ideal()
    }
}

impl EngineState for StabilizerState {
    fn apply_op(&mut self, op: &Op) {
        StabilizerState::apply_op(self, op);
    }

    fn fork(&self) -> Box<dyn EngineState> {
        Box::new(StabilizerState::fork(self))
    }

    fn raw_distribution(&self, measured: &[usize]) -> Distribution {
        StabilizerState::raw_distribution(self, measured)
    }
}

impl EngineState for SparseState {
    fn apply_op(&mut self, op: &Op) {
        SparseState::apply_op(self, op);
    }

    fn fork(&self) -> Box<dyn EngineState> {
        Box::new(SparseState::fork(self))
    }

    fn raw_distribution(&self, measured: &[usize]) -> Distribution {
        SparseState::raw_distribution(self, measured)
    }
}

/// CHP-style stabilizer-tableau evolution for all-Clifford, reset-free
/// programs whose gate noise is absent or a Pauli mixture (mixed exactly,
/// without trajectories — see [`crate::stabilizer`]), with a transparent
/// density-matrix fallback for everything else. `O(n²)` per gate instead
/// of `O(4^n)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StabilizerEngine;

impl BackendEngine for StabilizerEngine {
    fn name(&self) -> &'static str {
        "stabilizer"
    }

    fn raw_distribution(
        &self,
        program: &Program,
        noise: &NoiseModel,
        measured: &[usize],
    ) -> Distribution {
        let profile = ProgramProfile::of(program);
        if stabilizer_admissible(noise, &profile) {
            let noise = Arc::new(noise.clone());
            stabilizer_distribution(program, &noise, measured)
        } else {
            dense_raw(
                density_evolution(program, noise).marginal_probabilities(measured),
                measured,
            )
        }
    }

    fn fork_class(&self, noise: &NoiseModel, profile: &ProgramProfile) -> Option<u8> {
        Some(if stabilizer_admissible(noise, profile) {
            FORK_CLASS_STABILIZER
        } else {
            FORK_CLASS_DM
        })
    }

    fn snapshot(
        &self,
        n_qubits: usize,
        noise: &Arc<NoiseModel>,
        class: u8,
    ) -> Option<Box<dyn EngineState>> {
        Some(if class == FORK_CLASS_STABILIZER {
            Box::new(StabilizerState::zero(n_qubits, Arc::clone(noise)))
        } else {
            Box::new(DensityState {
                rho: DensityMatrix::zero(n_qubits),
                noise: Arc::clone(noise),
            })
        })
    }
}

/// Sparse pure-state evolution for reset-free programs under gate-ideal
/// noise: only nonzero amplitudes are stored, so cost scales with the
/// superposition a program actually builds, not the register width (see
/// [`crate::sparse`]). Densifies in place past half density; falls back to
/// the density matrix for programs that need mixed states.
#[derive(Debug, Clone, Copy, Default)]
pub struct SparseStatevectorEngine;

impl BackendEngine for SparseStatevectorEngine {
    fn name(&self) -> &'static str {
        "sparse-statevector"
    }

    fn raw_distribution(
        &self,
        program: &Program,
        noise: &NoiseModel,
        measured: &[usize],
    ) -> Distribution {
        let profile = ProgramProfile::of(program);
        if sparse_admissible(noise, &profile) {
            sparse_distribution(program, measured)
        } else {
            dense_raw(
                density_evolution(program, noise).marginal_probabilities(measured),
                measured,
            )
        }
    }

    fn fork_class(&self, noise: &NoiseModel, profile: &ProgramProfile) -> Option<u8> {
        Some(if sparse_admissible(noise, profile) {
            FORK_CLASS_SPARSE
        } else {
            FORK_CLASS_DM
        })
    }

    fn snapshot(
        &self,
        n_qubits: usize,
        noise: &Arc<NoiseModel>,
        class: u8,
    ) -> Option<Box<dyn EngineState>> {
        Some(if class == FORK_CLASS_SPARSE {
            Box::new(SparseState::zero(n_qubits))
        } else {
            Box::new(DensityState {
                rho: DensityMatrix::zero(n_qubits),
                noise: Arc::clone(noise),
            })
        })
    }
}

impl BackendEngine for StatevectorEngine {
    fn name(&self) -> &'static str {
        "statevector"
    }

    fn raw_distribution(
        &self,
        program: &Program,
        noise: &NoiseModel,
        measured: &[usize],
    ) -> Distribution {
        if Self::pure_eligible(noise, program.has_resets()) {
            let mut sv = StateVector::zero(program.n_qubits());
            for op in program.ops() {
                if let Op::Gate(i) | Op::IdealGate(i) = op {
                    sv.apply_instruction(i);
                }
            }
            dense_raw(sv.marginal_probabilities(measured), measured)
        } else {
            dense_raw(
                density_evolution(program, noise).marginal_probabilities(measured),
                measured,
            )
        }
    }

    fn fork_class(&self, noise: &NoiseModel, profile: &ProgramProfile) -> Option<u8> {
        Some(if Self::pure_eligible(noise, profile.has_resets) {
            FORK_CLASS_PURE
        } else {
            FORK_CLASS_DM
        })
    }

    fn snapshot(
        &self,
        n_qubits: usize,
        noise: &Arc<NoiseModel>,
        class: u8,
    ) -> Option<Box<dyn EngineState>> {
        Some(if class == FORK_CLASS_PURE {
            Box::new(PureState {
                sv: StateVector::zero(n_qubits),
            })
        } else {
            Box::new(DensityState {
                rho: DensityMatrix::zero(n_qubits),
                noise: Arc::clone(noise),
            })
        })
    }
}

/// Monte-Carlo wave-function sampling, fanned out over scoped threads.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrajectoryEngine {
    /// Trajectory count, seed and worker budget.
    pub config: TrajectoryConfig,
}

impl BackendEngine for TrajectoryEngine {
    fn name(&self) -> &'static str {
        "trajectory"
    }

    fn raw_distribution(
        &self,
        program: &Program,
        noise: &NoiseModel,
        measured: &[usize],
    ) -> Distribution {
        trajectory::run_distribution(program, noise, measured, &self.config)
    }
}

/// Simulation backend choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// Exact density-matrix simulation up to the given register size, then
    /// fall back to trajectories.
    Auto {
        /// Largest register simulated exactly.
        dm_max_qubits: usize,
        /// Trajectory settings for larger registers.
        trajectories: TrajectoryConfig,
    },
    /// Always use the density-matrix engine.
    DensityMatrix,
    /// Exact pure-state engine for reset-free programs under gate-ideal
    /// noise; falls back to the density matrix per program otherwise.
    Statevector,
    /// Stabilizer-tableau engine for all-Clifford reset-free programs
    /// under Pauli (or no) gate noise; falls back to the density matrix
    /// per program otherwise.
    Stabilizer,
    /// Sparse pure-state engine for reset-free programs under gate-ideal
    /// noise; falls back to the density matrix per program otherwise.
    Sparse,
    /// Always use the trajectory engine.
    Trajectory(TrajectoryConfig),
}

impl Default for Backend {
    fn default() -> Self {
        Backend::Auto {
            dm_max_qubits: 10,
            trajectories: TrajectoryConfig::default(),
        }
    }
}

impl Backend {
    /// Resolves the engine that will simulate a register of `n_qubits`,
    /// without program knowledge. `Auto` falls back to its size-only rule
    /// (density matrix up to `dm_max_qubits`, then trajectories); callers
    /// that hold a program should prefer [`Backend::resolve_for`].
    pub fn resolve(&self, n_qubits: usize) -> ResolvedEngine {
        match *self {
            Backend::DensityMatrix => ResolvedEngine::DensityMatrix(DensityMatrixEngine),
            Backend::Statevector => ResolvedEngine::Statevector(StatevectorEngine),
            Backend::Stabilizer => ResolvedEngine::Stabilizer(StabilizerEngine),
            Backend::Sparse => ResolvedEngine::Sparse(SparseStatevectorEngine),
            Backend::Trajectory(config) => ResolvedEngine::Trajectory(TrajectoryEngine { config }),
            Backend::Auto {
                dm_max_qubits,
                trajectories,
            } => {
                if n_qubits <= dm_max_qubits {
                    ResolvedEngine::DensityMatrix(DensityMatrixEngine)
                } else {
                    ResolvedEngine::Trajectory(TrajectoryEngine {
                        config: trajectories,
                    })
                }
            }
        }
    }

    /// Resolves the cheapest admissible engine for a concrete job: register
    /// size `n_qubits` (of the program actually executed, which compaction
    /// may have shrunk), the noise model, and the job's structural
    /// [`ProgramProfile`]. Forced backends resolve to themselves; `Auto`
    /// walks the admissibility ladder cheapest-first:
    ///
    /// 1. **Stabilizer** — all-Clifford, reset-free, Pauli/no gate noise:
    ///    polynomial in `n` regardless of register width.
    /// 2. **Sparse statevector** — pure-eligible with a support bound
    ///    comfortably below the dense size (`2^(s+2) ≤ 2^n`).
    /// 3. **Density matrix** — exact mixed state, within `dm_max_qubits`.
    /// 4. **Dense statevector** — pure-eligible registers the dense pure
    ///    engine can hold.
    /// 5. **Trajectories** — everything else.
    ///
    /// Engine choice is a pure performance decision: every engine is exact
    /// for the jobs it admits, so `Auto` never changes results.
    pub fn resolve_for(
        &self,
        n_qubits: usize,
        noise: &NoiseModel,
        profile: &ProgramProfile,
    ) -> ResolvedEngine {
        let Backend::Auto { dm_max_qubits, .. } = *self else {
            return self.resolve(n_qubits);
        };
        if stabilizer_admissible(noise, profile) {
            return ResolvedEngine::Stabilizer(StabilizerEngine);
        }
        if sparse_admissible(noise, profile) && profile.support_bound_log2() + 2 <= n_qubits {
            return ResolvedEngine::Sparse(SparseStatevectorEngine);
        }
        if n_qubits <= dm_max_qubits {
            return ResolvedEngine::DensityMatrix(DensityMatrixEngine);
        }
        if sparse_admissible(noise, profile) && n_qubits <= statevector::MAX_QUBITS {
            return ResolvedEngine::Statevector(StatevectorEngine);
        }
        self.resolve(n_qubits)
    }

    /// Caps the *internal* worker-thread budget of any trajectory engine.
    /// Batch executors use this to hand each concurrent job a slice of the
    /// machine instead of oversubscribing it.
    pub fn with_thread_budget(self, threads: usize) -> Backend {
        let cap = threads.max(1);
        let clamp = |mut cfg: TrajectoryConfig| {
            cfg.n_threads = Some(cfg.n_threads.unwrap_or(usize::MAX).min(cap));
            cfg
        };
        match self {
            Backend::Auto {
                dm_max_qubits,
                trajectories,
            } => Backend::Auto {
                dm_max_qubits,
                trajectories: clamp(trajectories),
            },
            Backend::DensityMatrix => Backend::DensityMatrix,
            Backend::Statevector => Backend::Statevector,
            Backend::Stabilizer => Backend::Stabilizer,
            Backend::Sparse => Backend::Sparse,
            Backend::Trajectory(cfg) => Backend::Trajectory(clamp(cfg)),
        }
    }
}

/// A [`Backend`] resolved against a concrete register size.
#[derive(Debug, Clone, Copy)]
pub enum ResolvedEngine {
    /// The exact mixed-state engine.
    DensityMatrix(DensityMatrixEngine),
    /// The exact pure-state engine (with DM fallback per program).
    Statevector(StatevectorEngine),
    /// The stabilizer-tableau engine (with DM fallback per program).
    Stabilizer(StabilizerEngine),
    /// The sparse pure-state engine (with DM fallback per program).
    Sparse(SparseStatevectorEngine),
    /// The sampling engine.
    Trajectory(TrajectoryEngine),
}

impl BackendEngine for ResolvedEngine {
    fn name(&self) -> &'static str {
        match self {
            ResolvedEngine::DensityMatrix(e) => e.name(),
            ResolvedEngine::Statevector(e) => e.name(),
            ResolvedEngine::Stabilizer(e) => e.name(),
            ResolvedEngine::Sparse(e) => e.name(),
            ResolvedEngine::Trajectory(e) => e.name(),
        }
    }

    fn raw_distribution(
        &self,
        program: &Program,
        noise: &NoiseModel,
        measured: &[usize],
    ) -> Distribution {
        match self {
            ResolvedEngine::DensityMatrix(e) => e.raw_distribution(program, noise, measured),
            ResolvedEngine::Statevector(e) => e.raw_distribution(program, noise, measured),
            ResolvedEngine::Stabilizer(e) => e.raw_distribution(program, noise, measured),
            ResolvedEngine::Sparse(e) => e.raw_distribution(program, noise, measured),
            ResolvedEngine::Trajectory(e) => e.raw_distribution(program, noise, measured),
        }
    }

    fn fork_class(&self, noise: &NoiseModel, profile: &ProgramProfile) -> Option<u8> {
        match self {
            ResolvedEngine::DensityMatrix(e) => e.fork_class(noise, profile),
            ResolvedEngine::Statevector(e) => e.fork_class(noise, profile),
            ResolvedEngine::Stabilizer(e) => e.fork_class(noise, profile),
            ResolvedEngine::Sparse(e) => e.fork_class(noise, profile),
            ResolvedEngine::Trajectory(e) => e.fork_class(noise, profile),
        }
    }

    fn snapshot(
        &self,
        n_qubits: usize,
        noise: &Arc<NoiseModel>,
        class: u8,
    ) -> Option<Box<dyn EngineState>> {
        match self {
            ResolvedEngine::DensityMatrix(e) => e.snapshot(n_qubits, noise, class),
            ResolvedEngine::Statevector(e) => e.snapshot(n_qubits, noise, class),
            ResolvedEngine::Stabilizer(e) => e.snapshot(n_qubits, noise, class),
            ResolvedEngine::Sparse(e) => e.snapshot(n_qubits, noise, class),
            ResolvedEngine::Trajectory(e) => e.snapshot(n_qubits, noise, class),
        }
    }
}

/// Evolves `program` under `noise` on the exact density-matrix engine.
///
/// # Panics
///
/// Panics if the register exceeds [`crate::density::MAX_QUBITS`].
pub fn density_evolution(program: &Program, noise: &NoiseModel) -> DensityMatrix {
    let mut rho = DensityMatrix::zero(program.n_qubits());
    for op in program.ops() {
        apply_density_op(&mut rho, op, noise);
    }
    rho
}

fn ket_to_density(ket: &[qt_math::Complex]) -> Matrix {
    let d = ket.len();
    let mut m = Matrix::zeros(d, d);
    for r in 0..d {
        for c in 0..d {
            m[(r, c)] = ket[r] * ket[c].conj();
        }
    }
    m
}

/// The machine's available parallelism (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

/// The one batch-scheduling policy every batch executor shares: splits the
/// machine between `n_jobs` concurrent jobs, returning `(workers,
/// inner_budget)` — how many jobs run at once and the worker-thread budget
/// each job's own engine may use. `workers <= 1` means "run serially".
///
/// Inside an already-parallel worker (a batch executor nested in another
/// batch executor's fan-out, e.g. a per-register group inside the device
/// executor) the split is `(1, 1)`: the caller already owns exactly its
/// share of the machine, and fanning out again would oversubscribe it.
pub fn batch_split(n_jobs: usize) -> (usize, usize) {
    if in_parallel_worker() {
        return (1, 1);
    }
    let cores = available_threads();
    (cores.min(n_jobs), (cores / n_jobs.max(1)).max(1))
}

std::thread_local! {
    /// Whether the current thread is a `parallel_indexed` worker. Nested
    /// parallel regions (e.g. a per-gate kernel fan-out inside a trajectory
    /// worker) would oversubscribe the machine, so helpers consult this to
    /// stay serial inside an already-parallel context.
    static IN_PARALLEL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the calling thread is already inside a [`parallel_indexed`]
/// worker (in which case further fan-out should stay serial).
pub fn in_parallel_worker() -> bool {
    IN_PARALLEL_WORKER.with(|c| c.get())
}

/// Runs `f(0..n)` on up to `threads` scoped worker threads (work-stealing
/// by atomic index) and returns the results in index order. Falls back to
/// a serial loop for a single thread or item.
pub fn parallel_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, T)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    IN_PARALLEL_WORKER.with(|c| c.set(true));
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("parallel worker panicked"));
        }
    });
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in parts.into_iter().flatten() {
        out[i] = Some(v);
    }
    out.into_iter()
        .map(|v| v.expect("every index computed exactly once"))
        .collect()
}

/// Runs `f(chunk_index, chunk)` over `data` split into chunks of
/// `chunk_len`, distributing the chunks over up to `threads` workers via
/// [`parallel_indexed`]. Falls back to a serial loop for a single thread or
/// chunk. Each chunk is visited exactly once, so in-place transformations
/// are bit-identical to the serial order for any worker count.
///
/// The simulation kernels route large-register gate applications through
/// this helper (see [`crate::kernel`]).
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    if threads <= 1 || data.len() <= chunk_len {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    // Wrap each chunk in a Mutex so the work-stealing index loop of
    // `parallel_indexed` can hand out mutable slices; every lock is taken
    // exactly once, so there is no contention.
    let chunks: Vec<std::sync::Mutex<&mut [T]>> = data
        .chunks_mut(chunk_len)
        .map(std::sync::Mutex::new)
        .collect();
    parallel_indexed(chunks.len(), threads, |i| {
        let mut chunk = chunks[i].lock().expect("chunk lock poisoned");
        f(i, &mut chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_indexed_preserves_order() {
        let squares = parallel_indexed(100, 4, |i| i * i);
        assert_eq!(squares, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_indexed_serial_fallback() {
        assert_eq!(parallel_indexed(3, 1, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(parallel_indexed(0, 8, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn parallel_chunks_mut_visits_every_chunk_once() {
        for threads in [1, 2, 4] {
            let mut data: Vec<usize> = (0..103).collect();
            parallel_chunks_mut(&mut data, 10, threads, |i, chunk| {
                for v in chunk.iter_mut() {
                    *v += i * 1000;
                }
            });
            for (j, v) in data.iter().enumerate() {
                assert_eq!(*v, j + (j / 10) * 1000, "{threads} threads");
            }
        }
    }

    #[test]
    fn auto_backend_resolves_by_register_size() {
        let b = Backend::Auto {
            dm_max_qubits: 5,
            trajectories: TrajectoryConfig::default(),
        };
        assert!(matches!(b.resolve(5), ResolvedEngine::DensityMatrix(_)));
        assert!(matches!(b.resolve(6), ResolvedEngine::Trajectory(_)));
        assert_eq!(b.resolve(5).name(), "density-matrix");
        assert_eq!(b.resolve(6).name(), "trajectory");
    }

    #[test]
    fn thread_budget_clamps_only_trajectories() {
        let cfg = TrajectoryConfig {
            n_trajectories: 100,
            seed: 1,
            n_threads: None,
        };
        match Backend::Trajectory(cfg).with_thread_budget(2) {
            Backend::Trajectory(c) => assert_eq!(c.n_threads, Some(2)),
            other => panic!("unexpected {other:?}"),
        }
        match Backend::Trajectory(TrajectoryConfig {
            n_threads: Some(1),
            ..cfg
        })
        .with_thread_budget(4)
        {
            Backend::Trajectory(c) => assert_eq!(c.n_threads, Some(1), "never raises"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            Backend::DensityMatrix.with_thread_budget(1),
            Backend::DensityMatrix
        );
    }
}
