//! Prefix-sharing batch execution: the execution trie and its
//! checkpoint/fork scheduler.
//!
//! QuTracer's cost is dominated by QSPC preparation ensembles —
//! `preps × bases` programs per subset that are identical except for a
//! short divergent stretch (the reset that injects the preparation, the
//! trailing basis rotation). Deduplicated batching (`JobInterner`)
//! collapses *equal* jobs; this module goes further and collapses equal
//! *work*: a batch's op streams are folded into a radix trie whose nodes
//! are shared op prefixes and whose leaves are jobs, and the scheduler
//! walks the trie depth-first evolving one engine state per node,
//! [`fork`](crate::backend::EngineState::fork)ing at branch points so each
//! job pays only for its divergent suffix.
//!
//! ```text
//! jobs:  [prefix · reset₀ · segment · rot_X]      trie:        ┌ rot_X
//!        [prefix · reset₀ · segment · rot_Y]   prefix ┬ reset₀ ┼ rot_Y
//!        [prefix · reset₀ · segment       ]           │segment └ (leaf)
//!        [prefix · reset₁ · segment · rot_X]          └ reset₁ ┬ rot_X
//!        ...                                           segment └ ...
//! ```
//!
//! # Soundness
//!
//! Sharing is sound exactly when the engine is a *deterministic* function
//! of the op stream: evolving the shared prefix once and bit-copying the
//! state at a branch point yields, per leaf, the same sequence of kernel
//! applications on the same intermediate values as an isolated run, so the
//! results are bit-identical to the serial path (property-tested in
//! `tests/trie_batch.rs`). Engines whose output is sampled from one
//! program-wide RNG stream (trajectories) cannot split mid-program without
//! changing the stream; they report no fork capability and fall back to
//! per-job execution.
//!
//! # Memory budget
//!
//! A depth-first walk holds one live state per pending branch point. Each
//! state is `O(4^n)` for a density matrix, so unbounded checkpointing
//! could exhaust memory on deep tries of large registers. The scheduler
//! takes a `max_live_states` budget: while under budget it forks; at the
//! budget it *drops* the checkpoint and re-simulates each child's path
//! from the (cheap, empty-state) root instead — graceful degradation that
//! trades repeated gate work for bounded memory. `max_live_states = 1`
//! never holds a checkpoint and re-simulates every branch.

use crate::backend::EngineState;
use crate::program::{Op, Program};
use qt_dist::Distribution;

/// One node of an [`ExecutionTrie`]: a run of ops shared by every job
/// below it.
#[derive(Debug, Clone)]
pub struct TrieNode {
    /// The ops of this node, applied after every ancestor's ops.
    pub ops: Vec<Op>,
    /// Parent node (`None` for the root).
    pub parent: Option<usize>,
    /// Child nodes; each child starts with a distinct first op.
    pub children: Vec<usize>,
    /// Jobs whose op stream ends exactly at this node.
    pub jobs: Vec<usize>,
}

/// Structural statistics of a built trie — the shared-work accounting
/// surfaced in plan overhead summaries and the batch benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrieStats {
    /// Number of jobs folded into the trie.
    pub n_jobs: usize,
    /// Number of nodes (excluding the always-empty root).
    pub n_nodes: usize,
    /// Total gate ops across all job programs — what a per-job executor
    /// applies.
    pub request_gates: usize,
    /// Gate ops stored in the trie — what the scheduler applies once each.
    pub unique_gates: usize,
    /// Gate ops on interior nodes (nodes with children): work shared by
    /// more than one divergent continuation.
    pub interior_gates: usize,
}

impl TrieStats {
    /// Fraction of requested gate applications the trie avoids
    /// (`1 − unique/request`; 0 when nothing is shared or the batch is
    /// empty).
    pub fn shared_gate_fraction(&self) -> f64 {
        if self.request_gates == 0 {
            0.0
        } else {
            1.0 - self.unique_gates as f64 / self.request_gates as f64
        }
    }

    /// Accumulates another trie's statistics (used to sum per-register
    /// groups into one batch summary).
    pub fn absorb(&mut self, other: &TrieStats) {
        self.n_jobs += other.n_jobs;
        self.n_nodes += other.n_nodes;
        self.request_gates += other.request_gates;
        self.unique_gates += other.unique_gates;
        self.interior_gates += other.interior_gates;
    }
}

/// Execution counters of one scheduled walk, for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecCounters {
    /// State checkpoints taken ([`EngineState::fork`]).
    pub forks: usize,
    /// Branch children re-simulated from the root because the
    /// `max_live_states` budget was exhausted.
    pub replays: usize,
}

impl ExecCounters {
    /// Accumulates another walk's counters.
    pub fn absorb(&mut self, other: &ExecCounters) {
        self.forks += other.forks;
        self.replays += other.replays;
    }
}

/// A radix trie over the op streams of a batch of programs.
///
/// The root always has an empty op list (node 0), so the subtrees hanging
/// off [`ExecutionTrie::root_children`] are fully independent units — the
/// batch executors split parallelism across them.
#[derive(Debug, Clone)]
pub struct ExecutionTrie {
    nodes: Vec<TrieNode>,
    n_jobs: usize,
}

impl ExecutionTrie {
    /// Folds a batch of programs into a trie. Job `i` of the trie is
    /// `programs[i]`.
    ///
    /// Sharing state across programs is only meaningful for equal register
    /// sizes; callers group programs before building (debug-asserted).
    pub fn build(programs: &[&Program]) -> ExecutionTrie {
        debug_assert!(
            programs
                .windows(2)
                .all(|w| w[0].n_qubits() == w[1].n_qubits()),
            "trie programs must share one register size"
        );
        let mut trie = ExecutionTrie {
            nodes: vec![TrieNode {
                ops: Vec::new(),
                parent: None,
                children: Vec::new(),
                jobs: Vec::new(),
            }],
            n_jobs: programs.len(),
        };
        for (job, p) in programs.iter().enumerate() {
            trie.insert(job, p.ops());
        }
        trie
    }

    /// Inserts one job's op stream, splitting nodes at divergence points.
    fn insert(&mut self, job: usize, ops: &[Op]) {
        let mut node = 0usize;
        let mut pos = 0usize;
        loop {
            // Match the node's ops against the remaining stream.
            let node_len = self.nodes[node].ops.len();
            let mut m = 0usize;
            while m < node_len && pos + m < ops.len() && self.nodes[node].ops[m] == ops[pos + m] {
                m += 1;
            }
            if m < node_len {
                // Diverged (or stream ended) inside this node: split it.
                let tail = self.nodes[node].ops.split_off(m);
                let moved_children = std::mem::take(&mut self.nodes[node].children);
                let moved_jobs = std::mem::take(&mut self.nodes[node].jobs);
                let tail_id = self.nodes.len();
                self.nodes.push(TrieNode {
                    ops: tail,
                    parent: Some(node),
                    children: moved_children,
                    jobs: moved_jobs,
                });
                // Re-parent the moved children.
                let grandchildren = self.nodes[tail_id].children.clone();
                for c in grandchildren {
                    self.nodes[c].parent = Some(tail_id);
                }
                self.nodes[node].children.push(tail_id);
            }
            pos += m;
            if pos == ops.len() {
                self.nodes[node].jobs.push(job);
                return;
            }
            // Descend into the child starting with ops[pos], or grow one.
            let next = self.nodes[node]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].ops.first() == Some(&ops[pos]));
            match next {
                Some(c) => node = c,
                None => {
                    let id = self.nodes.len();
                    self.nodes.push(TrieNode {
                        ops: ops[pos..].to_vec(),
                        parent: Some(node),
                        children: Vec::new(),
                        jobs: vec![job],
                    });
                    self.nodes[node].children.push(id);
                    return;
                }
            }
        }
    }

    /// The nodes, root first.
    pub fn nodes(&self) -> &[TrieNode] {
        &self.nodes
    }

    /// Number of jobs folded in.
    pub fn n_jobs(&self) -> usize {
        self.n_jobs
    }

    /// The root's children — the independent subtrees of the batch.
    pub fn root_children(&self) -> &[usize] {
        &self.nodes[0].children
    }

    /// Jobs whose program is empty (they end at the root).
    pub fn root_jobs(&self) -> &[usize] {
        &self.nodes[0].jobs
    }

    /// Jobs in depth-first (prefix-clustered) order: jobs sharing long
    /// prefixes are adjacent. Every job appears exactly once.
    pub fn clustered_jobs(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.n_jobs);
        let mut stack = vec![0usize];
        while let Some(node) = stack.pop() {
            out.extend_from_slice(&self.nodes[node].jobs);
            // Reverse so the first child is visited first.
            stack.extend(self.nodes[node].children.iter().rev());
        }
        out
    }

    /// Structural statistics of the built trie.
    pub fn stats(&self) -> TrieStats {
        let gate_count = |ops: &[Op]| {
            ops.iter()
                .filter(|o| matches!(o, Op::Gate(_) | Op::IdealGate(_)))
                .count()
        };
        let mut stats = TrieStats {
            n_jobs: self.n_jobs,
            n_nodes: self.nodes.len() - 1,
            ..TrieStats::default()
        };
        // Request gates: every node's gates count once per job at or below
        // it (node splits can re-parent children, so indices are not
        // topologically ordered — accumulate via explicit post-order).
        let mut jobs_below = vec![0usize; self.nodes.len()];
        let mut stack: Vec<(usize, bool)> = vec![(0, false)];
        while let Some((id, processed)) = stack.pop() {
            if processed {
                jobs_below[id] = self.nodes[id].jobs.len()
                    + self.nodes[id]
                        .children
                        .iter()
                        .map(|&c| jobs_below[c])
                        .sum::<usize>();
            } else {
                stack.push((id, true));
                stack.extend(self.nodes[id].children.iter().map(|&c| (c, false)));
            }
        }
        for (id, node) in self.nodes.iter().enumerate() {
            let g = gate_count(&node.ops);
            stats.unique_gates += g;
            stats.request_gates += g * jobs_below[id];
            if !node.children.is_empty() {
                stats.interior_gates += g;
            }
        }
        stats
    }

    /// Walks the whole trie depth-first with checkpoint/fork scheduling.
    ///
    /// `init` produces a fresh initial (|0…0⟩) engine state; `measured`
    /// gives each job's measured qubits; `max_live_states` bounds the
    /// number of simultaneously allocated states (≥ 1). Returns each job's
    /// raw outcome distribution plus the walk's counters.
    pub fn execute(
        &self,
        init: &(dyn Fn() -> Box<dyn EngineState> + Sync),
        measured: &[Vec<usize>],
        max_live_states: usize,
    ) -> (Vec<Option<Distribution>>, ExecCounters) {
        self.walk_from(0, init, measured, max_live_states)
    }

    /// Walks one root subtree (see [`ExecutionTrie::root_children`]).
    /// Jobs outside the subtree are left untouched (`None`).
    pub fn execute_subtree(
        &self,
        child: usize,
        init: &(dyn Fn() -> Box<dyn EngineState> + Sync),
        measured: &[Vec<usize>],
        max_live_states: usize,
    ) -> (Vec<Option<Distribution>>, ExecCounters) {
        assert!(
            self.nodes[0].children.contains(&child),
            "not a root subtree: node {child}"
        );
        self.walk_from(child, init, measured, max_live_states)
    }

    /// The shared scheduling entry point behind [`ExecutionTrie::execute`]
    /// and [`ExecutionTrie::execute_subtree`].
    fn walk_from(
        &self,
        start: usize,
        init: &(dyn Fn() -> Box<dyn EngineState> + Sync),
        measured: &[Vec<usize>],
        max_live_states: usize,
    ) -> (Vec<Option<Distribution>>, ExecCounters) {
        let mut out: Vec<Option<Distribution>> = vec![None; self.n_jobs];
        let mut counters = ExecCounters::default();
        let mut walker = Walker {
            trie: self,
            init,
            measured,
            // Last-resort clamp only: a zero budget is rejected upstream at
            // executor-configuration time (`Executor::with_batch_policy`
            // returns `BatchConfigError::ZeroLiveStateBudget`), so direct
            // trie callers passing 0 get budget-1 replay semantics instead
            // of a hang or underflow.
            budget: max_live_states.max(1),
            live: 1,
            counters: &mut counters,
            out: &mut out,
        };
        walker.walk(start, init());
        (out, counters)
    }
}

/// Depth-first scheduler state (see [`ExecutionTrie::execute`]).
struct Walker<'a> {
    trie: &'a ExecutionTrie,
    init: &'a (dyn Fn() -> Box<dyn EngineState> + Sync),
    measured: &'a [Vec<usize>],
    budget: usize,
    /// States currently allocated (the walked state plus held checkpoints).
    live: usize,
    counters: &'a mut ExecCounters,
    out: &'a mut Vec<Option<Distribution>>,
}

impl Walker<'_> {
    /// Re-simulates the op path from the root through `node` on a fresh
    /// state — the degradation path when the checkpoint budget is spent.
    fn replay(&mut self, node: usize) -> Box<dyn EngineState> {
        self.counters.replays += 1;
        let mut chain = Vec::new();
        let mut cur = Some(node);
        while let Some(id) = cur {
            chain.push(id);
            cur = self.trie.nodes[id].parent;
        }
        let mut state = (self.init)();
        for &id in chain.iter().rev() {
            for op in &self.trie.nodes[id].ops {
                state.apply_op(op);
            }
        }
        state
    }

    /// Walks `node`, consuming `state` (which has every ancestor's ops —
    /// but not `node`'s own — applied). Decrements `live` when the state
    /// is dropped or transfers it to the last child.
    ///
    /// Single-child chains (nested-prefix jobs) advance iteratively, so
    /// recursion depth is bounded by the number of *branch points* on a
    /// path, not the node count.
    fn walk(&mut self, mut node: usize, mut state: Box<dyn EngineState>) {
        let n = loop {
            let n = &self.trie.nodes[node];
            for op in &n.ops {
                state.apply_op(op);
            }
            for &job in &n.jobs {
                self.out[job] = Some(state.raw_distribution(&self.measured[job]));
            }
            match n.children.as_slice() {
                [only] => node = *only,
                _ => break n,
            }
        };
        match n.children.as_slice() {
            [] => {
                drop(state);
                self.live -= 1;
            }
            children => {
                if self.live < self.budget {
                    for &c in &children[..children.len() - 1] {
                        self.counters.forks += 1;
                        self.live += 1;
                        let fork = state.fork();
                        self.walk(c, fork);
                    }
                    self.walk(children[children.len() - 1], state);
                } else {
                    // Budget spent: drop the checkpoint and re-simulate
                    // each child's path from the root instead.
                    let children = children.to_vec();
                    drop(state);
                    self.live -= 1;
                    for c in children {
                        self.live += 1;
                        let fresh = self.replay(node);
                        self.walk(c, fresh);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_circuit::Circuit;

    fn program(build: impl FnOnce(&mut Circuit)) -> Program {
        let mut c = Circuit::new(3);
        build(&mut c);
        Program::from_circuit(&c)
    }

    #[test]
    fn shared_prefixes_fold_into_one_node() {
        let a = program(|c| {
            c.h(0).cx(0, 1).rz(2, 0.5);
        });
        let b = program(|c| {
            c.h(0).cx(0, 1).ry(2, 0.5);
        });
        let trie = ExecutionTrie::build(&[&a, &b]);
        let stats = trie.stats();
        assert_eq!(stats.n_jobs, 2);
        assert_eq!(stats.request_gates, 6);
        // h + cx shared; one rz and one ry leaf each.
        assert_eq!(stats.unique_gates, 4);
        assert_eq!(stats.interior_gates, 2);
        assert!((stats.shared_gate_fraction() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn proper_prefix_job_ends_on_interior_node() {
        let long = program(|c| {
            c.h(0).cx(0, 1).cz(1, 2);
        });
        let short = program(|c| {
            c.h(0).cx(0, 1);
        });
        let trie = ExecutionTrie::build(&[&long, &short]);
        // The short job must end exactly where the long one diverges.
        let holder = trie
            .nodes()
            .iter()
            .find(|n| n.jobs.contains(&1))
            .expect("short job recorded");
        assert_eq!(holder.ops.len(), 2);
        assert_eq!(holder.children.len(), 1);
        assert_eq!(trie.stats().unique_gates, 3);
    }

    #[test]
    fn disjoint_programs_share_nothing() {
        let a = program(|c| {
            c.h(0).cx(0, 1);
        });
        let b = program(|c| {
            c.x(2).cz(1, 2);
        });
        let trie = ExecutionTrie::build(&[&a, &b]);
        let stats = trie.stats();
        assert_eq!(stats.unique_gates, stats.request_gates);
        assert_eq!(stats.interior_gates, 0);
        assert_eq!(trie.root_children().len(), 2);
        assert_eq!(stats.shared_gate_fraction(), 0.0);
    }

    #[test]
    fn clustered_order_is_a_permutation_grouping_prefixes() {
        let mk = |t: f64, u: f64| {
            program(|c| {
                c.h(0).ry(1, t).rz(2, u);
            })
        };
        // Interleave two prefix families.
        let programs = [
            mk(0.1, 0.1),
            mk(0.2, 0.1),
            mk(0.1, 0.2),
            mk(0.2, 0.2),
            mk(0.1, 0.3),
        ];
        let refs: Vec<&Program> = programs.iter().collect();
        let trie = ExecutionTrie::build(&refs);
        let order = trie.clustered_jobs();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "permutation of all jobs");
        // The ry(0.1) family {0, 2, 4} must be contiguous in the order.
        let pos: Vec<usize> = [0usize, 2, 4]
            .iter()
            .map(|j| order.iter().position(|x| x == j).unwrap())
            .collect();
        let (lo, hi) = (*pos.iter().min().unwrap(), *pos.iter().max().unwrap());
        assert_eq!(hi - lo, 2, "shared-prefix family is clustered: {order:?}");
    }

    #[test]
    fn empty_programs_end_at_the_root() {
        let empty = Program::new(3);
        let a = program(|c| {
            c.h(0);
        });
        let trie = ExecutionTrie::build(&[&empty, &a]);
        assert_eq!(trie.root_jobs(), &[0]);
        assert_eq!(trie.root_children().len(), 1);
    }
}
