//! The execution IR: circuits plus mid-circuit wire resets.
//!
//! QSPC replaces the traced qubit's wire at a cut by a fresh preparation
//! (Eq. 9 of the paper). In the executable representation this is a
//! [`Op::Reset`]: trace out the qubits and re-prepare them in a pure state.

use qt_circuit::{Circuit, Instruction};
use qt_math::states::PrepState;
use qt_math::Complex;

/// One execution step.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A unitary gate (noise channels attach per the noise model).
    Gate(Instruction),
    /// A unitary gate executed **noiselessly** regardless of the noise
    /// model. Used by the *ideal PCS* baseline, whose checking circuit is
    /// assumed error-free (Sec. VII-A of the paper).
    IdealGate(Instruction),
    /// Trace out `qubits` and re-prepare them in the pure state `ket`
    /// (dimension `2^k`, operand 0 = least-significant bit of the index).
    Reset {
        /// The qubits whose wire is replaced.
        qubits: Vec<usize>,
        /// The fresh state.
        ket: Vec<Complex>,
    },
}

/// An executable program: a register size and a list of steps.
///
/// # Example
///
/// ```
/// use qt_sim::{Program, Op};
/// use qt_circuit::Circuit;
/// use qt_math::states::PrepState;
///
/// let mut prefix = Circuit::new(2);
/// prefix.h(0).cx(0, 1);
/// let mut prog = Program::from_circuit(&prefix);
/// prog.push_reset_state(&[0], PrepState::Plus);
/// assert_eq!(prog.ops().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    n_qubits: usize,
    ops: Vec<Op>,
}

impl Program {
    /// An empty program on `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        Program {
            n_qubits,
            ops: Vec::new(),
        }
    }

    /// Wraps a plain circuit.
    pub fn from_circuit(circ: &Circuit) -> Self {
        let mut p = Program::new(circ.n_qubits());
        p.push_circuit(circ);
        p
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The steps.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Whether the program contains any reset.
    pub fn has_resets(&self) -> bool {
        self.ops.iter().any(|o| matches!(o, Op::Reset { .. }))
    }

    /// Appends one gate.
    ///
    /// # Panics
    ///
    /// Panics if an operand is out of range.
    pub fn push_gate(&mut self, instr: Instruction) -> &mut Self {
        for &q in &instr.qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range");
        }
        self.ops.push(Op::Gate(instr));
        self
    }

    /// Appends one gate that executes noiselessly (see [`Op::IdealGate`]).
    ///
    /// # Panics
    ///
    /// Panics if an operand is out of range.
    pub fn push_ideal_gate(&mut self, instr: Instruction) -> &mut Self {
        for &q in &instr.qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range");
        }
        self.ops.push(Op::IdealGate(instr));
        self
    }

    /// Appends every instruction of `circ`.
    pub fn push_circuit(&mut self, circ: &Circuit) -> &mut Self {
        assert!(circ.n_qubits() <= self.n_qubits);
        for instr in circ.instructions() {
            self.push_gate(instr.clone());
        }
        self
    }

    /// Appends a reset of `qubits` to an arbitrary pure state.
    ///
    /// # Panics
    ///
    /// Panics if the ket dimension does not match or a qubit is out of range.
    pub fn push_reset(&mut self, qubits: &[usize], ket: Vec<Complex>) -> &mut Self {
        assert_eq!(ket.len(), 1 << qubits.len(), "ket dimension mismatch");
        for &q in qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range");
        }
        self.ops.push(Op::Reset {
            qubits: qubits.to_vec(),
            ket,
        });
        self
    }

    /// Appends a reset of one or more qubits to a product of Pauli
    /// eigenstates (one [`PrepState`] per qubit — here a single state for a
    /// single qubit).
    pub fn push_reset_state(&mut self, qubits: &[usize], state: PrepState) -> &mut Self {
        assert_eq!(qubits.len(), 1, "push_reset_state is single-qubit");
        self.push_reset(qubits, state.ket().to_vec())
    }

    /// Appends a reset of two qubits to the product state `low ⊗ high`
    /// (`qubits[0]` gets `low`).
    pub fn push_reset_pair(
        &mut self,
        qubits: &[usize; 2],
        low: PrepState,
        high: PrepState,
    ) -> &mut Self {
        let l = low.ket();
        let h = high.ket();
        let mut ket = vec![Complex::ZERO; 4];
        for (i, k) in ket.iter_mut().enumerate() {
            *k = l[i & 1] * h[(i >> 1) & 1];
        }
        self.push_reset(qubits.as_ref(), ket)
    }

    /// Re-targets every step through `map` (old qubit → new qubit), which
    /// must be a permutation of `0..n_qubits`.
    ///
    /// # Panics
    ///
    /// Panics if `map` has the wrong length or maps out of range.
    pub fn remapped(&self, map: &[usize]) -> Program {
        assert_eq!(map.len(), self.n_qubits, "permutation length mismatch");
        let mut out = Program::new(self.n_qubits);
        for op in &self.ops {
            match op {
                Op::Gate(i) => {
                    let qs = i.qubits.iter().map(|&q| map[q]).collect();
                    out.push_gate(Instruction::new(i.gate.clone(), qs));
                }
                Op::IdealGate(i) => {
                    let qs = i.qubits.iter().map(|&q| map[q]).collect();
                    out.push_ideal_gate(Instruction::new(i.gate.clone(), qs));
                }
                Op::Reset { qubits, ket } => {
                    let qs: Vec<usize> = qubits.iter().map(|&q| map[q]).collect();
                    out.push_reset(&qs, ket.clone());
                }
            }
        }
        out
    }

    /// Total number of gate steps (ignoring resets).
    pub fn gate_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Gate(_) | Op::IdealGate(_)))
            .count()
    }

    /// Number of multi-qubit gate steps.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Gate(i) | Op::IdealGate(i) if i.gate.is_multi_qubit()))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_circuit_preserves_gates() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cz(1, 2);
        let p = Program::from_circuit(&c);
        assert_eq!(p.gate_count(), 3);
        assert_eq!(p.two_qubit_gate_count(), 2);
        assert!(!p.has_resets());
    }

    #[test]
    fn reset_pair_builds_product_ket() {
        let mut p = Program::new(2);
        p.push_reset_pair(&[0, 1], PrepState::One, PrepState::Plus);
        let Op::Reset { ket, .. } = &p.ops()[0] else {
            panic!("expected reset");
        };
        // |1⟩ on qubit 0, |+⟩ on qubit 1: amplitude on index 1 (q0=1,q1=0)
        // and 3 (q0=1,q1=1), each 1/√2.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(ket[0].approx_eq(Complex::ZERO, 1e-12));
        assert!(ket[1].approx_eq(Complex::real(s), 1e-12));
        assert!(ket[2].approx_eq(Complex::ZERO, 1e-12));
        assert!(ket[3].approx_eq(Complex::real(s), 1e-12));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reset_checks_range() {
        let mut p = Program::new(1);
        p.push_reset_state(&[1], PrepState::Zero);
    }
}
