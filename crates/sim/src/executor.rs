//! High-level execution: the [`Runner`] abstraction, noisy distributions,
//! readout and parallel batched execution.
//!
//! The [`Executor`] mirrors the role of Qiskit's `AerSimulator` in the
//! paper's artifact: callers hand it programs, it resolves a
//! [`crate::backend::BackendEngine`] per program (exact density matrix for
//! small registers, trajectories for large ones), applies the gate noise
//! and terminal readout error, and returns outcome distributions.
//!
//! Mitigation workloads are ensembles: one QSPC check alone runs
//! `preps × bases` independent circuits. [`Runner::run_batch`] is the
//! throughput path for those — the default implementation is a serial
//! loop, and [`Executor`] overrides it to fan the jobs out over scoped
//! threads with the machine's parallelism split between the jobs and each
//! job's internal trajectory workers.

use crate::backend::{self, BackendEngine};
use crate::density::DensityMatrix;
use crate::noise::{apply_readout, NoiseModel};
use crate::program::{Op, Program};
use crate::statevector::StateVector;

pub use crate::backend::Backend;

/// The result of one program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// Noisy outcome distribution over the measured qubits.
    pub dist: Vec<f64>,
    /// Gates actually executed (post-transpilation where applicable).
    pub gates: usize,
    /// Multi-qubit gates actually executed.
    pub two_qubit_gates: usize,
}

/// One independent unit of work for [`Runner::run_batch`].
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// The program to execute.
    pub program: Program,
    /// The measured qubits (bit `i` of the outcome index = `measured[i]`).
    pub measured: Vec<usize>,
}

impl BatchJob {
    /// Creates a job.
    pub fn new(program: Program, measured: impl Into<Vec<usize>>) -> Self {
        BatchJob {
            program,
            measured: measured.into(),
        }
    }

    /// A collision-free deduplication key for a `(program, measured)` pair:
    /// two jobs with equal keys execute identically on any deterministic
    /// runner, so one result can be fanned out to both. (`f64` debug
    /// formatting is shortest-roundtrip, so distinct gate parameters render
    /// distinctly.)
    pub fn key_of(program: &Program, measured: &[usize]) -> String {
        format!("{measured:?}|{program:?}")
    }

    /// The [`BatchJob::key_of`] key of this job.
    pub fn dedup_key(&self) -> String {
        Self::key_of(&self.program, &self.measured)
    }
}

/// Interns jobs by [`BatchJob::dedup_key`]: equal jobs map to one table
/// slot, so a deduplicated batch executes each distinct program once and
/// fans the result back out (sound because every [`Runner`] here is a
/// deterministic function of the job). Shared by the staged pipelines in
/// `qt-core` and `qt-baselines`.
#[derive(Debug, Default)]
pub struct JobInterner {
    index: std::collections::HashMap<String, usize>,
}

impl JobInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the slot of `job` in `table`, appending `make(job)` when the
    /// job is new. The `bool` is `true` for fresh entries.
    pub fn intern_with<T>(
        &mut self,
        table: &mut Vec<T>,
        job: BatchJob,
        make: impl FnOnce(BatchJob) -> T,
    ) -> (usize, bool) {
        let key = job.dedup_key();
        if let Some(&slot) = self.index.get(&key) {
            (slot, false)
        } else {
            let slot = table.len();
            self.index.insert(key, slot);
            table.push(make(job));
            (slot, true)
        }
    }

    /// [`JobInterner::intern_with`] for a plain job table.
    pub fn intern(&mut self, table: &mut Vec<BatchJob>, job: BatchJob) -> usize {
        self.intern_with(table, job, |j| j).0
    }
}

/// Anything that can execute a [`Program`] and return a noisy outcome
/// distribution: the plain [`Executor`] here, or a transpiling device
/// executor (`qt-device`) that first maps the program onto a physical
/// topology.
pub trait Runner {
    /// Executes `program`, returning the noisy distribution over `measured`
    /// (bit `i` of the outcome index = `measured[i]`) plus gate statistics.
    fn run(&self, program: &Program, measured: &[usize]) -> RunOutput;

    /// Executes a batch of independent jobs, returning outputs in job
    /// order. The default implementation is a serial loop; concurrent
    /// implementations must preserve per-job results exactly (every engine
    /// here is deterministic given its seed, so batched and serial
    /// execution agree bit-for-bit).
    fn run_batch(&self, jobs: &[BatchJob]) -> Vec<RunOutput> {
        jobs.iter()
            .map(|j| self.run(&j.program, &j.measured))
            .collect()
    }
}

impl Runner for Executor {
    fn run(&self, program: &Program, measured: &[usize]) -> RunOutput {
        RunOutput {
            dist: self.noisy_distribution(program, measured),
            gates: program.gate_count(),
            two_qubit_gates: program.two_qubit_gate_count(),
        }
    }

    /// Fans the jobs out over scoped threads under the shared
    /// [`backend::batch_split`] policy, so a batch never oversubscribes
    /// the machine.
    fn run_batch(&self, jobs: &[BatchJob]) -> Vec<RunOutput> {
        let (workers, inner) = backend::batch_split(jobs.len());
        if workers <= 1 {
            return jobs
                .iter()
                .map(|j| self.run(&j.program, &j.measured))
                .collect();
        }
        let per_job = Executor {
            noise: self.noise.clone(),
            backend: self.backend.with_thread_budget(inner),
        };
        backend::parallel_indexed(jobs.len(), workers, |i| {
            per_job.run(&jobs[i].program, &jobs[i].measured)
        })
    }
}

/// A noisy-circuit executor.
///
/// # Example
///
/// ```
/// use qt_sim::{Executor, NoiseModel, Program};
/// use qt_circuit::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let exec = Executor::new(NoiseModel::depolarizing(0.001, 0.01).with_readout(0.02));
/// let dist = exec.noisy_distribution(&Program::from_circuit(&c), &[0, 1]);
/// assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Executor {
    noise: NoiseModel,
    backend: Backend,
}

impl Executor {
    /// Creates an executor with the default (auto) backend.
    pub fn new(noise: NoiseModel) -> Self {
        Executor {
            noise,
            backend: Backend::default(),
        }
    }

    /// Creates an executor with an explicit backend.
    pub fn with_backend(noise: NoiseModel, backend: Backend) -> Self {
        Executor { noise, backend }
    }

    /// The noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The gate-noisy outcome distribution over `measured`, **without**
    /// readout error (bit `i` of the index = `measured[i]`).
    ///
    /// The program is first compacted onto its used qubits (plus `measured`)
    /// so that reduced ensemble circuits do not pay for idle wires, then
    /// handed to the engine the backend resolves for the compacted size.
    pub fn raw_distribution(&self, program: &Program, measured: &[usize]) -> Vec<f64> {
        // Compaction renames qubits, so it is only sound when the noise
        // model is uniform (no per-qubit/per-edge calibration).
        let uniform = self.noise.per_qubit.is_empty()
            && self.noise.per_edge.is_empty()
            && self.noise.readout.per_qubit.is_empty();
        let compacted = if uniform {
            compact(program, measured)
        } else {
            None
        };
        let (program, measured) = &match compacted {
            Some((p, m)) => (p, m),
            None => (program.clone(), measured.to_vec()),
        };
        let measured: &[usize] = measured;
        self.backend
            .resolve(program.n_qubits())
            .raw_distribution(program, &self.noise, measured)
    }

    /// The full noisy outcome distribution over `measured`: gate noise plus
    /// readout error (including measurement crosstalk scaled by the number
    /// of simultaneously measured qubits).
    ///
    /// Readout is applied with the *original* qubit identities, so per-qubit
    /// readout calibration survives compaction.
    pub fn noisy_distribution(&self, program: &Program, measured: &[usize]) -> Vec<f64> {
        let raw = self.raw_distribution(program, measured);
        apply_readout(&raw, measured, &self.noise.readout)
    }

    /// Samples `shots` measurement outcomes from the noisy distribution —
    /// the finite-shot pipeline the paper's hardware runs use (100 000
    /// shots per circuit). Returns per-outcome counts over `measured`.
    ///
    /// Large shot counts are drawn in a fixed number of independent streams
    /// executed across threads; the counts depend only on `seed` (never on
    /// the machine's core count).
    pub fn sampled_counts(
        &self,
        program: &Program,
        measured: &[usize],
        shots: usize,
        seed: u64,
    ) -> Vec<u64> {
        use rand::SeedableRng;
        let dist = self.noisy_distribution(program, measured);
        // Stream layout is a function of the shot count alone, so results
        // are reproducible everywhere.
        let streams = if shots >= 1 << 14 { 8 } else { 1 };
        let chunk = shots.div_ceil(streams);
        let partials =
            backend::parallel_indexed(streams, backend::available_threads().min(streams), |s| {
                let lo = s * chunk;
                let hi = ((s + 1) * chunk).min(shots);
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    seed.wrapping_add((s as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                );
                crate::statevector::sample_from_probs(&dist, hi.saturating_sub(lo), &mut rng)
            });
        let mut counts = vec![0u64; dist.len()];
        for part in partials {
            for (c, p) in counts.iter_mut().zip(part) {
                *c += p;
            }
        }
        counts
    }

    /// Runs the program on the exact density-matrix engine.
    ///
    /// # Panics
    ///
    /// Panics if the register exceeds [`crate::density::MAX_QUBITS`].
    pub fn run_dm(&self, program: &Program) -> DensityMatrix {
        backend::density_evolution(program, &self.noise)
    }
}

/// The noiseless outcome distribution of a program over `measured`.
///
/// Uses a pure-state simulation when the program has no resets, otherwise
/// the density-matrix engine.
pub fn ideal_distribution(program: &Program, measured: &[usize]) -> Vec<f64> {
    if !program.has_resets() {
        let mut sv = StateVector::zero(program.n_qubits());
        for op in program.ops() {
            if let Op::Gate(i) | Op::IdealGate(i) = op {
                sv.apply_instruction(i);
            }
        }
        return sv.marginal_probabilities(measured);
    }
    Executor::new(NoiseModel::ideal())
        .run_dm(program)
        .marginal_probabilities(measured)
}

/// Compacts a program onto its used qubits (always including `measured`).
/// Returns `None` when nothing would shrink. Qubit *identities are
/// preserved logically*: the caller still indexes results by the original
/// `measured` order; only the register is renamed internally, so this is
/// only valid for noise models without per-qubit overrides — the
/// [`Executor`] therefore skips compaction when overrides exist.
fn compact(program: &Program, measured: &[usize]) -> Option<(Program, Vec<usize>)> {
    let mut used = vec![false; program.n_qubits()];
    for op in program.ops() {
        match op {
            Op::Gate(i) | Op::IdealGate(i) => {
                for &q in &i.qubits {
                    used[q] = true;
                }
            }
            Op::Reset { qubits, .. } => {
                for &q in qubits {
                    used[q] = true;
                }
            }
        }
    }
    for &m in measured {
        used[m] = true;
    }
    let kept: Vec<usize> = used
        .iter()
        .enumerate()
        .filter(|(_, &u)| u)
        .map(|(q, _)| q)
        .collect();
    if kept.len() == program.n_qubits() {
        return None;
    }
    let mut map = vec![usize::MAX; program.n_qubits()];
    for (c, &q) in kept.iter().enumerate() {
        map[q] = c;
    }
    let mut out = Program::new(kept.len());
    for op in program.ops() {
        match op {
            Op::Gate(i) => {
                let qs = i.qubits.iter().map(|&q| map[q]).collect();
                out.push_gate(qt_circuit::Instruction::new(i.gate.clone(), qs));
            }
            Op::IdealGate(i) => {
                let qs = i.qubits.iter().map(|&q| map[q]).collect();
                out.push_ideal_gate(qt_circuit::Instruction::new(i.gate.clone(), qs));
            }
            Op::Reset { qubits, ket } => {
                let qs: Vec<usize> = qubits.iter().map(|&q| map[q]).collect();
                out.push_reset(&qs, ket.clone());
            }
        }
    }
    let m = measured.iter().map(|&q| map[q]).collect();
    Some((out, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::TrajectoryConfig;
    use qt_circuit::Circuit;

    #[test]
    fn dm_and_trajectory_backends_agree() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cz(1, 2).ry(2, 0.4);
        let prog = Program::from_circuit(&c);
        let noise = NoiseModel::depolarizing(0.01, 0.05).with_readout(0.03);
        let dm = Executor::with_backend(noise.clone(), Backend::DensityMatrix);
        let tj = Executor::with_backend(
            noise,
            Backend::Trajectory(TrajectoryConfig {
                n_trajectories: 30_000,
                seed: 9,
                n_threads: Some(2),
            }),
        );
        let a = dm.noisy_distribution(&prog, &[0, 1, 2]);
        let b = tj.noisy_distribution(&prog, &[0, 1, 2]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.02, "{x} vs {y}");
        }
    }

    #[test]
    fn readout_error_applied_on_top_of_gates() {
        let mut c = Circuit::new(1);
        c.x(0);
        let prog = Program::from_circuit(&c);
        let exec = Executor::new(NoiseModel::ideal().with_readout(0.25));
        let dist = exec.noisy_distribution(&prog, &[0]);
        assert!((dist[0] - 0.25).abs() < 1e-12);
        assert!((dist[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ideal_distribution_matches_expected() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let prog = Program::from_circuit(&c);
        let dist = ideal_distribution(&prog, &[0, 1]);
        assert!((dist[0] - 0.5).abs() < 1e-12);
        assert!((dist[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ideal_distribution_with_resets_uses_dm() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut prog = Program::from_circuit(&c);
        prog.push_reset_state(&[0], qt_math::states::PrepState::Zero);
        let dist = ideal_distribution(&prog, &[0, 1]);
        assert!((dist[0] - 0.5).abs() < 1e-12);
        assert!((dist[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn crosstalk_reduces_when_measuring_fewer_qubits() {
        // Jigsaw's premise: measuring a subset sees less readout error.
        let mut c = Circuit::new(3);
        c.x(0).x(1).x(2);
        let prog = Program::from_circuit(&c);
        let noise = NoiseModel::ideal()
            .with_readout_model(crate::noise::ReadoutModel::with_crosstalk(0.01, 0.03));
        let exec = Executor::new(noise);
        let all = exec.noisy_distribution(&prog, &[0, 1, 2]);
        let sub = exec.noisy_distribution(&prog, &[0]);
        // P(correct) on qubit 0 alone must exceed marginal correctness when
        // measured jointly with two others.
        let p_joint_correct: f64 = all
            .iter()
            .enumerate()
            .filter(|(i, _)| i & 1 == 1)
            .map(|(_, p)| p)
            .sum();
        assert!(sub[1] > p_joint_correct + 0.02);
    }

    #[test]
    fn run_batch_matches_serial_execution_exactly() {
        let noise = NoiseModel::depolarizing(0.005, 0.02).with_readout(0.03);
        let exec = Executor::with_backend(noise, Backend::default());
        let mut jobs = Vec::new();
        for k in 0..12 {
            let mut c = Circuit::new(3);
            c.h(0).ry(1, 0.1 * k as f64).cx(0, 1).cz(1, 2);
            jobs.push(BatchJob::new(Program::from_circuit(&c), vec![0, 1, 2]));
        }
        let batched = exec.run_batch(&jobs);
        let serial: Vec<RunOutput> = jobs
            .iter()
            .map(|j| exec.run(&j.program, &j.measured))
            .collect();
        assert_eq!(batched.len(), serial.len());
        for (b, s) in batched.iter().zip(&serial) {
            assert_eq!(b.gates, s.gates);
            assert_eq!(b.two_qubit_gates, s.two_qubit_gates);
            for (x, y) in b.dist.iter().zip(&s.dist) {
                assert!((x - y).abs() < 1e-12, "batch {x} vs serial {y}");
            }
        }
    }

    #[test]
    fn run_batch_matches_serial_on_trajectory_backend() {
        // Trajectory results are seed-deterministic and thread-invariant,
        // so the batch fan-out must agree bit-for-bit with serial runs.
        let noise = NoiseModel::depolarizing(0.01, 0.05);
        let cfg = TrajectoryConfig {
            n_trajectories: 2_000,
            seed: 7,
            n_threads: None,
        };
        let exec = Executor::with_backend(noise, Backend::Trajectory(cfg));
        let mut jobs = Vec::new();
        for k in 0..4 {
            let mut c = Circuit::new(2);
            c.h(0).ry(1, 0.3 + 0.2 * k as f64).cx(0, 1);
            jobs.push(BatchJob::new(Program::from_circuit(&c), vec![0, 1]));
        }
        let batched = exec.run_batch(&jobs);
        let serial: Vec<RunOutput> = jobs
            .iter()
            .map(|j| exec.run(&j.program, &j.measured))
            .collect();
        for (b, s) in batched.iter().zip(&serial) {
            for (x, y) in b.dist.iter().zip(&s.dist) {
                assert!((x - y).abs() < 1e-12, "batch {x} vs serial {y}");
            }
        }
    }

    #[test]
    fn sampled_counts_are_seed_stable_and_total_shots() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let prog = Program::from_circuit(&c);
        let exec = Executor::with_backend(
            NoiseModel::ideal().with_readout(0.05),
            Backend::DensityMatrix,
        );
        let shots = 40_000; // exercises the multi-stream path
        let a = exec.sampled_counts(&prog, &[0, 1], shots, 11);
        let b = exec.sampled_counts(&prog, &[0, 1], shots, 11);
        assert_eq!(a, b, "same seed must reproduce counts");
        assert_eq!(a.iter().sum::<u64>(), shots as u64);
        let c2 = exec.sampled_counts(&prog, &[0, 1], shots, 12);
        assert_ne!(a, c2, "different seeds should differ");
    }
}
