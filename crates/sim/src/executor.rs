//! High-level execution: the [`Runner`] abstraction, noisy distributions,
//! readout and parallel batched execution.
//!
//! The [`Executor`] mirrors the role of Qiskit's `AerSimulator` in the
//! paper's artifact: callers hand it programs, it resolves a
//! [`crate::backend::BackendEngine`] per program (exact density matrix for
//! small registers, trajectories for large ones), applies the gate noise
//! and terminal readout error, and returns outcome distributions.
//!
//! Mitigation workloads are ensembles: one QSPC check alone runs
//! `preps × bases` independent circuits. [`Runner::run_batch`] is the
//! throughput path for those — the default implementation is a serial
//! loop, and [`Executor`] overrides it to fan the jobs out over scoped
//! threads with the machine's parallelism split between the jobs and each
//! job's internal trajectory workers.

use crate::backend::{self, BackendEngine, EngineState};
use crate::classify::ProgramProfile;
use crate::density::DensityMatrix;
use crate::noise::{apply_readout, NoiseModel};
use crate::program::{Op, Program};
use crate::statevector::StateVector;
use crate::trie::{ExecutionTrie, TrieStats};
use qt_dist::{Counts, Distribution};
use std::collections::BTreeMap;
use std::sync::OnceLock;

pub use crate::backend::Backend;

/// The result of one program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// Noisy outcome distribution over the measured qubits.
    pub dist: Distribution,
    /// Gates actually executed (post-transpilation where applicable).
    pub gates: usize,
    /// Multi-qubit gates actually executed.
    pub two_qubit_gates: usize,
}

/// The result of one finite-shot program execution: sampled measurement
/// counts instead of an exact distribution — what hardware (and the
/// paper's cost accounting, which is denominated in shots) returns.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledOutput {
    /// Per-outcome counts over the measured qubits (same indexing as
    /// [`RunOutput::dist`]); their total is `shots`.
    pub counts: Counts,
    /// Shots sampled for this job.
    pub shots: usize,
    /// Gates actually executed (post-transpilation where applicable).
    pub gates: usize,
    /// Multi-qubit gates actually executed.
    pub two_qubit_gates: usize,
}

impl SampledOutput {
    /// Draws `shots` multinomial samples from an executed job's noisy
    /// distribution — the dist-then-sample step shared by every finite-shot
    /// path. Deterministic in `(out.dist, shots, seed)` alone, so batched,
    /// serial and re-ordered executions agree bit for bit.
    pub fn from_run(out: &RunOutput, shots: usize, seed: u64) -> SampledOutput {
        SampledOutput {
            counts: sample_counts_deterministic(&out.dist, shots, seed, 1),
            shots,
            gates: out.gates,
            two_qubit_gates: out.two_qubit_gates,
        }
    }

    /// The plug-in [`RunOutput`]: empirical frequencies (uniform when no
    /// shots were recorded, consistent with normalizing a zero-mass
    /// distribution). Gate statistics carry over unchanged.
    pub fn to_run_output(&self) -> RunOutput {
        RunOutput {
            dist: self.counts.to_distribution(),
            gates: self.gates,
            two_qubit_gates: self.two_qubit_gates,
        }
    }

    /// Merges another round's counts for the *same* job into this output —
    /// the pilot-absorption primitive of multi-round sessions: counts add
    /// outcome-wise ([`Counts::absorb`]) and the shot totals sum, so no
    /// sampled shot is ever discarded between rounds. Gate statistics
    /// describe one execution of the job and are identical across rounds;
    /// they stay as recorded.
    ///
    /// # Panics
    ///
    /// Panics if the outcome spaces differ (different measured widths —
    /// these are not the same job).
    pub fn absorb(&mut self, other: &SampledOutput) {
        self.counts.absorb(&other.counts);
        self.shots += other.shots;
    }
}

/// Per-job shot allocation of one [`Runner::run_batch_sampled`] submission.
/// Allocation *policies* (splitting a total budget across a mitigation
/// plan's deduplicated programs) live upstream in `qt-core`; the executor
/// only needs the final per-job counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShotPlan {
    per_job: Vec<usize>,
}

impl ShotPlan {
    /// The same shot count for every job.
    pub fn uniform(n_jobs: usize, shots_each: usize) -> Self {
        ShotPlan {
            per_job: vec![shots_each; n_jobs],
        }
    }

    /// Explicit per-job shot counts.
    pub fn from_shots(per_job: Vec<usize>) -> Self {
        ShotPlan { per_job }
    }

    /// Number of jobs the plan covers.
    pub fn n_jobs(&self) -> usize {
        self.per_job.len()
    }

    /// Shots allocated to `job`.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    pub fn shots(&self, job: usize) -> usize {
        self.per_job[job]
    }

    /// The per-job shot counts, in job order.
    pub fn per_job(&self) -> &[usize] {
        &self.per_job
    }

    /// Total shots across all jobs.
    pub fn total_shots(&self) -> u64 {
        self.per_job.iter().map(|&s| s as u64).sum()
    }

    /// The job-wise sum of two allocations over the same batch — what a
    /// multi-round session has spent *in total* after merging a pilot
    /// round into the final one.
    ///
    /// # Panics
    ///
    /// Panics if the plans cover different job counts.
    pub fn merge(&self, other: &ShotPlan) -> ShotPlan {
        assert_eq!(
            self.per_job.len(),
            other.per_job.len(),
            "cannot merge shot plans over different batches"
        );
        ShotPlan {
            per_job: self
                .per_job
                .iter()
                .zip(&other.per_job)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

/// The per-job sampling seed of a batched finite-shot submission: a
/// SplitMix64-style avalanche over `(seed, index)`, decorrelating jobs from
/// each other *and* from the per-stream offsets inside one job's sampler
/// (which are additive in the raw seed).
///
/// Public because fallible execution paths (`qt_core`'s
/// `execute_sampled_fallible`) sample retried jobs *after* exact
/// re-execution and must reuse the seed of each job's original submission
/// index to stay bit-identical to the fault-free run.
pub fn job_sample_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed
        ^ (index as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x243f_6a88_85a3_08d3);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Samples `shots` outcomes from a [`Distribution`] in a fixed number of
/// independent seeded streams. The stream layout is a function of the shot
/// count alone and each stream owns its own RNG, so the counts depend only
/// on `(dist, shots, seed)` — never on `threads` (which bounds the worker
/// fan-out, not the result) or the machine's core count.
///
/// The inverse-CDF table covers only the distribution's nonzero support,
/// so sampling a sparse wide-register distribution never materialises its
/// `2^n_bits` outcome space.
pub fn sample_counts_deterministic(
    dist: &Distribution,
    shots: usize,
    seed: u64,
    threads: usize,
) -> Counts {
    use rand::{RngExt, SeedableRng};
    let mut cdf: Vec<(u64, f64)> = Vec::with_capacity(dist.support_len());
    let mut acc = 0.0;
    for (idx, p) in dist.iter() {
        acc += p.max(0.0);
        cdf.push((idx, acc));
    }
    let total = acc;
    let streams = if shots >= 1 << 14 { 8 } else { 1 };
    let chunk = shots.div_ceil(streams);
    let partials = backend::parallel_indexed(streams, threads.clamp(1, streams), |s| {
        let lo = s * chunk;
        let hi = ((s + 1) * chunk).min(shots);
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            seed.wrapping_add((s as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        let mut part: BTreeMap<u64, u64> = BTreeMap::new();
        if total > 0.0 {
            for _ in lo..hi {
                let r = rng.random::<f64>() * total;
                let k = cdf.partition_point(|&(_, c)| c <= r).min(cdf.len() - 1);
                *part.entry(cdf[k].0).or_insert(0) += 1;
            }
        }
        part
    });
    let mut merged: BTreeMap<u64, u64> = BTreeMap::new();
    for part in partials {
        for (idx, c) in part {
            *merged.entry(idx).or_insert(0) += c;
        }
    }
    Counts::try_from_entries(dist.n_bits(), merged.into_iter().collect())
        .expect("sampled outcomes lie in the distribution's own outcome space")
}

/// One independent unit of work for [`Runner::run_batch`].
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// The program to execute.
    pub program: Program,
    /// The measured qubits (bit `i` of the outcome index = `measured[i]`).
    pub measured: Vec<usize>,
    /// Cached [`JobKey`], computed on first use.
    key: OnceLock<JobKey>,
    /// Cached [`ProgramProfile`], computed on first use (engine selection
    /// consults it once per job instead of rescanning the op stream).
    profile: OnceLock<ProgramProfile>,
}

/// A 128-bit structural hash of a `(program, measured)` pair — the
/// deduplication key of [`BatchJob`]. Two jobs with equal keys execute
/// identically on any deterministic runner, so one result can be fanned
/// out to both.
///
/// The key hashes the job's *structure* (op tags, gate variants, `f64`
/// parameter bits, operand lists, reset kets) in a single allocation-free
/// pass, replacing the old `format!("{measured:?}|{program:?}")` string
/// key whose construction was `O(|program|)` allocation per intern. The
/// mapping structure → 128 bits is not injective in principle, but
/// [`JobInterner`] debug-asserts every key hit against the old
/// collision-free string form, so a collision cannot slip through a
/// tested build silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(u128);

impl JobKey {
    /// The raw 128 key bits — seed material for callers that want
    /// job-identity-derived randomness (e.g. finite-shot harnesses that
    /// give equal jobs equal sample noise regardless of submission order).
    pub fn bits(self) -> u128 {
        self.0
    }
}

/// Two-lane 64-bit mixing hasher behind [`JobKey`] (xorshift-multiply
/// avalanche per word, distinct seeds and multipliers per lane).
struct KeyHasher {
    a: u64,
    b: u64,
}

impl KeyHasher {
    fn new() -> Self {
        KeyHasher {
            a: 0x243f_6a88_85a3_08d3,
            b: 0x1319_8a2e_0370_7344,
        }
    }

    #[inline]
    fn mix(x: u64, k: u64) -> u64 {
        let mut h = x.wrapping_mul(k);
        h ^= h >> 29;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^ (h >> 32)
    }

    #[inline]
    fn word(&mut self, w: u64) {
        self.a = Self::mix(self.a ^ w, 0x9e37_79b9_7f4a_7c15);
        self.b = Self::mix(self.b ^ w.rotate_left(31), 0xc2b2_ae3d_27d4_eb4f);
    }

    fn finish(self) -> JobKey {
        JobKey(((self.a as u128) << 64) | self.b as u128)
    }
}

impl BatchJob {
    /// Creates a job.
    pub fn new(program: Program, measured: impl Into<Vec<usize>>) -> Self {
        BatchJob {
            program,
            measured: measured.into(),
            key: OnceLock::new(),
            profile: OnceLock::new(),
        }
    }

    /// The structural deduplication key of a `(program, measured)` pair
    /// (see [`JobKey`]).
    pub fn key_of(program: &Program, measured: &[usize]) -> JobKey {
        let mut h = KeyHasher::new();
        h.word(measured.len() as u64);
        for &m in measured {
            h.word(m as u64);
        }
        h.word(program.n_qubits() as u64);
        h.word(program.ops().len() as u64);
        for op in program.ops() {
            match op {
                Op::Gate(i) | Op::IdealGate(i) => {
                    h.word(if matches!(op, Op::Gate(_)) { 0 } else { 1 });
                    let (tag, params) = i.gate.structural_encoding();
                    h.word(tag as u64);
                    for p in params {
                        h.word(p.to_bits());
                    }
                    h.word(i.qubits.len() as u64);
                    for &q in &i.qubits {
                        h.word(q as u64);
                    }
                }
                Op::Reset { qubits, ket } => {
                    h.word(2);
                    h.word(qubits.len() as u64);
                    for &q in qubits {
                        h.word(q as u64);
                    }
                    for c in ket {
                        h.word(c.re.to_bits());
                        h.word(c.im.to_bits());
                    }
                }
            }
        }
        h.finish()
    }

    /// The [`BatchJob::key_of`] key of this job, computed once and cached.
    /// Jobs must not be mutated after their key has been read — debug
    /// builds re-derive the key on every call and assert it unchanged, so
    /// a stale cache fails loudly instead of silently fanning results out
    /// to the wrong program.
    pub fn dedup_key(&self) -> JobKey {
        let key = *self
            .key
            .get_or_init(|| Self::key_of(&self.program, &self.measured));
        debug_assert_eq!(
            key,
            Self::key_of(&self.program, &self.measured),
            "BatchJob mutated after its dedup key was read"
        );
        key
    }

    /// The structural [`ProgramProfile`] of this job's program, computed
    /// once and cached. Like [`BatchJob::dedup_key`], jobs must not be
    /// mutated after the profile has been read — debug builds re-derive it
    /// on every call and assert it unchanged.
    pub fn profile(&self) -> &ProgramProfile {
        let profile = self
            .profile
            .get_or_init(|| ProgramProfile::of(&self.program));
        debug_assert_eq!(
            *profile,
            ProgramProfile::of(&self.program),
            "BatchJob mutated after its profile was read"
        );
        profile
    }

    /// The pre-`JobKey` collision-free string form, kept as the
    /// debug-build oracle the interner checks key hits against.
    #[cfg(debug_assertions)]
    fn oracle_string(&self) -> String {
        format!("{:?}|{:?}", self.measured, self.program)
    }
}

/// Prefix-sharing statistics of one combined batch: jobs grouped by
/// register size (the coarsest grouping `run_batch_trie` ever uses) and
/// folded into execution tries, with each group's [`TrieStats`] absorbed
/// into one total. This is the drain-time instrumentation hook for batch
/// front-ends (e.g. `qt-serve`) that merge jobs from unrelated requests
/// and want to report how much circuit prefix the merge actually shared —
/// it builds the tries for counting only and executes nothing.
pub fn batch_trie_stats(jobs: &[BatchJob]) -> TrieStats {
    let mut by_width: BTreeMap<usize, Vec<&Program>> = BTreeMap::new();
    for job in jobs {
        by_width
            .entry(job.program.n_qubits())
            .or_default()
            .push(&job.program);
    }
    let mut stats = TrieStats::default();
    for group in by_width.values() {
        stats.absorb(&ExecutionTrie::build(group).stats());
    }
    stats
}

/// Interns jobs by [`BatchJob::dedup_key`]: equal jobs map to one table
/// slot, so a deduplicated batch executes each distinct program once and
/// fans the result back out (sound because every [`Runner`] here is a
/// deterministic function of the job). Shared by the staged pipelines in
/// `qt-core` and `qt-baselines`.
///
/// Debug builds additionally record each key's collision-free string form
/// and assert it on every key hit, so a [`JobKey`] hash collision fails
/// loudly instead of silently merging distinct jobs.
#[derive(Debug, Default)]
pub struct JobInterner {
    index: std::collections::HashMap<JobKey, usize>,
    #[cfg(debug_assertions)]
    oracle: std::collections::HashMap<JobKey, String>,
}

impl JobInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the slot of `job` in `table`, appending `make(job)` when the
    /// job is new. The `bool` is `true` for fresh entries.
    pub fn intern_with<T>(
        &mut self,
        table: &mut Vec<T>,
        job: BatchJob,
        make: impl FnOnce(BatchJob) -> T,
    ) -> (usize, bool) {
        let key = job.dedup_key();
        if let Some(&slot) = self.index.get(&key) {
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                self.oracle[&key],
                job.oracle_string(),
                "JobKey collision: distinct jobs hashed identically"
            );
            (slot, false)
        } else {
            #[cfg(debug_assertions)]
            self.oracle.insert(key, job.oracle_string());
            let slot = table.len();
            self.index.insert(key, slot);
            table.push(make(job));
            (slot, true)
        }
    }

    /// [`JobInterner::intern_with`] for a plain job table.
    pub fn intern(&mut self, table: &mut Vec<BatchJob>, job: BatchJob) -> usize {
        self.intern_with(table, job, |j| j).0
    }
}

/// Anything that can execute a [`Program`] and return a noisy outcome
/// distribution: the plain [`Executor`] here, or a transpiling device
/// executor (`qt-device`) that first maps the program onto a physical
/// topology.
pub trait Runner {
    /// Executes `program`, returning the noisy distribution over `measured`
    /// (bit `i` of the outcome index = `measured[i]`) plus gate statistics.
    fn run(&self, program: &Program, measured: &[usize]) -> RunOutput;

    /// Executes a batch of independent jobs, returning outputs in job
    /// order. The default implementation is a serial loop; concurrent
    /// implementations must preserve per-job results exactly (every engine
    /// here is deterministic given its seed, so batched and serial
    /// execution agree bit-for-bit).
    fn run_batch(&self, jobs: &[BatchJob]) -> Vec<RunOutput> {
        jobs.iter()
            .map(|j| self.run(&j.program, &j.measured))
            .collect()
    }

    /// Executes `program` at a finite shot budget: the noisy distribution
    /// is computed as in [`Runner::run`], then `shots` outcomes are drawn
    /// from it (dist-then-multinomial). Counts depend only on the job and
    /// `(shots, seed)` — stable across machines and thread counts.
    fn run_sampled(
        &self,
        program: &Program,
        measured: &[usize],
        shots: usize,
        seed: u64,
    ) -> SampledOutput {
        self.run_batch_sampled(
            &[BatchJob::new(program.clone(), measured)],
            &ShotPlan::uniform(1, shots),
            seed,
        )
        .remove(0)
    }

    /// Executes a batch of independent jobs at finite shot budgets,
    /// returning sampled counts in job order. The default implementation
    /// runs the batch through [`Runner::run_batch`] — inheriting whatever
    /// batching the runner does (deduplication, prefix sharing,
    /// transpilation grouping) — and then samples each job's terminal
    /// distribution with a per-index seed, so results are bit-identical
    /// for any scheduling of the same job list.
    ///
    /// # Panics
    ///
    /// Panics if `shots` does not cover exactly `jobs.len()` jobs (callers
    /// with fallible plumbing validate first — see
    /// `qt_core::MitigationPlan::execute_sampled`).
    fn run_batch_sampled(
        &self,
        jobs: &[BatchJob],
        shots: &ShotPlan,
        seed: u64,
    ) -> Vec<SampledOutput> {
        assert_eq!(
            jobs.len(),
            shots.n_jobs(),
            "shot plan covers a different number of jobs than submitted"
        );
        self.run_batch(jobs)
            .iter()
            .enumerate()
            .map(|(i, out)| SampledOutput::from_run(out, shots.shots(i), job_sample_seed(seed, i)))
            .collect()
    }

    /// The engine mix this runner would use for `jobs`: `(engine name, job
    /// count)` pairs sorted by name, or `None` for runners without engine
    /// introspection (the default). Reporting only — never affects
    /// execution.
    fn engine_mix(&self, _jobs: &[BatchJob]) -> Option<Vec<(String, usize)>> {
        None
    }

    /// The fallible batch surface: one `Result` per job, in job order.
    /// Runners that can observe per-job failure (device backends, the
    /// fault-injecting [`crate::ChaosRunner`]) override this to return
    /// typed [`crate::RunError`]s; the default rides the infallible
    /// [`Runner::run_batch`], so every existing runner keeps working
    /// unchanged and simply never reports a failure.
    ///
    /// Contract: the returned vector has exactly `jobs.len()` entries, and
    /// every `Ok` output is bit-identical to what the infallible path
    /// would produce for that job — failure handling must never perturb
    /// healthy results.
    fn try_run_batch(&self, jobs: &[BatchJob]) -> Vec<Result<RunOutput, crate::RunError>> {
        self.run_batch(jobs).into_iter().map(Ok).collect()
    }

    /// Fallible finite-shot batch surface. Mirrors
    /// [`Runner::run_batch_sampled`]: exact distributions come from
    /// [`Runner::try_run_batch`], then each successful job is sampled with
    /// its index-derived seed — so the `Ok` entries are bit-identical to
    /// the infallible sampled path regardless of which other jobs failed.
    ///
    /// # Panics
    ///
    /// Panics if `shots` does not cover exactly `jobs.len()` jobs.
    fn try_run_batch_sampled(
        &self,
        jobs: &[BatchJob],
        shots: &ShotPlan,
        seed: u64,
    ) -> Vec<Result<SampledOutput, crate::RunError>> {
        assert_eq!(
            jobs.len(),
            shots.n_jobs(),
            "shot plan covers a different number of jobs than submitted"
        );
        self.try_run_batch(jobs)
            .into_iter()
            .enumerate()
            .map(|(i, res)| {
                res.map(|out| {
                    SampledOutput::from_run(&out, shots.shots(i), job_sample_seed(seed, i))
                })
            })
            .collect()
    }
}

/// How [`Executor::run_batch`] schedules a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchPolicy {
    /// Fold the batch into a prefix-sharing [`ExecutionTrie`] and evolve
    /// shared op prefixes once, checkpoint/forking engine states at branch
    /// points (the default; see [`crate::trie`]). Jobs resolved to
    /// stochastic engines fall back to per-job execution automatically.
    Trie {
        /// Bound on simultaneously held engine states per trie walk;
        /// `None` derives one from the state size (≈ 256 MiB of
        /// checkpoints, between 1 and 64 states). When the bound is hit
        /// the scheduler re-simulates instead of checkpointing, so memory
        /// stays bounded at the price of repeated gate work.
        max_live_states: Option<usize>,
    },
    /// One independent execution per job (the pre-trie behaviour, kept as
    /// the benchmark baseline).
    PerJob,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::Trie {
            max_live_states: None,
        }
    }
}

/// An invalid [`Executor`] batch configuration, rejected at configuration
/// time. Before this error existed, `BatchPolicy::Trie { max_live_states:
/// Some(0) }` was silently clamped to 1 deep inside the trie walk — the
/// caller asked for an impossible budget and got replay-everything
/// behaviour with no signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchConfigError {
    /// `max_live_states` must be at least 1: the walked state itself is
    /// always live.
    ZeroLiveStateBudget,
}

impl std::fmt::Display for BatchConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchConfigError::ZeroLiveStateBudget => write!(
                f,
                "max_live_states must be >= 1 (the walked state is always live); \
                 use None for the automatic budget"
            ),
        }
    }
}

impl std::error::Error for BatchConfigError {}

/// Largest measured-qubit set the *dense-table* execution paths (the
/// trajectory engine's per-shot accumulator, noisy readout convolution)
/// will allocate a `2^m` vector for (`2^26` f64 entries is 512 MiB).
/// Mirrors [`qt_dist::DEFAULT_DENSE_CAP_BITS`]. Sparse-native engines
/// (stabilizer, sparse statevector) emit [`Distribution`]s over their
/// nonzero support directly and are *not* bound by this cap — a 32-qubit
/// low-entanglement job can measure all 32 qubits.
pub const MAX_MEASURED_BITS: usize = 26;

/// Total bytes of checkpoint states the automatic `max_live_states`
/// derivation budgets per trie walk.
const CHECKPOINT_BUDGET_BYTES: usize = 1 << 28; // 256 MiB

/// The automatic live-state bound: as many states as the byte budget
/// affords (conservatively sized as density matrices), clamped to
/// `[1, 64]`.
fn auto_live_states(n_qubits: usize) -> usize {
    // 16-byte amplitudes, 4^n of them for a density matrix.
    let state_bytes = match 1usize.checked_shl(2 * n_qubits as u32) {
        Some(amps) => amps.saturating_mul(16),
        None => usize::MAX,
    };
    (CHECKPOINT_BUDGET_BYTES / state_bytes.max(1)).clamp(1, 64)
}

impl Runner for Executor {
    fn run(&self, program: &Program, measured: &[usize]) -> RunOutput {
        RunOutput {
            dist: self.noisy_distribution(program, measured),
            gates: program.gate_count(),
            two_qubit_gates: program.two_qubit_gate_count(),
        }
    }

    /// Executes the batch under the configured [`BatchPolicy`]: the
    /// default trie path shares every common op prefix across jobs
    /// (bit-identical to per-job execution — see [`crate::trie`]), with
    /// parallelism split across independent trie subtrees; the per-job
    /// path fans whole jobs out over scoped threads under the shared
    /// [`backend::batch_split`] policy.
    fn run_batch(&self, jobs: &[BatchJob]) -> Vec<RunOutput> {
        match self.batch {
            BatchPolicy::PerJob => self.run_batch_per_job(jobs),
            BatchPolicy::Trie { max_live_states } => self.run_batch_trie(jobs, max_live_states),
        }
    }

    /// The finite-shot batch path: terminal distributions come from the
    /// configured [`BatchPolicy`] — under the default trie policy every
    /// shared op prefix still evolves once, so prefix sharing and plan-level
    /// dedup fan-out carry over to sampling — and the per-job multinomial
    /// draws then fan out over scoped threads. Per-job seeds depend only on
    /// the job's index, so the counts are bit-identical to the serial
    /// default for any worker count and either batch policy.
    fn run_batch_sampled(
        &self,
        jobs: &[BatchJob],
        shots: &ShotPlan,
        seed: u64,
    ) -> Vec<SampledOutput> {
        assert_eq!(
            jobs.len(),
            shots.n_jobs(),
            "shot plan covers a different number of jobs than submitted"
        );
        let outs = self.run_batch(jobs);
        let workers = backend::available_threads().min(jobs.len().max(1));
        backend::parallel_indexed(jobs.len(), workers, |i| {
            SampledOutput::from_run(&outs[i], shots.shots(i), job_sample_seed(seed, i))
        })
    }

    fn engine_mix(&self, jobs: &[BatchJob]) -> Option<Vec<(String, usize)>> {
        Some(self.engine_mix_of(jobs))
    }
}

/// One independent unit of scheduled batch work: a trie subtree (shared
/// prefixes inside, nothing shared across subtrees) or a whole fallback
/// job.
enum BatchUnit {
    Subtree { group: usize, child: usize },
    Fallback { job: usize },
}

/// One fork-capable batch group: jobs whose compacted programs share a
/// register size and engine fork class, folded into one trie.
struct BatchGroup {
    /// Batch indices, aligned with the trie's job numbering.
    jobs: Vec<usize>,
    trie: ExecutionTrie,
    /// Compacted measured qubits per trie job.
    measured: Vec<Vec<usize>>,
    n_qubits: usize,
    class: u8,
    /// The engine the group's jobs resolved to. A fork class pins the
    /// state representation, so any engine producing the same class yields
    /// bit-identical snapshots — the first job's engine stands for all.
    engine: crate::backend::ResolvedEngine,
}

/// A noisy-circuit executor.
///
/// # Example
///
/// ```
/// use qt_sim::{Executor, NoiseModel, Program};
/// use qt_circuit::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let exec = Executor::new(NoiseModel::depolarizing(0.001, 0.01).with_readout(0.02));
/// let dist = exec.noisy_distribution(&Program::from_circuit(&c), &[0, 1]);
/// assert!((dist.total() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Executor {
    noise: NoiseModel,
    backend: Backend,
    batch: BatchPolicy,
}

impl Executor {
    /// Creates an executor with the default (auto) backend.
    pub fn new(noise: NoiseModel) -> Self {
        Executor {
            noise,
            backend: Backend::default(),
            batch: BatchPolicy::default(),
        }
    }

    /// Creates an executor with an explicit backend.
    pub fn with_backend(noise: NoiseModel, backend: Backend) -> Self {
        Executor {
            noise,
            backend,
            batch: BatchPolicy::default(),
        }
    }

    /// Returns a copy using the given batch-scheduling policy.
    ///
    /// # Errors
    ///
    /// [`BatchConfigError::ZeroLiveStateBudget`] for
    /// `BatchPolicy::Trie { max_live_states: Some(0) }` — a zero budget
    /// cannot hold even the walked state, and used to degrade silently to
    /// replay-everything instead of being rejected here.
    pub fn with_batch_policy(mut self, batch: BatchPolicy) -> Result<Self, BatchConfigError> {
        if let BatchPolicy::Trie {
            max_live_states: Some(0),
        } = batch
        {
            return Err(BatchConfigError::ZeroLiveStateBudget);
        }
        self.batch = batch;
        Ok(self)
    }

    /// The noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The batch-scheduling policy.
    pub fn batch_policy(&self) -> BatchPolicy {
        self.batch
    }

    /// The pre-trie per-job batch path: fans whole jobs out over scoped
    /// threads, splitting the machine between concurrent jobs and each
    /// job's internal workers.
    fn run_batch_per_job(&self, jobs: &[BatchJob]) -> Vec<RunOutput> {
        let (workers, inner) = backend::batch_split(jobs.len());
        if workers <= 1 {
            return jobs
                .iter()
                .map(|j| self.run(&j.program, &j.measured))
                .collect();
        }
        let per_job = Executor {
            noise: self.noise.clone(),
            backend: self.backend.with_thread_budget(inner),
            batch: self.batch,
        };
        backend::parallel_indexed(jobs.len(), workers, |i| {
            per_job.run(&jobs[i].program, &jobs[i].measured)
        })
    }

    /// The prefix-sharing batch path (see [`crate::trie`]).
    ///
    /// Per job, the same compaction the serial path applies yields the
    /// program the engine actually simulates; jobs whose resolved engine
    /// offers a fork class are grouped by `(register size, class)` and
    /// folded into execution tries, everything else (trajectory engines)
    /// falls back to per-job execution. Readout error and gate statistics
    /// use the *original* job, exactly as [`Executor::run`] does, so the
    /// outputs are bit-identical to the serial loop.
    fn run_batch_trie(&self, jobs: &[BatchJob], max_live_states: Option<usize>) -> Vec<RunOutput> {
        if jobs.is_empty() {
            return Vec::new();
        }
        // Stage 1: per-job compaction, identical to the serial path
        // (`None` = the job runs as-is; no clone needed).
        let prepared: Vec<Option<(Program, Vec<usize>)>> = jobs
            .iter()
            .map(|j| self.compacted(&j.program, &j.measured))
            .collect();
        let program_of =
            |i: usize| -> &Program { prepared[i].as_ref().map_or(&jobs[i].program, |(p, _)| p) };
        let measured_of =
            |i: usize| -> &[usize] { prepared[i].as_ref().map_or(&jobs[i].measured, |(_, m)| m) };

        // Stage 2: partition into fork-capable groups and fallback jobs.
        // Engine selection uses the cached job profile (structure is
        // invariant under compaction's qubit renaming) with the register
        // size of the program actually simulated.
        let mut by_class: BTreeMap<(usize, u8), Vec<usize>> = BTreeMap::new();
        let mut fallback: Vec<usize> = Vec::new();
        let mut resolved: Vec<Option<crate::backend::ResolvedEngine>> = vec![None; jobs.len()];
        for i in 0..jobs.len() {
            let p = program_of(i);
            let profile = ProgramProfile {
                n_qubits: p.n_qubits(),
                ..*jobs[i].profile()
            };
            let engine = self
                .backend
                .resolve_for(p.n_qubits(), &self.noise, &profile);
            match engine.fork_class(&self.noise, &profile) {
                Some(class) => {
                    resolved[i] = Some(engine);
                    by_class.entry((p.n_qubits(), class)).or_default().push(i);
                }
                None => fallback.push(i),
            }
        }
        let groups: Vec<BatchGroup> = by_class
            .into_iter()
            .map(|((n_qubits, class), idxs)| {
                let programs: Vec<&Program> = idxs.iter().map(|&i| program_of(i)).collect();
                let trie = ExecutionTrie::build(&programs);
                let measured = idxs.iter().map(|&i| measured_of(i).to_vec()).collect();
                let engine = resolved[idxs[0]].expect("grouped jobs have a resolved engine");
                BatchGroup {
                    jobs: idxs,
                    trie,
                    measured,
                    n_qubits,
                    class,
                    engine,
                }
            })
            .collect();

        // Stage 3: schedule. Units are independent trie subtrees plus the
        // fallback jobs; the machine is split across units, serial walks
        // within each.
        let mut units: Vec<BatchUnit> = Vec::new();
        for (gi, g) in groups.iter().enumerate() {
            for &child in g.trie.root_children() {
                units.push(BatchUnit::Subtree { group: gi, child });
            }
        }
        for &job in &fallback {
            units.push(BatchUnit::Fallback { job });
        }
        let budget_of = |g: &BatchGroup| {
            max_live_states
                .unwrap_or_else(|| auto_live_states(g.n_qubits))
                .max(1)
        };
        // One shared noise-model handle for every snapshot of the batch.
        let noise_arc = std::sync::Arc::new(self.noise.clone());
        let snapshot_of = |g: &BatchGroup| {
            let engine = g.engine;
            let (n_qubits, class) = (g.n_qubits, g.class);
            let noise = &noise_arc;
            move || {
                engine
                    .snapshot(n_qubits, noise, class)
                    .expect("fork class implies snapshot capability")
            }
        };

        let mut raw: Vec<Option<Distribution>> = vec![None; jobs.len()];
        let mut outs: Vec<Option<RunOutput>> = vec![None; jobs.len()];

        // Jobs with empty compacted programs end at the trie root and are
        // measured inline on a fresh state.
        for g in &groups {
            for &local in g.trie.root_jobs() {
                let state = snapshot_of(g)();
                raw[g.jobs[local]] = Some(state.raw_distribution(&g.measured[local]));
            }
        }

        // `parallel_indexed` degrades to a plain serial map for a single
        // worker, so one scheduling path serves both shapes; fallback
        // thread budgets only clamp below the full machine when several
        // units actually run at once (trajectory results are thread-count
        // invariant either way).
        let (workers, inner) = backend::batch_split(units.len());
        let per_job = Executor {
            noise: self.noise.clone(),
            backend: self.backend.with_thread_budget(inner),
            batch: self.batch,
        };
        enum UnitOutcome {
            Trie(Vec<(usize, Distribution)>),
            Job(usize, RunOutput),
        }
        let results = backend::parallel_indexed(units.len(), workers.max(1), |u| match &units[u] {
            BatchUnit::Subtree { group, child } => {
                let g = &groups[*group];
                let init = snapshot_of(g);
                let init: &(dyn Fn() -> Box<dyn EngineState> + Sync) = &init;
                let (dists, _) = g
                    .trie
                    .execute_subtree(*child, init, &g.measured, budget_of(g));
                UnitOutcome::Trie(
                    dists
                        .into_iter()
                        .enumerate()
                        .filter_map(|(local, d)| d.map(|d| (g.jobs[local], d)))
                        .collect(),
                )
            }
            BatchUnit::Fallback { job } => {
                UnitOutcome::Job(*job, per_job.run(&jobs[*job].program, &jobs[*job].measured))
            }
        });
        for r in results {
            match r {
                UnitOutcome::Trie(hits) => {
                    for (job, dist) in hits {
                        raw[job] = Some(dist);
                    }
                }
                UnitOutcome::Job(job, out) => outs[job] = Some(out),
            }
        }

        // Stage 4: readout + gate statistics from the original jobs.
        jobs.iter()
            .enumerate()
            .map(|(i, job)| match (outs[i].take(), raw[i].take()) {
                (Some(out), _) => out,
                (None, Some(dist)) => RunOutput {
                    dist: apply_readout(&dist, &job.measured, &self.noise.readout),
                    gates: job.program.gate_count(),
                    two_qubit_gates: job.program.two_qubit_gate_count(),
                },
                (None, None) => unreachable!("every batch job is scheduled exactly once"),
            })
            .collect()
    }

    /// The gate-noisy outcome distribution over `measured`, **without**
    /// readout error (bit `i` of the index = `measured[i]`).
    ///
    /// The program is first compacted onto its used qubits (plus `measured`)
    /// so that reduced ensemble circuits do not pay for idle wires, then
    /// handed to the engine the backend resolves for the compacted size.
    /// Engines that track a dense outcome table enforce
    /// [`MAX_MEASURED_BITS`] themselves (see
    /// [`crate::trajectory::run_distribution`]); sparse-native engines
    /// accept any measured set up to 64 bits.
    pub fn raw_distribution(&self, program: &Program, measured: &[usize]) -> Distribution {
        match self.compacted(program, measured) {
            Some((p, m)) => self
                .resolve_engine(&p)
                .raw_distribution(&p, &self.noise, &m),
            None => self
                .resolve_engine(program)
                .raw_distribution(program, &self.noise, measured),
        }
    }

    /// The engine [`Backend::resolve_for`] picks for a concrete program —
    /// the one definition the serial path, the trie partition and the
    /// engine-mix report all share.
    fn resolve_engine(&self, program: &Program) -> crate::backend::ResolvedEngine {
        let profile = ProgramProfile::of(program);
        self.backend
            .resolve_for(program.n_qubits(), &self.noise, &profile)
    }

    /// The engine name each job of a batch resolves to, aggregated into
    /// `(name, job count)` pairs sorted by name — the engine-mix record
    /// surfaced through plan statistics.
    pub fn engine_mix_of(&self, jobs: &[BatchJob]) -> Vec<(String, usize)> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for job in jobs {
            let name = match self.compacted(&job.program, &job.measured) {
                Some((p, _)) => self.resolve_engine(&p).name(),
                None => self.resolve_engine(&job.program).name(),
            };
            *counts.entry(name).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .map(|(name, n)| (name.to_string(), n))
            .collect()
    }

    /// The compacted `(program, measured)` this executor would simulate
    /// for a job, or `None` when the job runs as-is. One definition for
    /// the serial and the trie-batched path, so both simulate exactly the
    /// same program.
    fn compacted(&self, program: &Program, measured: &[usize]) -> Option<(Program, Vec<usize>)> {
        // Compaction renames qubits, so it is only sound when the noise
        // model is uniform (no per-qubit/per-edge calibration).
        let uniform = self.noise.per_qubit.is_empty()
            && self.noise.per_edge.is_empty()
            && self.noise.readout.per_qubit.is_empty();
        if uniform {
            compact(program, measured)
        } else {
            None
        }
    }

    /// The full noisy outcome distribution over `measured`: gate noise plus
    /// readout error (including measurement crosstalk scaled by the number
    /// of simultaneously measured qubits).
    ///
    /// Readout is applied with the *original* qubit identities, so per-qubit
    /// readout calibration survives compaction.
    pub fn noisy_distribution(&self, program: &Program, measured: &[usize]) -> Distribution {
        let raw = self.raw_distribution(program, measured);
        apply_readout(&raw, measured, &self.noise.readout)
    }

    /// Samples `shots` measurement outcomes from the noisy distribution —
    /// the finite-shot pipeline the paper's hardware runs use (100 000
    /// shots per circuit). Returns per-outcome counts over `measured`.
    ///
    /// Large shot counts are drawn in a fixed number of independent streams
    /// executed across threads; the counts depend only on `seed` (never on
    /// the machine's core count).
    pub fn sampled_counts(
        &self,
        program: &Program,
        measured: &[usize],
        shots: usize,
        seed: u64,
    ) -> Counts {
        let dist = self.noisy_distribution(program, measured);
        sample_counts_deterministic(&dist, shots, seed, backend::available_threads())
    }

    /// Runs the program on the exact density-matrix engine.
    ///
    /// # Panics
    ///
    /// Panics if the register exceeds [`crate::density::MAX_QUBITS`].
    pub fn run_dm(&self, program: &Program) -> DensityMatrix {
        backend::density_evolution(program, &self.noise)
    }
}

/// The noiseless outcome distribution of a program over `measured`.
///
/// Uses a pure-state simulation when the program has no resets, otherwise
/// the density-matrix engine.
pub fn ideal_distribution(program: &Program, measured: &[usize]) -> Distribution {
    let probs = if !program.has_resets() {
        let mut sv = StateVector::zero(program.n_qubits());
        for op in program.ops() {
            if let Op::Gate(i) | Op::IdealGate(i) = op {
                sv.apply_instruction(i);
            }
        }
        sv.marginal_probabilities(measured)
    } else {
        Executor::new(NoiseModel::ideal())
            .run_dm(program)
            .marginal_probabilities(measured)
    };
    Distribution::try_from_probs(measured.len(), probs)
        .expect("dense marginal fits its measured bit count")
}

/// Compacts a program onto its used qubits (always including `measured`).
/// Returns `None` when nothing would shrink. Qubit *identities are
/// preserved logically*: the caller still indexes results by the original
/// `measured` order; only the register is renamed internally, so this is
/// only valid for noise models without per-qubit overrides — the
/// [`Executor`] therefore skips compaction when overrides exist.
///
/// Compact indices are assigned in **first-use order** (by op stream, then
/// remaining measured qubits): two programs sharing an op prefix compact
/// that prefix identically even when their divergent suffixes touch
/// different qubit sets, so prefix sharing (see [`crate::trie`]) survives
/// compaction.
fn compact(program: &Program, measured: &[usize]) -> Option<(Program, Vec<usize>)> {
    let mut seen = vec![false; program.n_qubits()];
    let mut kept: Vec<usize> = Vec::new();
    let note = |q: usize, seen: &mut Vec<bool>, kept: &mut Vec<usize>| {
        if !seen[q] {
            seen[q] = true;
            kept.push(q);
        }
    };
    for op in program.ops() {
        match op {
            Op::Gate(i) | Op::IdealGate(i) => {
                for &q in &i.qubits {
                    note(q, &mut seen, &mut kept);
                }
            }
            Op::Reset { qubits, .. } => {
                for &q in qubits {
                    note(q, &mut seen, &mut kept);
                }
            }
        }
    }
    for &m in measured {
        note(m, &mut seen, &mut kept);
    }
    if kept.len() == program.n_qubits() {
        return None;
    }
    let mut map = vec![usize::MAX; program.n_qubits()];
    for (c, &q) in kept.iter().enumerate() {
        map[q] = c;
    }
    let mut out = Program::new(kept.len());
    for op in program.ops() {
        match op {
            Op::Gate(i) => {
                let qs = i.qubits.iter().map(|&q| map[q]).collect();
                out.push_gate(qt_circuit::Instruction::new(i.gate.clone(), qs));
            }
            Op::IdealGate(i) => {
                let qs = i.qubits.iter().map(|&q| map[q]).collect();
                out.push_ideal_gate(qt_circuit::Instruction::new(i.gate.clone(), qs));
            }
            Op::Reset { qubits, ket } => {
                let qs: Vec<usize> = qubits.iter().map(|&q| map[q]).collect();
                out.push_reset(&qs, ket.clone());
            }
        }
    }
    let m = measured.iter().map(|&q| map[q]).collect();
    Some((out, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::TrajectoryConfig;
    use qt_circuit::Circuit;

    #[test]
    fn dm_and_trajectory_backends_agree() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cz(1, 2).ry(2, 0.4);
        let prog = Program::from_circuit(&c);
        let noise = NoiseModel::depolarizing(0.01, 0.05).with_readout(0.03);
        let dm = Executor::with_backend(noise.clone(), Backend::DensityMatrix);
        let tj = Executor::with_backend(
            noise,
            Backend::Trajectory(TrajectoryConfig {
                n_trajectories: 30_000,
                seed: 9,
                n_threads: Some(2),
            }),
        );
        let a = dm.noisy_distribution(&prog, &[0, 1, 2]);
        let b = tj.noisy_distribution(&prog, &[0, 1, 2]);
        for i in 0..8 {
            let (x, y) = (a.prob(i), b.prob(i));
            assert!((x - y).abs() < 0.02, "{x} vs {y}");
        }
    }

    #[test]
    fn readout_error_applied_on_top_of_gates() {
        let mut c = Circuit::new(1);
        c.x(0);
        let prog = Program::from_circuit(&c);
        let exec = Executor::new(NoiseModel::ideal().with_readout(0.25));
        let dist = exec.noisy_distribution(&prog, &[0]);
        assert!((dist.prob(0) - 0.25).abs() < 1e-12);
        assert!((dist.prob(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ideal_distribution_matches_expected() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let prog = Program::from_circuit(&c);
        let dist = ideal_distribution(&prog, &[0, 1]);
        assert!((dist.prob(0) - 0.5).abs() < 1e-12);
        assert!((dist.prob(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ideal_distribution_with_resets_uses_dm() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut prog = Program::from_circuit(&c);
        prog.push_reset_state(&[0], qt_math::states::PrepState::Zero);
        let dist = ideal_distribution(&prog, &[0, 1]);
        assert!((dist.prob(0) - 0.5).abs() < 1e-12);
        assert!((dist.prob(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn crosstalk_reduces_when_measuring_fewer_qubits() {
        // Jigsaw's premise: measuring a subset sees less readout error.
        let mut c = Circuit::new(3);
        c.x(0).x(1).x(2);
        let prog = Program::from_circuit(&c);
        let noise = NoiseModel::ideal()
            .with_readout_model(crate::noise::ReadoutModel::with_crosstalk(0.01, 0.03));
        let exec = Executor::new(noise);
        let all = exec.noisy_distribution(&prog, &[0, 1, 2]);
        let sub = exec.noisy_distribution(&prog, &[0]);
        // P(correct) on qubit 0 alone must exceed marginal correctness when
        // measured jointly with two others.
        let p_joint_correct: f64 = all.iter().filter(|(i, _)| i & 1 == 1).map(|(_, p)| p).sum();
        assert!(sub.prob(1) > p_joint_correct + 0.02);
    }

    #[test]
    fn run_batch_matches_serial_execution_exactly() {
        let noise = NoiseModel::depolarizing(0.005, 0.02).with_readout(0.03);
        let exec = Executor::with_backend(noise, Backend::default());
        let mut jobs = Vec::new();
        for k in 0..12 {
            let mut c = Circuit::new(3);
            c.h(0).ry(1, 0.1 * k as f64).cx(0, 1).cz(1, 2);
            jobs.push(BatchJob::new(Program::from_circuit(&c), vec![0, 1, 2]));
        }
        let batched = exec.run_batch(&jobs);
        let serial: Vec<RunOutput> = jobs
            .iter()
            .map(|j| exec.run(&j.program, &j.measured))
            .collect();
        assert_eq!(batched.len(), serial.len());
        for (b, s) in batched.iter().zip(&serial) {
            assert_eq!(b.gates, s.gates);
            assert_eq!(b.two_qubit_gates, s.two_qubit_gates);
            for i in 0..8 {
                let (x, y) = (b.dist.prob(i), s.dist.prob(i));
                assert!((x - y).abs() < 1e-12, "batch {x} vs serial {y}");
            }
        }
    }

    #[test]
    fn run_batch_matches_serial_on_trajectory_backend() {
        // Trajectory results are seed-deterministic and thread-invariant,
        // so the batch fan-out must agree bit-for-bit with serial runs.
        let noise = NoiseModel::depolarizing(0.01, 0.05);
        let cfg = TrajectoryConfig {
            n_trajectories: 2_000,
            seed: 7,
            n_threads: None,
        };
        let exec = Executor::with_backend(noise, Backend::Trajectory(cfg));
        let mut jobs = Vec::new();
        for k in 0..4 {
            let mut c = Circuit::new(2);
            c.h(0).ry(1, 0.3 + 0.2 * k as f64).cx(0, 1);
            jobs.push(BatchJob::new(Program::from_circuit(&c), vec![0, 1]));
        }
        let batched = exec.run_batch(&jobs);
        let serial: Vec<RunOutput> = jobs
            .iter()
            .map(|j| exec.run(&j.program, &j.measured))
            .collect();
        for (b, s) in batched.iter().zip(&serial) {
            for i in 0..4 {
                let (x, y) = (b.dist.prob(i), s.dist.prob(i));
                assert!((x - y).abs() < 1e-12, "batch {x} vs serial {y}");
            }
        }
    }

    #[test]
    fn sampled_counts_are_seed_stable_and_total_shots() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let prog = Program::from_circuit(&c);
        let exec = Executor::with_backend(
            NoiseModel::ideal().with_readout(0.05),
            Backend::DensityMatrix,
        );
        let shots = 40_000; // exercises the multi-stream path
        let a = exec.sampled_counts(&prog, &[0, 1], shots, 11);
        let b = exec.sampled_counts(&prog, &[0, 1], shots, 11);
        assert_eq!(a, b, "same seed must reproduce counts");
        assert_eq!(a.shots(), shots as u64);
        let c2 = exec.sampled_counts(&prog, &[0, 1], shots, 12);
        assert_ne!(a, c2, "different seeds should differ");
    }
}
