//! High-level execution: backend selection, noisy distributions and readout.
//!
//! The [`Executor`] mirrors the role of Qiskit's `AerSimulator` in the
//! paper's artifact: callers hand it programs, it picks the exact
//! density-matrix engine for small registers and the trajectory engine for
//! large ones, applies the gate noise and terminal readout error, and
//! returns outcome distributions.

use crate::density::DensityMatrix;
use crate::noise::{apply_readout, NoiseModel};
use crate::program::{Op, Program};
use crate::statevector::StateVector;
use crate::trajectory::{self, TrajectoryConfig};
use qt_math::Matrix;

/// The result of one program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// Noisy outcome distribution over the measured qubits.
    pub dist: Vec<f64>,
    /// Gates actually executed (post-transpilation where applicable).
    pub gates: usize,
    /// Multi-qubit gates actually executed.
    pub two_qubit_gates: usize,
}

/// Anything that can execute a [`Program`] and return a noisy outcome
/// distribution: the plain [`Executor`] here, or a transpiling device
/// executor (`qt-device`) that first maps the program onto a physical
/// topology.
pub trait Runner {
    /// Executes `program`, returning the noisy distribution over `measured`
    /// (bit `i` of the outcome index = `measured[i]`) plus gate statistics.
    fn run(&self, program: &Program, measured: &[usize]) -> RunOutput;
}

impl Runner for Executor {
    fn run(&self, program: &Program, measured: &[usize]) -> RunOutput {
        RunOutput {
            dist: self.noisy_distribution(program, measured),
            gates: program.gate_count(),
            two_qubit_gates: program.two_qubit_gate_count(),
        }
    }
}

/// Simulation backend choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// Exact density-matrix simulation up to the given register size, then
    /// fall back to trajectories.
    Auto {
        /// Largest register simulated exactly.
        dm_max_qubits: usize,
        /// Trajectory settings for larger registers.
        trajectories: TrajectoryConfig,
    },
    /// Always use the density-matrix engine.
    DensityMatrix,
    /// Always use the trajectory engine.
    Trajectory(TrajectoryConfig),
}

impl Default for Backend {
    fn default() -> Self {
        Backend::Auto {
            dm_max_qubits: 10,
            trajectories: TrajectoryConfig::default(),
        }
    }
}

/// A noisy-circuit executor.
///
/// # Example
///
/// ```
/// use qt_sim::{Executor, NoiseModel, Program};
/// use qt_circuit::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let exec = Executor::new(NoiseModel::depolarizing(0.001, 0.01).with_readout(0.02));
/// let dist = exec.noisy_distribution(&Program::from_circuit(&c), &[0, 1]);
/// assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Executor {
    noise: NoiseModel,
    backend: Backend,
}

impl Executor {
    /// Creates an executor with the default (auto) backend.
    pub fn new(noise: NoiseModel) -> Self {
        Executor {
            noise,
            backend: Backend::default(),
        }
    }

    /// Creates an executor with an explicit backend.
    pub fn with_backend(noise: NoiseModel, backend: Backend) -> Self {
        Executor { noise, backend }
    }

    /// The noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The gate-noisy outcome distribution over `measured`, **without**
    /// readout error (bit `i` of the index = `measured[i]`).
    ///
    /// The program is first compacted onto its used qubits (plus `measured`)
    /// so that reduced ensemble circuits do not pay for idle wires.
    pub fn raw_distribution(&self, program: &Program, measured: &[usize]) -> Vec<f64> {
        // Compaction renames qubits, so it is only sound when the noise
        // model is uniform (no per-qubit/per-edge calibration).
        let uniform = self.noise.per_qubit.is_empty()
            && self.noise.per_edge.is_empty()
            && self.noise.readout.per_qubit.is_empty();
        let compacted = if uniform {
            compact(program, measured)
        } else {
            None
        };
        let (program, measured) = &match compacted {
            Some((p, m)) => (p, m),
            None => (program.clone(), measured.to_vec()),
        };
        let measured: &[usize] = measured;
        match self.backend {
            Backend::DensityMatrix => self.run_dm(program).marginal_probabilities(measured),
            Backend::Trajectory(cfg) => {
                trajectory::run_distribution(program, &self.noise, measured, &cfg)
            }
            Backend::Auto {
                dm_max_qubits,
                trajectories,
            } => {
                if program.n_qubits() <= dm_max_qubits {
                    self.run_dm(program).marginal_probabilities(measured)
                } else {
                    trajectory::run_distribution(program, &self.noise, measured, &trajectories)
                }
            }
        }
    }

    /// The full noisy outcome distribution over `measured`: gate noise plus
    /// readout error (including measurement crosstalk scaled by the number
    /// of simultaneously measured qubits).
    ///
    /// Readout is applied with the *original* qubit identities, so per-qubit
    /// readout calibration survives compaction.
    pub fn noisy_distribution(&self, program: &Program, measured: &[usize]) -> Vec<f64> {
        let raw = self.raw_distribution(program, measured);
        apply_readout(&raw, measured, &self.noise.readout)
    }

    /// Samples `shots` measurement outcomes from the noisy distribution —
    /// the finite-shot pipeline the paper's hardware runs use (100 000
    /// shots per circuit). Returns per-outcome counts over `measured`.
    pub fn sampled_counts(
        &self,
        program: &Program,
        measured: &[usize],
        shots: usize,
        seed: u64,
    ) -> Vec<u64> {
        use rand::SeedableRng;
        let dist = self.noisy_distribution(program, measured);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        crate::statevector::sample_from_probs(&dist, shots, &mut rng)
    }

    /// Runs the program on the exact density-matrix engine.
    ///
    /// # Panics
    ///
    /// Panics if the register exceeds [`crate::density::MAX_QUBITS`].
    pub fn run_dm(&self, program: &Program) -> DensityMatrix {
        let mut rho = DensityMatrix::zero(program.n_qubits());
        for op in program.ops() {
            match op {
                Op::Gate(instr) => {
                    rho.apply_instruction(instr);
                    for (qs, ch) in self.noise.channels_for(instr) {
                        rho.apply_channel(ch, &qs);
                    }
                }
                Op::IdealGate(instr) => rho.apply_instruction(instr),
                Op::Reset { qubits, ket } => {
                    let rho_small = ket_to_density(ket);
                    rho.reset_qubits(qubits, &rho_small);
                }
            }
        }
        rho
    }
}

/// The noiseless outcome distribution of a program over `measured`.
///
/// Uses a pure-state simulation when the program has no resets, otherwise
/// the density-matrix engine.
pub fn ideal_distribution(program: &Program, measured: &[usize]) -> Vec<f64> {
    if !program.has_resets() {
        let mut sv = StateVector::zero(program.n_qubits());
        for op in program.ops() {
            if let Op::Gate(i) | Op::IdealGate(i) = op {
                sv.apply_instruction(i);
            }
        }
        return sv.marginal_probabilities(measured);
    }
    Executor::new(NoiseModel::ideal())
        .run_dm(program)
        .marginal_probabilities(measured)
}

/// Compacts a program onto its used qubits (always including `measured`).
/// Returns `None` when nothing would shrink. Qubit *identities are
/// preserved logically*: the caller still indexes results by the original
/// `measured` order; only the register is renamed internally, so this is
/// only valid for noise models without per-qubit overrides — the
/// [`Executor`] therefore skips compaction when overrides exist.
fn compact(program: &Program, measured: &[usize]) -> Option<(Program, Vec<usize>)> {
    let mut used = vec![false; program.n_qubits()];
    for op in program.ops() {
        match op {
            Op::Gate(i) | Op::IdealGate(i) => {
                for &q in &i.qubits {
                    used[q] = true;
                }
            }
            Op::Reset { qubits, .. } => {
                for &q in qubits {
                    used[q] = true;
                }
            }
        }
    }
    for &m in measured {
        used[m] = true;
    }
    let kept: Vec<usize> = used
        .iter()
        .enumerate()
        .filter(|(_, &u)| u)
        .map(|(q, _)| q)
        .collect();
    if kept.len() == program.n_qubits() {
        return None;
    }
    let mut map = vec![usize::MAX; program.n_qubits()];
    for (c, &q) in kept.iter().enumerate() {
        map[q] = c;
    }
    let mut out = Program::new(kept.len());
    for op in program.ops() {
        match op {
            Op::Gate(i) => {
                let qs = i.qubits.iter().map(|&q| map[q]).collect();
                out.push_gate(qt_circuit::Instruction::new(i.gate.clone(), qs));
            }
            Op::IdealGate(i) => {
                let qs = i.qubits.iter().map(|&q| map[q]).collect();
                out.push_ideal_gate(qt_circuit::Instruction::new(i.gate.clone(), qs));
            }
            Op::Reset { qubits, ket } => {
                let qs: Vec<usize> = qubits.iter().map(|&q| map[q]).collect();
                out.push_reset(&qs, ket.clone());
            }
        }
    }
    let m = measured.iter().map(|&q| map[q]).collect();
    Some((out, m))
}

fn ket_to_density(ket: &[qt_math::Complex]) -> Matrix {
    let d = ket.len();
    let mut m = Matrix::zeros(d, d);
    for r in 0..d {
        for c in 0..d {
            m[(r, c)] = ket[r] * ket[c].conj();
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_circuit::Circuit;

    #[test]
    fn dm_and_trajectory_backends_agree() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cz(1, 2).ry(2, 0.4);
        let prog = Program::from_circuit(&c);
        let noise = NoiseModel::depolarizing(0.01, 0.05).with_readout(0.03);
        let dm = Executor::with_backend(noise.clone(), Backend::DensityMatrix);
        let tj = Executor::with_backend(
            noise,
            Backend::Trajectory(TrajectoryConfig {
                n_trajectories: 30_000,
                seed: 9,
                n_threads: Some(2),
            }),
        );
        let a = dm.noisy_distribution(&prog, &[0, 1, 2]);
        let b = tj.noisy_distribution(&prog, &[0, 1, 2]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.02, "{x} vs {y}");
        }
    }

    #[test]
    fn readout_error_applied_on_top_of_gates() {
        let mut c = Circuit::new(1);
        c.x(0);
        let prog = Program::from_circuit(&c);
        let exec = Executor::new(NoiseModel::ideal().with_readout(0.25));
        let dist = exec.noisy_distribution(&prog, &[0]);
        assert!((dist[0] - 0.25).abs() < 1e-12);
        assert!((dist[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ideal_distribution_matches_expected() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let prog = Program::from_circuit(&c);
        let dist = ideal_distribution(&prog, &[0, 1]);
        assert!((dist[0] - 0.5).abs() < 1e-12);
        assert!((dist[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ideal_distribution_with_resets_uses_dm() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut prog = Program::from_circuit(&c);
        prog.push_reset_state(&[0], qt_math::states::PrepState::Zero);
        let dist = ideal_distribution(&prog, &[0, 1]);
        assert!((dist[0] - 0.5).abs() < 1e-12);
        assert!((dist[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn crosstalk_reduces_when_measuring_fewer_qubits() {
        // Jigsaw's premise: measuring a subset sees less readout error.
        let mut c = Circuit::new(3);
        c.x(0).x(1).x(2);
        let prog = Program::from_circuit(&c);
        let noise = NoiseModel::ideal()
            .with_readout_model(crate::noise::ReadoutModel::with_crosstalk(0.01, 0.03));
        let exec = Executor::new(noise);
        let all = exec.noisy_distribution(&prog, &[0, 1, 2]);
        let sub = exec.noisy_distribution(&prog, &[0]);
        // P(correct) on qubit 0 alone must exceed marginal correctness when
        // measured jointly with two others.
        let p_joint_correct: f64 = all
            .iter()
            .enumerate()
            .filter(|(i, _)| i & 1 == 1)
            .map(|(_, p)| p)
            .sum();
        assert!(sub[1] > p_joint_correct + 0.02);
    }
}
