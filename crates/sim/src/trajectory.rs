//! Quantum-trajectory (Monte-Carlo wave function) simulation of noisy
//! programs.
//!
//! Each trajectory evolves a pure state; after every gate the attached Kraus
//! channels are sampled (state-independently for mixed-unitary channels,
//! by Born-weighted Gram expectations otherwise). The average over
//! trajectories converges to the density-matrix result.
//!
//! Two optimizations keep the paper's larger registers (15 qubits) cheap:
//!
//! * **No-error stratification** — for models whose channels are all
//!   probabilistic mixtures of unitaries, the per-trajectory error pattern is
//!   sampled *before* touching the state. All-identity patterns contribute
//!   the (precomputed) ideal distribution without simulating.
//! * **Thread fan-out** — trajectories are embarrassingly parallel and are
//!   distributed over scoped `std::thread` workers. Trajectories are dealt
//!   into a fixed number of independently seeded *streams* which the
//!   workers drain, so the result depends only on the configured seed,
//!   never on the machine's core count.

use crate::backend::{available_threads, parallel_indexed};
use crate::kernel::KernelClass;
use crate::noise::NoiseModel;
use crate::program::{Op, Program};
use crate::statevector::StateVector;
use qt_dist::Distribution;
use qt_math::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of independently seeded trajectory streams. A fixed count keeps
/// results machine-independent while still saturating common core counts.
const STREAMS: usize = 64;

/// Configuration for the trajectory engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryConfig {
    /// Number of trajectories to average.
    pub n_trajectories: usize,
    /// RNG seed (trajectories are deterministic given the seed).
    pub seed: u64,
    /// Worker threads (`None` = available parallelism).
    pub n_threads: Option<usize>,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            n_trajectories: 2048,
            seed: 0x9e3779b97f4a7c15,
            n_threads: None,
        }
    }
}

impl TrajectoryConfig {
    /// A configuration with the given trajectory count.
    pub fn with_trajectories(n: usize) -> Self {
        TrajectoryConfig {
            n_trajectories: n,
            ..Default::default()
        }
    }

    /// Returns a copy with a different seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Runs `program` under `noise` and returns the averaged outcome
/// distribution over `measured` (bit `i` of the result index = `measured[i]`),
/// *before* readout error.
pub fn run_distribution(
    program: &Program,
    noise: &NoiseModel,
    measured: &[usize],
    cfg: &TrajectoryConfig,
) -> Distribution {
    // Trajectory averaging accumulates into a flat `2^|measured|` buffer;
    // wide measurement lists belong to the sparse/stabilizer engines.
    assert!(
        measured.len() <= crate::executor::MAX_MEASURED_BITS,
        "trajectory readout allocates a dense outcome table: {} measured bits exceeds the \
         {}-bit cap",
        measured.len(),
        crate::executor::MAX_MEASURED_BITS
    );
    let dim = 1usize << measured.len();
    let n_threads = cfg.n_threads.unwrap_or_else(available_threads).max(1);

    // Resolve channel applications once per op.
    let resolved: Vec<Vec<(Vec<usize>, crate::noise::KrausChannel)>> = program
        .ops()
        .iter()
        .map(|op| match op {
            Op::Gate(i) => noise
                .channels_for(i)
                .into_iter()
                .map(|(qs, ch)| (qs, ch.clone()))
                .collect(),
            Op::IdealGate(_) | Op::Reset { .. } => Vec::new(),
        })
        .collect();

    // Classify every gate once; each of the (potentially thousands of)
    // trajectories replays the pre-classified kernels without re-inspecting
    // gate matrices.
    let gate_classes: Vec<Option<(KernelClass, &[usize])>> = program
        .ops()
        .iter()
        .map(|op| match op {
            Op::Gate(i) | Op::IdealGate(i) => {
                Some((KernelClass::for_gate(&i.gate), i.qubits.as_slice()))
            }
            Op::Reset { .. } => None,
        })
        .collect();

    let all_mixtures = resolved
        .iter()
        .flatten()
        .all(|(_, ch)| ch.mixture_probs().is_some());
    // Stratification needs the noiseless outcome distribution; resets are
    // handled exactly by branching over their collapse outcomes (bounded
    // branch count), falling back to plain sampling for reset-heavy
    // programs.
    let ideal_dist = if all_mixtures {
        ideal_reset_branches(program, measured)
    } else {
        None
    };

    // Deal trajectories into seed-stable streams and drain the streams
    // with up to `n_threads` scoped workers.
    let streams = STREAMS.min(cfg.n_trajectories).max(1);
    let chunk = cfg.n_trajectories.div_ceil(streams);
    let ideal = ideal_dist.as_deref();
    let partials = parallel_indexed(streams, n_threads, |s| {
        let lo = s * chunk;
        let hi = ((s + 1) * chunk).min(cfg.n_trajectories);
        let mut acc = vec![0.0f64; dim];
        let mut n_ideal = 0u64;
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(s as u64 * 0x51ab_de37));
        for _ in lo..hi {
            if run_one(
                program,
                &resolved,
                &gate_classes,
                measured,
                ideal.is_some(),
                &mut acc,
                &mut rng,
            ) {
                n_ideal += 1;
            }
        }
        (acc, n_ideal)
    });

    let mut dist = vec![0.0f64; dim];
    let mut n_ideal_total = 0u64;
    for (acc, n_ideal) in partials {
        for (d, a) in dist.iter_mut().zip(acc) {
            *d += a;
        }
        n_ideal_total += n_ideal;
    }
    if let Some(ideal) = &ideal_dist {
        for (d, &p) in dist.iter_mut().zip(ideal) {
            *d += p * n_ideal_total as f64;
        }
    }
    let norm = 1.0 / cfg.n_trajectories as f64;
    for d in &mut dist {
        *d *= norm;
    }
    Distribution::try_from_probs(measured.len(), dist)
        .expect("trajectory average fits its measured bit count")
}

/// Simulates one trajectory into `acc`. Returns `true` if the trajectory was
/// skipped as an all-identity (ideal) pattern under stratification.
fn run_one(
    program: &Program,
    resolved: &[Vec<(Vec<usize>, crate::noise::KrausChannel)>],
    gate_classes: &[Option<(KernelClass, &[usize])>],
    measured: &[usize],
    stratify: bool,
    acc: &mut [f64],
    rng: &mut StdRng,
) -> bool {
    if stratify {
        // Pre-sample the whole error pattern cheaply.
        let mut pattern: Vec<(usize, usize)> = Vec::new(); // (op index, flat channel choice)
        for (op_idx, chans) in resolved.iter().enumerate() {
            for (ch_idx, (_, ch)) in chans.iter().enumerate() {
                let probs = ch.mixture_probs().expect("stratified path");
                let r: f64 = rng.random();
                let mut cum = 0.0;
                let mut pick = probs.len() - 1;
                for (i, &p) in probs.iter().enumerate() {
                    cum += p;
                    if r < cum {
                        pick = i;
                        break;
                    }
                }
                if !is_identity_unitary(&ch.mixture_unitaries().expect("mixture")[pick]) {
                    pattern.push((op_idx * 1024 + ch_idx, pick));
                }
            }
        }
        if pattern.is_empty() {
            return true;
        }
        // Replay with the pre-sampled pattern.
        let mut sv = StateVector::zero(program.n_qubits());
        let mut cursor = 0usize;
        for (op_idx, op) in program.ops().iter().enumerate() {
            match (op, &gate_classes[op_idx]) {
                (_, Some((class, qs))) => sv.apply_class(class, qs),
                (Op::Reset { qubits, ket }, None) => sv.reset_to_ket(qubits, ket, rng),
                _ => unreachable!("gate ops always classify"),
            }
            for (ch_idx, (qs, ch)) in resolved[op_idx].iter().enumerate() {
                let key = op_idx * 1024 + ch_idx;
                if cursor < pattern.len() && pattern[cursor].0 == key {
                    let u = &ch.mixture_unitaries().expect("mixture")[pattern[cursor].1];
                    sv.apply_op(u, qs);
                    cursor += 1;
                }
            }
        }
        for (i, p) in sv.marginal_probabilities(measured).iter().enumerate() {
            acc[i] += p;
        }
        return false;
    }

    let mut sv = StateVector::zero(program.n_qubits());
    for (op_idx, op) in program.ops().iter().enumerate() {
        match (op, &gate_classes[op_idx]) {
            (_, Some((class, qs))) => sv.apply_class(class, qs),
            (Op::Reset { qubits, ket }, None) => sv.reset_to_ket(qubits, ket, rng),
            _ => unreachable!("gate ops always classify"),
        }
        for (qs, ch) in &resolved[op_idx] {
            sample_channel(&mut sv, ch, qs, rng);
        }
    }
    for (i, p) in sv.marginal_probabilities(measured).iter().enumerate() {
        acc[i] += p;
    }
    false
}

/// Samples one Kraus branch of `ch` on `qs` and applies it to `sv`.
fn sample_channel(
    sv: &mut StateVector,
    ch: &crate::noise::KrausChannel,
    qs: &[usize],
    rng: &mut StdRng,
) {
    if let (Some(probs), Some(units)) = (ch.mixture_probs(), ch.mixture_unitaries()) {
        let r: f64 = rng.random();
        let mut cum = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            cum += p;
            if r < cum {
                if !is_identity_unitary(&units[i]) {
                    sv.apply_op(&units[i], qs);
                }
                return;
            }
        }
        // Numerical tail: apply the last branch.
        if let Some(u) = units.last() {
            if !is_identity_unitary(u) {
                sv.apply_op(u, qs);
            }
        }
        return;
    }
    // General (state-dependent) Kraus sampling via Gram expectations.
    let r: f64 = rng.random();
    let mut cum = 0.0;
    let grams = ch.grams();
    for (i, k) in ch.ops().iter().enumerate() {
        let p = sv.expectation_local(&grams[i], qs).re.max(0.0);
        cum += p;
        if r < cum || i + 1 == ch.ops().len() {
            sv.apply_op(k, qs);
            // Renormalize.
            let norm = sv.norm_sqr().sqrt();
            if norm > 1e-12 {
                for a in sv.amplitudes_mut() {
                    *a = a.scale(1.0 / norm);
                }
            }
            return;
        }
    }
}

/// The exact noiseless outcome distribution of a program, branching over
/// the projective collapse outcomes of every reset. Returns `None` when the
/// branch count would exceed 64 (fall back to sampling).
fn ideal_reset_branches(program: &Program, measured: &[usize]) -> Option<Vec<f64>> {
    let mut branch_bound = 1usize;
    for op in program.ops() {
        if let Op::Reset { qubits, .. } = op {
            branch_bound = branch_bound.saturating_mul(1 << qubits.len());
            if branch_bound > 64 {
                return None;
            }
        }
    }
    let dim = 1usize << measured.len();
    let mut dist = vec![0.0f64; dim];
    let ops = program.ops();
    let mut stack: Vec<(StateVector, usize, f64)> =
        vec![(StateVector::zero(program.n_qubits()), 0, 1.0)];
    while let Some((mut sv, start, weight)) = stack.pop() {
        let mut idx = start;
        let mut branched = false;
        while idx < ops.len() {
            match &ops[idx] {
                Op::Gate(i) | Op::IdealGate(i) => sv.apply_instruction(i),
                Op::Reset { qubits, ket } => {
                    let probs = sv.marginal_probabilities(qubits);
                    let prep = crate::statevector::unitary_with_first_column(ket);
                    for (m, &p) in probs.iter().enumerate() {
                        if p < 1e-15 {
                            continue;
                        }
                        let mut b = sv.clone();
                        for (pos, &q) in qubits.iter().enumerate() {
                            b.collapse(q, (m >> pos) & 1);
                            if (m >> pos) & 1 == 1 {
                                b.apply_op(&qt_math::pauli::x2(), &[q]);
                            }
                        }
                        b.apply_op(&prep, qubits);
                        stack.push((b, idx + 1, weight * p));
                    }
                    branched = true;
                    break;
                }
            }
            idx += 1;
        }
        if !branched {
            for (k, p) in sv.marginal_probabilities(measured).iter().enumerate() {
                dist[k] += weight * p;
            }
        }
    }
    Some(dist)
}

fn is_identity_unitary(u: &Matrix) -> bool {
    let n = u.rows();
    for i in 0..n {
        for j in 0..n {
            let want = if i == j {
                qt_math::Complex::ONE
            } else {
                qt_math::Complex::ZERO
            };
            if !u[(i, j)].approx_eq(want, 1e-12) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityMatrix;
    use crate::noise::KrausChannel;
    use qt_circuit::Circuit;

    fn compare_with_dm(circ: &Circuit, noise: &NoiseModel, measured: &[usize], tol: f64) {
        let prog = Program::from_circuit(circ);
        let cfg = TrajectoryConfig {
            n_trajectories: 20_000,
            seed: 42,
            n_threads: Some(2),
        };
        let traj = run_distribution(&prog, noise, measured, &cfg)
            .densify()
            .expect("test measurement lists are narrow");
        let mut rho = DensityMatrix::zero(circ.n_qubits());
        for instr in circ.instructions() {
            rho.apply_instruction(instr);
            for (qs, ch) in noise.channels_for(instr) {
                rho.apply_kraus(ch.ops(), &qs);
            }
        }
        let exact = rho.marginal_probabilities(measured);
        for (a, b) in traj.iter().zip(&exact) {
            assert!((a - b).abs() < tol, "trajectory {a} vs exact {b}");
        }
    }

    #[test]
    fn trajectories_match_density_matrix_depolarizing() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.9).cz(1, 2);
        let noise = NoiseModel::depolarizing(0.02, 0.08);
        compare_with_dm(&c, &noise, &[0, 1, 2], 0.02);
    }

    #[test]
    fn trajectories_match_density_matrix_thermal() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut noise = NoiseModel::ideal();
        noise.one_qubit.per_operand = vec![KrausChannel::thermal_relaxation(100.0, 80.0, 30.0)];
        noise.two_qubit.per_operand = vec![KrausChannel::thermal_relaxation(100.0, 80.0, 60.0)];
        compare_with_dm(&c, &noise, &[0, 1], 0.02);
    }

    #[test]
    fn stratification_is_exact_with_zero_noise() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let prog = Program::from_circuit(&c);
        let cfg = TrajectoryConfig {
            n_trajectories: 10,
            seed: 1,
            n_threads: Some(1),
        };
        let dist = run_distribution(&prog, &NoiseModel::ideal(), &[0, 1], &cfg);
        assert!((dist.prob(0) - 0.5).abs() < 1e-12);
        assert!((dist.prob(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn results_are_invariant_to_thread_count() {
        // Stream-based seeding: the distribution is a function of the seed
        // alone, so any worker count reproduces it bit-for-bit.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.7).cz(1, 2);
        let prog = Program::from_circuit(&c);
        let noise = NoiseModel::depolarizing(0.02, 0.08);
        let base = TrajectoryConfig {
            n_trajectories: 3_000,
            seed: 123,
            n_threads: Some(1),
        };
        let serial = run_distribution(&prog, &noise, &[0, 1, 2], &base);
        for threads in [2, 3, 8] {
            let cfg = TrajectoryConfig {
                n_threads: Some(threads),
                ..base
            };
            let parallel = run_distribution(&prog, &noise, &[0, 1, 2], &cfg);
            assert_eq!(serial, parallel, "{threads} threads diverged");
        }
    }

    #[test]
    fn resets_average_correctly() {
        // Bell state, then reset qubit 0 to |0⟩: qubit 1 stays mixed.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut prog = Program::from_circuit(&c);
        prog.push_reset_state(&[0], qt_math::states::PrepState::Zero);
        let cfg = TrajectoryConfig {
            n_trajectories: 20_000,
            seed: 5,
            n_threads: Some(2),
        };
        let dist = run_distribution(&prog, &NoiseModel::ideal(), &[0, 1], &cfg);
        // q0 = 0 always; q1 uniform.
        assert!((dist.prob(0) - 0.5).abs() < 0.02);
        assert!((dist.prob(2) - 0.5).abs() < 0.02);
        assert!(dist.prob(1).abs() < 1e-12 && dist.prob(3).abs() < 1e-12);
    }
}
